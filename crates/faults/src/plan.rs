//! The [`FaultPlan`]: a validated timeline of fault events.
//!
//! A plan mirrors how `ScenarioSpec` treats topology scripts: a plain list
//! of typed events, builder helpers per family, and up-front validation
//! against the scenario's device/network population and horizon so that an
//! impossible plan fails with a typed [`FaultPlanError`] before anything
//! runs.

use crate::event::{CorruptionMode, FaultEvent, LinkTarget};
use core::fmt;
use rtem_net::link::LinkConfig;
use rtem_net::packet::{AggregatorAddr, DeviceId};
use rtem_sensors::fault::SensorFaultKind;
use rtem_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// Why a [`FaultPlan`] failed validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultPlanError {
    /// An event targets a device the scenario does not generate.
    UnknownDevice {
        /// The offending device id.
        device: DeviceId,
    },
    /// An event targets a network the scenario does not generate.
    UnknownNetwork {
        /// The offending network address.
        network: AggregatorAddr,
    },
    /// An event clears at or before its own injection time.
    ClearsBeforeInjection {
        /// Injection time.
        at: SimTime,
        /// Declared clear time.
        until: SimTime,
    },
    /// An event is injected after the run horizon and would never fire.
    AfterHorizon {
        /// The scheduled injection time.
        at: SimTime,
    },
    /// A byzantine event declares zero colluding voters — nothing to inject.
    ZeroByzantineVoters,
    /// A telegram-corruption event can never damage anything: zero
    /// per-telegram probability, or a bit-flip mode flipping zero bits.
    IneffectiveCorruption,
    /// An outage names itself as its own failover target.
    FailoverIsTarget {
        /// The network failing over to itself.
        network: AggregatorAddr,
    },
    /// A degraded link configuration is invalid (loss outside `[0, 1]` or a
    /// zero bandwidth).
    InvalidDegradedLink,
    /// Two link bursts on the same medium overlap in time. Each burst saves
    /// the pre-burst configuration and restores it when it ends, so an
    /// overlapping pair would capture (and later reinstate) the other's
    /// degraded quality; sequence bursts instead.
    OverlappingLinkBursts {
        /// Start of the earlier burst.
        first_at: SimTime,
        /// Start of the later, overlapping burst.
        second_at: SimTime,
    },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::UnknownDevice { device } => {
                write!(f, "fault plan refers to unknown device {device:?}")
            }
            FaultPlanError::UnknownNetwork { network } => {
                write!(f, "fault plan refers to unknown network {network:?}")
            }
            FaultPlanError::ClearsBeforeInjection { at, until } => {
                write!(
                    f,
                    "fault clears at {until:?}, not after injection at {at:?}"
                )
            }
            FaultPlanError::AfterHorizon { at } => {
                write!(f, "fault injection at {at:?} is after the horizon")
            }
            FaultPlanError::ZeroByzantineVoters => {
                write!(f, "byzantine fault declares zero colluding voters")
            }
            FaultPlanError::IneffectiveCorruption => {
                write!(
                    f,
                    "telegram corruption declares zero probability or zero bit flips"
                )
            }
            FaultPlanError::FailoverIsTarget { network } => {
                write!(f, "outage of {network:?} fails over to itself")
            }
            FaultPlanError::InvalidDegradedLink => {
                write!(f, "degraded link config is invalid")
            }
            FaultPlanError::OverlappingLinkBursts {
                first_at,
                second_at,
            } => {
                write!(
                    f,
                    "link bursts starting at {first_at:?} and {second_at:?} overlap on the \
                     same medium"
                )
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// A declarative timeline of fault injections.
///
/// ```
/// use rtem_faults::plan::FaultPlan;
/// use rtem_net::packet::{AggregatorAddr, DeviceId};
/// use rtem_sensors::fault::SensorFaultKind;
/// use rtem_sim::time::SimTime;
///
/// let plan = FaultPlan::new()
///     .sensor_stuck_at(SimTime::from_secs(20), DeviceId(1), 10.0)
///     .tamper_at(SimTime::from_secs(30), AggregatorAddr(1));
/// assert_eq!(plan.len(), 2);
/// let devices = [DeviceId(1)];
/// let networks = [AggregatorAddr(1)];
/// assert!(plan
///     .validate(&devices, &networks, SimTime::from_secs(100))
///     .is_ok());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The scheduled events, in the order they were added.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Appends an arbitrary event.
    pub fn with(mut self, event: FaultEvent) -> FaultPlan {
        self.events.push(event);
        self
    }

    /// Appends a permanent stuck-at sensor fault.
    pub fn sensor_stuck_at(self, at: SimTime, device: DeviceId, level_ma: f64) -> FaultPlan {
        self.with(FaultEvent::SensorFault {
            at,
            until: None,
            device,
            kind: SensorFaultKind::StuckAt { level_ma },
        })
    }

    /// Appends a transient sensor fault of an arbitrary shape.
    pub fn sensor_fault_between(
        self,
        at: SimTime,
        until: SimTime,
        device: DeviceId,
        kind: SensorFaultKind,
    ) -> FaultPlan {
        self.with(FaultEvent::SensorFault {
            at,
            until: Some(until),
            device,
            kind,
        })
    }

    /// Appends a storage-tampering attack on `network`'s ledger.
    pub fn tamper_at(self, at: SimTime, network: AggregatorAddr) -> FaultPlan {
        self.with(FaultEvent::MeterTamper { at, network })
    }

    /// Appends a link-degradation burst.
    pub fn link_burst(
        self,
        at: SimTime,
        until: SimTime,
        target: LinkTarget,
        degraded: LinkConfig,
    ) -> FaultPlan {
        self.with(FaultEvent::LinkDegrade {
            at,
            until,
            target,
            degraded,
        })
    }

    /// Appends a device crash with a scheduled reboot.
    pub fn crash_between(self, at: SimTime, restart_at: SimTime, device: DeviceId) -> FaultPlan {
        self.with(FaultEvent::DeviceCrash {
            at,
            restart_at,
            device,
        })
    }

    /// Appends an aggregator outage, optionally with failover.
    pub fn outage_between(
        self,
        at: SimTime,
        until: SimTime,
        network: AggregatorAddr,
        failover: Option<AggregatorAddr>,
    ) -> FaultPlan {
        self.with(FaultEvent::AggregatorOutage {
            at,
            until,
            network,
            failover,
        })
    }

    /// Appends a byzantine-voter collusion window.
    pub fn byzantine_between(
        self,
        at: SimTime,
        until: SimTime,
        network: AggregatorAddr,
        voters: u32,
    ) -> FaultPlan {
        self.with(FaultEvent::ByzantineVoters {
            at,
            until,
            network,
            voters,
        })
    }

    /// Appends a telegram-corruption window on `device`'s uplink. Every
    /// consumption telegram the device transmits in the window is damaged
    /// per `mode` with probability `per_mille`/1000.
    pub fn telegram_corruption_between(
        self,
        at: SimTime,
        until: SimTime,
        device: DeviceId,
        mode: CorruptionMode,
        per_mille: u16,
    ) -> FaultPlan {
        self.with(FaultEvent::TelegramCorruption {
            at,
            until,
            device,
            mode,
            per_mille,
        })
    }

    /// Checks every event against the scenario population and horizon,
    /// returning the first inconsistency found.
    pub fn validate(
        &self,
        devices: &[DeviceId],
        networks: &[AggregatorAddr],
        horizon: SimTime,
    ) -> Result<(), FaultPlanError> {
        for event in &self.events {
            if let Some(device) = event.device() {
                if !devices.contains(&device) {
                    return Err(FaultPlanError::UnknownDevice { device });
                }
            }
            if let Some(network) = event.network() {
                if !networks.contains(&network) {
                    return Err(FaultPlanError::UnknownNetwork { network });
                }
            }
            // Events scheduled exactly at the horizon still execute (same
            // rule as topology scripts), so only strictly-later ones are
            // unreachable.
            if event.at() > horizon {
                return Err(FaultPlanError::AfterHorizon { at: event.at() });
            }
            if let Some(until) = event.clears_at() {
                if until <= event.at() {
                    return Err(FaultPlanError::ClearsBeforeInjection {
                        at: event.at(),
                        until,
                    });
                }
            }
            match *event {
                FaultEvent::ByzantineVoters { voters: 0, .. } => {
                    return Err(FaultPlanError::ZeroByzantineVoters);
                }
                FaultEvent::TelegramCorruption {
                    per_mille, mode, ..
                } if per_mille == 0 || mode == CorruptionMode::BitFlip { flips: 0 } => {
                    return Err(FaultPlanError::IneffectiveCorruption);
                }
                FaultEvent::AggregatorOutage {
                    network,
                    failover: Some(backup),
                    ..
                } if backup == network => {
                    return Err(FaultPlanError::FailoverIsTarget { network });
                }
                FaultEvent::AggregatorOutage {
                    failover: Some(backup),
                    ..
                } if !networks.contains(&backup) => {
                    return Err(FaultPlanError::UnknownNetwork { network: backup });
                }
                FaultEvent::LinkDegrade { degraded, .. } => {
                    let loss_ok = (0.0..=1.0).contains(&degraded.loss_probability);
                    let bw_ok = degraded.bandwidth_bps.map_or(true, |bw| bw > 0);
                    if !loss_ok || !bw_ok {
                        return Err(FaultPlanError::InvalidDegradedLink);
                    }
                }
                _ => {}
            }
        }
        // Link bursts on the same medium must not overlap: each burst saves
        // and later restores the pre-burst configuration, so an overlap
        // would capture the other burst's degraded quality as "original".
        // Wi-Fi and backhaul touch disjoint links and may overlap freely.
        let bursts: Vec<(SimTime, SimTime, bool)> = self
            .events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::LinkDegrade {
                    at, until, target, ..
                } => Some((at, until, matches!(target, LinkTarget::Backhaul))),
                _ => None,
            })
            .collect();
        for (i, &(a_at, a_until, a_backhaul)) in bursts.iter().enumerate() {
            for &(b_at, b_until, b_backhaul) in &bursts[i + 1..] {
                if a_backhaul == b_backhaul && a_at < b_until && b_at < a_until {
                    let (first_at, second_at) = if a_at <= b_at {
                        (a_at, b_at)
                    } else {
                        (b_at, a_at)
                    };
                    return Err(FaultPlanError::OverlappingLinkBursts {
                        first_at,
                        second_at,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtem_sim::time::SimDuration;

    fn population() -> (Vec<DeviceId>, Vec<AggregatorAddr>) {
        (
            vec![DeviceId(1), DeviceId(2)],
            vec![AggregatorAddr(1), AggregatorAddr(2)],
        )
    }

    #[test]
    fn valid_plan_with_every_family_passes() {
        let (devices, networks) = population();
        let plan = FaultPlan::new()
            .sensor_stuck_at(SimTime::from_secs(10), DeviceId(1), 5.0)
            .tamper_at(SimTime::from_secs(20), AggregatorAddr(1))
            .link_burst(
                SimTime::from_secs(30),
                SimTime::from_secs(40),
                LinkTarget::Backhaul,
                LinkConfig::wifi(),
            )
            .crash_between(SimTime::from_secs(50), SimTime::from_secs(60), DeviceId(2))
            .outage_between(
                SimTime::from_secs(70),
                SimTime::from_secs(80),
                AggregatorAddr(1),
                Some(AggregatorAddr(2)),
            )
            .byzantine_between(
                SimTime::from_secs(85),
                SimTime::from_secs(95),
                AggregatorAddr(2),
                1,
            )
            .telegram_corruption_between(
                SimTime::from_secs(12),
                SimTime::from_secs(48),
                DeviceId(1),
                CorruptionMode::BitFlip { flips: 2 },
                800,
            );
        assert_eq!(plan.len(), 7);
        assert!(!plan.is_empty());
        assert_eq!(
            plan.validate(&devices, &networks, SimTime::from_secs(100)),
            Ok(())
        );
    }

    #[test]
    fn unknown_targets_are_rejected() {
        let (devices, networks) = population();
        let plan = FaultPlan::new().sensor_stuck_at(SimTime::from_secs(1), DeviceId(99), 5.0);
        assert_eq!(
            plan.validate(&devices, &networks, SimTime::from_secs(100)),
            Err(FaultPlanError::UnknownDevice {
                device: DeviceId(99)
            })
        );
        let plan = FaultPlan::new().tamper_at(SimTime::from_secs(1), AggregatorAddr(9));
        assert_eq!(
            plan.validate(&devices, &networks, SimTime::from_secs(100)),
            Err(FaultPlanError::UnknownNetwork {
                network: AggregatorAddr(9)
            })
        );
        // Failover targets are checked too.
        let plan = FaultPlan::new().outage_between(
            SimTime::from_secs(1),
            SimTime::from_secs(2),
            AggregatorAddr(1),
            Some(AggregatorAddr(7)),
        );
        assert_eq!(
            plan.validate(&devices, &networks, SimTime::from_secs(100)),
            Err(FaultPlanError::UnknownNetwork {
                network: AggregatorAddr(7)
            })
        );
    }

    #[test]
    fn timeline_inconsistencies_are_rejected() {
        let (devices, networks) = population();
        let horizon = SimTime::from_secs(100);
        let plan = FaultPlan::new().crash_between(
            SimTime::from_secs(10),
            SimTime::from_secs(10),
            DeviceId(1),
        );
        assert!(matches!(
            plan.validate(&devices, &networks, horizon),
            Err(FaultPlanError::ClearsBeforeInjection { .. })
        ));
        let plan = FaultPlan::new().tamper_at(SimTime::from_secs(500), AggregatorAddr(1));
        assert!(matches!(
            plan.validate(&devices, &networks, horizon),
            Err(FaultPlanError::AfterHorizon { .. })
        ));
        // Exactly at the horizon is still reachable.
        let plan = FaultPlan::new().tamper_at(horizon, AggregatorAddr(1));
        assert_eq!(plan.validate(&devices, &networks, horizon), Ok(()));
    }

    #[test]
    fn degenerate_parameters_are_rejected() {
        let (devices, networks) = population();
        let horizon = SimTime::from_secs(100);
        let plan = FaultPlan::new().byzantine_between(
            SimTime::from_secs(1),
            SimTime::from_secs(2),
            AggregatorAddr(1),
            0,
        );
        assert_eq!(
            plan.validate(&devices, &networks, horizon),
            Err(FaultPlanError::ZeroByzantineVoters)
        );
        let plan = FaultPlan::new().outage_between(
            SimTime::from_secs(1),
            SimTime::from_secs(2),
            AggregatorAddr(1),
            Some(AggregatorAddr(1)),
        );
        assert_eq!(
            plan.validate(&devices, &networks, horizon),
            Err(FaultPlanError::FailoverIsTarget {
                network: AggregatorAddr(1)
            })
        );
        let plan = FaultPlan::new().telegram_corruption_between(
            SimTime::from_secs(1),
            SimTime::from_secs(2),
            DeviceId(1),
            CorruptionMode::Truncate,
            0,
        );
        assert_eq!(
            plan.validate(&devices, &networks, horizon),
            Err(FaultPlanError::IneffectiveCorruption)
        );
        let plan = FaultPlan::new().telegram_corruption_between(
            SimTime::from_secs(1),
            SimTime::from_secs(2),
            DeviceId(1),
            CorruptionMode::BitFlip { flips: 0 },
            1000,
        );
        assert_eq!(
            plan.validate(&devices, &networks, horizon),
            Err(FaultPlanError::IneffectiveCorruption)
        );
        let bad_link = LinkConfig {
            base_latency: SimDuration::from_millis(1),
            jitter: SimDuration::ZERO,
            loss_probability: 1.5,
            bandwidth_bps: None,
        };
        let plan = FaultPlan::new().link_burst(
            SimTime::from_secs(1),
            SimTime::from_secs(2),
            LinkTarget::Wifi { network: None },
            bad_link,
        );
        assert_eq!(
            plan.validate(&devices, &networks, horizon),
            Err(FaultPlanError::InvalidDegradedLink)
        );
    }

    #[test]
    fn overlapping_bursts_on_one_medium_are_rejected() {
        let (devices, networks) = population();
        let horizon = SimTime::from_secs(100);
        let wifi = LinkTarget::Wifi { network: None };
        let overlap = FaultPlan::new()
            .link_burst(
                SimTime::from_secs(10),
                SimTime::from_secs(30),
                wifi,
                LinkConfig::wifi(),
            )
            .link_burst(
                SimTime::from_secs(20),
                SimTime::from_secs(40),
                wifi,
                LinkConfig::wifi(),
            );
        assert_eq!(
            overlap.validate(&devices, &networks, horizon),
            Err(FaultPlanError::OverlappingLinkBursts {
                first_at: SimTime::from_secs(10),
                second_at: SimTime::from_secs(20),
            })
        );
        // Back-to-back bursts are fine (a burst ending exactly when the
        // next starts does not overlap: restore runs before re-degrade).
        let sequenced = FaultPlan::new()
            .link_burst(
                SimTime::from_secs(10),
                SimTime::from_secs(20),
                wifi,
                LinkConfig::wifi(),
            )
            .link_burst(
                SimTime::from_secs(20),
                SimTime::from_secs(30),
                wifi,
                LinkConfig::wifi(),
            );
        assert_eq!(sequenced.validate(&devices, &networks, horizon), Ok(()));
        // Wi-Fi and backhaul touch disjoint links: overlap allowed.
        let mixed = FaultPlan::new()
            .link_burst(
                SimTime::from_secs(10),
                SimTime::from_secs(30),
                wifi,
                LinkConfig::wifi(),
            )
            .link_burst(
                SimTime::from_secs(15),
                SimTime::from_secs(25),
                LinkTarget::Backhaul,
                LinkConfig::backhaul(),
            );
        assert_eq!(mixed.validate(&devices, &networks, horizon), Ok(()));
    }
}
