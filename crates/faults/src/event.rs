//! The schedulable fault events and their lifecycle records.
//!
//! A [`FaultEvent`] is one injectable condition with an absolute injection
//! time and, for the non-instantaneous families, a clear time. The world
//! maintains one [`FaultRecord`] per scheduled event, tracking when it was
//! actually injected, cleared and — crucially — *detected*, and by which
//! [`DetectionSignal`]. Detection latency is the distance between the first
//! two of those timestamps and the last.

use core::fmt;
use rtem_net::link::LinkConfig;
use rtem_net::packet::{AggregatorAddr, DeviceId};
use rtem_sensors::fault::SensorFaultKind;
use rtem_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The seven fault families the subsystem can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FaultFamily {
    /// A device's sensor misbehaves (stuck-at, drift, spikes).
    Sensor,
    /// A committed ledger record is forged in place (storage tampering).
    Tamper,
    /// A burst of link degradation (loss / latency ramp) on access or
    /// backhaul links.
    Link,
    /// A device's firmware crashes, losing in-flight state, then restarts.
    Crash,
    /// An aggregator goes dark, optionally failing its devices over to a
    /// backup network.
    Outage,
    /// A fraction of a network's devices vote byzantine in the device-level
    /// consensus extension.
    Byzantine,
    /// A device's outgoing meter telegrams are corrupted on the wire
    /// (bit flips, truncation, field mangling at the codec boundary).
    Corruption,
}

impl fmt::Display for FaultFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FaultFamily::Sensor => "sensor",
            FaultFamily::Tamper => "tamper",
            FaultFamily::Link => "link",
            FaultFamily::Crash => "crash",
            FaultFamily::Outage => "outage",
            FaultFamily::Byzantine => "byzantine",
            FaultFamily::Corruption => "corruption",
        };
        write!(f, "{name}")
    }
}

/// How a [`FaultEvent::TelegramCorruption`] fault mangles each telegram.
///
/// The corruption is applied to the encoded telegram bytes just before
/// transmission, from a seeded per-fault random stream, so a corrupted run
/// is exactly as reproducible as a clean one. Checksummed meter codecs
/// reject the damage with a typed parse error at the aggregator; the
/// internal record format has no checksum, so the same fault silently
/// lands wrong values in the ledger instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CorruptionMode {
    /// Flip `flips` random payload bits per telegram.
    BitFlip {
        /// Bits flipped per telegram (at least 1 to have any effect).
        flips: u8,
    },
    /// Cut the telegram off at a random point.
    Truncate,
    /// Overwrite a random span of the telegram with random bytes.
    MangleField,
}

impl fmt::Display for CorruptionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorruptionMode::BitFlip { flips } => write!(f, "bitflip x{flips}"),
            CorruptionMode::Truncate => write!(f, "truncate"),
            CorruptionMode::MangleField => write!(f, "mangle"),
        }
    }
}

/// Which links a [`FaultEvent::LinkDegrade`] burst hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkTarget {
    /// The device access links (Wi-Fi to the broker); `network` restricts
    /// the burst to the devices currently in one network, `None` hits all.
    Wifi {
        /// Restrict the burst to one network's devices.
        network: Option<AggregatorAddr>,
    },
    /// Every aggregator-to-aggregator backhaul link.
    Backhaul,
}

/// One schedulable fault.
///
/// Events are plain data; the world interprets them at their injection time.
/// Families with a natural duration carry an explicit clear time so a plan
/// reads like a timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// `device`'s sensor starts misbehaving at `at`; heals at `until`
    /// (`None` = never heals within the run).
    SensorFault {
        /// Injection time.
        at: SimTime,
        /// Heal time, if the fault is transient.
        until: Option<SimTime>,
        /// The affected device.
        device: DeviceId,
        /// The failure shape.
        kind: SensorFaultKind,
    },
    /// A committed record in `network`'s ledger is forged in place at `at`
    /// (the §II-A storage-tampering attack). Instantaneous: once forged, the
    /// damage persists until the audit catches it. If no record has been
    /// committed yet the forgery is applied to the first block sealed with
    /// records after `at`.
    MeterTamper {
        /// Injection time.
        at: SimTime,
        /// The network whose ledger is attacked.
        network: AggregatorAddr,
    },
    /// The targeted links degrade to `degraded` between `at` and `until`,
    /// then recover their previous configuration (offered/lost counters are
    /// preserved across both transitions).
    LinkDegrade {
        /// Burst start.
        at: SimTime,
        /// Burst end.
        until: SimTime,
        /// Which links degrade.
        target: LinkTarget,
        /// The degraded link quality during the burst.
        degraded: LinkConfig,
    },
    /// `device`'s firmware crashes at `at` — unacknowledged buffered records
    /// and registration state are lost, reporting stops (the electrical load
    /// keeps drawing) — and reboots at `restart_at`.
    DeviceCrash {
        /// Crash time.
        at: SimTime,
        /// Reboot time.
        restart_at: SimTime,
        /// The crashing device.
        device: DeviceId,
    },
    /// `network`'s aggregator goes dark between `at` and `until`: it stops
    /// sampling, sealing and acknowledging, and backhaul traffic addressed
    /// to it is queued for recovery. With `failover`, the devices currently
    /// in the network are re-plugged into the backup network for the
    /// duration, and a membership replica answers verification requests on
    /// the dark aggregator's behalf.
    AggregatorOutage {
        /// Outage start.
        at: SimTime,
        /// Recovery time.
        until: SimTime,
        /// The failing network.
        network: AggregatorAddr,
        /// Backup network adopting the devices for the duration, if any.
        failover: Option<AggregatorAddr>,
    },
    /// Between `at` and `until`, `voters` of `network`'s devices collude
    /// byzantinely in the device-level consensus extension: at each
    /// verification window one of them proposes a forged block and they
    /// approve it while honest validators reject. The forgery commits only
    /// if the byzantine voters alone reach quorum.
    ByzantineVoters {
        /// Collusion start.
        at: SimTime,
        /// Collusion end.
        until: SimTime,
        /// The network whose devices form the validator set.
        network: AggregatorAddr,
        /// Number of colluding (byzantine) validators.
        voters: u32,
    },
    /// Between `at` and `until`, each consumption telegram `device`
    /// transmits is corrupted per `mode` with probability `per_mille`/1000
    /// (seeded, deterministic). Detection happens when the aggregator-side
    /// codec rejects a malformed frame; devices speaking the internal
    /// format are silently mis-metered instead.
    TelegramCorruption {
        /// Corruption window start.
        at: SimTime,
        /// Corruption window end.
        until: SimTime,
        /// The device whose uplink is corrupted.
        device: DeviceId,
        /// The damage applied to each affected telegram.
        mode: CorruptionMode,
        /// Per-telegram corruption probability in thousandths (0–1000).
        per_mille: u16,
    },
}

impl FaultEvent {
    /// The injection time.
    pub fn at(&self) -> SimTime {
        match *self {
            FaultEvent::SensorFault { at, .. }
            | FaultEvent::MeterTamper { at, .. }
            | FaultEvent::LinkDegrade { at, .. }
            | FaultEvent::DeviceCrash { at, .. }
            | FaultEvent::AggregatorOutage { at, .. }
            | FaultEvent::ByzantineVoters { at, .. }
            | FaultEvent::TelegramCorruption { at, .. } => at,
        }
    }

    /// The clear time, for the families that have one.
    pub fn clears_at(&self) -> Option<SimTime> {
        match *self {
            FaultEvent::SensorFault { until, .. } => until,
            FaultEvent::MeterTamper { .. } => None,
            FaultEvent::LinkDegrade { until, .. } => Some(until),
            FaultEvent::DeviceCrash { restart_at, .. } => Some(restart_at),
            FaultEvent::AggregatorOutage { until, .. } => Some(until),
            FaultEvent::ByzantineVoters { until, .. } => Some(until),
            FaultEvent::TelegramCorruption { until, .. } => Some(until),
        }
    }

    /// The family the event belongs to.
    pub fn family(&self) -> FaultFamily {
        match self {
            FaultEvent::SensorFault { .. } => FaultFamily::Sensor,
            FaultEvent::MeterTamper { .. } => FaultFamily::Tamper,
            FaultEvent::LinkDegrade { .. } => FaultFamily::Link,
            FaultEvent::DeviceCrash { .. } => FaultFamily::Crash,
            FaultEvent::AggregatorOutage { .. } => FaultFamily::Outage,
            FaultEvent::ByzantineVoters { .. } => FaultFamily::Byzantine,
            FaultEvent::TelegramCorruption { .. } => FaultFamily::Corruption,
        }
    }

    /// The device the event targets, for the device-scoped families.
    pub fn device(&self) -> Option<DeviceId> {
        match *self {
            FaultEvent::SensorFault { device, .. }
            | FaultEvent::DeviceCrash { device, .. }
            | FaultEvent::TelegramCorruption { device, .. } => Some(device),
            _ => None,
        }
    }

    /// The network the event targets, for the network-scoped families.
    pub fn network(&self) -> Option<AggregatorAddr> {
        match *self {
            FaultEvent::MeterTamper { network, .. }
            | FaultEvent::AggregatorOutage { network, .. }
            | FaultEvent::ByzantineVoters { network, .. } => Some(network),
            FaultEvent::LinkDegrade {
                target: LinkTarget::Wifi { network },
                ..
            } => network,
            _ => None,
        }
    }
}

/// The observable evidence by which an injected fault was recognized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetectionSignal {
    /// The aggregator's complementary system-level measurement disagreed
    /// with the devices' reported sum (a `WindowVerdict` flagged anomalous).
    AnomalousWindow,
    /// The hash-chain audit localized an inconsistency.
    ChainAudit {
        /// Height of the flagged block.
        block_index: u64,
    },
    /// The device-level consensus round rejected a forged proposal.
    ConsensusRejected {
        /// Rejections collected when the round died.
        rejections: usize,
    },
    /// The first block sealed after a recovery contained records backfilled
    /// from device-local storage — evidence that an outage happened and that
    /// the consumption data collected during it survived.
    RecoveryBackfill {
        /// Number of backfilled records in the recovery block.
        records: usize,
    },
    /// The aggregator-side meter codec rejected a malformed telegram with a
    /// typed parse error — only possible for checksummed meter protocols;
    /// the internal record format misses the same corruption silently.
    TelegramRejected {
        /// Codec discriminant of the rejected telegram's meter protocol.
        codec: u8,
    },
    /// Per-link delivery accounting flagged a loss rate far above the
    /// medium's ambient expectation at window seal — the signature of a
    /// degradation burst whose drops the QoS retries otherwise absorb
    /// without ever producing an anomalous verification window.
    LinkDegraded {
        /// Packets lost on the watched links since the burst began.
        lost: u64,
        /// Packets offered to the watched links since the burst began.
        offered: u64,
    },
    /// Peer aggregators cross-checked a quorum-committed block at window
    /// seal and refused to vouch for its records — the signature of a
    /// colluding byzantine quorum whose forgery no honest validator inside
    /// the network could reject.
    LedgerCrossCheck {
        /// Peer aggregators that flagged the committed records as forged.
        peers: usize,
    },
}

/// Lifecycle record of one scheduled fault, maintained by the world.
///
/// `id` is the index the world assigned at scheduling time; `injected_at`
/// is set when the fault actually takes effect (for [`FaultEvent::MeterTamper`]
/// this can be later than the scheduled time if no record was committed yet).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// Index assigned when the fault was scheduled.
    pub id: usize,
    /// The fault's family.
    pub family: FaultFamily,
    /// When injection was scheduled.
    pub scheduled_at: SimTime,
    /// When the fault actually took effect, if it did.
    pub injected_at: Option<SimTime>,
    /// When the fault was cleared / healed, if it was.
    pub cleared_at: Option<SimTime>,
    /// When the system first recognized the fault, if it did.
    pub detected_at: Option<SimTime>,
    /// The evidence that triggered detection.
    pub signal: Option<DetectionSignal>,
    /// For tamper faults: the height of the forged block.
    pub tampered_block: Option<u64>,
}

impl FaultRecord {
    /// Creates the pre-injection record for a scheduled event.
    pub fn scheduled(id: usize, event: &FaultEvent) -> FaultRecord {
        FaultRecord {
            id,
            family: event.family(),
            scheduled_at: event.at(),
            injected_at: None,
            cleared_at: None,
            detected_at: None,
            signal: None,
            tampered_block: None,
        }
    }

    /// `true` once the fault has taken effect.
    pub fn injected(&self) -> bool {
        self.injected_at.is_some()
    }

    /// `true` once the system recognized the fault.
    pub fn detected(&self) -> bool {
        self.detected_at.is_some()
    }

    /// Time from injection to detection, if both happened.
    pub fn detection_latency(&self) -> Option<SimDuration> {
        match (self.injected_at, self.detected_at) {
            (Some(injected), Some(detected)) => Some(detected.saturating_duration_since(injected)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crash() -> FaultEvent {
        FaultEvent::DeviceCrash {
            at: SimTime::from_secs(10),
            restart_at: SimTime::from_secs(20),
            device: DeviceId(3),
        }
    }

    #[test]
    fn accessors_cover_every_family() {
        let sensor = FaultEvent::SensorFault {
            at: SimTime::from_secs(1),
            until: None,
            device: DeviceId(1),
            kind: SensorFaultKind::StuckAt { level_ma: 5.0 },
        };
        assert_eq!(sensor.family(), FaultFamily::Sensor);
        assert_eq!(sensor.device(), Some(DeviceId(1)));
        assert_eq!(sensor.network(), None);
        assert_eq!(sensor.clears_at(), None);

        let tamper = FaultEvent::MeterTamper {
            at: SimTime::from_secs(2),
            network: AggregatorAddr(1),
        };
        assert_eq!(tamper.family(), FaultFamily::Tamper);
        assert_eq!(tamper.network(), Some(AggregatorAddr(1)));
        assert_eq!(tamper.clears_at(), None);

        let crash = crash();
        assert_eq!(crash.family(), FaultFamily::Crash);
        assert_eq!(crash.clears_at(), Some(SimTime::from_secs(20)));

        let link = FaultEvent::LinkDegrade {
            at: SimTime::from_secs(3),
            until: SimTime::from_secs(6),
            target: LinkTarget::Wifi {
                network: Some(AggregatorAddr(2)),
            },
            degraded: LinkConfig::wifi(),
        };
        assert_eq!(link.family(), FaultFamily::Link);
        assert_eq!(link.network(), Some(AggregatorAddr(2)));

        let outage = FaultEvent::AggregatorOutage {
            at: SimTime::from_secs(4),
            until: SimTime::from_secs(8),
            network: AggregatorAddr(1),
            failover: Some(AggregatorAddr(2)),
        };
        assert_eq!(outage.family(), FaultFamily::Outage);

        let byz = FaultEvent::ByzantineVoters {
            at: SimTime::from_secs(5),
            until: SimTime::from_secs(9),
            network: AggregatorAddr(1),
            voters: 2,
        };
        assert_eq!(byz.family(), FaultFamily::Byzantine);
        assert_eq!(format!("{}", byz.family()), "byzantine");

        let corruption = FaultEvent::TelegramCorruption {
            at: SimTime::from_secs(6),
            until: SimTime::from_secs(12),
            device: DeviceId(2),
            mode: CorruptionMode::BitFlip { flips: 3 },
            per_mille: 1000,
        };
        assert_eq!(corruption.family(), FaultFamily::Corruption);
        assert_eq!(corruption.device(), Some(DeviceId(2)));
        assert_eq!(corruption.network(), None);
        assert_eq!(corruption.clears_at(), Some(SimTime::from_secs(12)));
        assert_eq!(format!("{}", corruption.family()), "corruption");
        assert_eq!(
            format!("{}", CorruptionMode::BitFlip { flips: 3 }),
            "bitflip x3"
        );
    }

    #[test]
    fn record_latency_needs_injection_and_detection() {
        let mut record = FaultRecord::scheduled(0, &crash());
        assert!(!record.injected());
        assert!(!record.detected());
        assert_eq!(record.detection_latency(), None);
        record.injected_at = Some(SimTime::from_secs(10));
        record.detected_at = Some(SimTime::from_secs(25));
        assert_eq!(record.detection_latency(), Some(SimDuration::from_secs(15)));
    }
}
