//! # rtem-faults — declarative fault injection for the metering testbed
//!
//! Part of the `rtem` workspace reproducing *Real-Time Energy Monitoring in
//! IoT-enabled Mobile Devices* (DATE 2020).
//!
//! The paper's core claim is that decentralized metering stays accurate and
//! auditable under real-world degradation: tampered readings, lossy links,
//! flaky devices. This crate is the vocabulary for *injecting* exactly those
//! conditions into a simulated run, as plain schedulable data:
//!
//! * [`event`] — the seven fault families as typed [`FaultEvent`]s
//!   (sensor faults, meter tampering, link degradation bursts, device
//!   crash/restart, aggregator outage with failover, byzantine consensus
//!   voters, telegram corruption at the meter-codec boundary), plus the
//!   [`FaultRecord`] lifecycle bookkeeping and the [`DetectionSignal`]
//!   taxonomy.
//! * [`plan`] — the [`FaultPlan`] collecting events into one validated,
//!   reusable value, mirroring how `ScenarioSpec` treats topology scripts.
//!
//! The crate is deliberately *descriptive*: it knows what a fault is, not
//! how to apply one. Injection hook points live in the simulation world
//! (`rtem_core::simulation::World::schedule_fault`) and the run-level
//! resilience accounting lives in the `rtem::faults` facade module.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod plan;

pub use event::{
    CorruptionMode, DetectionSignal, FaultEvent, FaultFamily, FaultRecord, LinkTarget,
};
pub use plan::{FaultPlan, FaultPlanError};
