//! The declarative [`WorkloadModel`] DSL.
//!
//! A model is plain data — comparable, cloneable, serializable — that a
//! scenario embeds and validates up front, exactly like a
//! `FaultPlan` or a tariff. Building it (with a seed) produces the stateful
//! [`LoadProfile`] the physical layer samples.

use crate::profiles::{
    CommercialProfile, EvFleetProfile, ResidentialProfile, SolarOffsetProfile, SECONDS_PER_DAY,
};
use core::fmt;
use rtem_sensors::profile::LoadProfile;
use rtem_sim::rng::SimRng;
use serde::{Deserialize, Serialize};

/// Why a [`WorkloadModel`] failed validation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadError {
    /// A current magnitude (base load, peak amplitude, generation peak …)
    /// is negative or not finite.
    InvalidMagnitude {
        /// Which parameter was rejected.
        what: &'static str,
        /// The offending value, in mA.
        value_ma: f64,
    },
    /// A commercial model opens at or after it closes.
    InvertedBusinessHours {
        /// Declared opening time, seconds from midnight.
        open_s: u64,
        /// Declared closing time, seconds from midnight.
        close_s: u64,
    },
    /// A time of day lies beyond 24 h.
    TimePastMidnight {
        /// The offending time, seconds from midnight.
        at_s: u64,
    },
    /// An EV fleet declares zero charge points — nothing could ever charge.
    ZeroChargers,
    /// An EV fleet declares a non-positive arrival rate.
    NoArrivals {
        /// The declared sessions per day.
        sessions_per_day: f64,
    },
    /// A mix contains no component workloads.
    EmptyMix,
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::InvalidMagnitude { what, value_ma } => {
                write!(
                    f,
                    "workload {what} must be finite and non-negative, got {value_ma} mA"
                )
            }
            WorkloadError::InvertedBusinessHours { open_s, close_s } => {
                write!(
                    f,
                    "business hours open at {open_s} s but close at {close_s} s"
                )
            }
            WorkloadError::TimePastMidnight { at_s } => {
                write!(
                    f,
                    "time of day {at_s} s lies beyond 24 h ({SECONDS_PER_DAY} s)"
                )
            }
            WorkloadError::ZeroChargers => write!(f, "EV fleet declares zero chargers"),
            WorkloadError::NoArrivals { sessions_per_day } => {
                write!(
                    f,
                    "EV fleet arrival rate must be positive, got {sessions_per_day}/day"
                )
            }
            WorkloadError::EmptyMix => write!(f, "workload mix has no components"),
        }
    }
}

impl std::error::Error for WorkloadError {}

/// A composable, seed-deterministic diurnal load generator.
///
/// Each variant compiles down to a [`LoadProfile`] via
/// [`build_for_device`](WorkloadModel::build_for_device); the
/// [`Mix`](WorkloadModel::Mix) variant assigns component workloads
/// round-robin by device ordinal, turning one spec into a block of
/// distinguishable customers.
///
/// # Examples
///
/// ```
/// use rtem_workloads::WorkloadModel;
/// use rtem_sim::rng::SimRng;
/// use rtem_sim::time::SimTime;
///
/// let model = WorkloadModel::residential();
/// assert!(model.validate().is_ok());
/// let mut profile = model.build_for_device(0, SimRng::seed_from_u64(7));
/// let noon = profile.current_at(SimTime::from_secs(12 * 3600));
/// assert!(noon.value() >= 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadModel {
    /// A home: always-on base draw, morning and evening occupancy peaks,
    /// plus stochastic appliance events (kettle, washer, oven).
    Residential {
        /// Always-on draw (refrigeration, standby), mA.
        base_ma: f64,
        /// Amplitude of the morning occupancy peak, mA.
        morning_peak_ma: f64,
        /// Amplitude of the evening occupancy peak, mA.
        evening_peak_ma: f64,
        /// Expected stochastic appliance events per day.
        appliance_events_per_day: f64,
        /// Peak draw of one appliance event, mA.
        appliance_ma: f64,
    },
    /// A shop or office: business-hours plateau with opening/closing ramps
    /// and HVAC cycling, near-idle outside hours (and on weekends when
    /// `weekends_closed`).
    Commercial {
        /// Draw while closed, mA.
        closed_ma: f64,
        /// Plateau draw while open, mA.
        open_ma: f64,
        /// Opening time, seconds from midnight.
        open_s: u64,
        /// Closing time, seconds from midnight.
        close_s: u64,
        /// Whether days 5 and 6 of each 7-day week stay closed.
        weekends_closed: bool,
    },
    /// A shared charging site: vehicles arrive through the day (biased
    /// towards the evening), queue for one of `chargers` points and then run
    /// a CC/CV charge session reusing the sensor layer's
    /// [`ChargingProfile`](rtem_sensors::profile::ChargingProfile).
    EvFleet {
        /// Number of charge points; arrivals beyond them queue.
        chargers: u32,
        /// Expected charge-session arrivals per day.
        sessions_per_day: f64,
        /// Bulk (constant-current) charge draw of one session, mA.
        session_cc_ma: f64,
        /// Length of the constant-current phase, seconds.
        session_cc_s: u64,
        /// Exponential taper time constant of the CV phase, seconds.
        session_taper_s: u64,
    },
    /// Rooftop PV behind the meter: the inner workload minus a midday
    /// generation bell (scaled by per-day cloud cover), clipped at zero —
    /// the meter never observes a negative draw.
    SolarOffset {
        /// The load behind the panel.
        base: Box<WorkloadModel>,
        /// Clear-sky peak generation, mA.
        peak_generation_ma: f64,
    },
    /// Assigns component workloads round-robin by device ordinal: device
    /// `i` gets `components[i % len]`. One spec, a block of distinguishable
    /// customers.
    Mix(Vec<WorkloadModel>),
}

fn check_magnitude(what: &'static str, value_ma: f64) -> Result<(), WorkloadError> {
    if value_ma.is_finite() && value_ma >= 0.0 {
        Ok(())
    } else {
        Err(WorkloadError::InvalidMagnitude { what, value_ma })
    }
}

impl WorkloadModel {
    /// A typical home: ~60 mA base, 200/350 mA morning/evening peaks, four
    /// appliance events a day peaking around 600 mA. Sized so a handful of
    /// homes behind one aggregator stays inside the network INA219's
    /// ±3.2 A range — saturating the system-level sensor would corrupt the
    /// Fig. 5 verification, not just the bill.
    pub fn residential() -> WorkloadModel {
        WorkloadModel::Residential {
            base_ma: 60.0,
            morning_peak_ma: 200.0,
            evening_peak_ma: 350.0,
            appliance_events_per_day: 4.0,
            appliance_ma: 600.0,
        }
    }

    /// A shop: 40 mA closed, 650 mA open plateau, 08:00–18:00, closed on
    /// weekends.
    pub fn commercial() -> WorkloadModel {
        WorkloadModel::Commercial {
            closed_ma: 40.0,
            open_ma: 650.0,
            open_s: 8 * 3600,
            close_s: 18 * 3600,
            weekends_closed: true,
        }
    }

    /// A shared charging site: two charge points, six sessions a day,
    /// e-scooter-class 1.2 A bulk charges (a fully busy site peaks at
    /// 2.4 A, inside one network meter's range).
    pub fn ev_fleet() -> WorkloadModel {
        WorkloadModel::EvFleet {
            chargers: 2,
            sessions_per_day: 6.0,
            session_cc_ma: 1200.0,
            session_cc_s: 2 * 3600,
            session_taper_s: 30 * 60,
        }
    }

    /// A home with rooftop PV: [`residential`](WorkloadModel::residential)
    /// behind a 450 mA clear-sky panel.
    pub fn solar_home() -> WorkloadModel {
        WorkloadModel::SolarOffset {
            base: Box::new(WorkloadModel::residential()),
            peak_generation_ma: 450.0,
        }
    }

    /// The default city-block mix: residential, commercial, EV fleet and a
    /// solar home, assigned round-robin.
    pub fn neighborhood() -> WorkloadModel {
        WorkloadModel::Mix(vec![
            WorkloadModel::residential(),
            WorkloadModel::commercial(),
            WorkloadModel::ev_fleet(),
            WorkloadModel::solar_home(),
        ])
    }

    /// A short human-readable label, used in suite cell keys and bench
    /// snapshots.
    pub fn label(&self) -> String {
        match self {
            WorkloadModel::Residential { .. } => "residential".to_string(),
            WorkloadModel::Commercial { .. } => "commercial".to_string(),
            WorkloadModel::EvFleet { .. } => "ev-fleet".to_string(),
            WorkloadModel::SolarOffset { base, .. } => format!("solar+{}", base.label()),
            WorkloadModel::Mix(parts) => format!("mix-of-{}", parts.len()),
        }
    }

    /// Checks the model for inconsistencies, returning the first found.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        match self {
            WorkloadModel::Residential {
                base_ma,
                morning_peak_ma,
                evening_peak_ma,
                appliance_events_per_day,
                appliance_ma,
            } => {
                check_magnitude("residential base", *base_ma)?;
                check_magnitude("residential morning peak", *morning_peak_ma)?;
                check_magnitude("residential evening peak", *evening_peak_ma)?;
                check_magnitude("residential appliance peak", *appliance_ma)?;
                if !appliance_events_per_day.is_finite() || *appliance_events_per_day < 0.0 {
                    return Err(WorkloadError::InvalidMagnitude {
                        what: "residential appliance rate",
                        value_ma: *appliance_events_per_day,
                    });
                }
                Ok(())
            }
            WorkloadModel::Commercial {
                closed_ma,
                open_ma,
                open_s,
                close_s,
                ..
            } => {
                check_magnitude("commercial closed draw", *closed_ma)?;
                check_magnitude("commercial open draw", *open_ma)?;
                for &at_s in [open_s, close_s] {
                    if at_s > SECONDS_PER_DAY {
                        return Err(WorkloadError::TimePastMidnight { at_s });
                    }
                }
                if open_s >= close_s {
                    return Err(WorkloadError::InvertedBusinessHours {
                        open_s: *open_s,
                        close_s: *close_s,
                    });
                }
                Ok(())
            }
            WorkloadModel::EvFleet {
                chargers,
                sessions_per_day,
                session_cc_ma,
                ..
            } => {
                if *chargers == 0 {
                    return Err(WorkloadError::ZeroChargers);
                }
                if !sessions_per_day.is_finite() || *sessions_per_day <= 0.0 {
                    return Err(WorkloadError::NoArrivals {
                        sessions_per_day: *sessions_per_day,
                    });
                }
                check_magnitude("EV session bulk draw", *session_cc_ma)
            }
            WorkloadModel::SolarOffset {
                base,
                peak_generation_ma,
            } => {
                check_magnitude("solar peak generation", *peak_generation_ma)?;
                base.validate()
            }
            WorkloadModel::Mix(parts) => {
                if parts.is_empty() {
                    return Err(WorkloadError::EmptyMix);
                }
                parts.iter().try_for_each(WorkloadModel::validate)
            }
        }
    }

    /// Compiles the model into the stateful profile device `ordinal` draws.
    ///
    /// `ordinal` only matters for [`Mix`](WorkloadModel::Mix), which assigns
    /// components round-robin; every other variant ignores it. The returned
    /// profile's stochastic structure derives entirely from `rng`.
    pub fn build_for_device(&self, ordinal: u64, rng: SimRng) -> Box<dyn LoadProfile + Send> {
        match self {
            WorkloadModel::Residential {
                base_ma,
                morning_peak_ma,
                evening_peak_ma,
                appliance_events_per_day,
                appliance_ma,
            } => Box::new(ResidentialProfile::new(
                *base_ma,
                *morning_peak_ma,
                *evening_peak_ma,
                *appliance_events_per_day,
                *appliance_ma,
                rng,
            )),
            WorkloadModel::Commercial {
                closed_ma,
                open_ma,
                open_s,
                close_s,
                weekends_closed,
            } => Box::new(CommercialProfile::new(
                *closed_ma,
                *open_ma,
                *open_s,
                *close_s,
                *weekends_closed,
                rng,
            )),
            WorkloadModel::EvFleet {
                chargers,
                sessions_per_day,
                session_cc_ma,
                session_cc_s,
                session_taper_s,
            } => Box::new(EvFleetProfile::new(
                *chargers,
                *sessions_per_day,
                *session_cc_ma,
                *session_cc_s,
                *session_taper_s,
                rng,
            )),
            WorkloadModel::SolarOffset {
                base,
                peak_generation_ma,
            } => {
                let inner = base.build_for_device(ordinal, rng.derive(0x0501A2));
                Box::new(SolarOffsetProfile::new(
                    inner,
                    *peak_generation_ma,
                    rng.derive(0x0501A3),
                ))
            }
            WorkloadModel::Mix(parts) => {
                let pick = (ordinal as usize) % parts.len();
                parts[pick].build_for_device(ordinal, rng)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtem_sim::time::SimTime;

    #[test]
    fn ready_made_models_validate() {
        for model in [
            WorkloadModel::residential(),
            WorkloadModel::commercial(),
            WorkloadModel::ev_fleet(),
            WorkloadModel::solar_home(),
            WorkloadModel::neighborhood(),
        ] {
            assert_eq!(model.validate(), Ok(()), "{}", model.label());
        }
    }

    #[test]
    fn invalid_models_are_rejected_with_typed_errors() {
        let negative = WorkloadModel::Residential {
            base_ma: -1.0,
            morning_peak_ma: 0.0,
            evening_peak_ma: 0.0,
            appliance_events_per_day: 0.0,
            appliance_ma: 0.0,
        };
        assert!(matches!(
            negative.validate(),
            Err(WorkloadError::InvalidMagnitude { .. })
        ));
        let inverted = WorkloadModel::Commercial {
            closed_ma: 10.0,
            open_ma: 100.0,
            open_s: 18 * 3600,
            close_s: 8 * 3600,
            weekends_closed: false,
        };
        assert_eq!(
            inverted.validate(),
            Err(WorkloadError::InvertedBusinessHours {
                open_s: 18 * 3600,
                close_s: 8 * 3600
            })
        );
        let past_midnight = WorkloadModel::Commercial {
            closed_ma: 10.0,
            open_ma: 100.0,
            open_s: 8 * 3600,
            close_s: 25 * 3600,
            weekends_closed: false,
        };
        assert_eq!(
            past_midnight.validate(),
            Err(WorkloadError::TimePastMidnight { at_s: 25 * 3600 })
        );
        let no_chargers = WorkloadModel::EvFleet {
            chargers: 0,
            sessions_per_day: 4.0,
            session_cc_ma: 2000.0,
            session_cc_s: 3600,
            session_taper_s: 600,
        };
        assert_eq!(no_chargers.validate(), Err(WorkloadError::ZeroChargers));
        assert_eq!(
            WorkloadModel::Mix(Vec::new()).validate(),
            Err(WorkloadError::EmptyMix)
        );
        // Nested invalids surface through the wrapper.
        let wrapped = WorkloadModel::SolarOffset {
            base: Box::new(no_chargers),
            peak_generation_ma: 100.0,
        };
        assert_eq!(wrapped.validate(), Err(WorkloadError::ZeroChargers));
    }

    #[test]
    fn errors_render_human_readably() {
        let err = WorkloadModel::Mix(Vec::new()).validate().unwrap_err();
        assert!(err.to_string().contains("no components"));
        assert!(WorkloadError::ZeroChargers.to_string().contains("charger"));
    }

    #[test]
    fn mix_assigns_components_round_robin() {
        let mix = WorkloadModel::Mix(vec![
            WorkloadModel::residential(),
            WorkloadModel::commercial(),
        ]);
        let rng = SimRng::seed_from_u64(1);
        let a = mix.build_for_device(0, rng.derive(0));
        let b = mix.build_for_device(1, rng.derive(1));
        let c = mix.build_for_device(2, rng.derive(2));
        assert!(a.label().contains("residential"), "{}", a.label());
        assert!(b.label().contains("commercial"), "{}", b.label());
        assert!(c.label().contains("residential"), "{}", c.label());
    }

    #[test]
    fn built_profiles_are_seed_deterministic() {
        for model in [
            WorkloadModel::residential(),
            WorkloadModel::commercial(),
            WorkloadModel::ev_fleet(),
            WorkloadModel::solar_home(),
        ] {
            let mut a = model.build_for_device(0, SimRng::seed_from_u64(99));
            let mut b = model.build_for_device(0, SimRng::seed_from_u64(99));
            for hour in 0..48u64 {
                let at = SimTime::from_secs(hour * 1800);
                assert_eq!(
                    a.current_at(at),
                    b.current_at(at),
                    "{} diverged at {at}",
                    model.label()
                );
            }
        }
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(WorkloadModel::residential().label(), "residential");
        assert_eq!(WorkloadModel::solar_home().label(), "solar+residential");
        assert_eq!(WorkloadModel::neighborhood().label(), "mix-of-4");
    }
}
