//! Diurnal workload models for the metering simulation.
//!
//! The paper's testbed meters one class of load: ESP32-class boards charging
//! a battery. Real deployments meter a *neighborhood* — homes with morning
//! and evening peaks, shops with business-hours plateaus, shared EV chargers
//! serviced by an arrival process, rooftop PV pushing the midday draw towards
//! zero. This crate provides those shapes as declarative, seed-deterministic
//! [`WorkloadModel`]s that compile down to the sensor layer's
//! [`LoadProfile`](rtem_sensors::profile::LoadProfile) trait, so the
//! INA219 observation path and everything above it is untouched: a workload
//! is just another ground-truth current source.
//!
//! Determinism contract: a built profile's output is a pure function of the
//! model parameters, the seed it was built with and the sample-time sequence.
//! Per-day stochastic structure (appliance events, charge-session arrivals,
//! cloud cover) is derived from a per-day child stream of the seed, so two
//! runs with the same scenario seed replay identically.

#![forbid(unsafe_code)]

pub mod model;
pub mod profiles;

pub use model::{WorkloadError, WorkloadModel};
pub use profiles::{
    CommercialProfile, EvFleetProfile, ResidentialProfile, SolarOffsetProfile, SECONDS_PER_DAY,
};
