//! The stateful profiles [`WorkloadModel`](crate::model::WorkloadModel)
//! compiles down to.
//!
//! Each profile is an implementation of the sensor layer's
//! [`LoadProfile`] trait: a ground-truth current as a function of global
//! simulation time (interpreted as wall-clock time of day, wrapping every
//! 24 h). Smooth diurnal structure is a pure function of the time of day;
//! stochastic structure (appliance events, charge-session arrivals, cloud
//! cover) is derived lazily from a per-day child of the build seed, so the
//! output never depends on how often the profile is sampled.

use rtem_sensors::energy::Milliamps;
use rtem_sensors::profile::{ChargingProfile, LoadProfile};
use rtem_sim::rng::SimRng;
use rtem_sim::time::{SimDuration, SimTime};

/// Seconds in one simulated day.
pub const SECONDS_PER_DAY: u64 = 86_400;

/// Smooth unit bump centred at `centre_s` with width `sigma_s`, evaluated at
/// second-of-day `t_s` (both tails wrap across midnight).
fn bump(t_s: f64, centre_s: f64, sigma_s: f64) -> f64 {
    let day = SECONDS_PER_DAY as f64;
    // Evaluate against the closest image of the centre so a peak near
    // midnight is continuous across the wrap.
    let mut d = (t_s - centre_s).abs();
    d = d.min(day - d);
    (-0.5 * (d / sigma_s).powi(2)).exp()
}

fn day_of(now: SimTime) -> u64 {
    now.as_micros() / (SECONDS_PER_DAY * 1_000_000)
}

fn second_of_day(now: SimTime) -> f64 {
    (now.as_micros() % (SECONDS_PER_DAY * 1_000_000)) as f64 / 1e6
}

/// One stochastic appliance event inside a residential day.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ApplianceEvent {
    start_s: f64,
    end_s: f64,
    amplitude_ma: f64,
}

/// A home: always-on base draw, morning/evening occupancy peaks and
/// stochastic appliance events.
#[derive(Debug, Clone)]
pub struct ResidentialProfile {
    base_ma: f64,
    morning_peak_ma: f64,
    evening_peak_ma: f64,
    events_per_day: f64,
    appliance_ma: f64,
    /// Root of the per-day event streams (never advanced, only derived).
    day_seed: SimRng,
    /// Call-sequence jitter, like every other profile's ripple.
    jitter: SimRng,
    cached_day: Option<(u64, Vec<ApplianceEvent>)>,
}

impl ResidentialProfile {
    /// Creates a residential profile; see
    /// [`WorkloadModel::Residential`](crate::model::WorkloadModel::Residential)
    /// for the parameter meanings.
    pub fn new(
        base_ma: f64,
        morning_peak_ma: f64,
        evening_peak_ma: f64,
        events_per_day: f64,
        appliance_ma: f64,
        rng: SimRng,
    ) -> Self {
        ResidentialProfile {
            base_ma,
            morning_peak_ma,
            evening_peak_ma,
            events_per_day,
            appliance_ma,
            day_seed: rng.derive(0xD1),
            jitter: rng.derive(0xD2),
            cached_day: None,
        }
    }

    fn events_for(&mut self, day: u64) -> &[ApplianceEvent] {
        if self.cached_day.as_ref().map(|(d, _)| *d) != Some(day) {
            let mut rng = self.day_seed.derive(day);
            let mut events = Vec::new();
            if self.events_per_day > 0.0 {
                // Poisson process over the day: exponential inter-arrivals.
                let mean_gap_s = SECONDS_PER_DAY as f64 / self.events_per_day;
                let mut t = rng.exponential(mean_gap_s);
                while t < SECONDS_PER_DAY as f64 {
                    let duration_s = rng.uniform(20.0 * 60.0, 90.0 * 60.0);
                    let amplitude_ma = self.appliance_ma * rng.uniform(0.4, 1.0);
                    events.push(ApplianceEvent {
                        start_s: t,
                        end_s: t + duration_s,
                        amplitude_ma,
                    });
                    t += rng.exponential(mean_gap_s);
                }
            }
            self.cached_day = Some((day, events));
        }
        &self.cached_day.as_ref().expect("cached above").1
    }
}

impl LoadProfile for ResidentialProfile {
    fn current_at(&mut self, now: SimTime) -> Milliamps {
        let t = second_of_day(now);
        let mut level = self.base_ma
            + self.morning_peak_ma * bump(t, 7.5 * 3600.0, 1.3 * 3600.0)
            + self.evening_peak_ma * bump(t, 19.5 * 3600.0, 2.2 * 3600.0);
        for event in self.events_for(day_of(now)) {
            if t >= event.start_s && t < event.end_s {
                level += event.amplitude_ma;
            }
        }
        let noise = self.jitter.normal(0.0, 3.0);
        Milliamps::new((level + noise).max(0.0))
    }

    fn label(&self) -> String {
        format!("residential {:.0} mA base", self.base_ma)
    }
}

/// A shop or office: business-hours plateau, ramps and HVAC cycling.
#[derive(Debug, Clone)]
pub struct CommercialProfile {
    closed_ma: f64,
    open_ma: f64,
    open_s: u64,
    close_s: u64,
    weekends_closed: bool,
    jitter: SimRng,
}

/// Length of the opening/closing ramps, seconds.
const RAMP_S: f64 = 1800.0;

impl CommercialProfile {
    /// Creates a commercial profile; see
    /// [`WorkloadModel::Commercial`](crate::model::WorkloadModel::Commercial)
    /// for the parameter meanings.
    pub fn new(
        closed_ma: f64,
        open_ma: f64,
        open_s: u64,
        close_s: u64,
        weekends_closed: bool,
        rng: SimRng,
    ) -> Self {
        CommercialProfile {
            closed_ma,
            open_ma,
            open_s,
            close_s,
            weekends_closed,
            jitter: rng.derive(0xC1),
        }
    }

    /// Occupancy fraction (0 closed, 1 open plateau) at second-of-day `t`.
    fn occupancy(&self, t: f64) -> f64 {
        let open = self.open_s as f64;
        let close = self.close_s as f64;
        if t < open || t >= close {
            0.0
        } else {
            // Ramp up after opening, ramp down into closing.
            let up = ((t - open) / RAMP_S).min(1.0);
            let down = ((close - t) / RAMP_S).min(1.0);
            up.min(down)
        }
    }
}

impl LoadProfile for CommercialProfile {
    fn current_at(&mut self, now: SimTime) -> Milliamps {
        let day = day_of(now);
        let weekend = self.weekends_closed && day % 7 >= 5;
        let t = second_of_day(now);
        let occupancy = if weekend { 0.0 } else { self.occupancy(t) };
        // HVAC duty cycling while occupied: a 30-minute sinusoid.
        let hvac = 0.08 * self.open_ma * (t / 1800.0 * core::f64::consts::TAU).sin() * occupancy;
        let level = self.closed_ma + (self.open_ma - self.closed_ma) * occupancy + hvac;
        let noise = self.jitter.normal(0.0, 2.0);
        Milliamps::new((level + noise).max(0.0))
    }

    fn label(&self) -> String {
        format!(
            "commercial {:.0} mA {:02}:00-{:02}:00",
            self.open_ma,
            self.open_s / 3600,
            self.close_s / 3600
        )
    }
}

/// One queued charge session at the shared site.
#[derive(Debug, Clone)]
struct Session {
    start: SimTime,
    end: SimTime,
    charge: ChargingProfile,
}

/// A shared EV charging site: an arrival process queued onto a fixed number
/// of charge points, each session a CC/CV [`ChargingProfile`].
#[derive(Debug, Clone)]
pub struct EvFleetProfile {
    chargers: u32,
    sessions_per_day: f64,
    session_cc_ma: f64,
    session_cc: SimDuration,
    session_taper: SimDuration,
    day_seed: SimRng,
    /// When each charge point next becomes free, in microseconds.
    charger_free_us: Vec<u64>,
    sessions: Vec<Session>,
    /// Highest day whose arrivals have been generated (`None` before any).
    generated_through: Option<u64>,
}

impl EvFleetProfile {
    /// Creates an EV-fleet profile; see
    /// [`WorkloadModel::EvFleet`](crate::model::WorkloadModel::EvFleet) for
    /// the parameter meanings.
    pub fn new(
        chargers: u32,
        sessions_per_day: f64,
        session_cc_ma: f64,
        session_cc_s: u64,
        session_taper_s: u64,
        rng: SimRng,
    ) -> Self {
        EvFleetProfile {
            chargers,
            sessions_per_day,
            session_cc_ma,
            session_cc: SimDuration::from_secs(session_cc_s),
            session_taper: SimDuration::from_secs(session_taper_s),
            day_seed: rng.derive(0xE1),
            charger_free_us: vec![0; chargers as usize],
            sessions: Vec::new(),
            generated_through: None,
        }
    }

    /// Total footprint of one session on its charge point: the CC phase
    /// plus three taper time constants (past which the CC/CV current has
    /// decayed below 5 % of bulk).
    fn session_len(&self) -> SimDuration {
        self.session_cc + SimDuration::from_micros(3 * self.session_taper.as_micros())
    }

    fn generate_day(&mut self, day: u64) {
        let mut rng = self.day_seed.derive(day);
        // Arrival count: Poisson via exponential inter-arrival times.
        let mean_gap_s = SECONDS_PER_DAY as f64 / self.sessions_per_day;
        let mut arrivals_s: Vec<f64> = Vec::new();
        let mut t = rng.exponential(mean_gap_s);
        while t < SECONDS_PER_DAY as f64 {
            arrivals_s.push(t);
            t += rng.exponential(mean_gap_s);
        }
        // Re-draw each arrival's time of day with an evening bias (vehicles
        // come back from service), keeping the count from the process above.
        for arrival in &mut arrivals_s {
            *arrival = if rng.chance(0.65) {
                rng.uniform(17.0 * 3600.0, 23.0 * 3600.0)
            } else {
                rng.uniform(7.0 * 3600.0, 17.0 * 3600.0)
            };
        }
        arrivals_s.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));

        let session_len_us = self.session_len().as_micros();
        for (i, arrival_s) in arrivals_s.iter().enumerate() {
            let arrival_us = day * SECONDS_PER_DAY * 1_000_000 + (*arrival_s * 1e6) as u64;
            // First charge point to free up takes the vehicle; a busy site
            // queues it until then.
            let (slot, free_at) = self
                .charger_free_us
                .iter()
                .copied()
                .enumerate()
                .min_by_key(|&(_, free)| free)
                .expect("at least one charger");
            let start_us = arrival_us.max(free_at);
            self.charger_free_us[slot] = start_us + session_len_us;
            self.sessions.push(Session {
                start: SimTime::from_micros(start_us),
                end: SimTime::from_micros(start_us + session_len_us),
                charge: ChargingProfile::new(
                    self.session_cc_ma,
                    self.session_cc,
                    self.session_taper,
                    0.0,
                    rng.derive(0xEE00 + i as u64),
                ),
            });
        }
    }

    fn ensure_generated(&mut self, day: u64) {
        let from = match self.generated_through {
            Some(done) if done >= day => return,
            Some(done) => done + 1,
            None => 0,
        };
        for d in from..=day {
            self.generate_day(d);
        }
        self.generated_through = Some(day);
    }
}

impl LoadProfile for EvFleetProfile {
    fn current_at(&mut self, now: SimTime) -> Milliamps {
        self.ensure_generated(day_of(now));
        // Retire sessions that ended over an hour ago; the grace period
        // keeps slightly out-of-order sampling (plug-in replays) exact.
        self.sessions
            .retain(|s| s.end + SimDuration::from_secs(3600) > now);
        let mut total = 0.0;
        for session in &mut self.sessions {
            if session.start <= now && now < session.end {
                let local = SimTime::from_micros(now.as_micros() - session.start.as_micros());
                total += session.charge.current_at(local).value();
            }
        }
        Milliamps::new(total.max(0.0))
    }

    fn label(&self) -> String {
        format!("ev fleet {}x{:.0} mA", self.chargers, self.session_cc_ma)
    }
}

/// Number of cloud-cover slots per day (15-minute resolution).
const CLOUD_SLOTS: usize = 96;

/// Rooftop PV behind the meter: the inner load minus a midday generation
/// bell scaled by per-day cloud cover, clipped at zero at the meter.
pub struct SolarOffsetProfile {
    inner: Box<dyn LoadProfile + Send>,
    peak_generation_ma: f64,
    day_seed: SimRng,
    cached_day: Option<(u64, [f64; CLOUD_SLOTS])>,
}

impl core::fmt::Debug for SolarOffsetProfile {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SolarOffsetProfile")
            .field("peak_generation_ma", &self.peak_generation_ma)
            .finish()
    }
}

impl SolarOffsetProfile {
    /// Wraps `inner` behind a panel with the given clear-sky peak.
    pub fn new(inner: Box<dyn LoadProfile + Send>, peak_generation_ma: f64, rng: SimRng) -> Self {
        SolarOffsetProfile {
            inner,
            peak_generation_ma,
            day_seed: rng.derive(0x0501),
            cached_day: None,
        }
    }

    fn cloud_factors(&mut self, day: u64) -> &[f64; CLOUD_SLOTS] {
        if self.cached_day.as_ref().map(|(d, _)| *d) != Some(day) {
            let mut rng = self.day_seed.derive(day);
            // One overcast factor for the day, plus per-15-minute passing
            // clouds on top of it.
            let day_factor = rng.uniform(0.35, 1.0);
            let mut slots = [0.0; CLOUD_SLOTS];
            for slot in &mut slots {
                *slot = day_factor * rng.uniform(0.7, 1.0);
            }
            self.cached_day = Some((day, slots));
        }
        &self.cached_day.as_ref().expect("cached above").1
    }

    /// Generation at `now`, before subtraction (mA).
    pub fn generation_at(&mut self, now: SimTime) -> Milliamps {
        let t = second_of_day(now);
        let bell = bump(t, 13.0 * 3600.0, 3.5 * 3600.0);
        let slot = ((t / 900.0) as usize).min(CLOUD_SLOTS - 1);
        let factor = self.cloud_factors(day_of(now))[slot];
        Milliamps::new(self.peak_generation_ma * bell * factor)
    }
}

impl LoadProfile for SolarOffsetProfile {
    fn current_at(&mut self, now: SimTime) -> Milliamps {
        let load = self.inner.current_at(now);
        let generation = self.generation_at(now);
        // The meter sits downstream of the panel: net export reads as zero,
        // never as negative consumption.
        Milliamps::new((load.value() - generation.value()).max(0.0))
    }

    fn label(&self) -> String {
        format!(
            "{} - solar {:.0} mA",
            self.inner.label(),
            self.peak_generation_ma
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(2024)
    }

    /// Mean current over one simulated hour, sampled every 10 s.
    fn hour_mean(profile: &mut impl LoadProfile, day: u64, hour: u64) -> f64 {
        let start = day * SECONDS_PER_DAY + hour * 3600;
        let n = 360;
        (0..n)
            .map(|i| {
                profile
                    .current_at(SimTime::from_secs(start + i * 10))
                    .value()
            })
            .sum::<f64>()
            / n as f64
    }

    #[test]
    fn residential_peaks_morning_and_evening() {
        let mut p = ResidentialProfile::new(80.0, 250.0, 450.0, 0.0, 0.0, rng());
        let night = hour_mean(&mut p, 0, 3);
        let morning = hour_mean(&mut p, 0, 7);
        let evening = hour_mean(&mut p, 0, 19);
        assert!(morning > night + 100.0, "morning {morning} night {night}");
        assert!(evening > morning, "evening {evening} morning {morning}");
    }

    #[test]
    fn residential_appliance_events_add_load() {
        let mut quiet = ResidentialProfile::new(80.0, 0.0, 0.0, 0.0, 0.0, rng());
        let mut busy = ResidentialProfile::new(80.0, 0.0, 0.0, 8.0, 900.0, rng());
        let quiet_day: f64 = (0..24).map(|h| hour_mean(&mut quiet, 1, h)).sum();
        let busy_day: f64 = (0..24).map(|h| hour_mean(&mut busy, 1, h)).sum();
        assert!(
            busy_day > quiet_day + 100.0,
            "busy {busy_day} quiet {quiet_day}"
        );
    }

    #[test]
    fn residential_events_replay_identically_per_day() {
        let mut a = ResidentialProfile::new(80.0, 250.0, 450.0, 5.0, 900.0, rng());
        let mut b = ResidentialProfile::new(80.0, 250.0, 450.0, 5.0, 900.0, rng());
        // Sample b on a coarser grid first: cached-day regeneration must not
        // depend on the sampling pattern.
        let _ = b.current_at(SimTime::from_secs(5 * SECONDS_PER_DAY));
        for s in (0..SECONDS_PER_DAY).step_by(997) {
            let at = SimTime::from_secs(2 * SECONDS_PER_DAY + s);
            // Jitter advances per call, so compare the deterministic part by
            // zeroing it out via fresh clones sampled identically.
            let mut a2 = a.clone();
            let mut b2 = b.clone();
            a2.jitter = SimRng::seed_from_u64(0);
            b2.jitter = SimRng::seed_from_u64(0);
            assert_eq!(a2.current_at(at), b2.current_at(at), "diverged at {at}");
        }
        let _ = (a.current_at(SimTime::ZERO), b.current_at(SimTime::ZERO));
    }

    #[test]
    fn commercial_plateau_inside_business_hours() {
        let mut p = CommercialProfile::new(40.0, 650.0, 8 * 3600, 18 * 3600, false, rng());
        let night = hour_mean(&mut p, 0, 2);
        let noon = hour_mean(&mut p, 0, 12);
        assert!(night < 60.0, "night {night}");
        assert!(noon > 500.0, "noon {noon}");
    }

    #[test]
    fn commercial_weekend_stays_closed() {
        let mut p = CommercialProfile::new(40.0, 650.0, 8 * 3600, 18 * 3600, true, rng());
        let weekday_noon = hour_mean(&mut p, 1, 12);
        let saturday_noon = hour_mean(&mut p, 5, 12);
        assert!(weekday_noon > 500.0, "weekday {weekday_noon}");
        assert!(saturday_noon < 60.0, "saturday {saturday_noon}");
    }

    #[test]
    fn ev_fleet_draws_in_bulk_charge_quanta() {
        let mut p = EvFleetProfile::new(2, 8.0, 2000.0, 2 * 3600, 30 * 60, rng());
        // Over a week of evenings the site must see substantial draw, and
        // the instantaneous draw can never exceed every charger at bulk
        // (plus ripple).
        let mut peak: f64 = 0.0;
        let mut total = 0.0;
        let mut n = 0u64;
        for s in (0..7 * SECONDS_PER_DAY).step_by(300) {
            let i = p.current_at(SimTime::from_secs(s)).value();
            peak = peak.max(i);
            total += i;
            n += 1;
        }
        let mean = total / n as f64;
        assert!(peak > 1500.0, "no session ever ran (peak {peak})");
        assert!(
            peak < 2.0 * 2000.0 * 1.1,
            "more sessions than chargers (peak {peak})"
        );
        assert!(mean > 50.0, "mean {mean}");
    }

    #[test]
    fn ev_fleet_queues_beyond_charger_count() {
        // One charger, many arrivals: the queue must serialize sessions, so
        // the draw never exceeds one bulk charge (plus ripple).
        let mut p = EvFleetProfile::new(1, 12.0, 2000.0, 3600, 600, rng());
        for s in (0..3 * SECONDS_PER_DAY).step_by(120) {
            let i = p.current_at(SimTime::from_secs(s)).value();
            assert!(
                i < 2000.0 * 1.15,
                "queued sessions overlapped: {i} mA at {s} s"
            );
        }
    }

    #[test]
    fn solar_offsets_midday_and_clips_at_zero() {
        let base = Box::new(CommercialProfile::new(
            30.0,
            30.0,
            1,
            2,
            false,
            rng().derive(1),
        ));
        // A 30 mA flat load behind an 800 mA panel: midday net must clip at
        // zero rather than export.
        let mut p = SolarOffsetProfile::new(base, 800.0, rng());
        let mut midday_min: f64 = f64::INFINITY;
        for s in (11 * 3600..15 * 3600).step_by(60) {
            let i = p.current_at(SimTime::from_secs(s)).value();
            assert!(i >= 0.0);
            midday_min = midday_min.min(i);
        }
        let night = p.current_at(SimTime::from_secs(2 * 3600)).value();
        assert_eq!(midday_min, 0.0, "panel never covered the base load");
        assert!(night > 20.0, "night load {night} must be unaffected");
    }

    #[test]
    fn solar_generation_is_zero_at_night() {
        let base = Box::new(ResidentialProfile::new(80.0, 0.0, 0.0, 0.0, 0.0, rng()));
        let mut p = SolarOffsetProfile::new(base, 600.0, rng().derive(9));
        assert!(p.generation_at(SimTime::from_secs(3600)).value() < 10.0);
        assert!(p.generation_at(SimTime::from_secs(13 * 3600)).value() > 50.0);
    }

    #[test]
    fn labels_are_descriptive() {
        assert!(ResidentialProfile::new(80.0, 1.0, 1.0, 0.0, 0.0, rng())
            .label()
            .contains("residential"));
        assert!(
            CommercialProfile::new(40.0, 650.0, 8 * 3600, 18 * 3600, true, rng())
                .label()
                .contains("08:00-18:00")
        );
        assert!(EvFleetProfile::new(3, 6.0, 2000.0, 3600, 600, rng())
            .label()
            .contains("ev fleet 3x"));
    }
}
