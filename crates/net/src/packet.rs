//! Wire format of the metering protocol.
//!
//! The paper transports consumption reports over MQTT; the payload layout is
//! not specified, so this module defines a compact binary encoding used by
//! the simulated broker and by the blockchain layer when hashing records.
//! The encoding is deliberately simple (fixed-width little-endian fields, a
//! one-byte type tag, length-prefixed variable sections) so it can be parsed
//! by a microcontroller-class device.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Globally unique identifier of a device (the "ID" in Fig. 3).
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct DeviceId(pub u64);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev-{:04}", self.0)
    }
}

/// Network address of an aggregator (the "Master/Temp Addr" in Fig. 3).
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct AggregatorAddr(pub u32);

impl fmt::Display for AggregatorAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "agg-{:03}", self.0)
    }
}

/// Error returned when a packet cannot be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the fixed header was complete.
    Truncated {
        /// How many bytes were needed.
        needed: usize,
        /// How many bytes were available.
        available: usize,
    },
    /// The type tag byte does not correspond to a known packet kind.
    UnknownTag(u8),
    /// A length prefix points past the end of the buffer.
    BadLength {
        /// Declared length.
        declared: usize,
        /// Bytes remaining in the buffer.
        remaining: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { needed, available } => {
                write!(
                    f,
                    "packet truncated: needed {needed} bytes, had {available}"
                )
            }
            DecodeError::UnknownTag(tag) => write!(f, "unknown packet tag {tag:#04x}"),
            DecodeError::BadLength {
                declared,
                remaining,
            } => write!(
                f,
                "bad length prefix: declared {declared}, only {remaining} bytes remain"
            ),
        }
    }
}

impl Error for DecodeError {}

/// One energy measurement record as carried on the wire and stored in the
/// ledger: who consumed, how much, and over which interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasurementRecord {
    /// Reporting device.
    pub device: DeviceId,
    /// Sequence number assigned by the device (monotonic per device).
    pub sequence: u64,
    /// Start of the measurement interval, microseconds of device-local time.
    pub interval_start_us: u64,
    /// End of the measurement interval, microseconds of device-local time.
    pub interval_end_us: u64,
    /// Average measured current over the interval, in microamps (integer so
    /// the wire format and hashes are exact).
    pub mean_current_ua: u64,
    /// Accumulated charge over the interval, in microamp-seconds.
    pub charge_uas: u64,
    /// `true` if this record was buffered in local storage and is being
    /// retransmitted after a connectivity gap (Fig. 6 backfill).
    pub backfilled: bool,
}

impl MeasurementRecord {
    /// Length of the encoded record in bytes.
    pub const ENCODED_LEN: usize = 8 + 8 + 8 + 8 + 8 + 8 + 1;

    /// Mean current in milliamps.
    pub fn mean_current_ma(&self) -> f64 {
        self.mean_current_ua as f64 / 1000.0
    }

    /// Accumulated charge in milliamp-seconds.
    pub fn charge_mas(&self) -> f64 {
        self.charge_uas as f64 / 1000.0
    }

    /// Duration of the measurement interval in seconds.
    pub fn interval_secs(&self) -> f64 {
        (self.interval_end_us.saturating_sub(self.interval_start_us)) as f64 / 1e6
    }

    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.device.0);
        buf.put_u64_le(self.sequence);
        buf.put_u64_le(self.interval_start_us);
        buf.put_u64_le(self.interval_end_us);
        buf.put_u64_le(self.mean_current_ua);
        buf.put_u64_le(self.charge_uas);
        buf.put_u8(u8::from(self.backfilled));
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self, DecodeError> {
        if buf.remaining() < Self::ENCODED_LEN {
            return Err(DecodeError::Truncated {
                needed: Self::ENCODED_LEN,
                available: buf.remaining(),
            });
        }
        Ok(MeasurementRecord {
            device: DeviceId(buf.get_u64_le()),
            sequence: buf.get_u64_le(),
            interval_start_us: buf.get_u64_le(),
            interval_end_us: buf.get_u64_le(),
            mean_current_ua: buf.get_u64_le(),
            charge_uas: buf.get_u64_le(),
            backfilled: buf.get_u8() != 0,
        })
    }

    /// Canonical byte representation used both on the wire and as the ledger
    /// hashing pre-image, so a record cannot be altered between transport and
    /// storage without changing its hash.
    pub fn canonical_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(Self::ENCODED_LEN);
        self.encode_into(&mut buf);
        buf.freeze()
    }
}

/// Protocol messages exchanged between devices and aggregators (Fig. 3) plus
/// the aggregator-to-aggregator backhaul messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Packet {
    /// Device → aggregator: membership registration request. `master` is
    /// `None` for a first (home) registration and carries the home address
    /// when requesting a temporary membership in a foreign network.
    RegistrationRequest {
        /// Requesting device.
        device: DeviceId,
        /// Home (master) aggregator address, if the device already has one.
        master: Option<AggregatorAddr>,
    },
    /// Aggregator → device: registration accepted, with the address the
    /// device must report to and the reporting slot it was assigned.
    RegistrationAccept {
        /// Accepted device.
        device: DeviceId,
        /// Address of the accepting aggregator.
        address: AggregatorAddr,
        /// Whether the membership is the device's master or temporary one.
        membership: MembershipKind,
        /// TDMA slot index assigned for reporting.
        slot: u16,
    },
    /// Aggregator → device: registration refused (e.g. no free slots, or
    /// master verification failed).
    RegistrationReject {
        /// Rejected device.
        device: DeviceId,
        /// Reason for the rejection.
        reason: RejectReason,
    },
    /// Device → aggregator: one or more measurement records (the first entry
    /// is the live measurement; the rest are backfilled from local storage).
    ConsumptionReport {
        /// Reporting device.
        device: DeviceId,
        /// Master address the device believes it is billed through.
        master: Option<AggregatorAddr>,
        /// Measurement records, oldest first.
        records: Vec<MeasurementRecord>,
    },
    /// Aggregator → device: positive acknowledgment of a report.
    Ack {
        /// Device whose report is acknowledged.
        device: DeviceId,
        /// Sequence number of the newest record covered by this ack.
        through_sequence: u64,
    },
    /// Aggregator → device: negative acknowledgment — the device is not a
    /// member of this aggregator's network (triggers re-registration).
    Nack {
        /// Device whose report is refused.
        device: DeviceId,
    },
    /// Backhaul, foreign → home aggregator: verify that `device` claims
    /// `master` as its home network.
    MembershipVerifyRequest {
        /// Device being verified.
        device: DeviceId,
        /// Claimed home aggregator.
        master: AggregatorAddr,
        /// Aggregator asking for verification.
        requester: AggregatorAddr,
    },
    /// Backhaul, home → foreign aggregator: verification verdict.
    MembershipVerifyResponse {
        /// Device that was verified.
        device: DeviceId,
        /// Whether the home aggregator vouches for the device.
        accepted: bool,
    },
    /// Backhaul, foreign → home aggregator: consumption collected on behalf
    /// of the home network (the "cost center" forwarding of Fig. 3).
    ForwardedConsumption {
        /// Device the records belong to.
        device: DeviceId,
        /// Aggregator that collected the records.
        collector: AggregatorAddr,
        /// Records collected in the foreign network.
        records: Vec<MeasurementRecord>,
    },
    /// Backhaul: home aggregator tells a foreign aggregator that the device's
    /// membership moved (sequence 3 of Fig. 3, transfer of ownership).
    TransferMembership {
        /// Device whose ownership moves.
        device: DeviceId,
        /// The new master address.
        new_master: AggregatorAddr,
    },
    /// Home network → aggregator: remove the device entirely
    /// (loss / reset / transfer of ownership).
    RemoveDevice {
        /// Device to remove.
        device: DeviceId,
    },
    /// Device → aggregator: a consumption report encoded as a real
    /// meter-protocol telegram (see the `rtem-codecs` crate). The envelope
    /// carries the raw telegram bytes plus the codec discriminant so the
    /// aggregator knows which parser to apply; the device id is repeated
    /// here for routing and diagnostics even when the telegram body is
    /// corrupted beyond parsing.
    Telegram {
        /// Reporting device.
        device: DeviceId,
        /// Codec discriminant (`rtem_codecs::MeterKind::code`).
        codec: u8,
        /// Raw telegram bytes as produced by the device's meter codec.
        /// Shared ([`Bytes`]) so the world's wire log and the in-flight
        /// packet reference one allocation instead of cloning per delivery.
        payload: Bytes,
    },
}

/// Whether a membership is the device's permanent (master) one or a
/// temporary membership created in a foreign network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MembershipKind {
    /// Permanent home-network membership.
    Master,
    /// Temporary membership in a foreign network, billed back to the master.
    Temporary,
}

/// Why an aggregator rejected a registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RejectReason {
    /// All TDMA reporting slots are occupied.
    NoFreeSlots,
    /// The claimed master aggregator did not vouch for the device.
    MasterVerificationFailed,
    /// The device is blocked (e.g. reported lost by its owner).
    Blocked,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::NoFreeSlots => write!(f, "no free reporting slots"),
            RejectReason::MasterVerificationFailed => write!(f, "master verification failed"),
            RejectReason::Blocked => write!(f, "device is blocked"),
        }
    }
}

const TAG_REG_REQUEST: u8 = 0x01;
const TAG_REG_ACCEPT: u8 = 0x02;
const TAG_REG_REJECT: u8 = 0x03;
const TAG_REPORT: u8 = 0x04;
const TAG_ACK: u8 = 0x05;
const TAG_NACK: u8 = 0x06;
const TAG_VERIFY_REQ: u8 = 0x07;
const TAG_VERIFY_RESP: u8 = 0x08;
const TAG_FORWARDED: u8 = 0x09;
const TAG_TRANSFER: u8 = 0x0A;
const TAG_REMOVE: u8 = 0x0B;
const TAG_TELEGRAM: u8 = 0x0C;

const NO_ADDR: u32 = u32::MAX;

fn put_opt_addr(buf: &mut BytesMut, addr: Option<AggregatorAddr>) {
    buf.put_u32_le(addr.map_or(NO_ADDR, |a| a.0));
}

fn get_opt_addr(buf: &mut Bytes) -> Option<AggregatorAddr> {
    let raw = buf.get_u32_le();
    if raw == NO_ADDR {
        None
    } else {
        Some(AggregatorAddr(raw))
    }
}

fn put_records(buf: &mut BytesMut, records: &[MeasurementRecord]) {
    buf.put_u16_le(records.len() as u16);
    for r in records {
        r.encode_into(buf);
    }
}

fn get_records(buf: &mut Bytes) -> Result<Vec<MeasurementRecord>, DecodeError> {
    if buf.remaining() < 2 {
        return Err(DecodeError::Truncated {
            needed: 2,
            available: buf.remaining(),
        });
    }
    let count = buf.get_u16_le() as usize;
    let needed = count * MeasurementRecord::ENCODED_LEN;
    if buf.remaining() < needed {
        return Err(DecodeError::BadLength {
            declared: needed,
            remaining: buf.remaining(),
        });
    }
    (0..count)
        .map(|_| MeasurementRecord::decode_from(buf))
        .collect()
}

impl Packet {
    /// Encodes the packet into its wire representation.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64);
        match self {
            Packet::RegistrationRequest { device, master } => {
                buf.put_u8(TAG_REG_REQUEST);
                buf.put_u64_le(device.0);
                put_opt_addr(&mut buf, *master);
            }
            Packet::RegistrationAccept {
                device,
                address,
                membership,
                slot,
            } => {
                buf.put_u8(TAG_REG_ACCEPT);
                buf.put_u64_le(device.0);
                buf.put_u32_le(address.0);
                buf.put_u8(match membership {
                    MembershipKind::Master => 0,
                    MembershipKind::Temporary => 1,
                });
                buf.put_u16_le(*slot);
            }
            Packet::RegistrationReject { device, reason } => {
                buf.put_u8(TAG_REG_REJECT);
                buf.put_u64_le(device.0);
                buf.put_u8(match reason {
                    RejectReason::NoFreeSlots => 0,
                    RejectReason::MasterVerificationFailed => 1,
                    RejectReason::Blocked => 2,
                });
            }
            Packet::ConsumptionReport {
                device,
                master,
                records,
            } => {
                buf.put_u8(TAG_REPORT);
                buf.put_u64_le(device.0);
                put_opt_addr(&mut buf, *master);
                put_records(&mut buf, records);
            }
            Packet::Ack {
                device,
                through_sequence,
            } => {
                buf.put_u8(TAG_ACK);
                buf.put_u64_le(device.0);
                buf.put_u64_le(*through_sequence);
            }
            Packet::Nack { device } => {
                buf.put_u8(TAG_NACK);
                buf.put_u64_le(device.0);
            }
            Packet::MembershipVerifyRequest {
                device,
                master,
                requester,
            } => {
                buf.put_u8(TAG_VERIFY_REQ);
                buf.put_u64_le(device.0);
                buf.put_u32_le(master.0);
                buf.put_u32_le(requester.0);
            }
            Packet::MembershipVerifyResponse { device, accepted } => {
                buf.put_u8(TAG_VERIFY_RESP);
                buf.put_u64_le(device.0);
                buf.put_u8(u8::from(*accepted));
            }
            Packet::ForwardedConsumption {
                device,
                collector,
                records,
            } => {
                buf.put_u8(TAG_FORWARDED);
                buf.put_u64_le(device.0);
                buf.put_u32_le(collector.0);
                put_records(&mut buf, records);
            }
            Packet::TransferMembership { device, new_master } => {
                buf.put_u8(TAG_TRANSFER);
                buf.put_u64_le(device.0);
                buf.put_u32_le(new_master.0);
            }
            Packet::RemoveDevice { device } => {
                buf.put_u8(TAG_REMOVE);
                buf.put_u64_le(device.0);
            }
            Packet::Telegram {
                device,
                codec,
                payload,
            } => {
                buf.put_u8(TAG_TELEGRAM);
                buf.put_u64_le(device.0);
                buf.put_u8(*codec);
                buf.put_u32_le(payload.len() as u32);
                buf.put_slice(payload);
            }
        }
        buf.freeze()
    }

    /// Decodes a packet from its wire representation.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the buffer is truncated, carries an
    /// unknown tag, or declares inconsistent lengths.
    pub fn decode(bytes: &Bytes) -> Result<Packet, DecodeError> {
        let mut buf = bytes.clone();
        if buf.remaining() < 1 {
            return Err(DecodeError::Truncated {
                needed: 1,
                available: 0,
            });
        }
        let tag = buf.get_u8();
        let need = |n: usize, buf: &Bytes| -> Result<(), DecodeError> {
            if buf.remaining() < n {
                Err(DecodeError::Truncated {
                    needed: n,
                    available: buf.remaining(),
                })
            } else {
                Ok(())
            }
        };
        match tag {
            TAG_REG_REQUEST => {
                need(12, &buf)?;
                Ok(Packet::RegistrationRequest {
                    device: DeviceId(buf.get_u64_le()),
                    master: get_opt_addr(&mut buf),
                })
            }
            TAG_REG_ACCEPT => {
                need(15, &buf)?;
                Ok(Packet::RegistrationAccept {
                    device: DeviceId(buf.get_u64_le()),
                    address: AggregatorAddr(buf.get_u32_le()),
                    membership: if buf.get_u8() == 0 {
                        MembershipKind::Master
                    } else {
                        MembershipKind::Temporary
                    },
                    slot: buf.get_u16_le(),
                })
            }
            TAG_REG_REJECT => {
                need(9, &buf)?;
                let device = DeviceId(buf.get_u64_le());
                let reason = match buf.get_u8() {
                    0 => RejectReason::NoFreeSlots,
                    1 => RejectReason::MasterVerificationFailed,
                    _ => RejectReason::Blocked,
                };
                Ok(Packet::RegistrationReject { device, reason })
            }
            TAG_REPORT => {
                need(12, &buf)?;
                let device = DeviceId(buf.get_u64_le());
                let master = get_opt_addr(&mut buf);
                let records = get_records(&mut buf)?;
                Ok(Packet::ConsumptionReport {
                    device,
                    master,
                    records,
                })
            }
            TAG_ACK => {
                need(16, &buf)?;
                Ok(Packet::Ack {
                    device: DeviceId(buf.get_u64_le()),
                    through_sequence: buf.get_u64_le(),
                })
            }
            TAG_NACK => {
                need(8, &buf)?;
                Ok(Packet::Nack {
                    device: DeviceId(buf.get_u64_le()),
                })
            }
            TAG_VERIFY_REQ => {
                need(16, &buf)?;
                Ok(Packet::MembershipVerifyRequest {
                    device: DeviceId(buf.get_u64_le()),
                    master: AggregatorAddr(buf.get_u32_le()),
                    requester: AggregatorAddr(buf.get_u32_le()),
                })
            }
            TAG_VERIFY_RESP => {
                need(9, &buf)?;
                Ok(Packet::MembershipVerifyResponse {
                    device: DeviceId(buf.get_u64_le()),
                    accepted: buf.get_u8() != 0,
                })
            }
            TAG_FORWARDED => {
                need(12, &buf)?;
                let device = DeviceId(buf.get_u64_le());
                let collector = AggregatorAddr(buf.get_u32_le());
                let records = get_records(&mut buf)?;
                Ok(Packet::ForwardedConsumption {
                    device,
                    collector,
                    records,
                })
            }
            TAG_TRANSFER => {
                need(12, &buf)?;
                Ok(Packet::TransferMembership {
                    device: DeviceId(buf.get_u64_le()),
                    new_master: AggregatorAddr(buf.get_u32_le()),
                })
            }
            TAG_REMOVE => {
                need(8, &buf)?;
                Ok(Packet::RemoveDevice {
                    device: DeviceId(buf.get_u64_le()),
                })
            }
            TAG_TELEGRAM => {
                need(13, &buf)?;
                let device = DeviceId(buf.get_u64_le());
                let codec = buf.get_u8();
                let declared = buf.get_u32_le() as usize;
                if buf.remaining() < declared {
                    return Err(DecodeError::BadLength {
                        declared,
                        remaining: buf.remaining(),
                    });
                }
                // Zero-copy: the payload view shares the receive buffer.
                let payload = buf.slice(..declared);
                buf.advance(declared);
                Ok(Packet::Telegram {
                    device,
                    codec,
                    payload,
                })
            }
            other => Err(DecodeError::UnknownTag(other)),
        }
    }

    /// The device this packet is about, if any.
    pub fn device(&self) -> Option<DeviceId> {
        match self {
            Packet::RegistrationRequest { device, .. }
            | Packet::RegistrationAccept { device, .. }
            | Packet::RegistrationReject { device, .. }
            | Packet::ConsumptionReport { device, .. }
            | Packet::Ack { device, .. }
            | Packet::Nack { device }
            | Packet::MembershipVerifyRequest { device, .. }
            | Packet::MembershipVerifyResponse { device, .. }
            | Packet::ForwardedConsumption { device, .. }
            | Packet::TransferMembership { device, .. }
            | Packet::RemoveDevice { device }
            | Packet::Telegram { device, .. } => Some(*device),
        }
    }

    /// Size of the encoded packet in bytes (used for airtime accounting).
    pub fn encoded_len(&self) -> usize {
        self.encode().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record(seq: u64) -> MeasurementRecord {
        MeasurementRecord {
            device: DeviceId(3),
            sequence: seq,
            interval_start_us: 1_000_000 + seq * 100_000,
            interval_end_us: 1_100_000 + seq * 100_000,
            mean_current_ua: 152_300,
            charge_uas: 15_230,
            backfilled: seq % 2 == 0,
        }
    }

    fn all_packets() -> Vec<Packet> {
        vec![
            Packet::RegistrationRequest {
                device: DeviceId(1),
                master: None,
            },
            Packet::RegistrationRequest {
                device: DeviceId(1),
                master: Some(AggregatorAddr(7)),
            },
            Packet::RegistrationAccept {
                device: DeviceId(1),
                address: AggregatorAddr(7),
                membership: MembershipKind::Master,
                slot: 3,
            },
            Packet::RegistrationAccept {
                device: DeviceId(1),
                address: AggregatorAddr(9),
                membership: MembershipKind::Temporary,
                slot: 12,
            },
            Packet::RegistrationReject {
                device: DeviceId(2),
                reason: RejectReason::NoFreeSlots,
            },
            Packet::RegistrationReject {
                device: DeviceId(2),
                reason: RejectReason::MasterVerificationFailed,
            },
            Packet::ConsumptionReport {
                device: DeviceId(3),
                master: Some(AggregatorAddr(1)),
                records: vec![sample_record(0), sample_record(1), sample_record(2)],
            },
            Packet::ConsumptionReport {
                device: DeviceId(3),
                master: None,
                records: vec![],
            },
            Packet::Ack {
                device: DeviceId(3),
                through_sequence: 42,
            },
            Packet::Nack {
                device: DeviceId(3),
            },
            Packet::MembershipVerifyRequest {
                device: DeviceId(4),
                master: AggregatorAddr(1),
                requester: AggregatorAddr(2),
            },
            Packet::MembershipVerifyResponse {
                device: DeviceId(4),
                accepted: true,
            },
            Packet::ForwardedConsumption {
                device: DeviceId(4),
                collector: AggregatorAddr(2),
                records: vec![sample_record(5)],
            },
            Packet::TransferMembership {
                device: DeviceId(5),
                new_master: AggregatorAddr(3),
            },
            Packet::RemoveDevice {
                device: DeviceId(6),
            },
            Packet::Telegram {
                device: DeviceId(7),
                codec: 2,
                payload: Bytes::from(vec![0x1B, 0x1B, 0x1B, 0x1B, 0x01, 0x01, 0x01, 0x01]),
            },
            Packet::Telegram {
                device: DeviceId(7),
                codec: 1,
                payload: Bytes::new(),
            },
        ]
    }

    #[test]
    fn round_trip_all_packet_kinds() {
        for packet in all_packets() {
            let encoded = packet.encode();
            let decoded = Packet::decode(&encoded).expect("decode");
            assert_eq!(decoded, packet, "round trip failed for {packet:?}");
        }
    }

    #[test]
    fn every_packet_names_its_device() {
        for packet in all_packets() {
            assert!(packet.device().is_some());
        }
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        let bytes = Bytes::from_static(&[0xFF, 0, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(Packet::decode(&bytes), Err(DecodeError::UnknownTag(0xFF)));
    }

    #[test]
    fn decode_rejects_empty_buffer() {
        let bytes = Bytes::new();
        assert!(matches!(
            Packet::decode(&bytes),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn decode_rejects_truncated_body() {
        let full = Packet::Ack {
            device: DeviceId(1),
            through_sequence: 7,
        }
        .encode();
        let truncated = full.slice(0..full.len() - 3);
        assert!(matches!(
            Packet::decode(&truncated),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn decode_rejects_bad_record_count() {
        // Report header claiming 100 records but carrying none.
        let mut buf = BytesMut::new();
        buf.put_u8(0x04);
        buf.put_u64_le(1);
        buf.put_u32_le(NO_ADDR);
        buf.put_u16_le(100);
        let bytes = buf.freeze();
        assert!(matches!(
            Packet::decode(&bytes),
            Err(DecodeError::BadLength { .. })
        ));
    }

    #[test]
    fn decode_rejects_bad_telegram_length() {
        // Telegram envelope declaring 50 payload bytes but carrying 2.
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_TELEGRAM);
        buf.put_u64_le(7);
        buf.put_u8(3);
        buf.put_u32_le(50);
        buf.put_slice(&[0xAA, 0xBB]);
        let bytes = buf.freeze();
        assert!(matches!(
            Packet::decode(&bytes),
            Err(DecodeError::BadLength { .. })
        ));
    }

    #[test]
    fn record_helpers_convert_units() {
        let r = sample_record(0);
        assert!((r.mean_current_ma() - 152.3).abs() < 1e-9);
        assert!((r.charge_mas() - 15.23).abs() < 1e-9);
        assert!((r.interval_secs() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn canonical_bytes_are_stable_and_unique_per_record() {
        let a = sample_record(0);
        let b = sample_record(1);
        assert_eq!(a.canonical_bytes(), a.canonical_bytes());
        assert_ne!(a.canonical_bytes(), b.canonical_bytes());
        assert_eq!(a.canonical_bytes().len(), MeasurementRecord::ENCODED_LEN);
    }

    #[test]
    fn display_of_ids_is_compact() {
        assert_eq!(DeviceId(7).to_string(), "dev-0007");
        assert_eq!(AggregatorAddr(2).to_string(), "agg-002");
        assert!(RejectReason::Blocked.to_string().contains("blocked"));
    }

    #[test]
    fn decode_error_display_mentions_cause() {
        let err = DecodeError::Truncated {
            needed: 10,
            available: 2,
        };
        assert!(err.to_string().contains("truncated"));
        assert!(DecodeError::UnknownTag(3).to_string().contains("unknown"));
        let bad = DecodeError::BadLength {
            declared: 100,
            remaining: 4,
        };
        assert!(bad.to_string().contains("length"));
    }
}
