//! Radio propagation and aggregator discovery.
//!
//! The paper's devices pick their reporting aggregator by Received Signal
//! Strength Indication (RSSI) when the communication channel is wireless
//! (footnote 2 in §II-C). This module provides a log-distance path-loss
//! model, per-sample shadowing, and the scan procedure a device runs when it
//! is plugged in at a new grid-location.

use rtem_sim::rng::SimRng;
use serde::{Deserialize, Serialize};

use crate::packet::AggregatorAddr;

/// A position on the 2-D floor plan of the simulated site, in metres.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Position {
    /// X coordinate in metres.
    pub x: f64,
    /// Y coordinate in metres.
    pub y: f64,
}

impl Position {
    /// Creates a position.
    pub fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to `other` in metres.
    pub fn distance_to(&self, other: Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// Log-distance path-loss propagation model with optional shadowing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathLossModel {
    /// Transmit power in dBm (ESP32 default is about +20 dBm).
    pub tx_power_dbm: f64,
    /// Path loss at the 1 m reference distance, in dB.
    pub reference_loss_db: f64,
    /// Path-loss exponent (2 free space, ~3 indoors).
    pub exponent: f64,
    /// Standard deviation of log-normal shadowing in dB.
    pub shadowing_sigma_db: f64,
}

impl Default for PathLossModel {
    fn default() -> Self {
        PathLossModel {
            tx_power_dbm: 20.0,
            reference_loss_db: 40.0,
            exponent: 3.0,
            shadowing_sigma_db: 2.0,
        }
    }
}

impl PathLossModel {
    /// Free-space-like propagation with no shadowing, for deterministic tests.
    pub fn deterministic() -> Self {
        PathLossModel {
            tx_power_dbm: 20.0,
            reference_loss_db: 40.0,
            exponent: 2.0,
            shadowing_sigma_db: 0.0,
        }
    }

    /// Mean RSSI (dBm) at `distance_m` metres, without shadowing.
    pub fn mean_rssi_dbm(&self, distance_m: f64) -> f64 {
        let d = distance_m.max(1.0);
        self.tx_power_dbm - self.reference_loss_db - 10.0 * self.exponent * d.log10()
    }

    /// One RSSI sample at `distance_m`, including shadowing drawn from `rng`.
    pub fn sample_rssi_dbm(&self, distance_m: f64, rng: &mut SimRng) -> f64 {
        let mean = self.mean_rssi_dbm(distance_m);
        if self.shadowing_sigma_db > 0.0 {
            mean + rng.normal(0.0, self.shadowing_sigma_db)
        } else {
            mean
        }
    }
}

/// One aggregator beacon heard during a scan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScanResult {
    /// Aggregator that was heard.
    pub aggregator: AggregatorAddr,
    /// Measured signal strength in dBm.
    pub rssi_dbm: f64,
}

/// A radio environment: aggregator positions plus a propagation model.
///
/// # Examples
///
/// ```
/// use rtem_net::packet::AggregatorAddr;
/// use rtem_net::rssi::{PathLossModel, Position, RadioEnvironment};
/// use rtem_sim::rng::SimRng;
///
/// let mut env = RadioEnvironment::new(PathLossModel::deterministic());
/// env.place_aggregator(AggregatorAddr(1), Position::new(0.0, 0.0));
/// env.place_aggregator(AggregatorAddr(2), Position::new(50.0, 0.0));
///
/// let mut rng = SimRng::seed_from_u64(1);
/// let best = env.best_aggregator(Position::new(5.0, 0.0), -90.0, &mut rng).unwrap();
/// assert_eq!(best.aggregator, AggregatorAddr(1));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RadioEnvironment {
    model: PathLossModel,
    aggregators: Vec<(AggregatorAddr, Position)>,
}

impl RadioEnvironment {
    /// Creates an empty environment with the given propagation model.
    pub fn new(model: PathLossModel) -> Self {
        RadioEnvironment {
            model,
            aggregators: Vec::new(),
        }
    }

    /// The propagation model in use.
    pub fn model(&self) -> &PathLossModel {
        &self.model
    }

    /// Registers (or moves) an aggregator's radio at `position`.
    pub fn place_aggregator(&mut self, addr: AggregatorAddr, position: Position) {
        if let Some(entry) = self.aggregators.iter_mut().find(|(a, _)| *a == addr) {
            entry.1 = position;
        } else {
            self.aggregators.push((addr, position));
        }
    }

    /// Removes an aggregator's radio. Returns `true` if it was present.
    pub fn remove_aggregator(&mut self, addr: AggregatorAddr) -> bool {
        let before = self.aggregators.len();
        self.aggregators.retain(|(a, _)| *a != addr);
        self.aggregators.len() != before
    }

    /// Number of aggregators currently placed.
    pub fn aggregator_count(&self) -> usize {
        self.aggregators.len()
    }

    /// Performs a full scan from `position`: one RSSI sample per aggregator,
    /// strongest first, discarding everything below `sensitivity_dbm`.
    pub fn scan(
        &self,
        position: Position,
        sensitivity_dbm: f64,
        rng: &mut SimRng,
    ) -> Vec<ScanResult> {
        let mut results: Vec<ScanResult> = self
            .aggregators
            .iter()
            .map(|(addr, pos)| ScanResult {
                aggregator: *addr,
                rssi_dbm: self.model.sample_rssi_dbm(position.distance_to(*pos), rng),
            })
            .filter(|r| r.rssi_dbm >= sensitivity_dbm)
            .collect();
        results.sort_by(|a, b| {
            b.rssi_dbm
                .partial_cmp(&a.rssi_dbm)
                .unwrap_or(core::cmp::Ordering::Equal)
        });
        results
    }

    /// Convenience: the strongest aggregator heard from `position`, if any.
    pub fn best_aggregator(
        &self,
        position: Position,
        sensitivity_dbm: f64,
        rng: &mut SimRng,
    ) -> Option<ScanResult> {
        self.scan(position, sensitivity_dbm, rng).into_iter().next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_aggregator_env() -> RadioEnvironment {
        let mut env = RadioEnvironment::new(PathLossModel::deterministic());
        env.place_aggregator(AggregatorAddr(1), Position::new(0.0, 0.0));
        env.place_aggregator(AggregatorAddr(2), Position::new(100.0, 0.0));
        env
    }

    #[test]
    fn distance_is_euclidean() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(3.0, 4.0);
        assert!((a.distance_to(b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn rssi_decreases_with_distance() {
        let model = PathLossModel::default();
        assert!(model.mean_rssi_dbm(1.0) > model.mean_rssi_dbm(10.0));
        assert!(model.mean_rssi_dbm(10.0) > model.mean_rssi_dbm(100.0));
    }

    #[test]
    fn distances_below_one_metre_clamp() {
        let model = PathLossModel::deterministic();
        assert_eq!(model.mean_rssi_dbm(0.0), model.mean_rssi_dbm(1.0));
    }

    #[test]
    fn closest_aggregator_wins_the_scan() {
        let env = two_aggregator_env();
        let mut rng = SimRng::seed_from_u64(5);
        let near_first = env
            .best_aggregator(Position::new(10.0, 0.0), -120.0, &mut rng)
            .unwrap();
        assert_eq!(near_first.aggregator, AggregatorAddr(1));
        let near_second = env
            .best_aggregator(Position::new(90.0, 0.0), -120.0, &mut rng)
            .unwrap();
        assert_eq!(near_second.aggregator, AggregatorAddr(2));
    }

    #[test]
    fn scan_orders_by_strength_and_applies_sensitivity() {
        let env = two_aggregator_env();
        let mut rng = SimRng::seed_from_u64(6);
        let results = env.scan(Position::new(10.0, 0.0), -120.0, &mut rng);
        assert_eq!(results.len(), 2);
        assert!(results[0].rssi_dbm >= results[1].rssi_dbm);
        // A strict sensitivity hides the distant aggregator.
        let strict = env.scan(
            Position::new(10.0, 0.0),
            results[1].rssi_dbm + 1.0,
            &mut rng,
        );
        assert_eq!(strict.len(), 1);
        assert_eq!(strict[0].aggregator, AggregatorAddr(1));
    }

    #[test]
    fn out_of_range_scan_is_empty() {
        let env = two_aggregator_env();
        let mut rng = SimRng::seed_from_u64(7);
        let results = env.scan(Position::new(10_000.0, 0.0), -90.0, &mut rng);
        assert!(results.is_empty());
        assert!(env
            .best_aggregator(Position::new(10_000.0, 0.0), -90.0, &mut rng)
            .is_none());
    }

    #[test]
    fn placing_twice_moves_the_aggregator() {
        let mut env = two_aggregator_env();
        assert_eq!(env.aggregator_count(), 2);
        env.place_aggregator(AggregatorAddr(1), Position::new(200.0, 0.0));
        assert_eq!(env.aggregator_count(), 2);
        let mut rng = SimRng::seed_from_u64(8);
        let best = env
            .best_aggregator(Position::new(190.0, 0.0), -120.0, &mut rng)
            .unwrap();
        assert_eq!(best.aggregator, AggregatorAddr(1));
    }

    #[test]
    fn removing_aggregator_hides_it_from_scans() {
        let mut env = two_aggregator_env();
        assert!(env.remove_aggregator(AggregatorAddr(1)));
        assert!(!env.remove_aggregator(AggregatorAddr(1)));
        let mut rng = SimRng::seed_from_u64(9);
        let best = env
            .best_aggregator(Position::new(0.0, 0.0), -120.0, &mut rng)
            .unwrap();
        assert_eq!(best.aggregator, AggregatorAddr(2));
    }

    #[test]
    fn shadowing_produces_variation_but_preserves_mean_ordering() {
        let model = PathLossModel::default();
        let mut rng = SimRng::seed_from_u64(10);
        let near: f64 = (0..500)
            .map(|_| model.sample_rssi_dbm(5.0, &mut rng))
            .sum::<f64>()
            / 500.0;
        let far: f64 = (0..500)
            .map(|_| model.sample_rssi_dbm(50.0, &mut rng))
            .sum::<f64>()
            / 500.0;
        assert!(near > far);
    }
}
