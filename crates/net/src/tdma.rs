//! Time-slotted reporting (TDMA) managed by the aggregator.
//!
//! The paper states that "the aggregator provides the devices with time-slots
//! for communication to prevent interference" and that the limited number of
//! slots bounds how many devices one aggregator can serve (§II-A). This
//! module implements that slot table: a frame of `slots_per_frame` slots of
//! fixed duration; each registered device owns one slot and may transmit only
//! inside it.

use crate::packet::DeviceId;
use rtem_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Errors returned by the slot table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotError {
    /// Every slot in the frame is already assigned.
    NoFreeSlots,
    /// The device already owns a slot.
    AlreadyAssigned(DeviceId),
    /// The device owns no slot.
    NotAssigned(DeviceId),
}

impl fmt::Display for SlotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SlotError::NoFreeSlots => write!(f, "no free reporting slots in the frame"),
            SlotError::AlreadyAssigned(d) => write!(f, "device {d} already owns a slot"),
            SlotError::NotAssigned(d) => write!(f, "device {d} owns no slot"),
        }
    }
}

impl Error for SlotError {}

/// A TDMA frame description plus the current slot assignments.
///
/// # Examples
///
/// ```
/// use rtem_net::packet::DeviceId;
/// use rtem_net::tdma::SlotTable;
/// use rtem_sim::time::SimDuration;
///
/// // The testbed reports 10 times per second, so a 100 ms frame with 10 ms
/// // slots serves up to 10 devices per aggregator.
/// let mut table = SlotTable::new(SimDuration::from_millis(10), 10);
/// let slot = table.assign(DeviceId(1)).unwrap();
/// assert!(slot < 10);
/// assert_eq!(table.free_slots(), 9);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotTable {
    slot_duration: SimDuration,
    slots_per_frame: u16,
    assignments: BTreeMap<DeviceId, u16>,
}

impl SlotTable {
    /// Creates a slot table.
    ///
    /// # Panics
    ///
    /// Panics if `slot_duration` is zero or `slots_per_frame` is zero.
    pub fn new(slot_duration: SimDuration, slots_per_frame: u16) -> Self {
        assert!(!slot_duration.is_zero(), "slot duration must be non-zero");
        assert!(slots_per_frame > 0, "a frame needs at least one slot");
        SlotTable {
            slot_duration,
            slots_per_frame,
            assignments: BTreeMap::new(),
        }
    }

    /// The table used in the paper's testbed configuration: Tmeasure = 100 ms
    /// frames divided into 10 ms slots.
    pub fn testbed() -> Self {
        SlotTable::new(SimDuration::from_millis(10), 10)
    }

    /// Duration of one slot.
    pub fn slot_duration(&self) -> SimDuration {
        self.slot_duration
    }

    /// Number of slots in a frame (the device capacity of the aggregator).
    pub fn slots_per_frame(&self) -> u16 {
        self.slots_per_frame
    }

    /// Duration of a whole frame.
    pub fn frame_duration(&self) -> SimDuration {
        self.slot_duration * u64::from(self.slots_per_frame)
    }

    /// Number of unassigned slots.
    pub fn free_slots(&self) -> u16 {
        self.slots_per_frame - self.assignments.len() as u16
    }

    /// Number of assigned slots.
    pub fn assigned_slots(&self) -> u16 {
        self.assignments.len() as u16
    }

    /// The slot owned by `device`, if any.
    pub fn slot_of(&self, device: DeviceId) -> Option<u16> {
        self.assignments.get(&device).copied()
    }

    /// Assigns the lowest free slot to `device`.
    ///
    /// # Errors
    ///
    /// Fails if the device already has a slot or the frame is full.
    pub fn assign(&mut self, device: DeviceId) -> Result<u16, SlotError> {
        if self.assignments.contains_key(&device) {
            return Err(SlotError::AlreadyAssigned(device));
        }
        let used: Vec<u16> = self.assignments.values().copied().collect();
        let slot = (0..self.slots_per_frame)
            .find(|s| !used.contains(s))
            .ok_or(SlotError::NoFreeSlots)?;
        self.assignments.insert(device, slot);
        Ok(slot)
    }

    /// Releases the slot owned by `device`.
    ///
    /// # Errors
    ///
    /// Fails if the device owns no slot.
    pub fn release(&mut self, device: DeviceId) -> Result<u16, SlotError> {
        self.assignments
            .remove(&device)
            .ok_or(SlotError::NotAssigned(device))
    }

    /// Start time of the next occurrence of `slot` at or after `now`.
    pub fn next_slot_start(&self, slot: u16, now: SimTime) -> SimTime {
        assert!(slot < self.slots_per_frame, "slot index out of range");
        let frame_us = self.frame_duration().as_micros();
        let slot_offset_us = self.slot_duration.as_micros() * u64::from(slot);
        let now_us = now.as_micros();
        let frame_start_us = (now_us / frame_us) * frame_us;
        let candidate = frame_start_us + slot_offset_us;
        if candidate >= now_us {
            SimTime::from_micros(candidate)
        } else {
            SimTime::from_micros(candidate + frame_us)
        }
    }

    /// Returns `true` if `now` falls inside `slot`.
    pub fn in_slot(&self, slot: u16, now: SimTime) -> bool {
        assert!(slot < self.slots_per_frame, "slot index out of range");
        let frame_us = self.frame_duration().as_micros();
        let into_frame = now.as_micros() % frame_us;
        let start = self.slot_duration.as_micros() * u64::from(slot);
        into_frame >= start && into_frame < start + self.slot_duration.as_micros()
    }

    /// Devices with assignments, in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (DeviceId, u16)> + '_ {
        let mut entries: Vec<(DeviceId, u16)> =
            self.assignments.iter().map(|(d, s)| (*d, *s)).collect();
        entries.sort_by_key(|&(_, s)| s);
        entries.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_release_cycle() {
        let mut t = SlotTable::new(SimDuration::from_millis(10), 4);
        let s1 = t.assign(DeviceId(1)).unwrap();
        let s2 = t.assign(DeviceId(2)).unwrap();
        assert_ne!(s1, s2);
        assert_eq!(t.assigned_slots(), 2);
        assert_eq!(t.free_slots(), 2);
        assert_eq!(t.slot_of(DeviceId(1)), Some(s1));
        assert_eq!(t.release(DeviceId(1)).unwrap(), s1);
        assert_eq!(t.slot_of(DeviceId(1)), None);
        assert_eq!(t.free_slots(), 3);
    }

    #[test]
    fn released_slot_is_reused() {
        let mut t = SlotTable::new(SimDuration::from_millis(10), 2);
        let s1 = t.assign(DeviceId(1)).unwrap();
        t.assign(DeviceId(2)).unwrap();
        t.release(DeviceId(1)).unwrap();
        let s3 = t.assign(DeviceId(3)).unwrap();
        assert_eq!(s1, s3);
    }

    #[test]
    fn full_frame_rejects_new_devices() {
        let mut t = SlotTable::new(SimDuration::from_millis(10), 2);
        t.assign(DeviceId(1)).unwrap();
        t.assign(DeviceId(2)).unwrap();
        assert_eq!(t.assign(DeviceId(3)), Err(SlotError::NoFreeSlots));
    }

    #[test]
    fn double_assignment_rejected() {
        let mut t = SlotTable::testbed();
        t.assign(DeviceId(1)).unwrap();
        assert_eq!(
            t.assign(DeviceId(1)),
            Err(SlotError::AlreadyAssigned(DeviceId(1)))
        );
    }

    #[test]
    fn releasing_unassigned_device_fails() {
        let mut t = SlotTable::testbed();
        assert_eq!(
            t.release(DeviceId(9)),
            Err(SlotError::NotAssigned(DeviceId(9)))
        );
    }

    #[test]
    fn frame_duration_is_slots_times_duration() {
        let t = SlotTable::testbed();
        assert_eq!(t.frame_duration(), SimDuration::from_millis(100));
        assert_eq!(t.slots_per_frame(), 10);
        assert_eq!(t.slot_duration(), SimDuration::from_millis(10));
    }

    #[test]
    fn next_slot_start_rolls_into_next_frame() {
        let t = SlotTable::testbed();
        // Slot 2 starts at 20 ms into each 100 ms frame.
        assert_eq!(
            t.next_slot_start(2, SimTime::from_millis(0)),
            SimTime::from_millis(20)
        );
        assert_eq!(
            t.next_slot_start(2, SimTime::from_millis(20)),
            SimTime::from_millis(20)
        );
        assert_eq!(
            t.next_slot_start(2, SimTime::from_millis(21)),
            SimTime::from_millis(120)
        );
        assert_eq!(
            t.next_slot_start(0, SimTime::from_millis(350)),
            SimTime::from_millis(400)
        );
    }

    #[test]
    fn in_slot_detects_slot_boundaries() {
        let t = SlotTable::testbed();
        assert!(t.in_slot(0, SimTime::from_millis(0)));
        assert!(t.in_slot(0, SimTime::from_millis(9)));
        assert!(!t.in_slot(0, SimTime::from_millis(10)));
        assert!(t.in_slot(3, SimTime::from_millis(135)));
        assert!(!t.in_slot(3, SimTime::from_millis(145)));
    }

    #[test]
    fn iter_orders_by_slot() {
        let mut t = SlotTable::testbed();
        t.assign(DeviceId(5)).unwrap();
        t.assign(DeviceId(3)).unwrap();
        t.assign(DeviceId(8)).unwrap();
        let slots: Vec<u16> = t.iter().map(|(_, s)| s).collect();
        let mut sorted = slots.clone();
        sorted.sort_unstable();
        assert_eq!(slots, sorted);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_slot_panics() {
        let t = SlotTable::testbed();
        let _ = t.next_slot_start(10, SimTime::ZERO);
    }
}
