//! Point-to-point link model.
//!
//! Wireless and wired hops in the simulated testbed are described by a
//! [`LinkConfig`]: a base propagation/processing latency, random jitter, a
//! loss probability and a serialization bandwidth. [`LinkModel`] turns a
//! packet size into "delivered after d" or "lost" decisions using the
//! scenario RNG, which is all the higher layers (broker, backhaul) need.

use rtem_sim::rng::SimRng;
use rtem_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Static description of a link's quality.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Fixed one-way latency (propagation + protocol processing).
    pub base_latency: SimDuration,
    /// Maximum additional uniform jitter added per packet.
    pub jitter: SimDuration,
    /// Probability that a packet is lost outright.
    pub loss_probability: f64,
    /// Serialization bandwidth in bits per second. `None` models an
    /// effectively infinite-bandwidth hop.
    pub bandwidth_bps: Option<u64>,
}

impl LinkConfig {
    /// A typical home Wi-Fi hop as seen by an ESP32-class device: a few
    /// milliseconds of latency, noticeable jitter, light loss.
    pub fn wifi() -> Self {
        LinkConfig {
            base_latency: SimDuration::from_millis(3),
            jitter: SimDuration::from_millis(4),
            loss_probability: 0.01,
            bandwidth_bps: Some(20_000_000),
        }
    }

    /// The aggregator backhaul the paper assumes: high bandwidth, ~1 ms
    /// delay, negligible loss.
    pub fn backhaul() -> Self {
        LinkConfig {
            base_latency: SimDuration::from_millis(1),
            jitter: SimDuration::from_micros(100),
            loss_probability: 0.0,
            bandwidth_bps: Some(1_000_000_000),
        }
    }

    /// A perfect link: zero latency, zero loss. Useful in unit tests.
    pub fn ideal() -> Self {
        LinkConfig {
            base_latency: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
            loss_probability: 0.0,
            bandwidth_bps: None,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `loss_probability` is outside `[0, 1]` or a zero bandwidth
    /// is given.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.loss_probability),
            "loss probability must be within [0, 1]"
        );
        if let Some(bw) = self.bandwidth_bps {
            assert!(bw > 0, "bandwidth must be positive when specified");
        }
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig::wifi()
    }
}

/// Outcome of offering one packet to a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Transit {
    /// The packet will arrive after the contained delay.
    Delivered(SimDuration),
    /// The packet was lost.
    Lost,
}

impl Transit {
    /// The delivery delay, if the packet survived.
    pub fn delay(self) -> Option<SimDuration> {
        match self {
            Transit::Delivered(d) => Some(d),
            Transit::Lost => None,
        }
    }
}

/// A stateful link that applies a [`LinkConfig`] to individual packets.
///
/// # Examples
///
/// ```
/// use rtem_net::link::{LinkConfig, LinkModel, Transit};
/// use rtem_sim::rng::SimRng;
///
/// let mut link = LinkModel::new(LinkConfig::ideal(), SimRng::seed_from_u64(1));
/// match link.offer(128) {
///     Transit::Delivered(delay) => assert!(delay.is_zero()),
///     Transit::Lost => unreachable!("ideal links never lose packets"),
/// }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkModel {
    config: LinkConfig,
    rng: SimRng,
    offered: u64,
    lost: u64,
    offered_bytes: u64,
    lost_bytes: u64,
}

impl LinkModel {
    /// Creates a link with the given configuration and RNG stream.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`LinkConfig::validate`]).
    pub fn new(config: LinkConfig, rng: SimRng) -> Self {
        config.validate();
        LinkModel {
            config,
            rng,
            offered: 0,
            lost: 0,
            offered_bytes: 0,
            lost_bytes: 0,
        }
    }

    /// The link's configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Replaces the link's configuration mid-run, preserving the offered and
    /// lost counters and the RNG stream. This is what fault-injection bursts
    /// use to degrade and later restore a live link without resetting its
    /// observed loss-rate history.
    ///
    /// # Panics
    ///
    /// Panics if the new configuration is invalid (see
    /// [`LinkConfig::validate`]).
    pub fn reconfigure(&mut self, config: LinkConfig) {
        config.validate();
        self.config = config;
    }

    /// Offers a packet of `size_bytes` to the link and returns its fate.
    pub fn offer(&mut self, size_bytes: usize) -> Transit {
        self.offered += 1;
        self.offered_bytes += size_bytes as u64;
        if self.config.loss_probability > 0.0 && self.rng.chance(self.config.loss_probability) {
            self.lost += 1;
            self.lost_bytes += size_bytes as u64;
            return Transit::Lost;
        }
        let mut delay = self.config.base_latency;
        if !self.config.jitter.is_zero() {
            let jitter_us = self.rng.uniform(0.0, self.config.jitter.as_micros() as f64);
            delay += SimDuration::from_micros(jitter_us as u64);
        }
        if let Some(bw) = self.config.bandwidth_bps {
            let bits = size_bytes as f64 * 8.0;
            delay += SimDuration::from_secs_f64(bits / bw as f64);
        }
        Transit::Delivered(delay)
    }

    /// Number of packets offered so far.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Number of packets lost so far.
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Observed loss rate (0 when nothing was offered).
    pub fn loss_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.lost as f64 / self.offered as f64
        }
    }

    /// This link's cumulative traffic counters as one mergeable value.
    pub fn totals(&self) -> LinkTotals {
        LinkTotals {
            offered: self.offered,
            lost: self.lost,
            offered_bytes: self.offered_bytes,
            lost_bytes: self.lost_bytes,
        }
    }
}

/// Cumulative traffic counters of one link (or a merged set of links).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkTotals {
    /// Packets offered to the link.
    pub offered: u64,
    /// Packets lost.
    pub lost: u64,
    /// Bytes offered to the link.
    pub offered_bytes: u64,
    /// Bytes on lost packets.
    pub lost_bytes: u64,
}

impl LinkTotals {
    /// Bytes that actually made it across.
    pub fn delivered_bytes(&self) -> u64 {
        self.offered_bytes - self.lost_bytes
    }

    /// Packets that actually made it across.
    pub fn delivered(&self) -> u64 {
        self.offered - self.lost
    }
}

impl std::ops::AddAssign for LinkTotals {
    fn add_assign(&mut self, rhs: LinkTotals) {
        self.offered += rhs.offered;
        self.lost += rhs.lost;
        self.offered_bytes += rhs.offered_bytes;
        self.lost_bytes += rhs.lost_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(11)
    }

    #[test]
    fn ideal_link_delivers_instantly() {
        let mut link = LinkModel::new(LinkConfig::ideal(), rng());
        for _ in 0..100 {
            assert_eq!(link.offer(1000), Transit::Delivered(SimDuration::ZERO));
        }
        assert_eq!(link.loss_rate(), 0.0);
    }

    #[test]
    fn latency_includes_serialization_time() {
        let cfg = LinkConfig {
            base_latency: SimDuration::from_millis(1),
            jitter: SimDuration::ZERO,
            loss_probability: 0.0,
            bandwidth_bps: Some(8_000), // 1 kB/s
        };
        let mut link = LinkModel::new(cfg, rng());
        let delay = link.offer(1000).delay().unwrap();
        // 1000 bytes at 1 kB/s = 1 s (+1 ms base).
        assert_eq!(delay, SimDuration::from_millis(1001));
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let cfg = LinkConfig {
            base_latency: SimDuration::from_millis(2),
            jitter: SimDuration::from_millis(3),
            loss_probability: 0.0,
            bandwidth_bps: None,
        };
        let mut link = LinkModel::new(cfg, rng());
        for _ in 0..1000 {
            let d = link.offer(64).delay().unwrap();
            assert!(d >= SimDuration::from_millis(2));
            assert!(d <= SimDuration::from_millis(5));
        }
    }

    #[test]
    fn loss_rate_tracks_configuration() {
        let cfg = LinkConfig {
            base_latency: SimDuration::from_millis(1),
            jitter: SimDuration::ZERO,
            loss_probability: 0.2,
            bandwidth_bps: None,
        };
        let mut link = LinkModel::new(cfg, rng());
        for _ in 0..20_000 {
            let _ = link.offer(64);
        }
        assert!(
            (link.loss_rate() - 0.2).abs() < 0.02,
            "rate {}",
            link.loss_rate()
        );
        assert_eq!(link.offered(), 20_000);
    }

    #[test]
    fn backhaul_is_about_one_millisecond() {
        let mut link = LinkModel::new(LinkConfig::backhaul(), rng());
        let d = link.offer(256).delay().unwrap();
        assert!(d >= SimDuration::from_millis(1));
        assert!(d < SimDuration::from_millis(2));
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn invalid_loss_probability_rejected() {
        let cfg = LinkConfig {
            loss_probability: 1.5,
            ..LinkConfig::ideal()
        };
        let _ = LinkModel::new(cfg, rng());
    }

    #[test]
    fn reconfigure_preserves_counters() {
        let lossy = LinkConfig {
            base_latency: SimDuration::from_millis(1),
            jitter: SimDuration::ZERO,
            loss_probability: 1.0,
            bandwidth_bps: None,
        };
        let mut link = LinkModel::new(lossy, rng());
        for _ in 0..10 {
            assert_eq!(link.offer(64), Transit::Lost);
        }
        assert_eq!(link.lost(), 10);
        link.reconfigure(LinkConfig::ideal());
        assert_eq!(link.offer(64), Transit::Delivered(SimDuration::ZERO));
        // The history survived the reconfiguration.
        assert_eq!(link.offered(), 11);
        assert_eq!(link.lost(), 10);
        assert_eq!(*link.config(), LinkConfig::ideal());
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn reconfigure_validates_the_new_config() {
        let mut link = LinkModel::new(LinkConfig::ideal(), rng());
        link.reconfigure(LinkConfig {
            loss_probability: -0.5,
            ..LinkConfig::ideal()
        });
    }

    #[test]
    fn totals_track_bytes_and_merge() {
        let lossy = LinkConfig {
            base_latency: SimDuration::from_millis(1),
            jitter: SimDuration::ZERO,
            loss_probability: 1.0,
            bandwidth_bps: None,
        };
        let mut a = LinkModel::new(LinkConfig::ideal(), rng());
        let _ = a.offer(100);
        let _ = a.offer(50);
        let mut b = LinkModel::new(lossy, rng());
        let _ = b.offer(30);
        let mut merged = a.totals();
        merged += b.totals();
        assert_eq!(
            merged,
            LinkTotals {
                offered: 3,
                lost: 1,
                offered_bytes: 180,
                lost_bytes: 30,
            }
        );
        assert_eq!(merged.delivered(), 2);
        assert_eq!(merged.delivered_bytes(), 150);
    }

    #[test]
    fn transit_delay_accessor() {
        assert_eq!(Transit::Lost.delay(), None);
        assert_eq!(
            Transit::Delivered(SimDuration::from_millis(4)).delay(),
            Some(SimDuration::from_millis(4))
        );
    }
}
