//! MQTT-style publish/subscribe broker.
//!
//! The paper transfers consumption data from devices to the aggregator over
//! MQTT on Wi-Fi. This module models the part of MQTT the architecture
//! relies on: named clients, hierarchical topics with `+`/`#` wildcards,
//! QoS 0/1/2 publishes, retained messages, persistent-session resume, and
//! per-client link quality (latency, jitter, loss) applied to every
//! delivery. Delivery is integrated with the discrete-event simulation by
//! letting the caller drain messages that are due at the current simulated
//! time.
//!
//! Three control-plane mechanisms ride on top of plain delivery:
//!
//! * **QoS 2** models the PUBREC/PUBREL/PUBCOMP four-way handshake: the
//!   PUBLISH leg is retransmitted until the link carries it (each lost
//!   attempt adds one retransmission timeout), then the three handshake
//!   frames each cross the link, with a lost PUBREC forcing a duplicate
//!   PUBLISH that the subscriber suppresses by packet id. The subscriber
//!   sees exactly one [`Delivery`]; the extra frames surface as latency and
//!   in the [`qos2_handshake_bytes`](MqttBroker::qos2_handshake_bytes)
//!   wire-overhead counters.
//! * **Retained messages** keep the last retained payload per topic and
//!   hand it to every client that subscribes mid-run
//!   ([`subscribe_at`](MqttBroker::subscribe_at)) or resumes its session
//!   ([`reconnect`](MqttBroker::reconnect)) — the classic
//!   publish-config-with-`-r` pattern of fleet management.
//! * **Session resume** queues QoS ≥ 1 publishes addressed to a
//!   disconnected persistent session and replays them, in publish order,
//!   when the session resumes. QoS 0 messages are dropped while
//!   disconnected, exactly like a real broker.

use crate::link::{LinkConfig, LinkModel, LinkTotals, Transit};
use bytes::Bytes;
use rtem_sim::rng::SimRng;
use rtem_sim::time::SimTime;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::error::Error;
use std::fmt;

/// Identifier of a broker client (a device or an aggregator endpoint).
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct ClientId(pub u64);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client-{}", self.0)
    }
}

/// MQTT quality-of-service level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QoS {
    /// Fire and forget.
    AtMostOnce,
    /// Delivery is retried until the subscriber-side ack is observed.
    AtLeastOnce,
    /// Exactly-once delivery via the PUBREC/PUBREL/PUBCOMP four-way
    /// handshake: the PUBLISH leg is retransmitted until it arrives and
    /// duplicates forced by lost handshake frames are suppressed by packet
    /// id, so a lossy link can neither drop nor duplicate the message.
    ExactlyOnce,
}

/// Errors returned by broker operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrokerError {
    /// The referenced client has not connected.
    UnknownClient(ClientId),
    /// A topic or filter failed validation.
    InvalidTopic(String),
}

impl fmt::Display for BrokerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BrokerError::UnknownClient(id) => write!(f, "unknown client {id}"),
            BrokerError::InvalidTopic(t) => write!(f, "invalid topic '{t}'"),
        }
    }
}

impl Error for BrokerError {}

/// A message delivered to a subscriber.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Delivery {
    /// Subscriber receiving the message.
    pub to: ClientId,
    /// Publisher that sent it.
    pub from: ClientId,
    /// Topic the message was published on.
    pub topic: String,
    /// Message payload.
    pub payload: Bytes,
    /// Simulated time at which the subscriber receives the message.
    pub at: SimTime,
    /// Whether the link lost at least one earlier attempt, making this
    /// arrival a QoS ≥ 1 retransmission.
    pub retransmission: bool,
    /// Whether this delivery replays a stored retained message (on session
    /// resume or a fresh subscription) rather than a live publish.
    pub retained: bool,
}

/// A QoS ≥ 1 message parked for a disconnected persistent session,
/// replayed in publish order when the session resumes.
#[derive(Debug, Clone)]
struct QueuedMessage {
    from: ClientId,
    topic: String,
    payload: Bytes,
    qos: QoS,
}

/// The last retained payload published on one topic.
#[derive(Debug, Clone)]
struct RetainedMessage {
    from: ClientId,
    payload: Bytes,
    qos: QoS,
}

/// A delivery waiting in the time-ordered in-flight queue. Ordered by
/// `(at, seq)` — arrival time with the publish sequence as tie-breaker —
/// which reproduces exactly the order the old linear queue produced with
/// its stable sort-by-arrival over insertion order.
#[derive(Debug, Clone)]
struct PendingDelivery {
    seq: u64,
    delivery: Delivery,
}

impl PartialEq for PendingDelivery {
    fn eq(&self, other: &Self) -> bool {
        self.delivery.at == other.delivery.at && self.seq == other.seq
    }
}
impl Eq for PendingDelivery {}
impl PartialOrd for PendingDelivery {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingDelivery {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest delivery pops
        // first.
        other
            .delivery
            .at
            .cmp(&self.delivery.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[derive(Debug)]
struct Client {
    link: LinkModel,
    subscriptions: Vec<String>,
    connected: bool,
    /// QoS ≥ 1 messages published while this persistent session was
    /// disconnected, awaiting replay on [`MqttBroker::reconnect`].
    session_queue: Vec<QueuedMessage>,
}

/// Returns `true` if the filter contains an MQTT wildcard level.
fn filter_has_wildcard(filter: &str) -> bool {
    filter.split('/').any(|l| l == "+" || l == "#")
}

/// Validates a concrete topic (no wildcards allowed).
fn validate_topic(topic: &str) -> Result<(), BrokerError> {
    if topic.is_empty()
        || topic.contains('+')
        || topic.contains('#')
        || topic.starts_with('/')
        || topic.ends_with('/')
    {
        return Err(BrokerError::InvalidTopic(topic.to_string()));
    }
    Ok(())
}

/// Validates a subscription filter (wildcards allowed in MQTT positions).
fn validate_filter(filter: &str) -> Result<(), BrokerError> {
    if filter.is_empty() || filter.starts_with('/') || filter.ends_with('/') {
        return Err(BrokerError::InvalidTopic(filter.to_string()));
    }
    let levels: Vec<&str> = filter.split('/').collect();
    for (i, level) in levels.iter().enumerate() {
        match *level {
            "#" if i != levels.len() - 1 => {
                return Err(BrokerError::InvalidTopic(filter.to_string()))
            }
            l if l.contains('#') && l != "#" => {
                return Err(BrokerError::InvalidTopic(filter.to_string()))
            }
            l if l.contains('+') && l != "+" => {
                return Err(BrokerError::InvalidTopic(filter.to_string()))
            }
            "" => return Err(BrokerError::InvalidTopic(filter.to_string())),
            _ => {}
        }
    }
    Ok(())
}

/// Returns `true` if `topic` matches the MQTT subscription `filter`.
pub fn topic_matches(filter: &str, topic: &str) -> bool {
    let mut filter_levels = filter.split('/');
    let mut topic_levels = topic.split('/');
    loop {
        match (filter_levels.next(), topic_levels.next()) {
            (Some("#"), _) => return true,
            (Some("+"), Some(_)) => continue,
            (Some(f), Some(t)) if f == t => continue,
            (None, None) => return true,
            _ => return false,
        }
    }
}

/// The simulated MQTT broker.
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use rtem_net::broker::{ClientId, MqttBroker, QoS};
/// use rtem_net::link::LinkConfig;
/// use rtem_sim::rng::SimRng;
/// use rtem_sim::time::SimTime;
///
/// let mut broker = MqttBroker::new(SimRng::seed_from_u64(1));
/// let device = ClientId(1);
/// let aggregator = ClientId(100);
/// broker.connect(device, LinkConfig::ideal());
/// broker.connect(aggregator, LinkConfig::ideal());
/// broker.subscribe(aggregator, "metering/+/report").unwrap();
///
/// broker
///     .publish(device, "metering/dev-1/report", Bytes::from_static(b"10mA"),
///              QoS::AtLeastOnce, SimTime::ZERO)
///     .unwrap();
/// let due = broker.drain_due(SimTime::from_secs(1));
/// assert_eq!(due.len(), 1);
/// assert_eq!(due[0].to, aggregator);
/// ```
#[derive(Debug)]
pub struct MqttBroker {
    clients: BTreeMap<ClientId, Client>,
    /// Subscription index for wildcard-free filters: filter string (which
    /// for these filters matches exactly one topic) → subscribed clients.
    /// Keeping the sets ordered by client id preserves the delivery order
    /// the unindexed broker produced by scanning the client map.
    exact_subscriptions: BTreeMap<String, BTreeSet<ClientId>>,
    /// Clients holding at least one wildcard filter; only these pay a
    /// per-publish filter match. The simulation's metering topics are all
    /// exact, so this set is empty on the hot path.
    wildcard_subscribers: BTreeSet<ClientId>,
    /// Last retained payload per topic (publish with `retain` to set,
    /// publish an empty retained payload to clear).
    retained: BTreeMap<String, RetainedMessage>,
    rng: SimRng,
    in_flight: BinaryHeap<PendingDelivery>,
    next_seq: u64,
    published: u64,
    delivered: u64,
    dropped: u64,
    queued_for_resume: u64,
    resumed: u64,
    retained_delivered: u64,
    qos2_handshake_frames: u64,
    qos2_handshake_bytes: u64,
    qos2_dup_suppressed: u64,
    max_retries: u32,
}

/// Size of a PUBREC/PUBREL/PUBCOMP control frame on the wire (MQTT fixed
/// header + packet id).
const QOS2_FRAME_BYTES: usize = 4;

/// The PUBACK/PUBREC retransmission timeout added per lost attempt.
const RETRY_TIMEOUT: rtem_sim::time::SimDuration = rtem_sim::time::SimDuration::from_millis(50);

impl MqttBroker {
    /// Creates a broker with its own RNG stream for link randomness.
    pub fn new(rng: SimRng) -> Self {
        MqttBroker {
            clients: BTreeMap::new(),
            exact_subscriptions: BTreeMap::new(),
            wildcard_subscribers: BTreeSet::new(),
            retained: BTreeMap::new(),
            rng,
            in_flight: BinaryHeap::new(),
            next_seq: 0,
            published: 0,
            delivered: 0,
            dropped: 0,
            queued_for_resume: 0,
            resumed: 0,
            retained_delivered: 0,
            qos2_handshake_frames: 0,
            qos2_handshake_bytes: 0,
            qos2_dup_suppressed: 0,
            max_retries: 5,
        }
    }

    /// Sets how many times a QoS-1 publish is retried over a lossy link
    /// before the broker gives up (default 5).
    pub fn set_max_retries(&mut self, retries: u32) {
        self.max_retries = retries;
    }

    /// Connects a client with the given access-link quality. Reconnecting an
    /// existing client keeps its subscriptions but replaces the link.
    pub fn connect(&mut self, id: ClientId, link: LinkConfig) {
        let link_model = LinkModel::new(link, self.rng.derive(id.0 ^ 0x6272_6f6b));
        match self.clients.get_mut(&id) {
            Some(client) => {
                client.link = link_model;
                client.connected = true;
            }
            None => {
                self.clients.insert(
                    id,
                    Client {
                        link: link_model,
                        subscriptions: Vec::new(),
                        connected: true,
                        session_queue: Vec::new(),
                    },
                );
            }
        }
    }

    /// Marks a client as disconnected. Its subscriptions are retained (MQTT
    /// persistent session) but no deliveries are made until it reconnects.
    pub fn disconnect(&mut self, id: ClientId) {
        if let Some(client) = self.clients.get_mut(&id) {
            client.connected = false;
        }
    }

    /// Resumes a disconnected client's session in place: subscriptions,
    /// link configuration and offered/lost counters all survive (unlike
    /// [`connect`](Self::connect), which installs a fresh link). Messages
    /// queued for the persistent session while it was disconnected are
    /// replayed in publish order, followed by the last retained payload of
    /// every subscribed topic the queue replay did not already cover.
    /// Returns `false` for unknown clients.
    pub fn reconnect(&mut self, id: ClientId, now: SimTime) -> bool {
        let Some(client) = self.clients.get_mut(&id) else {
            return false;
        };
        client.connected = true;
        let queue = std::mem::take(&mut client.session_queue);
        let mut replayed_topics: BTreeSet<String> = BTreeSet::new();
        for msg in queue {
            self.resumed += 1;
            replayed_topics.insert(msg.topic.clone());
            self.schedule_delivery(id, msg.from, &msg.topic, &msg.payload, msg.qos, false, now);
        }
        self.deliver_retained(id, None, &replayed_topics, now);
        true
    }

    /// Returns `true` if the client is currently connected.
    pub fn is_connected(&self, id: ClientId) -> bool {
        self.clients.get(&id).is_some_and(|c| c.connected)
    }

    /// The access-link configuration of a connected client, if it exists.
    pub fn link_config(&self, id: ClientId) -> Option<LinkConfig> {
        self.clients.get(&id).map(|c| *c.link.config())
    }

    /// Replaces a client's access-link quality mid-run, preserving its
    /// offered/lost counters (unlike [`connect`](Self::connect), which
    /// installs a fresh link). Returns `false` for unknown clients. Used by
    /// fault injection to degrade and restore links in place.
    pub fn reconfigure_link(&mut self, id: ClientId, config: LinkConfig) -> bool {
        match self.clients.get_mut(&id) {
            Some(client) => {
                client.link.reconfigure(config);
                true
            }
            None => false,
        }
    }

    /// Subscribes `id` to a topic filter.
    ///
    /// # Errors
    ///
    /// Returns an error if the client is unknown or the filter is invalid.
    pub fn subscribe(&mut self, id: ClientId, filter: &str) -> Result<(), BrokerError> {
        validate_filter(filter)?;
        let client = self
            .clients
            .get_mut(&id)
            .ok_or(BrokerError::UnknownClient(id))?;
        if !client.subscriptions.iter().any(|f| f == filter) {
            client.subscriptions.push(filter.to_string());
            if filter_has_wildcard(filter) {
                self.wildcard_subscribers.insert(id);
            } else {
                self.exact_subscriptions
                    .entry(filter.to_string())
                    .or_default()
                    .insert(id);
            }
        }
        Ok(())
    }

    /// Subscribes `id` to a topic filter at simulated time `now` and, like a
    /// real broker answering a fresh SUBSCRIBE, schedules delivery of the
    /// last retained payload of every topic the filter matches. Use plain
    /// [`subscribe`](Self::subscribe) for build-time wiring where no
    /// retained state can exist yet.
    ///
    /// # Errors
    ///
    /// Returns an error if the client is unknown or the filter is invalid.
    pub fn subscribe_at(
        &mut self,
        id: ClientId,
        filter: &str,
        now: SimTime,
    ) -> Result<(), BrokerError> {
        self.subscribe(id, filter)?;
        if self.clients[&id].connected {
            self.deliver_retained(id, Some(filter), &BTreeSet::new(), now);
        }
        Ok(())
    }

    /// Removes a subscription. Returns `true` if it existed.
    pub fn unsubscribe(&mut self, id: ClientId, filter: &str) -> Result<bool, BrokerError> {
        let client = self
            .clients
            .get_mut(&id)
            .ok_or(BrokerError::UnknownClient(id))?;
        let before = client.subscriptions.len();
        client.subscriptions.retain(|f| f != filter);
        let removed = client.subscriptions.len() != before;
        if removed {
            if filter_has_wildcard(filter) {
                if !client.subscriptions.iter().any(|f| filter_has_wildcard(f)) {
                    self.wildcard_subscribers.remove(&id);
                }
            } else if let Some(subscribers) = self.exact_subscriptions.get_mut(filter) {
                subscribers.remove(&id);
                if subscribers.is_empty() {
                    self.exact_subscriptions.remove(filter);
                }
            }
        }
        Ok(removed)
    }

    /// Publishes a message at simulated time `now`.
    ///
    /// Matching subscribers each receive an independent delivery whose
    /// arrival time is `now` plus their access-link delay. With
    /// [`QoS::AtLeastOnce`] a delivery lost by the link model is retried
    /// (modelling the PUBACK timeout) up to the configured retry budget;
    /// retries add one extra link round trip each. With
    /// [`QoS::ExactlyOnce`] the PUBLISH leg is retransmitted until the link
    /// carries it, followed by the PUBREC/PUBREL/PUBCOMP handshake frames.
    /// QoS ≥ 1 messages addressed to a disconnected persistent session are
    /// queued and replayed on [`reconnect`](Self::reconnect).
    ///
    /// # Errors
    ///
    /// Returns an error if the publisher is unknown or the topic is invalid.
    pub fn publish(
        &mut self,
        from: ClientId,
        topic: &str,
        payload: Bytes,
        qos: QoS,
        now: SimTime,
    ) -> Result<usize, BrokerError> {
        self.publish_with(from, topic, payload, qos, false, now)
    }

    /// Publishes a message with an explicit MQTT retain flag: `retain`
    /// stores the payload as the topic's retained message (an empty retained
    /// payload clears the slot, per MQTT), delivered to every later
    /// [`subscribe_at`](Self::subscribe_at) and every
    /// [`reconnect`](Self::reconnect)ed session subscribed to the topic.
    /// Delivery to currently-connected subscribers is identical to
    /// [`publish`](Self::publish).
    ///
    /// # Errors
    ///
    /// Returns an error if the publisher is unknown or the topic is invalid.
    pub fn publish_with(
        &mut self,
        from: ClientId,
        topic: &str,
        payload: Bytes,
        qos: QoS,
        retain: bool,
        now: SimTime,
    ) -> Result<usize, BrokerError> {
        validate_topic(topic)?;
        if !self.clients.contains_key(&from) {
            return Err(BrokerError::UnknownClient(from));
        }
        self.published += 1;
        if retain {
            if payload.is_empty() {
                self.retained.remove(topic);
            } else {
                self.retained.insert(
                    topic.to_string(),
                    RetainedMessage {
                        from,
                        payload: payload.clone(),
                        qos,
                    },
                );
            }
        }
        // Exact-filter subscribers come straight out of the index; only
        // clients holding wildcard filters are matched per publish. The
        // merge keeps client-id order (the order the unindexed broker
        // scanned the client map in) and drops duplicates — a client can
        // match through both an exact and a wildcard filter.
        let exact = self.exact_subscriptions.get(topic);
        let wildcard = self.wildcard_subscribers.iter().filter(|id| {
            self.clients[id]
                .subscriptions
                .iter()
                .any(|f| topic_matches(f, topic))
        });
        let mut subscribers: Vec<ClientId> = exact
            .into_iter()
            .flatten()
            .chain(wildcard)
            .copied()
            .filter(|&id| id != from)
            .collect();
        subscribers.sort_unstable();
        subscribers.dedup();

        let mut scheduled = 0;
        for to in subscribers {
            if !self.clients[&to].connected {
                // Persistent session: QoS ≥ 1 messages are parked for
                // replay on resume; QoS 0 is dropped on the floor, exactly
                // like a real broker. No link randomness is consumed, so
                // connected subscribers see identical draws either way.
                if qos != QoS::AtMostOnce {
                    self.queued_for_resume += 1;
                    let client = self.clients.get_mut(&to).expect("subscriber exists");
                    client.session_queue.push(QueuedMessage {
                        from,
                        topic: topic.to_string(),
                        payload: payload.clone(),
                        qos,
                    });
                }
                continue;
            }
            if self.schedule_delivery(to, from, topic, &payload, qos, false, now) {
                scheduled += 1;
            }
        }
        Ok(scheduled)
    }

    /// Schedules one delivery to the connected client `to`, applying its
    /// link model and the per-QoS retransmission policy. Returns `true` if
    /// a delivery was scheduled; `false` means the message was dropped
    /// after the QoS 0/1 retry budget, or — for QoS 2 over a fully-dead
    /// link — parked in the session queue, since a link that loses every
    /// frame is indistinguishable from a dropped session and the handshake
    /// completes when the session resumes.
    #[allow(clippy::too_many_arguments)]
    fn schedule_delivery(
        &mut self,
        to: ClientId,
        from: ClientId,
        topic: &str,
        payload: &Bytes,
        qos: QoS,
        retained: bool,
        now: SimTime,
    ) -> bool {
        let size = payload.len() + topic.len() + 8;
        if qos == QoS::ExactlyOnce {
            let blacked_out = {
                let client = self.clients.get(&to).expect("subscriber exists");
                client.link.config().loss_probability >= 1.0
            };
            if blacked_out {
                self.queued_for_resume += 1;
                let client = self.clients.get_mut(&to).expect("subscriber exists");
                client.session_queue.push(QueuedMessage {
                    from,
                    topic: topic.to_string(),
                    payload: payload.clone(),
                    qos,
                });
                return false;
            }
        }
        let mut attempt = 0u32;
        let mut extra_delay = rtem_sim::time::SimDuration::ZERO;
        let delivered = loop {
            let client = self.clients.get_mut(&to).expect("subscriber exists");
            match client.link.offer(size) {
                Transit::Delivered(d) => break Some((d + extra_delay, attempt > 0)),
                Transit::Lost => {
                    match qos {
                        QoS::AtMostOnce => break None,
                        QoS::AtLeastOnce if attempt >= self.max_retries => break None,
                        // QoS 2 retransmits until the link carries the
                        // PUBLISH: exactly-once delivery may be late but
                        // never silently abandoned.
                        _ => {}
                    }
                    // Model the PUBACK/PUBREC timeout before the
                    // retransmission.
                    extra_delay += RETRY_TIMEOUT;
                    attempt += 1;
                }
            }
        };
        match delivered {
            Some((delay, retransmission)) => {
                self.next_seq += 1;
                self.in_flight.push(PendingDelivery {
                    seq: self.next_seq,
                    delivery: Delivery {
                        to,
                        from,
                        topic: topic.to_string(),
                        payload: payload.clone(),
                        at: now + delay,
                        retransmission,
                        retained,
                    },
                });
                if qos == QoS::ExactlyOnce {
                    self.complete_qos2_handshake(to, size);
                }
                true
            }
            None => {
                self.dropped += 1;
                false
            }
        }
    }

    /// Runs the PUBREC → PUBREL → PUBCOMP legs of a completed QoS-2
    /// PUBLISH over the subscriber's link. A lost PUBREC forces the broker
    /// to retransmit the PUBLISH with the DUP flag; the subscriber already
    /// holds the packet id and suppresses the duplicate, so the handshake
    /// only surfaces as wire overhead and the dup-suppression counter —
    /// the message itself was delivered exactly once.
    fn complete_qos2_handshake(&mut self, to: ClientId, publish_size: usize) {
        for leg in 0..3u8 {
            let mut attempt = 0u32;
            loop {
                self.qos2_handshake_frames += 1;
                self.qos2_handshake_bytes += QOS2_FRAME_BYTES as u64;
                let client = self.clients.get_mut(&to).expect("subscriber exists");
                match client.link.offer(QOS2_FRAME_BYTES) {
                    Transit::Delivered(_) => break,
                    Transit::Lost => {
                        if leg == 0 {
                            self.qos2_dup_suppressed += 1;
                            self.qos2_handshake_frames += 1;
                            self.qos2_handshake_bytes += publish_size as u64;
                        }
                        attempt += 1;
                        if attempt > self.max_retries {
                            break;
                        }
                    }
                }
            }
        }
    }

    /// Schedules delivery of every retained message matching `id`'s
    /// subscriptions (or just the one `filter`, when given), skipping
    /// topics in `skip` — the topics a session-resume queue replay already
    /// covered with a newer payload.
    fn deliver_retained(
        &mut self,
        id: ClientId,
        only_filter: Option<&str>,
        skip: &BTreeSet<String>,
        now: SimTime,
    ) {
        let matching: Vec<(String, RetainedMessage)> = {
            let client = &self.clients[&id];
            self.retained
                .iter()
                .filter(|(topic, _)| !skip.contains(topic.as_str()))
                .filter(|(topic, _)| match only_filter {
                    Some(filter) => topic_matches(filter, topic),
                    None => client
                        .subscriptions
                        .iter()
                        .any(|filter| topic_matches(filter, topic)),
                })
                .map(|(topic, msg)| (topic.clone(), msg.clone()))
                .collect()
        };
        for (topic, msg) in matching {
            self.retained_delivered += 1;
            self.schedule_delivery(id, msg.from, &topic, &msg.payload, msg.qos, true, now);
        }
    }

    /// Removes and returns every delivery due at or before `now`, ordered by
    /// arrival time.
    pub fn drain_due(&mut self, now: SimTime) -> Vec<Delivery> {
        let mut due: Vec<Delivery> = Vec::new();
        while let Some(pending) = self.in_flight.peek() {
            if pending.delivery.at > now {
                break;
            }
            due.push(self.in_flight.pop().expect("peeked delivery").delivery);
        }
        self.delivered += due.len() as u64;
        due
    }

    /// Earliest pending delivery time, if any (lets the simulation loop know
    /// when to wake the broker).
    pub fn next_delivery_at(&self) -> Option<SimTime> {
        self.in_flight.peek().map(|p| p.delivery.at)
    }

    /// Number of messages accepted by `publish`.
    pub fn published(&self) -> u64 {
        self.published
    }

    /// Number of deliveries handed out by `drain_due`.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of deliveries abandoned after exhausting retries.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of QoS ≥ 1 messages parked for disconnected persistent
    /// sessions (including QoS-2 messages parked for blacked-out links).
    pub fn queued_for_resume(&self) -> u64 {
        self.queued_for_resume
    }

    /// Number of parked messages replayed by session resumes.
    pub fn resumed(&self) -> u64 {
        self.resumed
    }

    /// Number of retained-message deliveries scheduled for fresh
    /// subscriptions and resumed sessions.
    pub fn retained_delivered(&self) -> u64 {
        self.retained_delivered
    }

    /// Number of messages currently parked for the client's persistent
    /// session. `None` for unknown clients.
    pub fn session_queue_len(&self, id: ClientId) -> Option<usize> {
        self.clients.get(&id).map(|c| c.session_queue.len())
    }

    /// The current retained payload of a topic, if any.
    pub fn retained_payload(&self, topic: &str) -> Option<&Bytes> {
        self.retained.get(topic).map(|msg| &msg.payload)
    }

    /// Number of topics currently holding a retained message.
    pub fn retained_topics(&self) -> usize {
        self.retained.len()
    }

    /// PUBREC/PUBREL/PUBCOMP frames (plus DUP PUBLISH retransmissions)
    /// sent for QoS-2 handshakes.
    pub fn qos2_handshake_frames(&self) -> u64 {
        self.qos2_handshake_frames
    }

    /// Bytes of QoS-2 handshake traffic — the wire cost of exactly-once
    /// over at-least-once.
    pub fn qos2_handshake_bytes(&self) -> u64 {
        self.qos2_handshake_bytes
    }

    /// Duplicate QoS-2 PUBLISHes forced by lost PUBRECs and suppressed by
    /// packet id on the subscriber side.
    pub fn qos2_dup_suppressed(&self) -> u64 {
        self.qos2_dup_suppressed
    }

    /// Merged traffic counters of every client link on this broker.
    pub fn link_totals(&self) -> LinkTotals {
        let mut totals = LinkTotals::default();
        for client in self.clients.values() {
            totals += client.link.totals();
        }
        totals
    }

    /// Traffic counters of one client's link. `None` for unknown clients.
    pub fn client_link_totals(&self, id: ClientId) -> Option<LinkTotals> {
        self.clients.get(&id).map(|c| c.link.totals())
    }

    /// Total messages currently parked across every persistent session.
    pub fn session_queue_total(&self) -> usize {
        self.clients.values().map(|c| c.session_queue.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtem_sim::time::SimDuration;

    fn broker() -> MqttBroker {
        MqttBroker::new(SimRng::seed_from_u64(3))
    }

    #[test]
    fn topic_matching_rules() {
        assert!(topic_matches("a/b/c", "a/b/c"));
        assert!(topic_matches("a/+/c", "a/b/c"));
        assert!(topic_matches("a/#", "a/b/c"));
        assert!(topic_matches("#", "anything/at/all"));
        assert!(!topic_matches("a/b", "a/b/c"));
        assert!(!topic_matches("a/+/c", "a/b/d"));
        assert!(!topic_matches("a/b/c", "a/b"));
    }

    #[test]
    fn publish_reaches_matching_subscriber() {
        let mut b = broker();
        b.connect(ClientId(1), LinkConfig::ideal());
        b.connect(ClientId(2), LinkConfig::ideal());
        b.subscribe(ClientId(2), "metering/+/report").unwrap();
        let n = b
            .publish(
                ClientId(1),
                "metering/dev-1/report",
                Bytes::from_static(b"x"),
                QoS::AtMostOnce,
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(n, 1);
        let due = b.drain_due(SimTime::from_secs(1));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].to, ClientId(2));
        assert_eq!(due[0].from, ClientId(1));
        assert_eq!(b.delivered(), 1);
    }

    #[test]
    fn publisher_does_not_receive_its_own_message() {
        let mut b = broker();
        b.connect(ClientId(1), LinkConfig::ideal());
        b.subscribe(ClientId(1), "#").unwrap();
        let n = b
            .publish(
                ClientId(1),
                "t",
                Bytes::new(),
                QoS::AtMostOnce,
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn non_matching_subscriber_gets_nothing() {
        let mut b = broker();
        b.connect(ClientId(1), LinkConfig::ideal());
        b.connect(ClientId(2), LinkConfig::ideal());
        b.subscribe(ClientId(2), "other/topic").unwrap();
        let n = b
            .publish(
                ClientId(1),
                "metering/x",
                Bytes::new(),
                QoS::AtMostOnce,
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn disconnected_subscriber_is_skipped() {
        let mut b = broker();
        b.connect(ClientId(1), LinkConfig::ideal());
        b.connect(ClientId(2), LinkConfig::ideal());
        b.subscribe(ClientId(2), "#").unwrap();
        b.disconnect(ClientId(2));
        assert!(!b.is_connected(ClientId(2)));
        let n = b
            .publish(
                ClientId(1),
                "t",
                Bytes::new(),
                QoS::AtMostOnce,
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(n, 0);
        // Reconnect keeps the subscription.
        b.connect(ClientId(2), LinkConfig::ideal());
        let n = b
            .publish(
                ClientId(1),
                "t",
                Bytes::new(),
                QoS::AtMostOnce,
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn deliveries_respect_link_latency() {
        let mut b = broker();
        b.connect(ClientId(1), LinkConfig::ideal());
        let slow = LinkConfig {
            base_latency: SimDuration::from_millis(10),
            jitter: SimDuration::ZERO,
            loss_probability: 0.0,
            bandwidth_bps: None,
        };
        b.connect(ClientId(2), slow);
        b.subscribe(ClientId(2), "#").unwrap();
        b.publish(
            ClientId(1),
            "t",
            Bytes::new(),
            QoS::AtMostOnce,
            SimTime::ZERO,
        )
        .unwrap();
        assert!(b.drain_due(SimTime::from_millis(5)).is_empty());
        assert_eq!(b.next_delivery_at(), Some(SimTime::from_millis(10)));
        let due = b.drain_due(SimTime::from_millis(10));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].at, SimTime::from_millis(10));
    }

    #[test]
    fn qos1_retries_on_lossy_link_qos0_does_not() {
        let lossy = LinkConfig {
            base_latency: SimDuration::from_millis(1),
            jitter: SimDuration::ZERO,
            loss_probability: 0.6,
            bandwidth_bps: None,
        };
        let mut b = broker();
        b.connect(ClientId(1), LinkConfig::ideal());
        b.connect(ClientId(2), lossy);
        b.subscribe(ClientId(2), "#").unwrap();
        let mut qos1_delivered = 0;
        let mut qos0_delivered = 0;
        for i in 0..200 {
            qos1_delivered += b
                .publish(
                    ClientId(1),
                    "t",
                    Bytes::new(),
                    QoS::AtLeastOnce,
                    SimTime::from_secs(i),
                )
                .unwrap();
            qos0_delivered += b
                .publish(
                    ClientId(1),
                    "t",
                    Bytes::new(),
                    QoS::AtMostOnce,
                    SimTime::from_secs(i),
                )
                .unwrap();
        }
        assert!(qos1_delivered > qos0_delivered);
        // With a 0.6 loss rate and 5 retries the per-publish failure
        // probability is 0.6^6 ≈ 4.7 %, so ≈ 190/200 should get through.
        assert!(
            qos1_delivered >= 175,
            "QoS1 should almost always deliver, got {qos1_delivered}"
        );
        assert!(b.dropped() > 0);
    }

    #[test]
    fn retransmissions_are_flagged_and_delayed() {
        let lossy = LinkConfig {
            base_latency: SimDuration::from_millis(1),
            jitter: SimDuration::ZERO,
            loss_probability: 0.5,
            bandwidth_bps: None,
        };
        let mut b = broker();
        b.connect(ClientId(1), LinkConfig::ideal());
        b.connect(ClientId(2), lossy);
        b.subscribe(ClientId(2), "#").unwrap();
        for i in 0..100 {
            b.publish(
                ClientId(1),
                "t",
                Bytes::new(),
                QoS::AtLeastOnce,
                SimTime::from_secs(i),
            )
            .unwrap();
        }
        let due = b.drain_due(SimTime::from_secs(1000));
        assert!(due.iter().any(|d| d.retransmission));
        for d in due.iter().filter(|d| d.retransmission) {
            // Retransmitted deliveries carry at least one 50 ms PUBACK timeout.
            let offset_ms = (d.at.as_micros() % 1_000_000) / 1000;
            assert!(
                offset_ms >= 51,
                "retransmission arrived too early: {offset_ms} ms"
            );
        }
    }

    #[test]
    fn reconnect_resumes_the_session_without_touching_the_link() {
        let mut b = broker();
        b.connect(ClientId(1), LinkConfig::ideal());
        b.connect(ClientId(2), LinkConfig::ideal());
        b.subscribe(ClientId(2), "#").unwrap();
        // Degrade mid-session, then bounce the client.
        let slow = LinkConfig {
            base_latency: SimDuration::from_millis(25),
            ..LinkConfig::ideal()
        };
        b.reconfigure_link(ClientId(2), slow);
        b.disconnect(ClientId(2));
        assert!(b.reconnect(ClientId(2), SimTime::ZERO));
        assert!(b.is_connected(ClientId(2)));
        // Subscription and the degraded link both survived the bounce.
        b.publish(
            ClientId(1),
            "t",
            Bytes::new(),
            QoS::AtMostOnce,
            SimTime::ZERO,
        )
        .unwrap();
        assert_eq!(b.next_delivery_at(), Some(SimTime::from_millis(25)));
        assert!(!b.reconnect(ClientId(9), SimTime::ZERO));
    }

    #[test]
    fn qos1_publish_while_disconnected_is_queued_and_replayed_once() {
        let mut b = broker();
        b.connect(ClientId(1), LinkConfig::ideal());
        b.connect(ClientId(2), LinkConfig::ideal());
        b.subscribe(ClientId(2), "cfg/dev-2").unwrap();
        b.disconnect(ClientId(2));
        // Published into the disconnected persistent session: not scheduled,
        // not dropped — parked.
        let n = b
            .publish(
                ClientId(1),
                "cfg/dev-2",
                Bytes::from_static(b"interval=200"),
                QoS::AtLeastOnce,
                SimTime::from_secs(1),
            )
            .unwrap();
        assert_eq!(n, 0);
        assert_eq!(b.session_queue_len(ClientId(2)), Some(1));
        assert_eq!(b.dropped(), 0);
        assert!(b.drain_due(SimTime::from_secs(5)).is_empty());
        // Resume: the parked message is replayed exactly once.
        assert!(b.reconnect(ClientId(2), SimTime::from_secs(6)));
        assert_eq!(b.session_queue_len(ClientId(2)), Some(0));
        let due = b.drain_due(SimTime::from_secs(10));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].payload.as_ref(), b"interval=200");
        assert!(due[0].at >= SimTime::from_secs(6));
        assert_eq!(b.resumed(), 1);
        // No second copy ever appears.
        assert!(b.drain_due(SimTime::from_secs(1000)).is_empty());
    }

    #[test]
    fn qos0_publish_while_disconnected_stays_dropped() {
        let mut b = broker();
        b.connect(ClientId(1), LinkConfig::ideal());
        b.connect(ClientId(2), LinkConfig::ideal());
        b.subscribe(ClientId(2), "t").unwrap();
        b.disconnect(ClientId(2));
        b.publish(
            ClientId(1),
            "t",
            Bytes::new(),
            QoS::AtMostOnce,
            SimTime::ZERO,
        )
        .unwrap();
        assert_eq!(b.session_queue_len(ClientId(2)), Some(0));
        b.reconnect(ClientId(2), SimTime::from_secs(1));
        assert!(b.drain_due(SimTime::from_secs(100)).is_empty());
    }

    #[test]
    fn qos2_always_delivers_exactly_once_on_a_lossy_link() {
        let lossy = LinkConfig {
            base_latency: SimDuration::from_millis(1),
            jitter: SimDuration::ZERO,
            loss_probability: 0.6,
            bandwidth_bps: None,
        };
        let mut b = broker();
        b.connect(ClientId(1), LinkConfig::ideal());
        b.connect(ClientId(2), lossy);
        b.subscribe(ClientId(2), "#").unwrap();
        let mut scheduled = 0;
        for i in 0..200 {
            scheduled += b
                .publish(
                    ClientId(1),
                    "cmd",
                    Bytes::from_static(b"go"),
                    QoS::ExactlyOnce,
                    SimTime::from_secs(i),
                )
                .unwrap();
        }
        // Exactly once per publish: never dropped, never duplicated.
        assert_eq!(scheduled, 200);
        assert_eq!(b.dropped(), 0);
        let due = b.drain_due(SimTime::from_secs(10_000));
        assert_eq!(due.len(), 200);
        // The four-way handshake ran and lost PUBRECs forced suppressed
        // duplicates at this loss rate.
        assert!(b.qos2_handshake_frames() >= 600);
        assert!(b.qos2_handshake_bytes() > 0);
        assert!(b.qos2_dup_suppressed() > 0);
    }

    #[test]
    fn qos2_on_a_dead_link_parks_for_session_resume() {
        let dead = LinkConfig {
            loss_probability: 1.0,
            ..LinkConfig::ideal()
        };
        let mut b = broker();
        b.connect(ClientId(1), LinkConfig::ideal());
        b.connect(ClientId(2), dead);
        b.subscribe(ClientId(2), "cmd").unwrap();
        let n = b
            .publish(
                ClientId(1),
                "cmd",
                Bytes::from_static(b"go"),
                QoS::ExactlyOnce,
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(n, 0);
        assert_eq!(b.dropped(), 0, "QoS 2 is never silently abandoned");
        assert_eq!(b.session_queue_len(ClientId(2)), Some(1));
        // The link heals and the session bounces: the command arrives.
        b.reconfigure_link(ClientId(2), LinkConfig::ideal());
        b.disconnect(ClientId(2));
        b.reconnect(ClientId(2), SimTime::from_secs(30));
        let due = b.drain_due(SimTime::from_secs(60));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].payload.as_ref(), b"go");
    }

    #[test]
    fn retained_message_reaches_later_subscribers_and_resumed_sessions() {
        let mut b = broker();
        b.connect(ClientId(1), LinkConfig::ideal());
        b.connect(ClientId(2), LinkConfig::ideal());
        b.connect(ClientId(3), LinkConfig::ideal());
        b.subscribe(ClientId(2), "cfg/fleet").unwrap();
        // Retained config published: the live subscriber gets it normally.
        b.publish_with(
            ClientId(1),
            "cfg/fleet",
            Bytes::from_static(b"baud=1200"),
            QoS::AtLeastOnce,
            true,
            SimTime::ZERO,
        )
        .unwrap();
        assert_eq!(b.drain_due(SimTime::from_secs(1)).len(), 1);
        assert_eq!(
            b.retained_payload("cfg/fleet").map(|p| p.as_ref()),
            Some(&b"baud=1200"[..])
        );
        // A later subscriber receives the retained copy, flagged as such.
        b.subscribe_at(ClientId(3), "cfg/fleet", SimTime::from_secs(2))
            .unwrap();
        let due = b.drain_due(SimTime::from_secs(3));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].to, ClientId(3));
        assert!(due[0].retained);
        assert_eq!(due[0].payload.as_ref(), b"baud=1200");
        // A bounced session re-receives it on resume.
        b.disconnect(ClientId(2));
        b.reconnect(ClientId(2), SimTime::from_secs(4));
        let due = b.drain_due(SimTime::from_secs(5));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].to, ClientId(2));
        assert!(due[0].retained);
        assert_eq!(b.retained_delivered(), 2);
    }

    #[test]
    fn retained_last_writer_wins_and_empty_payload_clears() {
        let mut b = broker();
        b.connect(ClientId(1), LinkConfig::ideal());
        b.connect(ClientId(2), LinkConfig::ideal());
        for payload in [&b"v1"[..], &b"v2"[..], &b"v3"[..]] {
            b.publish_with(
                ClientId(1),
                "cfg",
                Bytes::from(payload.to_vec()),
                QoS::AtLeastOnce,
                true,
                SimTime::ZERO,
            )
            .unwrap();
        }
        b.subscribe_at(ClientId(2), "cfg", SimTime::from_secs(1))
            .unwrap();
        let due = b.drain_due(SimTime::from_secs(2));
        assert_eq!(due.len(), 1, "only the last retained payload survives");
        assert_eq!(due[0].payload.as_ref(), b"v3");
        // An empty retained publish clears the slot.
        b.publish_with(
            ClientId(1),
            "cfg",
            Bytes::new(),
            QoS::AtLeastOnce,
            true,
            SimTime::from_secs(3),
        )
        .unwrap();
        assert_eq!(b.retained_payload("cfg"), None);
        assert_eq!(b.retained_topics(), 0);
        b.disconnect(ClientId(2));
        b.reconnect(ClientId(2), SimTime::from_secs(4));
        // Only the queued live copy of the clearing publish replays; no
        // retained copy exists any more.
        let due = b.drain_due(SimTime::from_secs(1000));
        assert!(due.iter().all(|d| !d.retained));
    }

    #[test]
    fn queue_replay_supersedes_the_retained_copy_of_the_same_topic() {
        let mut b = broker();
        b.connect(ClientId(1), LinkConfig::ideal());
        b.connect(ClientId(2), LinkConfig::ideal());
        b.subscribe(ClientId(2), "cfg").unwrap();
        b.disconnect(ClientId(2));
        b.publish_with(
            ClientId(1),
            "cfg",
            Bytes::from_static(b"new"),
            QoS::AtLeastOnce,
            true,
            SimTime::from_secs(1),
        )
        .unwrap();
        b.reconnect(ClientId(2), SimTime::from_secs(2));
        let due = b.drain_due(SimTime::from_secs(10));
        // One copy, not two: the queued live publish already carries the
        // retained topic's latest payload.
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].payload.as_ref(), b"new");
    }

    #[test]
    fn reconfigure_link_degrades_and_restores_in_place() {
        let mut b = broker();
        b.connect(ClientId(1), LinkConfig::ideal());
        b.connect(ClientId(2), LinkConfig::ideal());
        b.subscribe(ClientId(2), "#").unwrap();
        assert_eq!(b.link_config(ClientId(2)), Some(LinkConfig::ideal()));
        // Degrade to total loss: QoS0 publishes stop arriving.
        let dead = LinkConfig {
            loss_probability: 1.0,
            ..LinkConfig::ideal()
        };
        assert!(b.reconfigure_link(ClientId(2), dead));
        let n = b
            .publish(
                ClientId(1),
                "t",
                Bytes::new(),
                QoS::AtMostOnce,
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(n, 0);
        // Restore: traffic flows again, subscriptions intact.
        assert!(b.reconfigure_link(ClientId(2), LinkConfig::ideal()));
        let n = b
            .publish(
                ClientId(1),
                "t",
                Bytes::new(),
                QoS::AtMostOnce,
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(n, 1);
        assert!(!b.reconfigure_link(ClientId(9), LinkConfig::ideal()));
        assert_eq!(b.link_config(ClientId(9)), None);
    }

    #[test]
    fn unknown_client_errors() {
        let mut b = broker();
        assert_eq!(
            b.subscribe(ClientId(9), "t"),
            Err(BrokerError::UnknownClient(ClientId(9)))
        );
        assert_eq!(
            b.publish(
                ClientId(9),
                "t",
                Bytes::new(),
                QoS::AtMostOnce,
                SimTime::ZERO
            ),
            Err(BrokerError::UnknownClient(ClientId(9)))
        );
        assert!(b.unsubscribe(ClientId(9), "t").is_err());
    }

    #[test]
    fn invalid_topics_and_filters_are_rejected() {
        let mut b = broker();
        b.connect(ClientId(1), LinkConfig::ideal());
        assert!(matches!(
            b.publish(
                ClientId(1),
                "a/+/b",
                Bytes::new(),
                QoS::AtMostOnce,
                SimTime::ZERO
            ),
            Err(BrokerError::InvalidTopic(_))
        ));
        assert!(matches!(
            b.publish(
                ClientId(1),
                "",
                Bytes::new(),
                QoS::AtMostOnce,
                SimTime::ZERO
            ),
            Err(BrokerError::InvalidTopic(_))
        ));
        assert!(matches!(
            b.subscribe(ClientId(1), "a/#/b"),
            Err(BrokerError::InvalidTopic(_))
        ));
        assert!(matches!(
            b.subscribe(ClientId(1), "a//b"),
            Err(BrokerError::InvalidTopic(_))
        ));
        assert!(b.subscribe(ClientId(1), "a/+/b/#").is_ok());
    }

    #[test]
    fn unsubscribe_stops_deliveries() {
        let mut b = broker();
        b.connect(ClientId(1), LinkConfig::ideal());
        b.connect(ClientId(2), LinkConfig::ideal());
        b.subscribe(ClientId(2), "t").unwrap();
        assert!(b.unsubscribe(ClientId(2), "t").unwrap());
        assert!(!b.unsubscribe(ClientId(2), "t").unwrap());
        let n = b
            .publish(
                ClientId(1),
                "t",
                Bytes::new(),
                QoS::AtMostOnce,
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(n, 0);
    }
}
