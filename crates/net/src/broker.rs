//! MQTT-style publish/subscribe broker.
//!
//! The paper transfers consumption data from devices to the aggregator over
//! MQTT on Wi-Fi. This module models the part of MQTT the architecture
//! relies on: named clients, hierarchical topics with `+`/`#` wildcards,
//! QoS 0/1 publishes, and per-client link quality (latency, jitter, loss)
//! applied to every delivery. Delivery is integrated with the discrete-event
//! simulation by letting the caller drain messages that are due at the
//! current simulated time.

use crate::link::{LinkConfig, LinkModel, Transit};
use bytes::Bytes;
use rtem_sim::rng::SimRng;
use rtem_sim::time::SimTime;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::error::Error;
use std::fmt;

/// Identifier of a broker client (a device or an aggregator endpoint).
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct ClientId(pub u64);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client-{}", self.0)
    }
}

/// MQTT quality-of-service level (QoS 2 is not used by the architecture).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QoS {
    /// Fire and forget.
    AtMostOnce,
    /// Delivery is retried until the subscriber-side ack is observed.
    AtLeastOnce,
}

/// Errors returned by broker operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrokerError {
    /// The referenced client has not connected.
    UnknownClient(ClientId),
    /// A topic or filter failed validation.
    InvalidTopic(String),
}

impl fmt::Display for BrokerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BrokerError::UnknownClient(id) => write!(f, "unknown client {id}"),
            BrokerError::InvalidTopic(t) => write!(f, "invalid topic '{t}'"),
        }
    }
}

impl Error for BrokerError {}

/// A message delivered to a subscriber.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Delivery {
    /// Subscriber receiving the message.
    pub to: ClientId,
    /// Publisher that sent it.
    pub from: ClientId,
    /// Topic the message was published on.
    pub topic: String,
    /// Message payload.
    pub payload: Bytes,
    /// Simulated time at which the subscriber receives the message.
    pub at: SimTime,
    /// Whether this delivery is a QoS-1 retransmission.
    pub retransmission: bool,
}

/// A delivery waiting in the time-ordered in-flight queue. Ordered by
/// `(at, seq)` — arrival time with the publish sequence as tie-breaker —
/// which reproduces exactly the order the old linear queue produced with
/// its stable sort-by-arrival over insertion order.
#[derive(Debug, Clone)]
struct PendingDelivery {
    seq: u64,
    delivery: Delivery,
}

impl PartialEq for PendingDelivery {
    fn eq(&self, other: &Self) -> bool {
        self.delivery.at == other.delivery.at && self.seq == other.seq
    }
}
impl Eq for PendingDelivery {}
impl PartialOrd for PendingDelivery {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingDelivery {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest delivery pops
        // first.
        other
            .delivery
            .at
            .cmp(&self.delivery.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[derive(Debug)]
struct Client {
    link: LinkModel,
    subscriptions: Vec<String>,
    connected: bool,
}

/// Returns `true` if the filter contains an MQTT wildcard level.
fn filter_has_wildcard(filter: &str) -> bool {
    filter.split('/').any(|l| l == "+" || l == "#")
}

/// Validates a concrete topic (no wildcards allowed).
fn validate_topic(topic: &str) -> Result<(), BrokerError> {
    if topic.is_empty()
        || topic.contains('+')
        || topic.contains('#')
        || topic.starts_with('/')
        || topic.ends_with('/')
    {
        return Err(BrokerError::InvalidTopic(topic.to_string()));
    }
    Ok(())
}

/// Validates a subscription filter (wildcards allowed in MQTT positions).
fn validate_filter(filter: &str) -> Result<(), BrokerError> {
    if filter.is_empty() || filter.starts_with('/') || filter.ends_with('/') {
        return Err(BrokerError::InvalidTopic(filter.to_string()));
    }
    let levels: Vec<&str> = filter.split('/').collect();
    for (i, level) in levels.iter().enumerate() {
        match *level {
            "#" if i != levels.len() - 1 => {
                return Err(BrokerError::InvalidTopic(filter.to_string()))
            }
            l if l.contains('#') && l != "#" => {
                return Err(BrokerError::InvalidTopic(filter.to_string()))
            }
            l if l.contains('+') && l != "+" => {
                return Err(BrokerError::InvalidTopic(filter.to_string()))
            }
            "" => return Err(BrokerError::InvalidTopic(filter.to_string())),
            _ => {}
        }
    }
    Ok(())
}

/// Returns `true` if `topic` matches the MQTT subscription `filter`.
pub fn topic_matches(filter: &str, topic: &str) -> bool {
    let mut filter_levels = filter.split('/');
    let mut topic_levels = topic.split('/');
    loop {
        match (filter_levels.next(), topic_levels.next()) {
            (Some("#"), _) => return true,
            (Some("+"), Some(_)) => continue,
            (Some(f), Some(t)) if f == t => continue,
            (None, None) => return true,
            _ => return false,
        }
    }
}

/// The simulated MQTT broker.
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use rtem_net::broker::{ClientId, MqttBroker, QoS};
/// use rtem_net::link::LinkConfig;
/// use rtem_sim::rng::SimRng;
/// use rtem_sim::time::SimTime;
///
/// let mut broker = MqttBroker::new(SimRng::seed_from_u64(1));
/// let device = ClientId(1);
/// let aggregator = ClientId(100);
/// broker.connect(device, LinkConfig::ideal());
/// broker.connect(aggregator, LinkConfig::ideal());
/// broker.subscribe(aggregator, "metering/+/report").unwrap();
///
/// broker
///     .publish(device, "metering/dev-1/report", Bytes::from_static(b"10mA"),
///              QoS::AtLeastOnce, SimTime::ZERO)
///     .unwrap();
/// let due = broker.drain_due(SimTime::from_secs(1));
/// assert_eq!(due.len(), 1);
/// assert_eq!(due[0].to, aggregator);
/// ```
#[derive(Debug)]
pub struct MqttBroker {
    clients: BTreeMap<ClientId, Client>,
    /// Subscription index for wildcard-free filters: filter string (which
    /// for these filters matches exactly one topic) → subscribed clients.
    /// Keeping the sets ordered by client id preserves the delivery order
    /// the unindexed broker produced by scanning the client map.
    exact_subscriptions: BTreeMap<String, BTreeSet<ClientId>>,
    /// Clients holding at least one wildcard filter; only these pay a
    /// per-publish filter match. The simulation's metering topics are all
    /// exact, so this set is empty on the hot path.
    wildcard_subscribers: BTreeSet<ClientId>,
    rng: SimRng,
    in_flight: BinaryHeap<PendingDelivery>,
    next_seq: u64,
    published: u64,
    delivered: u64,
    dropped: u64,
    max_retries: u32,
}

impl MqttBroker {
    /// Creates a broker with its own RNG stream for link randomness.
    pub fn new(rng: SimRng) -> Self {
        MqttBroker {
            clients: BTreeMap::new(),
            exact_subscriptions: BTreeMap::new(),
            wildcard_subscribers: BTreeSet::new(),
            rng,
            in_flight: BinaryHeap::new(),
            next_seq: 0,
            published: 0,
            delivered: 0,
            dropped: 0,
            max_retries: 5,
        }
    }

    /// Sets how many times a QoS-1 publish is retried over a lossy link
    /// before the broker gives up (default 5).
    pub fn set_max_retries(&mut self, retries: u32) {
        self.max_retries = retries;
    }

    /// Connects a client with the given access-link quality. Reconnecting an
    /// existing client keeps its subscriptions but replaces the link.
    pub fn connect(&mut self, id: ClientId, link: LinkConfig) {
        let link_model = LinkModel::new(link, self.rng.derive(id.0 ^ 0x6272_6f6b));
        match self.clients.get_mut(&id) {
            Some(client) => {
                client.link = link_model;
                client.connected = true;
            }
            None => {
                self.clients.insert(
                    id,
                    Client {
                        link: link_model,
                        subscriptions: Vec::new(),
                        connected: true,
                    },
                );
            }
        }
    }

    /// Marks a client as disconnected. Its subscriptions are retained (MQTT
    /// persistent session) but no deliveries are made until it reconnects.
    pub fn disconnect(&mut self, id: ClientId) {
        if let Some(client) = self.clients.get_mut(&id) {
            client.connected = false;
        }
    }

    /// Resumes a disconnected client's session in place: subscriptions,
    /// link configuration and offered/lost counters all survive (unlike
    /// [`connect`](Self::connect), which installs a fresh link). Returns
    /// `false` for unknown clients.
    pub fn reconnect(&mut self, id: ClientId) -> bool {
        match self.clients.get_mut(&id) {
            Some(client) => {
                client.connected = true;
                true
            }
            None => false,
        }
    }

    /// Returns `true` if the client is currently connected.
    pub fn is_connected(&self, id: ClientId) -> bool {
        self.clients.get(&id).is_some_and(|c| c.connected)
    }

    /// The access-link configuration of a connected client, if it exists.
    pub fn link_config(&self, id: ClientId) -> Option<LinkConfig> {
        self.clients.get(&id).map(|c| *c.link.config())
    }

    /// Replaces a client's access-link quality mid-run, preserving its
    /// offered/lost counters (unlike [`connect`](Self::connect), which
    /// installs a fresh link). Returns `false` for unknown clients. Used by
    /// fault injection to degrade and restore links in place.
    pub fn reconfigure_link(&mut self, id: ClientId, config: LinkConfig) -> bool {
        match self.clients.get_mut(&id) {
            Some(client) => {
                client.link.reconfigure(config);
                true
            }
            None => false,
        }
    }

    /// Subscribes `id` to a topic filter.
    ///
    /// # Errors
    ///
    /// Returns an error if the client is unknown or the filter is invalid.
    pub fn subscribe(&mut self, id: ClientId, filter: &str) -> Result<(), BrokerError> {
        validate_filter(filter)?;
        let client = self
            .clients
            .get_mut(&id)
            .ok_or(BrokerError::UnknownClient(id))?;
        if !client.subscriptions.iter().any(|f| f == filter) {
            client.subscriptions.push(filter.to_string());
            if filter_has_wildcard(filter) {
                self.wildcard_subscribers.insert(id);
            } else {
                self.exact_subscriptions
                    .entry(filter.to_string())
                    .or_default()
                    .insert(id);
            }
        }
        Ok(())
    }

    /// Removes a subscription. Returns `true` if it existed.
    pub fn unsubscribe(&mut self, id: ClientId, filter: &str) -> Result<bool, BrokerError> {
        let client = self
            .clients
            .get_mut(&id)
            .ok_or(BrokerError::UnknownClient(id))?;
        let before = client.subscriptions.len();
        client.subscriptions.retain(|f| f != filter);
        let removed = client.subscriptions.len() != before;
        if removed {
            if filter_has_wildcard(filter) {
                if !client.subscriptions.iter().any(|f| filter_has_wildcard(f)) {
                    self.wildcard_subscribers.remove(&id);
                }
            } else if let Some(subscribers) = self.exact_subscriptions.get_mut(filter) {
                subscribers.remove(&id);
                if subscribers.is_empty() {
                    self.exact_subscriptions.remove(filter);
                }
            }
        }
        Ok(removed)
    }

    /// Publishes a message at simulated time `now`.
    ///
    /// Matching subscribers each receive an independent delivery whose
    /// arrival time is `now` plus their access-link delay. With
    /// [`QoS::AtLeastOnce`] a delivery lost by the link model is retried
    /// (modelling the PUBACK timeout) up to the configured retry budget;
    /// retries add one extra link round trip each.
    ///
    /// # Errors
    ///
    /// Returns an error if the publisher is unknown or the topic is invalid.
    pub fn publish(
        &mut self,
        from: ClientId,
        topic: &str,
        payload: Bytes,
        qos: QoS,
        now: SimTime,
    ) -> Result<usize, BrokerError> {
        validate_topic(topic)?;
        if !self.clients.contains_key(&from) {
            return Err(BrokerError::UnknownClient(from));
        }
        self.published += 1;
        // Exact-filter subscribers come straight out of the index; only
        // clients holding wildcard filters are matched per publish. The
        // merge keeps client-id order (the order the unindexed broker
        // scanned the client map in) and drops duplicates — a client can
        // match through both an exact and a wildcard filter.
        let exact = self.exact_subscriptions.get(topic);
        let wildcard = self.wildcard_subscribers.iter().filter(|id| {
            self.clients[id]
                .subscriptions
                .iter()
                .any(|f| topic_matches(f, topic))
        });
        let mut subscribers: Vec<ClientId> = exact
            .into_iter()
            .flatten()
            .chain(wildcard)
            .copied()
            .filter(|&id| id != from && self.clients[&id].connected)
            .collect();
        subscribers.sort_unstable();
        subscribers.dedup();

        let mut scheduled = 0;
        for to in subscribers {
            let size = payload.len() + topic.len() + 8;
            let mut attempt = 0u32;
            let mut extra_delay = rtem_sim::time::SimDuration::ZERO;
            let delivered = loop {
                let client = self.clients.get_mut(&to).expect("subscriber exists");
                match client.link.offer(size) {
                    Transit::Delivered(d) => break Some((d + extra_delay, attempt > 0)),
                    Transit::Lost => {
                        if qos == QoS::AtMostOnce || attempt >= self.max_retries {
                            break None;
                        }
                        // Model the PUBACK timeout before the retransmission.
                        extra_delay += rtem_sim::time::SimDuration::from_millis(50);
                        attempt += 1;
                    }
                }
            };
            match delivered {
                Some((delay, retransmission)) => {
                    self.next_seq += 1;
                    self.in_flight.push(PendingDelivery {
                        seq: self.next_seq,
                        delivery: Delivery {
                            to,
                            from,
                            topic: topic.to_string(),
                            payload: payload.clone(),
                            at: now + delay,
                            retransmission,
                        },
                    });
                    scheduled += 1;
                }
                None => self.dropped += 1,
            }
        }
        Ok(scheduled)
    }

    /// Removes and returns every delivery due at or before `now`, ordered by
    /// arrival time.
    pub fn drain_due(&mut self, now: SimTime) -> Vec<Delivery> {
        let mut due: Vec<Delivery> = Vec::new();
        while let Some(pending) = self.in_flight.peek() {
            if pending.delivery.at > now {
                break;
            }
            due.push(self.in_flight.pop().expect("peeked delivery").delivery);
        }
        self.delivered += due.len() as u64;
        due
    }

    /// Earliest pending delivery time, if any (lets the simulation loop know
    /// when to wake the broker).
    pub fn next_delivery_at(&self) -> Option<SimTime> {
        self.in_flight.peek().map(|p| p.delivery.at)
    }

    /// Number of messages accepted by `publish`.
    pub fn published(&self) -> u64 {
        self.published
    }

    /// Number of deliveries handed out by `drain_due`.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of deliveries abandoned after exhausting retries.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtem_sim::time::SimDuration;

    fn broker() -> MqttBroker {
        MqttBroker::new(SimRng::seed_from_u64(3))
    }

    #[test]
    fn topic_matching_rules() {
        assert!(topic_matches("a/b/c", "a/b/c"));
        assert!(topic_matches("a/+/c", "a/b/c"));
        assert!(topic_matches("a/#", "a/b/c"));
        assert!(topic_matches("#", "anything/at/all"));
        assert!(!topic_matches("a/b", "a/b/c"));
        assert!(!topic_matches("a/+/c", "a/b/d"));
        assert!(!topic_matches("a/b/c", "a/b"));
    }

    #[test]
    fn publish_reaches_matching_subscriber() {
        let mut b = broker();
        b.connect(ClientId(1), LinkConfig::ideal());
        b.connect(ClientId(2), LinkConfig::ideal());
        b.subscribe(ClientId(2), "metering/+/report").unwrap();
        let n = b
            .publish(
                ClientId(1),
                "metering/dev-1/report",
                Bytes::from_static(b"x"),
                QoS::AtMostOnce,
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(n, 1);
        let due = b.drain_due(SimTime::from_secs(1));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].to, ClientId(2));
        assert_eq!(due[0].from, ClientId(1));
        assert_eq!(b.delivered(), 1);
    }

    #[test]
    fn publisher_does_not_receive_its_own_message() {
        let mut b = broker();
        b.connect(ClientId(1), LinkConfig::ideal());
        b.subscribe(ClientId(1), "#").unwrap();
        let n = b
            .publish(
                ClientId(1),
                "t",
                Bytes::new(),
                QoS::AtMostOnce,
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn non_matching_subscriber_gets_nothing() {
        let mut b = broker();
        b.connect(ClientId(1), LinkConfig::ideal());
        b.connect(ClientId(2), LinkConfig::ideal());
        b.subscribe(ClientId(2), "other/topic").unwrap();
        let n = b
            .publish(
                ClientId(1),
                "metering/x",
                Bytes::new(),
                QoS::AtMostOnce,
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn disconnected_subscriber_is_skipped() {
        let mut b = broker();
        b.connect(ClientId(1), LinkConfig::ideal());
        b.connect(ClientId(2), LinkConfig::ideal());
        b.subscribe(ClientId(2), "#").unwrap();
        b.disconnect(ClientId(2));
        assert!(!b.is_connected(ClientId(2)));
        let n = b
            .publish(
                ClientId(1),
                "t",
                Bytes::new(),
                QoS::AtMostOnce,
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(n, 0);
        // Reconnect keeps the subscription.
        b.connect(ClientId(2), LinkConfig::ideal());
        let n = b
            .publish(
                ClientId(1),
                "t",
                Bytes::new(),
                QoS::AtMostOnce,
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn deliveries_respect_link_latency() {
        let mut b = broker();
        b.connect(ClientId(1), LinkConfig::ideal());
        let slow = LinkConfig {
            base_latency: SimDuration::from_millis(10),
            jitter: SimDuration::ZERO,
            loss_probability: 0.0,
            bandwidth_bps: None,
        };
        b.connect(ClientId(2), slow);
        b.subscribe(ClientId(2), "#").unwrap();
        b.publish(
            ClientId(1),
            "t",
            Bytes::new(),
            QoS::AtMostOnce,
            SimTime::ZERO,
        )
        .unwrap();
        assert!(b.drain_due(SimTime::from_millis(5)).is_empty());
        assert_eq!(b.next_delivery_at(), Some(SimTime::from_millis(10)));
        let due = b.drain_due(SimTime::from_millis(10));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].at, SimTime::from_millis(10));
    }

    #[test]
    fn qos1_retries_on_lossy_link_qos0_does_not() {
        let lossy = LinkConfig {
            base_latency: SimDuration::from_millis(1),
            jitter: SimDuration::ZERO,
            loss_probability: 0.6,
            bandwidth_bps: None,
        };
        let mut b = broker();
        b.connect(ClientId(1), LinkConfig::ideal());
        b.connect(ClientId(2), lossy);
        b.subscribe(ClientId(2), "#").unwrap();
        let mut qos1_delivered = 0;
        let mut qos0_delivered = 0;
        for i in 0..200 {
            qos1_delivered += b
                .publish(
                    ClientId(1),
                    "t",
                    Bytes::new(),
                    QoS::AtLeastOnce,
                    SimTime::from_secs(i),
                )
                .unwrap();
            qos0_delivered += b
                .publish(
                    ClientId(1),
                    "t",
                    Bytes::new(),
                    QoS::AtMostOnce,
                    SimTime::from_secs(i),
                )
                .unwrap();
        }
        assert!(qos1_delivered > qos0_delivered);
        // With a 0.6 loss rate and 5 retries the per-publish failure
        // probability is 0.6^6 ≈ 4.7 %, so ≈ 190/200 should get through.
        assert!(
            qos1_delivered >= 175,
            "QoS1 should almost always deliver, got {qos1_delivered}"
        );
        assert!(b.dropped() > 0);
    }

    #[test]
    fn retransmissions_are_flagged_and_delayed() {
        let lossy = LinkConfig {
            base_latency: SimDuration::from_millis(1),
            jitter: SimDuration::ZERO,
            loss_probability: 0.5,
            bandwidth_bps: None,
        };
        let mut b = broker();
        b.connect(ClientId(1), LinkConfig::ideal());
        b.connect(ClientId(2), lossy);
        b.subscribe(ClientId(2), "#").unwrap();
        for i in 0..100 {
            b.publish(
                ClientId(1),
                "t",
                Bytes::new(),
                QoS::AtLeastOnce,
                SimTime::from_secs(i),
            )
            .unwrap();
        }
        let due = b.drain_due(SimTime::from_secs(1000));
        assert!(due.iter().any(|d| d.retransmission));
        for d in due.iter().filter(|d| d.retransmission) {
            // Retransmitted deliveries carry at least one 50 ms PUBACK timeout.
            let offset_ms = (d.at.as_micros() % 1_000_000) / 1000;
            assert!(
                offset_ms >= 51,
                "retransmission arrived too early: {offset_ms} ms"
            );
        }
    }

    #[test]
    fn reconnect_resumes_the_session_without_touching_the_link() {
        let mut b = broker();
        b.connect(ClientId(1), LinkConfig::ideal());
        b.connect(ClientId(2), LinkConfig::ideal());
        b.subscribe(ClientId(2), "#").unwrap();
        // Degrade mid-session, then bounce the client.
        let slow = LinkConfig {
            base_latency: SimDuration::from_millis(25),
            ..LinkConfig::ideal()
        };
        b.reconfigure_link(ClientId(2), slow);
        b.disconnect(ClientId(2));
        assert!(b.reconnect(ClientId(2)));
        assert!(b.is_connected(ClientId(2)));
        // Subscription and the degraded link both survived the bounce.
        b.publish(
            ClientId(1),
            "t",
            Bytes::new(),
            QoS::AtMostOnce,
            SimTime::ZERO,
        )
        .unwrap();
        assert_eq!(b.next_delivery_at(), Some(SimTime::from_millis(25)));
        assert!(!b.reconnect(ClientId(9)));
    }

    #[test]
    fn reconfigure_link_degrades_and_restores_in_place() {
        let mut b = broker();
        b.connect(ClientId(1), LinkConfig::ideal());
        b.connect(ClientId(2), LinkConfig::ideal());
        b.subscribe(ClientId(2), "#").unwrap();
        assert_eq!(b.link_config(ClientId(2)), Some(LinkConfig::ideal()));
        // Degrade to total loss: QoS0 publishes stop arriving.
        let dead = LinkConfig {
            loss_probability: 1.0,
            ..LinkConfig::ideal()
        };
        assert!(b.reconfigure_link(ClientId(2), dead));
        let n = b
            .publish(
                ClientId(1),
                "t",
                Bytes::new(),
                QoS::AtMostOnce,
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(n, 0);
        // Restore: traffic flows again, subscriptions intact.
        assert!(b.reconfigure_link(ClientId(2), LinkConfig::ideal()));
        let n = b
            .publish(
                ClientId(1),
                "t",
                Bytes::new(),
                QoS::AtMostOnce,
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(n, 1);
        assert!(!b.reconfigure_link(ClientId(9), LinkConfig::ideal()));
        assert_eq!(b.link_config(ClientId(9)), None);
    }

    #[test]
    fn unknown_client_errors() {
        let mut b = broker();
        assert_eq!(
            b.subscribe(ClientId(9), "t"),
            Err(BrokerError::UnknownClient(ClientId(9)))
        );
        assert_eq!(
            b.publish(
                ClientId(9),
                "t",
                Bytes::new(),
                QoS::AtMostOnce,
                SimTime::ZERO
            ),
            Err(BrokerError::UnknownClient(ClientId(9)))
        );
        assert!(b.unsubscribe(ClientId(9), "t").is_err());
    }

    #[test]
    fn invalid_topics_and_filters_are_rejected() {
        let mut b = broker();
        b.connect(ClientId(1), LinkConfig::ideal());
        assert!(matches!(
            b.publish(
                ClientId(1),
                "a/+/b",
                Bytes::new(),
                QoS::AtMostOnce,
                SimTime::ZERO
            ),
            Err(BrokerError::InvalidTopic(_))
        ));
        assert!(matches!(
            b.publish(
                ClientId(1),
                "",
                Bytes::new(),
                QoS::AtMostOnce,
                SimTime::ZERO
            ),
            Err(BrokerError::InvalidTopic(_))
        ));
        assert!(matches!(
            b.subscribe(ClientId(1), "a/#/b"),
            Err(BrokerError::InvalidTopic(_))
        ));
        assert!(matches!(
            b.subscribe(ClientId(1), "a//b"),
            Err(BrokerError::InvalidTopic(_))
        ));
        assert!(b.subscribe(ClientId(1), "a/+/b/#").is_ok());
    }

    #[test]
    fn unsubscribe_stops_deliveries() {
        let mut b = broker();
        b.connect(ClientId(1), LinkConfig::ideal());
        b.connect(ClientId(2), LinkConfig::ideal());
        b.subscribe(ClientId(2), "t").unwrap();
        assert!(b.unsubscribe(ClientId(2), "t").unwrap());
        assert!(!b.unsubscribe(ClientId(2), "t").unwrap());
        let n = b
            .publish(
                ClientId(1),
                "t",
                Bytes::new(),
                QoS::AtMostOnce,
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(n, 0);
    }
}
