//! # rtem-net — simulated communication substrate
//!
//! Part of the `rtem` workspace reproducing *Real-Time Energy Monitoring in
//! IoT-enabled Mobile Devices* (DATE 2020).
//!
//! The paper's devices report consumption over MQTT on Wi-Fi to a
//! Raspberry Pi aggregator; aggregators talk to each other over a
//! high-bandwidth backhaul and devices pick their aggregator by RSSI. This
//! crate simulates that communication stack:
//!
//! * [`packet`] — the metering protocol messages of Fig. 3 and their binary
//!   wire encoding.
//! * [`link`] — per-hop latency / jitter / loss / bandwidth models.
//! * [`rssi`] — log-distance path loss and the aggregator-discovery scan.
//! * [`broker`] — an MQTT-style broker with topic wildcards and QoS 0/1.
//! * [`tdma`] — the reporting slot table the aggregator hands out.
//! * [`backhaul`] — the aggregator mesh with ~1 ms forwarding delay.
//!
//! # Examples
//!
//! ```
//! use rtem_net::packet::{AggregatorAddr, DeviceId, Packet};
//!
//! let request = Packet::RegistrationRequest {
//!     device: DeviceId(1),
//!     master: Some(AggregatorAddr(1)),
//! };
//! let bytes = request.encode();
//! assert_eq!(Packet::decode(&bytes).unwrap(), request);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backhaul;
pub mod broker;
pub mod link;
pub mod packet;
pub mod rssi;
pub mod tdma;

pub use backhaul::{BackhaulDelivery, BackhaulError, BackhaulMesh};
pub use broker::{BrokerError, ClientId, Delivery, MqttBroker, QoS};
pub use link::{LinkConfig, LinkModel, LinkTotals, Transit};
pub use packet::{
    AggregatorAddr, DecodeError, DeviceId, MeasurementRecord, MembershipKind, Packet, RejectReason,
};
pub use rssi::{PathLossModel, Position, RadioEnvironment, ScanResult};
pub use tdma::{SlotError, SlotTable};
