//! Aggregator-to-aggregator backhaul mesh.
//!
//! The aggregators are "interconnected through a mesh/cloud network to
//! exchange consumption data of the devices connected to them" (§I), and the
//! evaluation assumes this backhaul adds about one millisecond of delay
//! (§III-B). This module models the mesh: a set of aggregator endpoints,
//! per-pair link quality, shortest-path (fewest hops) routing when two
//! aggregators are not directly connected, and time-ordered delivery.

use crate::link::{LinkConfig, LinkModel, LinkTotals, Transit};
use crate::packet::{AggregatorAddr, Packet};
use rtem_sim::rng::SimRng;
use rtem_sim::time::SimTime;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};
use std::error::Error;
use std::fmt;

/// Errors returned by the backhaul mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackhaulError {
    /// The referenced aggregator has not joined the mesh.
    UnknownAggregator(AggregatorAddr),
    /// No route exists between the two aggregators.
    NoRoute {
        /// Sending aggregator.
        from: AggregatorAddr,
        /// Destination aggregator.
        to: AggregatorAddr,
    },
}

impl fmt::Display for BackhaulError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackhaulError::UnknownAggregator(a) => write!(f, "unknown aggregator {a}"),
            BackhaulError::NoRoute { from, to } => write!(f, "no route from {from} to {to}"),
        }
    }
}

impl Error for BackhaulError {}

/// A message delivered over the backhaul.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackhaulDelivery {
    /// Destination aggregator.
    pub to: AggregatorAddr,
    /// Originating aggregator.
    pub from: AggregatorAddr,
    /// The protocol message.
    pub packet: Packet,
    /// Arrival time at the destination.
    pub at: SimTime,
    /// Number of mesh hops traversed.
    pub hops: u32,
}

#[derive(Debug)]
struct MeshLink {
    model: LinkModel,
}

/// In-flight entry ordered by `(at, seq)`, reproducing the old linear
/// queue's stable sort-by-arrival over insertion order.
#[derive(Debug)]
struct PendingBackhaul {
    seq: u64,
    delivery: BackhaulDelivery,
}

impl PartialEq for PendingBackhaul {
    fn eq(&self, other: &Self) -> bool {
        self.delivery.at == other.delivery.at && self.seq == other.seq
    }
}
impl Eq for PendingBackhaul {}
impl PartialOrd for PendingBackhaul {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingBackhaul {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap inverted so the earliest arrival pops first.
        other
            .delivery
            .at
            .cmp(&self.delivery.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The aggregator mesh network.
///
/// # Examples
///
/// ```
/// use rtem_net::backhaul::BackhaulMesh;
/// use rtem_net::link::LinkConfig;
/// use rtem_net::packet::{AggregatorAddr, DeviceId, Packet};
/// use rtem_sim::rng::SimRng;
/// use rtem_sim::time::SimTime;
///
/// let mut mesh = BackhaulMesh::new(SimRng::seed_from_u64(1));
/// mesh.join(AggregatorAddr(1));
/// mesh.join(AggregatorAddr(2));
/// mesh.connect(AggregatorAddr(1), AggregatorAddr(2), LinkConfig::backhaul());
///
/// mesh.send(
///     AggregatorAddr(2),
///     AggregatorAddr(1),
///     Packet::MembershipVerifyRequest {
///         device: DeviceId(7),
///         master: AggregatorAddr(1),
///         requester: AggregatorAddr(2),
///     },
///     SimTime::ZERO,
/// )
/// .unwrap();
/// let due = mesh.drain_due(SimTime::from_millis(5));
/// assert_eq!(due.len(), 1);
/// ```
#[derive(Debug)]
pub struct BackhaulMesh {
    members: BTreeSet<AggregatorAddr>,
    links: BTreeMap<(AggregatorAddr, AggregatorAddr), MeshLink>,
    /// Adjacency index mirroring `links`, so neighbour lookups and the BFS
    /// router touch only a node's own edges instead of scanning every link
    /// in the mesh.
    adjacency: BTreeMap<AggregatorAddr, BTreeSet<AggregatorAddr>>,
    rng: SimRng,
    in_flight: BinaryHeap<PendingBackhaul>,
    next_seq: u64,
    sent: u64,
    lost: u64,
    link_seq: u64,
}

impl BackhaulMesh {
    /// Creates an empty mesh.
    pub fn new(rng: SimRng) -> Self {
        BackhaulMesh {
            members: BTreeSet::new(),
            links: BTreeMap::new(),
            adjacency: BTreeMap::new(),
            rng,
            in_flight: BinaryHeap::new(),
            next_seq: 0,
            sent: 0,
            lost: 0,
            link_seq: 0,
        }
    }

    /// Builds a fully connected mesh over `addrs` with identical link quality
    /// on every pair — the configuration the paper's evaluation assumes.
    pub fn full_mesh(addrs: &[AggregatorAddr], link: LinkConfig, rng: SimRng) -> Self {
        let mut mesh = BackhaulMesh::new(rng);
        for &a in addrs {
            mesh.join(a);
        }
        for (i, &a) in addrs.iter().enumerate() {
            for &b in &addrs[i + 1..] {
                mesh.connect(a, b, link);
            }
        }
        mesh
    }

    /// Adds an aggregator endpoint to the mesh.
    pub fn join(&mut self, addr: AggregatorAddr) {
        self.members.insert(addr);
    }

    /// Removes an aggregator and all its links. Returns `true` if it was a
    /// member.
    pub fn leave(&mut self, addr: AggregatorAddr) -> bool {
        let was_member = self.members.remove(&addr);
        self.links.retain(|(a, b), _| *a != addr && *b != addr);
        if let Some(neighbours) = self.adjacency.remove(&addr) {
            for other in neighbours {
                if let Some(set) = self.adjacency.get_mut(&other) {
                    set.remove(&addr);
                }
            }
        }
        was_member
    }

    /// Returns `true` if `addr` is part of the mesh.
    pub fn contains(&self, addr: AggregatorAddr) -> bool {
        self.members.contains(&addr)
    }

    /// Number of aggregators in the mesh.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if the mesh has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Creates (or replaces) a bidirectional link between two members.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint has not joined the mesh.
    pub fn connect(&mut self, a: AggregatorAddr, b: AggregatorAddr, config: LinkConfig) {
        assert!(self.members.contains(&a), "aggregator {a} not in mesh");
        assert!(self.members.contains(&b), "aggregator {b} not in mesh");
        for key in [(a, b), (b, a)] {
            self.link_seq += 1;
            self.links.insert(
                key,
                MeshLink {
                    model: LinkModel::new(config, self.rng.derive(0xBAC0 + self.link_seq)),
                },
            );
            self.adjacency.entry(key.0).or_default().insert(key.1);
        }
    }

    /// Every connected undirected pair, each listed once with the lower
    /// address first.
    pub fn link_pairs(&self) -> Vec<(AggregatorAddr, AggregatorAddr)> {
        self.links
            .keys()
            .filter(|(a, b)| a.0 < b.0)
            .copied()
            .collect()
    }

    /// The configuration of the directed `a -> b` link, if it exists (links
    /// are created symmetrically, so both directions normally agree).
    pub fn link_config(&self, a: AggregatorAddr, b: AggregatorAddr) -> Option<LinkConfig> {
        self.links.get(&(a, b)).map(|l| *l.model.config())
    }

    /// Replaces the quality of the `a <-> b` link in both directions,
    /// preserving the per-direction offered/lost counters (unlike
    /// [`connect`](Self::connect), which installs fresh links). Returns
    /// `false` when the pair is not connected. Used by fault injection to
    /// degrade and restore backhaul links in place.
    pub fn reconfigure(
        &mut self,
        a: AggregatorAddr,
        b: AggregatorAddr,
        config: LinkConfig,
    ) -> bool {
        let mut found = false;
        for key in [(a, b), (b, a)] {
            if let Some(link) = self.links.get_mut(&key) {
                link.model.reconfigure(config);
                found = true;
            }
        }
        found
    }

    /// Neighbours directly connected to `addr`.
    pub fn neighbours(&self, addr: AggregatorAddr) -> Vec<AggregatorAddr> {
        self.adjacency
            .get(&addr)
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Finds the fewest-hops route between two members (breadth-first).
    pub fn route(
        &self,
        from: AggregatorAddr,
        to: AggregatorAddr,
    ) -> Result<Vec<AggregatorAddr>, BackhaulError> {
        if !self.members.contains(&from) {
            return Err(BackhaulError::UnknownAggregator(from));
        }
        if !self.members.contains(&to) {
            return Err(BackhaulError::UnknownAggregator(to));
        }
        if from == to {
            return Ok(vec![from]);
        }
        // Direct link: the one-hop route is always fewest-hops, and it is
        // exactly what the breadth-first search below would return — this
        // fast path keeps the (fully-meshed) common case O(log n).
        if self.links.contains_key(&(from, to)) {
            return Ok(vec![from, to]);
        }
        let empty = BTreeSet::new();
        let mut visited: BTreeMap<AggregatorAddr, AggregatorAddr> = BTreeMap::new();
        let mut queue = VecDeque::from([from]);
        visited.insert(from, from);
        while let Some(current) = queue.pop_front() {
            for &next in self.adjacency.get(&current).unwrap_or(&empty) {
                if visited.contains_key(&next) {
                    continue;
                }
                visited.insert(next, current);
                if next == to {
                    let mut path = vec![to];
                    let mut node = to;
                    while node != from {
                        node = visited[&node];
                        path.push(node);
                    }
                    path.reverse();
                    return Ok(path);
                }
                queue.push_back(next);
            }
        }
        Err(BackhaulError::NoRoute { from, to })
    }

    /// Sends a packet from one aggregator to another, accumulating per-hop
    /// delay along the route. Lost hops are retried once (the backhaul is
    /// reliable transport, e.g. TCP); if the retry also fails the packet is
    /// counted in [`lost`](Self::lost) and not delivered.
    ///
    /// # Errors
    ///
    /// Returns an error if either endpoint is unknown or unreachable.
    pub fn send(
        &mut self,
        from: AggregatorAddr,
        to: AggregatorAddr,
        packet: Packet,
        now: SimTime,
    ) -> Result<(), BackhaulError> {
        let path = self.route(from, to)?;
        self.sent += 1;
        let mut arrival = now;
        let mut hops = 0;
        let size = packet.encoded_len() + 32;
        for pair in path.windows(2) {
            let link = self
                .links
                .get_mut(&(pair[0], pair[1]))
                .expect("route uses existing links");
            let transit = match link.model.offer(size) {
                Transit::Delivered(d) => Some(d),
                Transit::Lost => link.model.offer(size).delay(),
            };
            match transit {
                Some(delay) => {
                    arrival += delay;
                    hops += 1;
                }
                None => {
                    self.lost += 1;
                    return Ok(());
                }
            }
        }
        self.next_seq += 1;
        self.in_flight.push(PendingBackhaul {
            seq: self.next_seq,
            delivery: BackhaulDelivery {
                to,
                from,
                packet,
                at: arrival,
                hops,
            },
        });
        Ok(())
    }

    /// Removes and returns deliveries due at or before `now`, in arrival order.
    pub fn drain_due(&mut self, now: SimTime) -> Vec<BackhaulDelivery> {
        let mut due = Vec::new();
        while let Some(pending) = self.in_flight.peek() {
            if pending.delivery.at > now {
                break;
            }
            due.push(self.in_flight.pop().expect("peeked delivery").delivery);
        }
        due
    }

    /// Earliest pending delivery time.
    pub fn next_delivery_at(&self) -> Option<SimTime> {
        self.in_flight.peek().map(|p| p.delivery.at)
    }

    /// Messages accepted by [`send`](Self::send).
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Messages dropped because a hop failed twice.
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Merged traffic counters of every mesh link.
    pub fn link_totals(&self) -> LinkTotals {
        let mut totals = LinkTotals::default();
        for link in self.links.values() {
            totals += link.model.totals();
        }
        totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::DeviceId;

    fn verify_packet() -> Packet {
        Packet::MembershipVerifyRequest {
            device: DeviceId(1),
            master: AggregatorAddr(1),
            requester: AggregatorAddr(2),
        }
    }

    fn two_node_mesh() -> BackhaulMesh {
        BackhaulMesh::full_mesh(
            &[AggregatorAddr(1), AggregatorAddr(2)],
            LinkConfig::backhaul(),
            SimRng::seed_from_u64(21),
        )
    }

    #[test]
    fn full_mesh_connects_everyone() {
        let mesh = BackhaulMesh::full_mesh(
            &[AggregatorAddr(1), AggregatorAddr(2), AggregatorAddr(3)],
            LinkConfig::backhaul(),
            SimRng::seed_from_u64(1),
        );
        assert_eq!(mesh.len(), 3);
        for a in [1u32, 2, 3] {
            assert_eq!(mesh.neighbours(AggregatorAddr(a)).len(), 2);
        }
    }

    #[test]
    fn delivery_takes_about_one_millisecond() {
        let mut mesh = two_node_mesh();
        mesh.send(
            AggregatorAddr(2),
            AggregatorAddr(1),
            verify_packet(),
            SimTime::ZERO,
        )
        .unwrap();
        assert!(mesh.drain_due(SimTime::from_micros(900)).is_empty());
        let due = mesh.drain_due(SimTime::from_millis(2));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].hops, 1);
        assert!(due[0].at >= SimTime::from_millis(1));
        assert!(due[0].at <= SimTime::from_millis(2));
    }

    #[test]
    fn multi_hop_routing_works() {
        // Line topology 1 - 2 - 3: no direct 1-3 link.
        let mut mesh = BackhaulMesh::new(SimRng::seed_from_u64(2));
        for a in [1u32, 2, 3] {
            mesh.join(AggregatorAddr(a));
        }
        mesh.connect(AggregatorAddr(1), AggregatorAddr(2), LinkConfig::backhaul());
        mesh.connect(AggregatorAddr(2), AggregatorAddr(3), LinkConfig::backhaul());
        let route = mesh.route(AggregatorAddr(1), AggregatorAddr(3)).unwrap();
        assert_eq!(
            route,
            vec![AggregatorAddr(1), AggregatorAddr(2), AggregatorAddr(3)]
        );
        mesh.send(
            AggregatorAddr(1),
            AggregatorAddr(3),
            verify_packet(),
            SimTime::ZERO,
        )
        .unwrap();
        let due = mesh.drain_due(SimTime::from_secs(1));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].hops, 2);
        assert!(
            due[0].at >= SimTime::from_millis(2),
            "two hops, two milliseconds"
        );
    }

    #[test]
    fn route_to_self_is_trivial() {
        let mesh = two_node_mesh();
        assert_eq!(
            mesh.route(AggregatorAddr(1), AggregatorAddr(1)).unwrap(),
            vec![AggregatorAddr(1)]
        );
    }

    #[test]
    fn unknown_and_unreachable_aggregators_error() {
        let mut mesh = BackhaulMesh::new(SimRng::seed_from_u64(3));
        mesh.join(AggregatorAddr(1));
        mesh.join(AggregatorAddr(2));
        // Members but not connected.
        assert_eq!(
            mesh.route(AggregatorAddr(1), AggregatorAddr(2)),
            Err(BackhaulError::NoRoute {
                from: AggregatorAddr(1),
                to: AggregatorAddr(2)
            })
        );
        assert_eq!(
            mesh.route(AggregatorAddr(1), AggregatorAddr(9)),
            Err(BackhaulError::UnknownAggregator(AggregatorAddr(9)))
        );
        assert!(mesh
            .send(
                AggregatorAddr(9),
                AggregatorAddr(1),
                verify_packet(),
                SimTime::ZERO
            )
            .is_err());
    }

    #[test]
    fn leave_removes_links() {
        let mut mesh = BackhaulMesh::full_mesh(
            &[AggregatorAddr(1), AggregatorAddr(2), AggregatorAddr(3)],
            LinkConfig::backhaul(),
            SimRng::seed_from_u64(4),
        );
        assert!(mesh.leave(AggregatorAddr(2)));
        assert!(!mesh.leave(AggregatorAddr(2)));
        assert!(!mesh.contains(AggregatorAddr(2)));
        assert_eq!(mesh.neighbours(AggregatorAddr(1)), vec![AggregatorAddr(3)]);
    }

    #[test]
    fn deliveries_are_time_ordered() {
        let mut mesh = two_node_mesh();
        for i in 0..10u64 {
            mesh.send(
                AggregatorAddr(1),
                AggregatorAddr(2),
                verify_packet(),
                SimTime::from_millis(10 - i),
            )
            .unwrap();
        }
        let due = mesh.drain_due(SimTime::from_secs(1));
        assert_eq!(due.len(), 10);
        for pair in due.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
        assert_eq!(mesh.sent(), 10);
        assert_eq!(mesh.lost(), 0);
    }

    #[test]
    fn reconfigure_degrades_both_directions_and_lists_pairs() {
        let mut mesh = two_node_mesh();
        assert_eq!(
            mesh.link_pairs(),
            vec![(AggregatorAddr(1), AggregatorAddr(2))]
        );
        assert_eq!(
            mesh.link_config(AggregatorAddr(1), AggregatorAddr(2)),
            Some(LinkConfig::backhaul())
        );
        let dead = LinkConfig {
            loss_probability: 1.0,
            ..LinkConfig::backhaul()
        };
        assert!(mesh.reconfigure(AggregatorAddr(1), AggregatorAddr(2), dead));
        for from in [1u32, 2] {
            mesh.send(
                AggregatorAddr(from),
                AggregatorAddr(3 - from),
                verify_packet(),
                SimTime::ZERO,
            )
            .unwrap();
        }
        assert!(mesh.drain_due(SimTime::from_secs(10)).is_empty());
        assert_eq!(mesh.lost(), 2);
        // Restore: delivery resumes.
        assert!(mesh.reconfigure(AggregatorAddr(1), AggregatorAddr(2), LinkConfig::backhaul()));
        mesh.send(
            AggregatorAddr(1),
            AggregatorAddr(2),
            verify_packet(),
            SimTime::ZERO,
        )
        .unwrap();
        assert_eq!(mesh.drain_due(SimTime::from_secs(10)).len(), 1);
        assert!(!mesh.reconfigure(AggregatorAddr(1), AggregatorAddr(9), LinkConfig::backhaul()));
    }

    #[test]
    fn next_delivery_at_reports_earliest() {
        let mut mesh = two_node_mesh();
        assert!(mesh.next_delivery_at().is_none());
        mesh.send(
            AggregatorAddr(1),
            AggregatorAddr(2),
            verify_packet(),
            SimTime::from_secs(5),
        )
        .unwrap();
        mesh.send(
            AggregatorAddr(1),
            AggregatorAddr(2),
            verify_packet(),
            SimTime::from_secs(1),
        )
        .unwrap();
        let next = mesh.next_delivery_at().unwrap();
        assert!(next < SimTime::from_secs(2));
    }
}
