//! INA219 current-sensor model.
//!
//! Every device and every aggregator in the paper's testbed carries a Texas
//! Instruments INA219 bidirectional current monitor. The sensor is the reason
//! the aggregator's system-level measurement differs from the sum of the
//! device-reported values in Fig. 5 — the paper attributes the 0.9–8.2 % gap
//! to ohmic losses *and* the sensor's 0.5 mA offset error.
//!
//! The model reproduces the datasheet error terms that matter at the
//! testbed's operating point:
//!
//! * constant **offset error** (defaults to the 0.5 mA the paper cites),
//! * **gain error** as a fraction of the reading,
//! * **quantization** to the current LSB implied by the PGA range and the
//!   12-bit ADC,
//! * optional zero-mean **sampling noise**.

use crate::energy::Milliamps;
use rtem_sim::rng::SimRng;
use serde::{Deserialize, Serialize};

/// Programmable gain / shunt range settings of the INA219.
///
/// The testbed uses the default ±3.2 A range with a 0.1 Ω shunt; the finer
/// ranges are included for the error-decomposition ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShuntRange {
    /// ±40 mV shunt voltage range (±400 mA with the standard 0.1 Ω shunt).
    Pga40mV,
    /// ±80 mV range (±800 mA).
    Pga80mV,
    /// ±160 mV range (±1.6 A).
    Pga160mV,
    /// ±320 mV range (±3.2 A), the power-on default.
    Pga320mV,
}

impl ShuntRange {
    /// Full-scale current in mA for a 0.1 Ω shunt.
    pub fn full_scale_ma(self) -> f64 {
        match self {
            ShuntRange::Pga40mV => 400.0,
            ShuntRange::Pga80mV => 800.0,
            ShuntRange::Pga160mV => 1600.0,
            ShuntRange::Pga320mV => 3200.0,
        }
    }

    /// Current represented by one ADC LSB (12-bit converter over the
    /// bipolar full-scale range).
    pub fn lsb_ma(self) -> f64 {
        // 12-bit signed resolution across the positive range.
        self.full_scale_ma() / 4096.0
    }
}

/// Configuration of an [`Ina219Model`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ina219Config {
    /// Constant additive offset error in mA. The datasheet (and the paper)
    /// give 0.5 mA as the maximum offset at the testbed operating point.
    pub offset_error_ma: f64,
    /// Multiplicative gain error (fraction of reading). Datasheet max ±0.5 %.
    pub gain_error: f64,
    /// Standard deviation of the per-sample noise in mA.
    pub noise_ma: f64,
    /// PGA range in use.
    pub range: ShuntRange,
    /// Whether readings are quantized to the ADC LSB.
    pub quantize: bool,
}

impl Default for Ina219Config {
    fn default() -> Self {
        Ina219Config {
            offset_error_ma: 0.5,
            gain_error: 0.002,
            noise_ma: 0.15,
            range: ShuntRange::Pga320mV,
            quantize: true,
        }
    }
}

impl Ina219Config {
    /// An ideal sensor with no error terms (useful to isolate grid losses in
    /// the error-decomposition ablation).
    pub fn ideal() -> Self {
        Ina219Config {
            offset_error_ma: 0.0,
            gain_error: 0.0,
            noise_ma: 0.0,
            range: ShuntRange::Pga320mV,
            quantize: false,
        }
    }

    /// The configuration matching the paper's testbed description.
    pub fn testbed() -> Self {
        Ina219Config::default()
    }
}

/// A simulated INA219 that observes ground-truth current with realistic error.
///
/// # Examples
///
/// ```
/// use rtem_sensors::energy::Milliamps;
/// use rtem_sensors::ina219::{Ina219Config, Ina219Model};
/// use rtem_sim::rng::SimRng;
///
/// let mut sensor = Ina219Model::new(Ina219Config::ideal(), SimRng::seed_from_u64(1));
/// let reading = sensor.measure(Milliamps::new(120.0));
/// assert!((reading.value() - 120.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ina219Model {
    config: Ina219Config,
    rng: SimRng,
    samples_taken: u64,
}

impl Ina219Model {
    /// Creates a sensor with the given configuration and noise stream.
    pub fn new(config: Ina219Config, rng: SimRng) -> Self {
        Ina219Model {
            config,
            rng,
            samples_taken: 0,
        }
    }

    /// The sensor's configuration.
    pub fn config(&self) -> &Ina219Config {
        &self.config
    }

    /// Number of measurements taken so far.
    pub fn samples_taken(&self) -> u64 {
        self.samples_taken
    }

    /// Observes the ground-truth current and returns the sensor reading.
    ///
    /// Readings saturate at the configured PGA full scale, exactly like the
    /// real converter.
    pub fn measure(&mut self, true_current: Milliamps) -> Milliamps {
        self.samples_taken += 1;
        let cfg = &self.config;
        let mut reading = true_current.value() * (1.0 + cfg.gain_error) + cfg.offset_error_ma;
        if cfg.noise_ma > 0.0 {
            reading += self.rng.normal(0.0, cfg.noise_ma);
        }
        if cfg.quantize {
            let lsb = cfg.range.lsb_ma();
            reading = (reading / lsb).round() * lsb;
        }
        let fs = cfg.range.full_scale_ma();
        Milliamps::new(reading.clamp(-fs, fs))
    }

    /// Worst-case absolute error bound at a given operating current, used by
    /// the aggregator's anomaly detector to size its tolerance band.
    pub fn error_bound(&self, operating_current: Milliamps) -> Milliamps {
        let cfg = &self.config;
        let bound = cfg.offset_error_ma.abs()
            + operating_current.value().abs() * cfg.gain_error.abs()
            + 3.0 * cfg.noise_ma
            + if cfg.quantize {
                cfg.range.lsb_ma()
            } else {
                0.0
            };
        Milliamps::new(bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(7)
    }

    #[test]
    fn ideal_sensor_reads_truth() {
        let mut s = Ina219Model::new(Ina219Config::ideal(), rng());
        for i in [0.0, 1.0, 57.3, 212.9, 399.0] {
            let r = s.measure(Milliamps::new(i));
            assert!((r.value() - i).abs() < 1e-12);
        }
        assert_eq!(s.samples_taken(), 5);
    }

    #[test]
    fn offset_error_shifts_readings_up() {
        let cfg = Ina219Config {
            offset_error_ma: 0.5,
            gain_error: 0.0,
            noise_ma: 0.0,
            range: ShuntRange::Pga320mV,
            quantize: false,
        };
        let mut s = Ina219Model::new(cfg, rng());
        let r = s.measure(Milliamps::new(100.0));
        assert!((r.value() - 100.5).abs() < 1e-12);
    }

    #[test]
    fn gain_error_scales_with_reading() {
        let cfg = Ina219Config {
            offset_error_ma: 0.0,
            gain_error: 0.01,
            noise_ma: 0.0,
            range: ShuntRange::Pga320mV,
            quantize: false,
        };
        let mut s = Ina219Model::new(cfg, rng());
        assert!((s.measure(Milliamps::new(100.0)).value() - 101.0).abs() < 1e-12);
        assert!((s.measure(Milliamps::new(200.0)).value() - 202.0).abs() < 1e-12);
    }

    #[test]
    fn quantization_snaps_to_lsb() {
        let cfg = Ina219Config {
            offset_error_ma: 0.0,
            gain_error: 0.0,
            noise_ma: 0.0,
            range: ShuntRange::Pga320mV,
            quantize: true,
        };
        let lsb = ShuntRange::Pga320mV.lsb_ma();
        let mut s = Ina219Model::new(cfg, rng());
        let r = s.measure(Milliamps::new(lsb * 10.4));
        assert!((r.value() - lsb * 10.0).abs() < 1e-9);
    }

    #[test]
    fn readings_saturate_at_full_scale() {
        let cfg = Ina219Config {
            range: ShuntRange::Pga40mV,
            ..Ina219Config::ideal()
        };
        let mut s = Ina219Model::new(cfg, rng());
        let r = s.measure(Milliamps::new(5000.0));
        assert_eq!(r.value(), 400.0);
    }

    #[test]
    fn testbed_sensor_mean_error_is_close_to_offset() {
        let mut s = Ina219Model::new(Ina219Config::testbed(), rng());
        let truth = 150.0;
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| s.measure(Milliamps::new(truth)).value())
            .sum::<f64>()
            / n as f64;
        let expected = truth * 1.002 + 0.5;
        assert!(
            (mean - expected).abs() < 0.05,
            "mean reading {mean}, expected ≈ {expected}"
        );
    }

    #[test]
    fn error_bound_covers_observed_error() {
        let mut s = Ina219Model::new(Ina219Config::testbed(), rng());
        let truth = Milliamps::new(200.0);
        let bound = s.error_bound(truth).value();
        for _ in 0..5000 {
            let err = (s.measure(truth).value() - truth.value()).abs();
            assert!(err <= bound * 1.5, "error {err} exceeded bound {bound}");
        }
    }

    #[test]
    fn lsb_scales_with_range() {
        assert!(ShuntRange::Pga40mV.lsb_ma() < ShuntRange::Pga320mV.lsb_ma());
        assert!((ShuntRange::Pga320mV.lsb_ma() - 3200.0 / 4096.0).abs() < 1e-12);
    }
}
