//! Physical-grid model: branch topology and ohmic losses.
//!
//! In the testbed the aggregator has its own electrical connection to the
//! network and measures the *total* current feeding all devices — this is the
//! "system-level complementary measurement" used to verify device reports and
//! the stand-in for a centralized meter in Fig. 5. The aggregator's reading
//! exceeds the sum of the device readings because of ohmic losses in wiring
//! and connectors plus its own sensor error.
//!
//! [`GridNetwork`] models one aggregator's electrical network as a star of
//! branches, each with a series resistance. Loss current for each branch is
//! derived from the branch's voltage drop (I²R dissipation referred to the
//! supply rail), which produces the per-device-load-dependent 1–8 % overhead
//! observed in the paper.

use crate::energy::{Milliamps, Millivolts};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of a branch (one device connection) within a grid network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BranchId(pub u32);

/// Electrical parameters of one branch of the star network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Branch {
    /// Series resistance of the branch wiring and connectors, in ohms.
    pub series_resistance_ohm: f64,
    /// Fixed parasitic draw of the branch (indicator LEDs, sensor supply
    /// current, etc.) in mA, present whenever the branch is energized.
    pub parasitic_ma: f64,
}

impl Default for Branch {
    fn default() -> Self {
        // Breadboard wiring, USB leads and the INA219 shunt add up to a few
        // hundred milliohms; the sensor itself draws about 1 mA.
        Branch {
            series_resistance_ohm: 0.35,
            parasitic_ma: 1.0,
        }
    }
}

impl Branch {
    /// Creates a branch with the given series resistance and parasitic draw.
    ///
    /// # Panics
    ///
    /// Panics if either value is negative or not finite.
    pub fn new(series_resistance_ohm: f64, parasitic_ma: f64) -> Self {
        assert!(
            series_resistance_ohm.is_finite() && series_resistance_ohm >= 0.0,
            "resistance must be finite and non-negative"
        );
        assert!(
            parasitic_ma.is_finite() && parasitic_ma >= 0.0,
            "parasitic draw must be finite and non-negative"
        );
        Branch {
            series_resistance_ohm,
            parasitic_ma,
        }
    }

    /// A lossless branch (ablation baseline).
    pub fn lossless() -> Self {
        Branch {
            series_resistance_ohm: 0.0,
            parasitic_ma: 0.0,
        }
    }
}

/// Result of evaluating the grid at one instant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridSnapshot {
    /// Sum of the true device load currents.
    pub device_total: Milliamps,
    /// Additional current attributable to ohmic losses and parasitics.
    pub loss_total: Milliamps,
    /// What the aggregator-side meter sees: device total + losses.
    pub upstream_total: Milliamps,
    /// Per-branch upstream contribution (device + its branch losses).
    pub per_branch: BTreeMap<BranchId, Milliamps>,
}

impl GridSnapshot {
    /// Relative overhead of the upstream measurement over the device total,
    /// e.g. `0.03` for 3 %. Zero when no device draws current.
    pub fn overhead_fraction(&self) -> f64 {
        if self.device_total.value() <= f64::EPSILON {
            0.0
        } else {
            self.loss_total.value() / self.device_total.value()
        }
    }
}

/// A star-topology electrical network below one aggregator.
///
/// # Examples
///
/// ```
/// use rtem_sensors::energy::Milliamps;
/// use rtem_sensors::grid::{Branch, BranchId, GridNetwork};
///
/// let mut grid = GridNetwork::new();
/// let a = grid.add_branch(Branch::default());
/// let b = grid.add_branch(Branch::default());
/// let snap = grid.evaluate(&[(a, Milliamps::new(150.0)), (b, Milliamps::new(120.0))]);
/// assert!(snap.upstream_total > snap.device_total);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GridNetwork {
    branches: BTreeMap<BranchId, Branch>,
    next_id: u32,
    supply: Millivolts,
}

impl GridNetwork {
    /// Creates an empty network on the 5 V testbed rail.
    pub fn new() -> Self {
        GridNetwork {
            branches: BTreeMap::new(),
            next_id: 0,
            supply: Millivolts::usb_bus(),
        }
    }

    /// Creates an empty network with a custom supply voltage.
    pub fn with_supply(supply: Millivolts) -> Self {
        GridNetwork {
            branches: BTreeMap::new(),
            next_id: 0,
            supply,
        }
    }

    /// Supply voltage of this network.
    pub fn supply(&self) -> Millivolts {
        self.supply
    }

    /// Adds a branch and returns its identifier.
    pub fn add_branch(&mut self, branch: Branch) -> BranchId {
        let id = BranchId(self.next_id);
        self.next_id += 1;
        self.branches.insert(id, branch);
        id
    }

    /// Removes a branch (device physically unplugged). Returns the branch if
    /// it existed.
    pub fn remove_branch(&mut self, id: BranchId) -> Option<Branch> {
        self.branches.remove(&id)
    }

    /// Number of branches currently connected.
    pub fn branch_count(&self) -> usize {
        self.branches.len()
    }

    /// Returns the branch parameters, if the branch exists.
    pub fn branch(&self, id: BranchId) -> Option<&Branch> {
        self.branches.get(&id)
    }

    /// Evaluates the network for the given per-branch device load currents.
    ///
    /// Branch ids not present in `loads` are treated as drawing zero device
    /// current (their parasitic draw still counts while connected). Loads for
    /// unknown branches are ignored.
    pub fn evaluate(&self, loads: &[(BranchId, Milliamps)]) -> GridSnapshot {
        let load_map: BTreeMap<BranchId, Milliamps> = loads.iter().copied().collect();
        let mut device_total = Milliamps::ZERO;
        let mut loss_total = Milliamps::ZERO;
        let mut per_branch = BTreeMap::new();

        for (&id, branch) in &self.branches {
            let device = load_map
                .get(&id)
                .copied()
                .unwrap_or(Milliamps::ZERO)
                .clamp_non_negative();
            // I²R loss referred to the supply rail: extra current the upstream
            // meter must deliver to cover the branch dissipation.
            // P_loss = I² * R  (I in A, R in Ω, P in W)
            // I_loss = P_loss / V_supply
            let amps = device.value() / 1000.0;
            let loss_w = amps * amps * branch.series_resistance_ohm;
            let loss_ma = if self.supply.value() > 0.0 {
                loss_w / (self.supply.value() / 1000.0) * 1000.0
            } else {
                0.0
            };
            let branch_loss = Milliamps::new(loss_ma + branch.parasitic_ma);
            device_total += device;
            loss_total += branch_loss;
            per_branch.insert(id, device + branch_loss);
        }

        GridSnapshot {
            device_total,
            loss_total,
            upstream_total: device_total + loss_total,
            per_branch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_grid_reports_zero() {
        let grid = GridNetwork::new();
        let snap = grid.evaluate(&[]);
        assert_eq!(snap.device_total, Milliamps::ZERO);
        assert_eq!(snap.upstream_total, Milliamps::ZERO);
        assert_eq!(snap.overhead_fraction(), 0.0);
    }

    #[test]
    fn lossless_branches_add_exactly() {
        let mut grid = GridNetwork::new();
        let a = grid.add_branch(Branch::lossless());
        let b = grid.add_branch(Branch::lossless());
        let snap = grid.evaluate(&[(a, Milliamps::new(100.0)), (b, Milliamps::new(50.0))]);
        assert_eq!(snap.device_total.value(), 150.0);
        assert_eq!(snap.upstream_total.value(), 150.0);
        assert_eq!(snap.loss_total, Milliamps::ZERO);
    }

    #[test]
    fn upstream_exceeds_device_total_with_losses() {
        let mut grid = GridNetwork::new();
        let a = grid.add_branch(Branch::default());
        let b = grid.add_branch(Branch::default());
        let snap = grid.evaluate(&[(a, Milliamps::new(180.0)), (b, Milliamps::new(160.0))]);
        assert!(snap.upstream_total > snap.device_total);
        let overhead = snap.overhead_fraction();
        // The paper reports 0.9 % – 8.2 %; the default parameters must land in
        // (or near) that band at testbed-like loads.
        assert!(
            (0.005..0.10).contains(&overhead),
            "overhead fraction {overhead}"
        );
    }

    #[test]
    fn overhead_grows_with_branch_resistance() {
        let loads = |grid: &GridNetwork, a, b| {
            grid.evaluate(&[(a, Milliamps::new(200.0)), (b, Milliamps::new(200.0))])
                .overhead_fraction()
        };
        let mut low = GridNetwork::new();
        let la = low.add_branch(Branch::new(0.1, 0.5));
        let lb = low.add_branch(Branch::new(0.1, 0.5));
        let mut high = GridNetwork::new();
        let ha = high.add_branch(Branch::new(1.0, 0.5));
        let hb = high.add_branch(Branch::new(1.0, 0.5));
        assert!(loads(&high, ha, hb) > loads(&low, la, lb));
    }

    #[test]
    fn parasitic_draw_present_even_when_idle() {
        let mut grid = GridNetwork::new();
        let a = grid.add_branch(Branch::new(0.3, 1.5));
        let snap = grid.evaluate(&[(a, Milliamps::ZERO)]);
        assert_eq!(snap.device_total, Milliamps::ZERO);
        assert!((snap.upstream_total.value() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn removing_branch_removes_its_contribution() {
        let mut grid = GridNetwork::new();
        let a = grid.add_branch(Branch::default());
        let b = grid.add_branch(Branch::default());
        assert_eq!(grid.branch_count(), 2);
        let removed = grid.remove_branch(a);
        assert!(removed.is_some());
        assert_eq!(grid.branch_count(), 1);
        let snap = grid.evaluate(&[(a, Milliamps::new(500.0)), (b, Milliamps::new(100.0))]);
        // Branch a no longer exists, its load must be ignored.
        assert!((snap.device_total.value() - 100.0).abs() < 1e-12);
        assert!(grid.branch(a).is_none());
        assert!(grid.branch(b).is_some());
    }

    #[test]
    fn unknown_loads_are_ignored() {
        let mut grid = GridNetwork::new();
        let _a = grid.add_branch(Branch::default());
        let snap = grid.evaluate(&[(BranchId(999), Milliamps::new(100.0))]);
        assert_eq!(snap.device_total, Milliamps::ZERO);
    }

    #[test]
    fn per_branch_sums_to_upstream_total() {
        let mut grid = GridNetwork::new();
        let ids: Vec<BranchId> = (0..4).map(|_| grid.add_branch(Branch::default())).collect();
        let loads: Vec<(BranchId, Milliamps)> = ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, Milliamps::new(50.0 * (i as f64 + 1.0))))
            .collect();
        let snap = grid.evaluate(&loads);
        let per_branch_sum: Milliamps = snap.per_branch.values().copied().sum();
        assert!((per_branch_sum.value() - snap.upstream_total.value()).abs() < 1e-9);
    }
}
