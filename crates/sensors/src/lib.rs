//! # rtem-sensors — sensing and electrical substrate
//!
//! Part of the `rtem` workspace reproducing *Real-Time Energy Monitoring in
//! IoT-enabled Mobile Devices* (DATE 2020).
//!
//! The paper's testbed instruments every device and aggregator with an
//! INA219 current sensor, drives real ESP32 boards as loads and measures the
//! network feed through a physical electrical connection at the aggregator.
//! This crate provides the simulated equivalents:
//!
//! * [`energy`] — strongly typed electrical quantities
//!   ([`Milliamps`], [`MilliwattHours`], …)
//!   and the [`EnergyAccumulator`] a device uses
//!   between reports.
//! * [`profile`] — ground-truth load profiles (CC/CV charging, ESP32 Wi-Fi
//!   duty cycles, composites) standing in for the physical devices.
//! * [`ina219`] — the INA219 measurement model with the 0.5 mA offset error
//!   the paper cites, gain error, quantization and noise.
//! * [`grid`] — the star-topology electrical network with ohmic losses that
//!   makes the aggregator-side measurement exceed the device sum (Fig. 5).
//! * [`fault`] — deterministic sensor failure shapes (stuck-at, drift,
//!   periodic spikes) applied by the fault-injection subsystem.
//!
//! # Examples
//!
//! ```
//! use rtem_sensors::ina219::{Ina219Config, Ina219Model};
//! use rtem_sensors::profile::{ChargingProfile, LoadProfile};
//! use rtem_sim::prelude::*;
//!
//! let rng = SimRng::seed_from_u64(42);
//! let mut load = ChargingProfile::esp32_testbed(rng.derive(1));
//! let mut sensor = Ina219Model::new(Ina219Config::testbed(), rng.derive(2));
//!
//! let truth = load.current_at(SimTime::from_secs(30));
//! let reading = sensor.measure(truth);
//! // The sensor is accurate to within its worst-case error bound.
//! assert!((reading.value() - truth.value()).abs() <= sensor.error_bound(truth).value() * 1.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod energy;
pub mod fault;
pub mod grid;
pub mod ina219;
pub mod profile;

pub use energy::{EnergyAccumulator, MilliampSeconds, Milliamps, Millivolts, MilliwattHours};
pub use fault::{SensorFault, SensorFaultKind};
pub use grid::{Branch, BranchId, GridNetwork, GridSnapshot};
pub use ina219::{Ina219Config, Ina219Model, ShuntRange};
pub use profile::{
    ChargePhase, ChargingProfile, CompositeProfile, ConstantProfile, LoadProfile, ShiftedProfile,
    WifiBurstProfile,
};
