//! Sensor fault shapes: how a failing INA219 distorts its readings.
//!
//! Real current sensors do not only carry datasheet error terms — they also
//! fail: a solder joint drifts with temperature, an ADC latches onto a fixed
//! code, electromagnetic interference injects periodic spikes. This module
//! describes those failure shapes as pure, deterministic transformations of
//! a measured value so the fault-injection subsystem (`rtem-faults`) can
//! schedule them and the device's physical layer can apply them.
//!
//! The distortion is applied *after* the [`Ina219Model`](crate::ina219::Ina219Model)
//! error terms: the device reports the faulty reading while the ground-truth
//! grid current stays untouched, which is exactly the discrepancy the
//! aggregator's complementary system-level measurement is designed to catch.

use crate::energy::Milliamps;
use rtem_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The shape of a sensor fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SensorFaultKind {
    /// The reading is stuck at a constant level regardless of the true load
    /// (a latched ADC, or tampered firmware reporting a flat value).
    StuckAt {
        /// The constant reading, in mA.
        level_ma: f64,
    },
    /// The reading drifts away from the truth at a constant rate (thermal
    /// drift, degrading shunt). Negative rates drift downward.
    Drift {
        /// Drift rate in mA per simulated second.
        rate_ma_per_s: f64,
    },
    /// Periodic spikes are added on top of the reading (EMI bursts): the
    /// spike is active during the first tenth of every period.
    Spike {
        /// Spike magnitude in mA.
        magnitude_ma: f64,
        /// Spike repetition period.
        period: SimDuration,
    },
}

/// An active sensor fault: a [`SensorFaultKind`] plus the time it started,
/// which anchors time-dependent shapes (drift, spikes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorFault {
    /// The fault's shape.
    pub kind: SensorFaultKind,
    /// When the fault began.
    pub since: SimTime,
}

impl SensorFault {
    /// Creates a fault starting at `since`.
    pub fn new(kind: SensorFaultKind, since: SimTime) -> Self {
        SensorFault { kind, since }
    }

    /// Applies the fault to a measured value at `now`. Readings are clamped
    /// to be non-negative (the INA219 is wired unidirectionally here).
    pub fn distort(&self, measured: Milliamps, now: SimTime) -> Milliamps {
        let elapsed = now.saturating_duration_since(self.since);
        let value = match self.kind {
            SensorFaultKind::StuckAt { level_ma } => level_ma,
            SensorFaultKind::Drift { rate_ma_per_s } => {
                measured.value() + rate_ma_per_s * elapsed.as_secs_f64()
            }
            SensorFaultKind::Spike {
                magnitude_ma,
                period,
            } => {
                let period_us = period.as_micros().max(1);
                let phase_us = elapsed.as_micros() % period_us;
                if phase_us < period_us / 10 {
                    measured.value() + magnitude_ma
                } else {
                    measured.value()
                }
            }
        };
        Milliamps::new(value.max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stuck_at_ignores_the_input() {
        let fault = SensorFault::new(SensorFaultKind::StuckAt { level_ma: 20.0 }, SimTime::ZERO);
        let out = fault.distort(Milliamps::new(150.0), SimTime::from_secs(5));
        assert_eq!(out.value(), 20.0);
    }

    #[test]
    fn drift_grows_linearly_with_elapsed_time() {
        let fault = SensorFault::new(
            SensorFaultKind::Drift { rate_ma_per_s: 2.0 },
            SimTime::from_secs(10),
        );
        let out = fault.distort(Milliamps::new(100.0), SimTime::from_secs(15));
        assert!((out.value() - 110.0).abs() < 1e-9);
        // Before the fault started there is no elapsed time to drift over.
        let out = fault.distort(Milliamps::new(100.0), SimTime::from_secs(10));
        assert_eq!(out.value(), 100.0);
    }

    #[test]
    fn negative_drift_clamps_at_zero() {
        let fault = SensorFault::new(
            SensorFaultKind::Drift {
                rate_ma_per_s: -50.0,
            },
            SimTime::ZERO,
        );
        let out = fault.distort(Milliamps::new(100.0), SimTime::from_secs(10));
        assert_eq!(out.value(), 0.0);
    }

    #[test]
    fn spikes_are_periodic_with_short_duty() {
        let fault = SensorFault::new(
            SensorFaultKind::Spike {
                magnitude_ma: 500.0,
                period: SimDuration::from_secs(1),
            },
            SimTime::ZERO,
        );
        // Start of the period: spiking.
        let spiked = fault.distort(Milliamps::new(100.0), SimTime::from_millis(2_050));
        assert_eq!(spiked.value(), 600.0);
        // Mid-period: clean.
        let clean = fault.distort(Milliamps::new(100.0), SimTime::from_millis(2_500));
        assert_eq!(clean.value(), 100.0);
    }
}
