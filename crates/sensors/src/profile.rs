//! Synthetic device load profiles.
//!
//! The paper's testbed measures ESP32 Thing boards while they charge and run
//! IoT firmware. No hardware is available here, so this module generates the
//! *ground-truth* current a device actually draws at any simulated instant.
//! The sensor model in [`crate::ina219`] then observes that ground truth with
//! realistic error, exactly as the INA219 observes the real current on the
//! testbed.
//!
//! Profiles are deterministic functions of `(time, seeded rng)` so an
//! experiment replays identically for a given scenario seed.

use crate::energy::Milliamps;
use rtem_sim::rng::SimRng;
use rtem_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A source of ground-truth current draw.
pub trait LoadProfile {
    /// The true current drawn at `now`.
    ///
    /// `now` is the global simulation time; profiles that need a notion of
    /// "time since plugged in" are composed via [`ShiftedProfile`].
    fn current_at(&mut self, now: SimTime) -> Milliamps;

    /// A short human-readable description, used in traces and reports.
    fn label(&self) -> String {
        "load".to_string()
    }
}

/// A constant current draw with optional Gaussian ripple.
///
/// # Examples
///
/// ```
/// use rtem_sensors::profile::{ConstantProfile, LoadProfile};
/// use rtem_sim::time::SimTime;
///
/// let mut idle = ConstantProfile::new(12.0);
/// assert_eq!(idle.current_at(SimTime::ZERO).value(), 12.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConstantProfile {
    level_ma: f64,
    ripple_ma: f64,
    rng: Option<SimRng>,
}

impl ConstantProfile {
    /// A noiseless constant draw of `level_ma` milliamps.
    ///
    /// # Panics
    ///
    /// Panics if `level_ma` is negative or not finite.
    pub fn new(level_ma: f64) -> Self {
        assert!(
            level_ma.is_finite() && level_ma >= 0.0,
            "load level must be finite and non-negative"
        );
        ConstantProfile {
            level_ma,
            ripple_ma: 0.0,
            rng: None,
        }
    }

    /// Adds zero-mean Gaussian ripple with the given standard deviation.
    pub fn with_ripple(mut self, ripple_ma: f64, rng: SimRng) -> Self {
        assert!(ripple_ma >= 0.0, "ripple must be non-negative");
        self.ripple_ma = ripple_ma;
        self.rng = Some(rng);
        self
    }

    /// The configured base level.
    pub fn level(&self) -> Milliamps {
        Milliamps::new(self.level_ma)
    }
}

impl LoadProfile for ConstantProfile {
    fn current_at(&mut self, _now: SimTime) -> Milliamps {
        let ripple = match (&mut self.rng, self.ripple_ma) {
            (Some(rng), r) if r > 0.0 => rng.normal(0.0, r),
            _ => 0.0,
        };
        Milliamps::new((self.level_ma + ripple).max(0.0))
    }

    fn label(&self) -> String {
        format!("constant {:.0} mA", self.level_ma)
    }
}

/// Phases of a lithium-ion charge cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChargePhase {
    /// Constant-current bulk charging.
    ConstantCurrent,
    /// Constant-voltage taper.
    ConstantVoltage,
    /// Charge terminated; only idle electronics draw remains.
    Done,
}

/// A CC/CV battery-charging profile, the dominant load in the paper's
/// e-scooter motivating example and the Fig. 5/6 experiments.
///
/// During the constant-current phase the device draws `cc_current_ma`; once
/// the taper starts the current decays exponentially towards the termination
/// threshold, after which only the idle draw remains.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChargingProfile {
    cc_current_ma: f64,
    idle_ma: f64,
    cc_duration: SimDuration,
    taper_time_constant: SimDuration,
    termination_fraction: f64,
    ripple_ma: f64,
    rng: SimRng,
}

impl ChargingProfile {
    /// Creates a charging profile.
    ///
    /// * `cc_current_ma` — bulk charge current (e.g. 450 mA for a small pack).
    /// * `cc_duration` — length of the constant-current phase.
    /// * `taper_time_constant` — exponential decay constant of the CV phase.
    /// * `idle_ma` — residual electronics draw after termination.
    ///
    /// # Panics
    ///
    /// Panics if any magnitude is negative or not finite.
    pub fn new(
        cc_current_ma: f64,
        cc_duration: SimDuration,
        taper_time_constant: SimDuration,
        idle_ma: f64,
        rng: SimRng,
    ) -> Self {
        assert!(cc_current_ma.is_finite() && cc_current_ma >= 0.0);
        assert!(idle_ma.is_finite() && idle_ma >= 0.0);
        ChargingProfile {
            cc_current_ma,
            idle_ma,
            cc_duration,
            taper_time_constant,
            termination_fraction: 0.1,
            ripple_ma: cc_current_ma * 0.01,
            rng,
        }
    }

    /// A profile shaped like the ESP32 + small battery setup of the testbed:
    /// ~180 mA bulk charge, 40-minute CC phase, 10-minute taper constant,
    /// ~15 mA idle draw.
    pub fn esp32_testbed(rng: SimRng) -> Self {
        ChargingProfile::new(
            180.0,
            SimDuration::from_secs(40 * 60),
            SimDuration::from_secs(10 * 60),
            15.0,
            rng,
        )
    }

    /// An e-scooter style fast charge: 2 A bulk for 3 hours with a 30-minute
    /// taper constant, 25 mA idle electronics.
    pub fn e_scooter(rng: SimRng) -> Self {
        ChargingProfile::new(
            2000.0,
            SimDuration::from_secs(3 * 3600),
            SimDuration::from_secs(30 * 60),
            25.0,
            rng,
        )
    }

    /// Which phase the charge cycle is in at `elapsed` time since plug-in.
    pub fn phase_at(&self, elapsed: SimDuration) -> ChargePhase {
        if elapsed < self.cc_duration {
            ChargePhase::ConstantCurrent
        } else {
            let taper_elapsed =
                (elapsed - self.cc_duration).as_secs_f64() / self.taper_time_constant.as_secs_f64();
            let fraction = (-taper_elapsed).exp();
            if fraction <= self.termination_fraction {
                ChargePhase::Done
            } else {
                ChargePhase::ConstantVoltage
            }
        }
    }

    fn mean_current(&self, elapsed: SimDuration) -> f64 {
        match self.phase_at(elapsed) {
            ChargePhase::ConstantCurrent => self.cc_current_ma,
            ChargePhase::ConstantVoltage => {
                let taper_elapsed = (elapsed - self.cc_duration).as_secs_f64()
                    / self.taper_time_constant.as_secs_f64();
                (self.cc_current_ma * (-taper_elapsed).exp()).max(self.idle_ma)
            }
            ChargePhase::Done => self.idle_ma,
        }
    }
}

impl LoadProfile for ChargingProfile {
    fn current_at(&mut self, now: SimTime) -> Milliamps {
        let elapsed = now.saturating_duration_since(SimTime::ZERO);
        let mean = self.mean_current(elapsed);
        let noisy = mean + self.rng.normal(0.0, self.ripple_ma);
        Milliamps::new(noisy.max(0.0))
    }

    fn label(&self) -> String {
        format!("CC/CV charge {:.0} mA", self.cc_current_ma)
    }
}

/// An IoT duty-cycle profile: a low sleep current with periodic Wi-Fi
/// transmission bursts, the "device reports every Tmeasure" workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WifiBurstProfile {
    sleep_ma: f64,
    burst_ma: f64,
    period: SimDuration,
    burst_len: SimDuration,
    jitter_ma: f64,
    rng: SimRng,
}

impl WifiBurstProfile {
    /// Creates a duty-cycled profile.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or `burst_len` exceeds `period`.
    pub fn new(
        sleep_ma: f64,
        burst_ma: f64,
        period: SimDuration,
        burst_len: SimDuration,
        rng: SimRng,
    ) -> Self {
        assert!(!period.is_zero(), "period must be non-zero");
        assert!(burst_len <= period, "burst cannot exceed its period");
        WifiBurstProfile {
            sleep_ma,
            burst_ma,
            period,
            burst_len,
            jitter_ma: 2.0,
            rng,
        }
    }

    /// The ESP32 Thing figures from its datasheet: ~20 mA modem-sleep,
    /// ~160 mA during an 802.11 transmit burst, reporting every 100 ms.
    pub fn esp32_reporting(rng: SimRng) -> Self {
        WifiBurstProfile::new(
            20.0,
            160.0,
            SimDuration::from_millis(100),
            SimDuration::from_millis(12),
            rng,
        )
    }

    /// Average current of the duty cycle, useful as an analytic check.
    pub fn duty_cycle_mean(&self) -> Milliamps {
        let duty = self.burst_len.as_secs_f64() / self.period.as_secs_f64();
        Milliamps::new(self.burst_ma * duty + self.sleep_ma * (1.0 - duty))
    }
}

impl LoadProfile for WifiBurstProfile {
    fn current_at(&mut self, now: SimTime) -> Milliamps {
        let into_period = now.as_micros() % self.period.as_micros();
        let base = if into_period < self.burst_len.as_micros() {
            self.burst_ma
        } else {
            self.sleep_ma
        };
        Milliamps::new((base + self.rng.normal(0.0, self.jitter_ma)).max(0.0))
    }

    fn label(&self) -> String {
        format!("wifi burst {:.0}/{:.0} mA", self.sleep_ma, self.burst_ma)
    }
}

impl LoadProfile for Box<dyn LoadProfile + Send> {
    fn current_at(&mut self, now: SimTime) -> Milliamps {
        (**self).current_at(now)
    }

    fn label(&self) -> String {
        (**self).label()
    }
}

/// Sums several profiles (e.g. charging + reporting firmware).
#[derive(Default)]
pub struct CompositeProfile {
    parts: Vec<Box<dyn LoadProfile + Send>>,
}

impl core::fmt::Debug for CompositeProfile {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("CompositeProfile")
            .field("parts", &self.parts.len())
            .finish()
    }
}

impl CompositeProfile {
    /// Creates an empty composite (draws zero current).
    pub fn new() -> Self {
        CompositeProfile { parts: Vec::new() }
    }

    /// Adds a component profile.
    pub fn push(mut self, profile: impl LoadProfile + Send + 'static) -> Self {
        self.parts.push(Box::new(profile));
        self
    }

    /// Number of component profiles.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// Returns `true` if the composite has no components.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }
}

impl LoadProfile for CompositeProfile {
    fn current_at(&mut self, now: SimTime) -> Milliamps {
        self.parts
            .iter_mut()
            .map(|p| p.current_at(now))
            .sum::<Milliamps>()
    }

    fn label(&self) -> String {
        format!("composite of {}", self.parts.len())
    }
}

/// Delays an inner profile so that its local time starts at `start`:
/// before `start` only `off_current` (usually zero) is drawn. Used to model
/// a device that plugs in at an arbitrary simulation time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShiftedProfile<P> {
    inner: P,
    start: SimTime,
    off_current: f64,
}

impl<P: LoadProfile> ShiftedProfile<P> {
    /// Wraps `inner` so it starts producing current at `start`.
    pub fn new(inner: P, start: SimTime) -> Self {
        ShiftedProfile {
            inner,
            start,
            off_current: 0.0,
        }
    }

    /// Sets the current drawn before `start` (defaults to zero).
    pub fn with_off_current(mut self, off_ma: f64) -> Self {
        assert!(off_ma >= 0.0, "off current must be non-negative");
        self.off_current = off_ma;
        self
    }

    /// The wrapped profile.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: LoadProfile> LoadProfile for ShiftedProfile<P> {
    fn current_at(&mut self, now: SimTime) -> Milliamps {
        if now < self.start {
            Milliamps::new(self.off_current)
        } else {
            let local = SimTime::from_micros(now.as_micros() - self.start.as_micros());
            self.inner.current_at(local)
        }
    }

    fn label(&self) -> String {
        format!("{} (from {})", self.inner.label(), self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(1234)
    }

    #[test]
    fn constant_profile_is_constant() {
        let mut p = ConstantProfile::new(42.0);
        for s in 0..10 {
            assert_eq!(p.current_at(SimTime::from_secs(s)).value(), 42.0);
        }
    }

    #[test]
    fn constant_profile_ripple_is_bounded_and_centred() {
        let mut p = ConstantProfile::new(100.0).with_ripple(1.0, rng());
        let n = 5000;
        let mean: f64 = (0..n)
            .map(|i| p.current_at(SimTime::from_millis(i)).value())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 100.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn charging_profile_phases_progress() {
        let p = ChargingProfile::new(
            200.0,
            SimDuration::from_secs(600),
            SimDuration::from_secs(300),
            10.0,
            rng(),
        );
        assert_eq!(
            p.phase_at(SimDuration::from_secs(0)),
            ChargePhase::ConstantCurrent
        );
        assert_eq!(
            p.phase_at(SimDuration::from_secs(599)),
            ChargePhase::ConstantCurrent
        );
        assert_eq!(
            p.phase_at(SimDuration::from_secs(700)),
            ChargePhase::ConstantVoltage
        );
        // After many time constants the charge terminates.
        assert_eq!(p.phase_at(SimDuration::from_secs(4000)), ChargePhase::Done);
    }

    #[test]
    fn charging_current_decays_towards_idle() {
        let mut p = ChargingProfile::new(
            200.0,
            SimDuration::from_secs(600),
            SimDuration::from_secs(300),
            10.0,
            rng(),
        );
        let bulk = p.current_at(SimTime::from_secs(100)).value();
        let taper = p.current_at(SimTime::from_secs(1200)).value();
        let done = p.current_at(SimTime::from_secs(10_000)).value();
        assert!(bulk > 150.0, "bulk {bulk}");
        assert!(taper < bulk && taper > done, "taper {taper}");
        assert!((done - 10.0).abs() < 5.0, "done {done}");
    }

    #[test]
    fn esp32_testbed_profile_is_in_expected_range() {
        let mut p = ChargingProfile::esp32_testbed(rng());
        let i = p.current_at(SimTime::from_secs(60)).value();
        assert!((150.0..250.0).contains(&i), "testbed bulk current {i}");
    }

    #[test]
    fn wifi_burst_peaks_during_burst_window() {
        let mut p = WifiBurstProfile::new(
            20.0,
            160.0,
            SimDuration::from_millis(100),
            SimDuration::from_millis(10),
            rng(),
        );
        let in_burst = p.current_at(SimTime::from_millis(200) + SimDuration::from_micros(500));
        let in_sleep = p.current_at(SimTime::from_millis(250));
        assert!(in_burst.value() > 100.0, "burst {in_burst}");
        assert!(in_sleep.value() < 60.0, "sleep {in_sleep}");
    }

    #[test]
    fn wifi_duty_cycle_mean_matches_samples() {
        let mut p = WifiBurstProfile::esp32_reporting(rng());
        let analytic = p.duty_cycle_mean().value();
        let n = 100_000u64;
        let mean: f64 = (0..n)
            .map(|i| p.current_at(SimTime::from_micros(i * 97)).value())
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean - analytic).abs() < analytic * 0.1,
            "sampled {mean} vs analytic {analytic}"
        );
    }

    #[test]
    fn composite_sums_parts() {
        let mut p = CompositeProfile::new()
            .push(ConstantProfile::new(10.0))
            .push(ConstantProfile::new(32.0));
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.current_at(SimTime::ZERO).value(), 42.0);
    }

    #[test]
    fn empty_composite_draws_nothing() {
        let mut p = CompositeProfile::new();
        assert!(p.is_empty());
        assert_eq!(p.current_at(SimTime::from_secs(5)), Milliamps::ZERO);
    }

    #[test]
    fn shifted_profile_starts_late() {
        let inner = ConstantProfile::new(100.0);
        let mut p = ShiftedProfile::new(inner, SimTime::from_secs(10)).with_off_current(1.0);
        assert_eq!(p.current_at(SimTime::from_secs(5)).value(), 1.0);
        assert_eq!(p.current_at(SimTime::from_secs(15)).value(), 100.0);
    }

    #[test]
    fn labels_are_descriptive() {
        assert!(ConstantProfile::new(5.0).label().contains("constant"));
        assert!(ChargingProfile::esp32_testbed(rng())
            .label()
            .contains("CC/CV"));
        assert!(WifiBurstProfile::esp32_reporting(rng())
            .label()
            .contains("wifi"));
    }
}
