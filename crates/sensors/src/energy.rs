//! Electrical quantities and energy accounting.
//!
//! The paper computes device energy from current-sensor readings, the known
//! supply voltage and the measurement duration (§III-A). This module provides
//! the strongly typed quantities used throughout the workspace so milliamps
//! never get mixed up with milliamp-hours or milliwatt-hours.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Mul, Neg, Sub};
use rtem_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Electrical current in milliamperes.
///
/// # Examples
///
/// ```
/// use rtem_sensors::energy::Milliamps;
///
/// let load = Milliamps::new(120.0) + Milliamps::new(30.0);
/// assert_eq!(load.value(), 150.0);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Milliamps(f64);

impl Milliamps {
    /// Zero current.
    pub const ZERO: Milliamps = Milliamps(0.0);

    /// Creates a current value.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite.
    pub fn new(value: f64) -> Self {
        assert!(value.is_finite(), "current must be finite, got {value}");
        Milliamps(value)
    }

    /// Raw value in mA.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Absolute value.
    pub fn abs(self) -> Milliamps {
        Milliamps(self.0.abs())
    }

    /// Clamps negative readings to zero (consumption can never be negative
    /// for the loads modelled here).
    pub fn clamp_non_negative(self) -> Milliamps {
        Milliamps(self.0.max(0.0))
    }

    /// Charge transferred when this current flows for `duration`.
    pub fn over(self, duration: SimDuration) -> MilliampSeconds {
        MilliampSeconds(self.0 * duration.as_secs_f64())
    }
}

impl fmt::Display for Milliamps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} mA", self.0)
    }
}

impl Add for Milliamps {
    type Output = Milliamps;
    fn add(self, rhs: Milliamps) -> Milliamps {
        Milliamps(self.0 + rhs.0)
    }
}
impl AddAssign for Milliamps {
    fn add_assign(&mut self, rhs: Milliamps) {
        self.0 += rhs.0;
    }
}
impl Sub for Milliamps {
    type Output = Milliamps;
    fn sub(self, rhs: Milliamps) -> Milliamps {
        Milliamps(self.0 - rhs.0)
    }
}
impl Neg for Milliamps {
    type Output = Milliamps;
    fn neg(self) -> Milliamps {
        Milliamps(-self.0)
    }
}
impl Mul<f64> for Milliamps {
    type Output = Milliamps;
    fn mul(self, rhs: f64) -> Milliamps {
        Milliamps(self.0 * rhs)
    }
}
impl Sum for Milliamps {
    fn sum<I: Iterator<Item = Milliamps>>(iter: I) -> Milliamps {
        Milliamps(iter.map(|m| m.0).sum())
    }
}

/// Electrical potential in millivolts.
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Millivolts(f64);

impl Millivolts {
    /// Creates a voltage value.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite.
    pub fn new(value: f64) -> Self {
        assert!(value.is_finite(), "voltage must be finite, got {value}");
        Millivolts(value)
    }

    /// Raw value in mV.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Nominal USB / ESP32 Thing supply rail used by the paper's testbed.
    pub fn usb_bus() -> Self {
        Millivolts(5_000.0)
    }
}

impl fmt::Display for Millivolts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} mV", self.0)
    }
}

/// Charge in milliampere-seconds (mA·s), the unit the testbed accumulates
/// between reports.
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct MilliampSeconds(f64);

impl MilliampSeconds {
    /// Zero charge.
    pub const ZERO: MilliampSeconds = MilliampSeconds(0.0);

    /// Creates a charge value.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite.
    pub fn new(value: f64) -> Self {
        assert!(value.is_finite(), "charge must be finite, got {value}");
        MilliampSeconds(value)
    }

    /// Creates a charge value from integer microamp-seconds (the unit the
    /// ledger and billing engine store).
    pub fn from_uas(uas: u64) -> Self {
        MilliampSeconds::new(uas as f64 / 1000.0)
    }

    /// Raw value in mA·s.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Converts to milliamp-hours.
    pub fn to_milliamp_hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// Energy at a given (constant) supply voltage.
    pub fn energy_at(self, voltage: Millivolts) -> MilliwattHours {
        // mA·s * mV = nW·s; 1 mWh = 3.6e9 nW·s.
        MilliwattHours(self.0 * voltage.value() / 3.6e9 * 1.0e3)
    }
}

impl fmt::Display for MilliampSeconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} mA·s", self.0)
    }
}

impl Add for MilliampSeconds {
    type Output = MilliampSeconds;
    fn add(self, rhs: MilliampSeconds) -> MilliampSeconds {
        MilliampSeconds(self.0 + rhs.0)
    }
}
impl AddAssign for MilliampSeconds {
    fn add_assign(&mut self, rhs: MilliampSeconds) {
        self.0 += rhs.0;
    }
}
impl Sub for MilliampSeconds {
    type Output = MilliampSeconds;
    fn sub(self, rhs: MilliampSeconds) -> MilliampSeconds {
        MilliampSeconds(self.0 - rhs.0)
    }
}
impl Sum for MilliampSeconds {
    fn sum<I: Iterator<Item = MilliampSeconds>>(iter: I) -> MilliampSeconds {
        MilliampSeconds(iter.map(|m| m.0).sum())
    }
}

/// Energy in milliwatt-hours, the billing unit.
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct MilliwattHours(f64);

impl MilliwattHours {
    /// Zero energy.
    pub const ZERO: MilliwattHours = MilliwattHours(0.0);

    /// Creates an energy value.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite.
    pub fn new(value: f64) -> Self {
        assert!(value.is_finite(), "energy must be finite, got {value}");
        MilliwattHours(value)
    }

    /// Raw value in mWh.
    pub fn value(self) -> f64 {
        self.0
    }
}

impl fmt::Display for MilliwattHours {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} mWh", self.0)
    }
}

impl Add for MilliwattHours {
    type Output = MilliwattHours;
    fn add(self, rhs: MilliwattHours) -> MilliwattHours {
        MilliwattHours(self.0 + rhs.0)
    }
}
impl AddAssign for MilliwattHours {
    fn add_assign(&mut self, rhs: MilliwattHours) {
        self.0 += rhs.0;
    }
}
impl Sub for MilliwattHours {
    type Output = MilliwattHours;
    fn sub(self, rhs: MilliwattHours) -> MilliwattHours {
        MilliwattHours(self.0 - rhs.0)
    }
}
impl Sum for MilliwattHours {
    fn sum<I: Iterator<Item = MilliwattHours>>(iter: I) -> MilliwattHours {
        MilliwattHours(iter.map(|m| m.0).sum())
    }
}

/// Incrementally accumulates energy from a stream of current samples at a
/// fixed supply voltage, exactly as the device firmware does between reports.
///
/// # Examples
///
/// ```
/// use rtem_sensors::energy::{EnergyAccumulator, Milliamps, Millivolts};
/// use rtem_sim::time::SimDuration;
///
/// let mut acc = EnergyAccumulator::new(Millivolts::usb_bus());
/// // 100 mA held for ten 100 ms intervals = 100 mA·s of charge.
/// for _ in 0..10 {
///     acc.add_sample(Milliamps::new(100.0), SimDuration::from_millis(100));
/// }
/// assert!((acc.charge().value() - 100.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyAccumulator {
    voltage: Millivolts,
    charge: MilliampSeconds,
    samples: u64,
}

impl EnergyAccumulator {
    /// Creates an accumulator for the given supply voltage.
    pub fn new(voltage: Millivolts) -> Self {
        EnergyAccumulator {
            voltage,
            charge: MilliampSeconds::ZERO,
            samples: 0,
        }
    }

    /// Adds one current sample held for `duration`.
    pub fn add_sample(&mut self, current: Milliamps, duration: SimDuration) {
        self.charge += current.clamp_non_negative().over(duration);
        self.samples += 1;
    }

    /// Total accumulated charge.
    pub fn charge(&self) -> MilliampSeconds {
        self.charge
    }

    /// Total accumulated energy at the configured voltage.
    pub fn energy(&self) -> MilliwattHours {
        self.charge.energy_at(self.voltage)
    }

    /// Number of samples accumulated.
    pub fn sample_count(&self) -> u64 {
        self.samples
    }

    /// Supply voltage the accumulator was configured with.
    pub fn voltage(&self) -> Millivolts {
        self.voltage
    }

    /// Resets the accumulator and returns the charge accumulated so far.
    /// Called by the device when a report is successfully acknowledged.
    pub fn drain(&mut self) -> MilliampSeconds {
        let out = self.charge;
        self.charge = MilliampSeconds::ZERO;
        self.samples = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn current_arithmetic() {
        let a = Milliamps::new(100.0);
        let b = Milliamps::new(25.0);
        assert_eq!((a + b).value(), 125.0);
        assert_eq!((a - b).value(), 75.0);
        assert_eq!((a * 2.0).value(), 200.0);
        assert_eq!((-b).value(), -25.0);
        assert_eq!((-b).abs().value(), 25.0);
        assert_eq!((-b).clamp_non_negative(), Milliamps::ZERO);
    }

    #[test]
    fn sum_of_currents() {
        let total: Milliamps = vec![
            Milliamps::new(1.0),
            Milliamps::new(2.0),
            Milliamps::new(3.0),
        ]
        .into_iter()
        .sum();
        assert_eq!(total.value(), 6.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_current_rejected() {
        let _ = Milliamps::new(f64::INFINITY);
    }

    #[test]
    fn charge_from_current_and_time() {
        let q = Milliamps::new(150.0).over(SimDuration::from_millis(100));
        assert!((q.value() - 15.0).abs() < 1e-12);
        assert!((q.to_milliamp_hours() - 15.0 / 3600.0).abs() < 1e-12);
    }

    #[test]
    fn energy_conversion_five_volt_rail() {
        // 3600 mA·s at 5 V = 1 mAh * 5 V = 5 mWh.
        let q = MilliampSeconds::new(3600.0);
        let e = q.energy_at(Millivolts::usb_bus());
        assert!((e.value() - 5.0).abs() < 1e-9, "got {e}");
    }

    #[test]
    fn accumulator_matches_manual_sum() {
        let mut acc = EnergyAccumulator::new(Millivolts::new(5000.0));
        let samples = [120.0, 130.0, 110.0, 90.0];
        for &ma in &samples {
            acc.add_sample(Milliamps::new(ma), SimDuration::from_millis(100));
        }
        let expected: f64 = samples.iter().map(|ma| ma * 0.1).sum();
        assert!((acc.charge().value() - expected).abs() < 1e-9);
        assert_eq!(acc.sample_count(), 4);
    }

    #[test]
    fn accumulator_ignores_negative_current() {
        let mut acc = EnergyAccumulator::new(Millivolts::usb_bus());
        acc.add_sample(Milliamps::new(-50.0), SimDuration::from_secs(1));
        assert_eq!(acc.charge(), MilliampSeconds::ZERO);
    }

    #[test]
    fn drain_resets_state() {
        let mut acc = EnergyAccumulator::new(Millivolts::usb_bus());
        acc.add_sample(Milliamps::new(10.0), SimDuration::from_secs(1));
        let drained = acc.drain();
        assert!((drained.value() - 10.0).abs() < 1e-12);
        assert_eq!(acc.charge(), MilliampSeconds::ZERO);
        assert_eq!(acc.sample_count(), 0);
    }

    #[test]
    fn display_formats_units() {
        assert_eq!(Milliamps::new(1.5).to_string(), "1.500 mA");
        assert_eq!(Millivolts::new(5000.0).to_string(), "5000.0 mV");
        assert_eq!(MilliampSeconds::new(2.0).to_string(), "2.000 mA·s");
        assert_eq!(MilliwattHours::new(0.12345).to_string(), "0.1235 mWh");
    }

    #[test]
    fn energy_addition_and_subtraction() {
        let a = MilliwattHours::new(2.0);
        let b = MilliwattHours::new(0.5);
        assert_eq!((a + b).value(), 2.5);
        assert_eq!((a - b).value(), 1.5);
        let s: MilliwattHours = vec![a, b].into_iter().sum();
        assert_eq!(s.value(), 2.5);
    }
}
