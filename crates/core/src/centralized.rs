//! Centralized-metering baseline.
//!
//! The paper's first experiment compares decentralized (per-device) metering
//! against centralized metering, where "the aggregator ... provides the
//! total energy consumption for the network which is analogous to a
//! centralized meter" (§III-B.a). This module models that baseline directly:
//! a single meter at the network feed, with no per-device visibility, so the
//! comparison harness can report both columns of Fig. 5 and quantify what
//! centralized metering *cannot* do (per-device attribution, mobility).

use rtem_sensors::energy::Milliamps;
use rtem_sensors::grid::{GridNetwork, GridSnapshot};
use rtem_sensors::ina219::{Ina219Config, Ina219Model};
use rtem_sensors::BranchId;
use rtem_sim::rng::SimRng;
use rtem_sim::time::SimTime;
use rtem_sim::trace::TimeSeries;
use serde::{Deserialize, Serialize};

/// A single network-feed meter (the centralized baseline).
pub struct CentralizedMeter {
    sensor: Ina219Model,
    series: TimeSeries,
    last_snapshot: Option<GridSnapshot>,
}

impl core::fmt::Debug for CentralizedMeter {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("CentralizedMeter")
            .field("samples", &self.series.len())
            .finish()
    }
}

impl CentralizedMeter {
    /// Creates a meter with the given sensor model.
    pub fn new(sensor: Ina219Config, rng: SimRng) -> Self {
        CentralizedMeter {
            sensor: Ina219Model::new(sensor, rng),
            series: TimeSeries::new("centralized meter (mA)"),
            last_snapshot: None,
        }
    }

    /// Samples the meter: evaluates the grid for the given per-branch loads
    /// and measures the upstream total with the meter's own sensor.
    pub fn sample(
        &mut self,
        grid: &GridNetwork,
        loads: &[(BranchId, Milliamps)],
        now: SimTime,
    ) -> Milliamps {
        let snapshot = grid.evaluate(loads);
        let measured = self.sensor.measure(snapshot.upstream_total);
        self.series.push(now, measured.value());
        self.last_snapshot = Some(snapshot);
        measured
    }

    /// The meter's recorded time series.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    /// The most recent grid snapshot (ground truth, for analysis only — a
    /// real centralized meter has no access to this).
    pub fn last_snapshot(&self) -> Option<&GridSnapshot> {
        self.last_snapshot.as_ref()
    }

    /// Total charge measured so far, in mA·s (trapezoidal integration).
    pub fn total_charge_mas(&self) -> f64 {
        self.series.integrate()
    }
}

/// Side-by-side comparison of the two metering approaches over one window,
/// as plotted in Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeteringComparison {
    /// Sum of device-reported charge (decentralized), mA·s.
    pub decentralized_mas: f64,
    /// Charge measured by the centralized meter, mA·s.
    pub centralized_mas: f64,
}

impl MeteringComparison {
    /// Relative excess of the centralized reading over the decentralized sum,
    /// in percent.
    pub fn overhead_percent(&self) -> f64 {
        if self.decentralized_mas <= f64::EPSILON {
            0.0
        } else {
            (self.centralized_mas - self.decentralized_mas) / self.decentralized_mas * 100.0
        }
    }

    /// Whether the centralized reading exceeds the decentralized sum — the
    /// systematic bias the paper attributes to ohmic losses and sensor
    /// offsets.
    pub fn centralized_reads_higher(&self) -> bool {
        self.centralized_mas > self.decentralized_mas
    }
}

/// Capabilities of the two approaches, used in the qualitative part of the
/// comparison (what the paper's architecture adds beyond accuracy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapabilityMatrix {
    /// Can consumption be attributed to individual devices?
    pub per_device_attribution: bool,
    /// Can a device be billed when it charges in a foreign network?
    pub location_independent_billing: bool,
    /// Is stored data tamper-evident?
    pub tamper_evident_storage: bool,
}

impl CapabilityMatrix {
    /// The centralized baseline's capabilities.
    pub fn centralized() -> Self {
        CapabilityMatrix {
            per_device_attribution: false,
            location_independent_billing: false,
            tamper_evident_storage: false,
        }
    }

    /// The proposed decentralized architecture's capabilities.
    pub fn decentralized() -> Self {
        CapabilityMatrix {
            per_device_attribution: true,
            location_independent_billing: true,
            tamper_evident_storage: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtem_sensors::grid::Branch;
    use rtem_sim::time::SimDuration;

    #[test]
    fn centralized_meter_integrates_network_consumption() {
        let mut grid = GridNetwork::new();
        let a = grid.add_branch(Branch::default());
        let b = grid.add_branch(Branch::default());
        let mut meter = CentralizedMeter::new(Ina219Config::testbed(), SimRng::seed_from_u64(1));
        for i in 0..=100u64 {
            let now = SimTime::ZERO + SimDuration::from_millis(i * 100);
            meter.sample(
                &grid,
                &[(a, Milliamps::new(180.0)), (b, Milliamps::new(160.0))],
                now,
            );
        }
        // 340 mA of device load (plus losses) over 10 s ≈ 3400+ mA·s.
        let total = meter.total_charge_mas();
        assert!(total > 3_400.0, "total {total}");
        assert!(total < 3_700.0, "total {total}");
        assert!(meter.last_snapshot().is_some());
        assert_eq!(meter.series().len(), 101);
    }

    #[test]
    fn comparison_reports_centralized_bias() {
        let cmp = MeteringComparison {
            decentralized_mas: 1000.0,
            centralized_mas: 1045.0,
        };
        assert!(cmp.centralized_reads_higher());
        assert!((cmp.overhead_percent() - 4.5).abs() < 1e-9);
    }

    #[test]
    fn comparison_handles_zero_decentralized() {
        let cmp = MeteringComparison {
            decentralized_mas: 0.0,
            centralized_mas: 10.0,
        };
        assert_eq!(cmp.overhead_percent(), 0.0);
    }

    #[test]
    fn capability_matrix_favours_decentralized() {
        let c = CapabilityMatrix::centralized();
        let d = CapabilityMatrix::decentralized();
        assert!(!c.per_device_attribution && d.per_device_attribution);
        assert!(!c.location_independent_billing && d.location_independent_billing);
        assert!(!c.tamper_evident_storage && d.tamper_evident_storage);
    }
}
