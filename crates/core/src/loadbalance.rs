//! Dynamic load-balancing extension (the paper's future work, §IV).
//!
//! "Device mobility introduces unprecedented demand variability and leads to
//! research problems such as dynamic load-balancing." Aggregators have a
//! hard capacity (their TDMA slot count) and a soft electrical limit; when
//! mobile devices cluster at one grid-location, newcomers are rejected with
//! `NoFreeSlots`. This module provides a planner that, given the current
//! occupancy and demand of every network, proposes which *mobile* devices to
//! steer to which network so that slot utilisation is evened out.

use rtem_net::packet::{AggregatorAddr, DeviceId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The load state of one network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkLoad {
    /// The network's aggregator.
    pub network: AggregatorAddr,
    /// Total reporting slots.
    pub slot_capacity: u16,
    /// Devices currently registered.
    pub registered: Vec<DeviceId>,
    /// Of the registered devices, those that are mobile (relocatable).
    pub mobile: Vec<DeviceId>,
    /// Mean electrical demand of the network in mA (informational).
    pub demand_ma: f64,
}

impl NetworkLoad {
    /// Slot utilisation in `[0, 1]`.
    pub fn utilisation(&self) -> f64 {
        if self.slot_capacity == 0 {
            1.0
        } else {
            self.registered.len() as f64 / f64::from(self.slot_capacity)
        }
    }
}

/// One proposed device relocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Relocation {
    /// Device to steer.
    pub device: DeviceId,
    /// Network it currently occupies.
    pub from: AggregatorAddr,
    /// Network it should move to.
    pub to: AggregatorAddr,
}

/// A load-balancing plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BalancePlan {
    /// Proposed relocations, in application order.
    pub relocations: Vec<Relocation>,
    /// Peak slot utilisation before applying the plan.
    pub peak_utilisation_before: f64,
    /// Peak slot utilisation after applying the plan.
    pub peak_utilisation_after: f64,
}

impl BalancePlan {
    /// Whether the plan improves the peak utilisation.
    pub fn improves(&self) -> bool {
        self.peak_utilisation_after < self.peak_utilisation_before - 1e-9
    }
}

/// Greedy balancer: repeatedly move a mobile device from the most loaded
/// network to the least loaded one while doing so reduces the spread.
///
/// Only mobile devices are candidates — stationary devices cannot change
/// grid-location. The balancer never overfills the destination.
pub fn plan_balance(loads: &[NetworkLoad]) -> BalancePlan {
    let mut occupancy: BTreeMap<AggregatorAddr, usize> = loads
        .iter()
        .map(|l| (l.network, l.registered.len()))
        .collect();
    let capacity: BTreeMap<AggregatorAddr, u16> =
        loads.iter().map(|l| (l.network, l.slot_capacity)).collect();
    let mut movable: BTreeMap<AggregatorAddr, Vec<DeviceId>> = loads
        .iter()
        .map(|l| (l.network, l.mobile.clone()))
        .collect();

    let utilisation = |occ: &BTreeMap<AggregatorAddr, usize>, addr: AggregatorAddr| -> f64 {
        let cap = f64::from(capacity[&addr]).max(1.0);
        occ[&addr] as f64 / cap
    };
    let peak = |occ: &BTreeMap<AggregatorAddr, usize>| -> f64 {
        occ.keys().map(|&a| utilisation(occ, a)).fold(0.0, f64::max)
    };

    let before = peak(&occupancy);
    let mut relocations = Vec::new();

    if loads.len() >= 2 {
        loop {
            let most = occupancy
                .keys()
                .copied()
                .max_by(|&a, &b| {
                    utilisation(&occupancy, a)
                        .partial_cmp(&utilisation(&occupancy, b))
                        .unwrap_or(core::cmp::Ordering::Equal)
                })
                .expect("non-empty");
            let least = occupancy
                .keys()
                .copied()
                .min_by(|&a, &b| {
                    utilisation(&occupancy, a)
                        .partial_cmp(&utilisation(&occupancy, b))
                        .unwrap_or(core::cmp::Ordering::Equal)
                })
                .expect("non-empty");
            if most == least {
                break;
            }
            let gain = utilisation(&occupancy, most) - utilisation(&occupancy, least);
            // Moving one device changes each side by 1/capacity; only move if
            // the spread genuinely shrinks and the destination has room.
            let step = 1.0 / f64::from(capacity[&most]).max(1.0)
                + 1.0 / f64::from(capacity[&least]).max(1.0);
            let destination_full = occupancy[&least] >= usize::from(capacity[&least]);
            let Some(device) = movable.get_mut(&most).and_then(|v| v.pop()) else {
                break;
            };
            if gain <= step || destination_full {
                break;
            }
            *occupancy.get_mut(&most).expect("known") -= 1;
            *occupancy.get_mut(&least).expect("known") += 1;
            movable.get_mut(&least).expect("known").push(device);
            relocations.push(Relocation {
                device,
                from: most,
                to: least,
            });
        }
    }

    BalancePlan {
        relocations,
        peak_utilisation_before: before,
        peak_utilisation_after: peak(&occupancy),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(network: u32, capacity: u16, devices: u64, mobile: u64) -> NetworkLoad {
        let registered: Vec<DeviceId> = (0..devices)
            .map(|i| DeviceId(u64::from(network) * 1000 + i))
            .collect();
        let mobile: Vec<DeviceId> = registered.iter().copied().take(mobile as usize).collect();
        NetworkLoad {
            network: AggregatorAddr(network),
            slot_capacity: capacity,
            registered,
            mobile,
            demand_ma: devices as f64 * 150.0,
        }
    }

    #[test]
    fn utilisation_is_fraction_of_slots() {
        assert!((load(1, 10, 5, 0).utilisation() - 0.5).abs() < 1e-12);
        assert_eq!(
            NetworkLoad {
                slot_capacity: 0,
                ..load(1, 10, 5, 0)
            }
            .utilisation(),
            1.0
        );
    }

    #[test]
    fn imbalanced_networks_produce_relocations() {
        let loads = vec![load(1, 10, 9, 6), load(2, 10, 1, 1)];
        let plan = plan_balance(&loads);
        assert!(plan.improves());
        assert!(!plan.relocations.is_empty());
        assert!(plan.relocations.iter().all(|r| r.from == AggregatorAddr(1)));
        assert!(plan.relocations.iter().all(|r| r.to == AggregatorAddr(2)));
        assert!(plan.peak_utilisation_after < 0.9);
    }

    #[test]
    fn balanced_networks_need_no_moves() {
        let loads = vec![load(1, 10, 5, 5), load(2, 10, 5, 5)];
        let plan = plan_balance(&loads);
        assert!(plan.relocations.is_empty());
        assert!(!plan.improves());
    }

    #[test]
    fn stationary_devices_are_never_moved() {
        // Network 1 is overloaded but none of its devices are mobile.
        let loads = vec![load(1, 10, 9, 0), load(2, 10, 1, 1)];
        let plan = plan_balance(&loads);
        assert!(plan.relocations.is_empty());
    }

    #[test]
    fn destination_capacity_is_respected() {
        // Network 2 is tiny: even though network 1 is fuller, only one slot
        // is available.
        let loads = vec![load(1, 20, 18, 18), load(2, 2, 1, 1)];
        let plan = plan_balance(&loads);
        assert!(plan.relocations.len() <= 1);
    }

    #[test]
    fn single_network_is_a_no_op() {
        let plan = plan_balance(&[load(1, 10, 10, 10)]);
        assert!(plan.relocations.is_empty());
        assert_eq!(plan.peak_utilisation_before, plan.peak_utilisation_after);
    }
}
