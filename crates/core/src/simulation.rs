//! The simulated world: devices, aggregators, grids, broker and backhaul
//! wired together and driven by the discrete-event scheduler.
//!
//! This is the substitute for the paper's physical testbed (Fig. 4): where
//! the authors wire ESP32 boards, INA219 sensors and Raspberry Pis together,
//! [`World`] wires [`MeteringDevice`]s, [`Aggregator`]s, a [`GridNetwork`]
//! per WAN, an MQTT broker and the aggregator backhaul, and advances them
//! with simulated time.

use crate::metrics::WorldMetrics;
use rtem_aggregator::aggregator::{Aggregator, AggregatorConfig};
use rtem_aggregator::verify::WindowVerdict;
use rtem_device::device::MeteringDevice;
use rtem_device::network_mgmt::HandshakeBreakdown;
use rtem_net::backhaul::BackhaulMesh;
use rtem_net::broker::{ClientId, MqttBroker, QoS};
use rtem_net::link::LinkConfig;
use rtem_net::packet::{AggregatorAddr, DeviceId, Packet};
use rtem_net::rssi::{PathLossModel, Position, RadioEnvironment};
use rtem_sensors::grid::{Branch, BranchId, GridNetwork};
use rtem_sim::prelude::*;
use std::collections::BTreeMap;

/// Events driving the world.
#[derive(Debug, Clone, PartialEq)]
enum WorldEvent {
    /// A device's Tmeasure timer fired.
    MeasureTick(DeviceId),
    /// An aggregator samples its own system-level sensor.
    UpstreamSample(AggregatorAddr),
    /// An aggregator closes its verification window and seals a block.
    WindowEnd(AggregatorAddr),
    /// Drain the MQTT broker.
    BrokerPoll,
    /// Drain the backhaul mesh.
    BackhaulPoll,
    /// Scripted: plug a device into a network.
    PlugIn {
        device: DeviceId,
        network: AggregatorAddr,
    },
    /// Scripted: unplug a device.
    Unplug(DeviceId),
    /// Scripted: the home network removes a device (loss / ownership change).
    RemoveDevice {
        device: DeviceId,
        home: AggregatorAddr,
    },
}

/// Observable milestone emitted while the world advances.
///
/// [`World`] buffers one of these at each hook point of the event loop —
/// a sealed verification-window block, an anomalous window verdict, a
/// completed registration handshake, a plug-in or an unplug. Callers that
/// stream a run (the facade's `RunHandle`) drain the buffer between steps
/// with [`World::take_notifications`] and fan the entries out to observers;
/// batch callers can ignore them entirely.
#[derive(Debug, Clone, PartialEq)]
pub enum WorldNotification {
    /// An aggregator closed a verification window and sealed a block.
    BlockSealed {
        /// When the block was sealed.
        at: SimTime,
        /// The network whose ledger grew.
        network: AggregatorAddr,
        /// Index of the sealed block in the chain (genesis is 0).
        block_index: u64,
        /// Number of consumption records committed in the block.
        entries: usize,
    },
    /// A verification window closed with an anomalous verdict: the devices'
    /// reported sum disagreed with the aggregator's own measurement.
    AnomalousWindow {
        /// When the window closed.
        at: SimTime,
        /// The network that flagged the window.
        network: AggregatorAddr,
        /// The full verdict (reported vs measured, residual).
        verdict: WindowVerdict,
    },
    /// A device completed a registration handshake (master or temporary).
    HandshakeCompleted {
        /// When the final acknowledgment arrived.
        at: SimTime,
        /// The device that registered.
        device: DeviceId,
        /// The aggregator now serving the device, if registration settled.
        network: Option<AggregatorAddr>,
        /// Per-phase timing of the handshake (the paper's Thandshake).
        breakdown: HandshakeBreakdown,
    },
    /// A device was plugged into a network's grid.
    PluggedIn {
        /// When the plug-in happened.
        at: SimTime,
        /// The device.
        device: DeviceId,
        /// The network it joined.
        network: AggregatorAddr,
    },
    /// A device was unplugged from its network's grid.
    Unplugged {
        /// When the unplug happened.
        at: SimTime,
        /// The device.
        device: DeviceId,
    },
}

impl WorldNotification {
    /// The simulated time at which the milestone occurred.
    pub fn at(&self) -> SimTime {
        match *self {
            WorldNotification::BlockSealed { at, .. }
            | WorldNotification::AnomalousWindow { at, .. }
            | WorldNotification::HandshakeCompleted { at, .. }
            | WorldNotification::PluggedIn { at, .. }
            | WorldNotification::Unplugged { at, .. } => at,
        }
    }
}

/// Static parameters of the world.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldConfig {
    /// Reporting interval of every device (Tmeasure).
    pub t_measure: SimDuration,
    /// Interval between the aggregator's own upstream samples.
    pub upstream_sample_interval: SimDuration,
    /// Length of one verification window (one sealed block per window).
    pub verification_window: SimDuration,
    /// Access-link quality between devices and their aggregator's broker.
    pub wifi: LinkConfig,
    /// Backhaul link quality between aggregators.
    pub backhaul: LinkConfig,
    /// Random seed for the whole world.
    pub seed: u64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            t_measure: SimDuration::from_millis(100),
            upstream_sample_interval: SimDuration::from_millis(100),
            verification_window: SimDuration::from_secs(10),
            wifi: LinkConfig::wifi(),
            backhaul: LinkConfig::backhaul(),
            seed: 42,
        }
    }
}

struct NetworkSite {
    aggregator: Aggregator,
    grid: GridNetwork,
    position: Position,
    client: ClientId,
}

/// The composed simulation world.
pub struct World {
    config: WorldConfig,
    scheduler: Scheduler<WorldEvent>,
    devices: BTreeMap<DeviceId, MeteringDevice>,
    device_clients: BTreeMap<DeviceId, ClientId>,
    device_sites: BTreeMap<DeviceId, (AggregatorAddr, BranchId)>,
    sites: BTreeMap<AggregatorAddr, NetworkSite>,
    broker: MqttBroker,
    backhaul: BackhaulMesh,
    radio: RadioEnvironment,
    rng: SimRng,
    notifications: Vec<WorldNotification>,
}

impl core::fmt::Debug for World {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("World")
            .field("now", &self.now())
            .field("devices", &self.devices.len())
            .field("networks", &self.sites.len())
            .finish()
    }
}

fn device_client(device: DeviceId) -> ClientId {
    ClientId(device.0)
}

fn aggregator_client(addr: AggregatorAddr) -> ClientId {
    ClientId(1_000_000 + u64::from(addr.0))
}

fn uplink_topic(addr: AggregatorAddr) -> String {
    format!("metering/agg-{}/uplink", addr.0)
}

fn downlink_topic(device: DeviceId) -> String {
    format!("metering/dev-{}/downlink", device.0)
}

impl World {
    /// Creates an empty world.
    pub fn new(config: WorldConfig) -> Self {
        let rng = SimRng::seed_from_u64(config.seed);
        World {
            scheduler: Scheduler::new(),
            devices: BTreeMap::new(),
            device_clients: BTreeMap::new(),
            device_sites: BTreeMap::new(),
            sites: BTreeMap::new(),
            broker: MqttBroker::new(rng.derive(1)),
            backhaul: BackhaulMesh::new(rng.derive(2)),
            radio: RadioEnvironment::new(PathLossModel::default()),
            rng,
            config,
            notifications: Vec::new(),
        }
    }

    /// Drains the milestone notifications buffered since the last call (or
    /// since construction). Entries are in dispatch order, which is
    /// deterministic for a given seed regardless of how `run_until` calls
    /// are sliced.
    pub fn take_notifications(&mut self) -> Vec<WorldNotification> {
        std::mem::take(&mut self.notifications)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.scheduler.now()
    }

    /// The world configuration.
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    /// Adds a network (aggregator + its grid) at `position`.
    pub fn add_network(&mut self, addr: AggregatorAddr, position: Position) {
        let aggregator = Aggregator::new(
            AggregatorConfig::testbed(addr),
            self.rng.derive(0xA000 + u64::from(addr.0)),
        );
        let client = aggregator_client(addr);
        self.broker.connect(client, LinkConfig::ideal());
        self.broker
            .subscribe(client, &uplink_topic(addr))
            .expect("aggregator subscription");
        self.backhaul.join(addr);
        for other in self.sites.keys().copied().collect::<Vec<_>>() {
            self.backhaul.connect(addr, other, self.config.backhaul);
        }
        self.radio.place_aggregator(addr, position);
        self.sites.insert(
            addr,
            NetworkSite {
                aggregator,
                grid: GridNetwork::new(),
                position,
                client,
            },
        );
        // Periodic aggregator-side sampling and verification windows.
        self.scheduler.schedule(
            SimTime::ZERO + self.config.upstream_sample_interval,
            WorldEvent::UpstreamSample(addr),
        );
        self.scheduler.schedule(
            SimTime::ZERO + self.config.verification_window,
            WorldEvent::WindowEnd(addr),
        );
    }

    /// Adds a device to the world. The device is initially unplugged; use
    /// [`plug_in_now`](Self::plug_in_now) or [`schedule_plug_in`](Self::schedule_plug_in)
    /// to connect it to a network.
    pub fn add_device(&mut self, mut device: MeteringDevice) {
        let id = device.id();
        device.boot(self.now());
        let client = device_client(id);
        self.broker.connect(client, self.config.wifi);
        self.broker
            .subscribe(client, &downlink_topic(id))
            .expect("device subscription");
        self.device_clients.insert(id, client);
        self.devices.insert(id, device);
        // Start the measurement timer.
        self.scheduler.schedule(
            self.now() + self.config.t_measure,
            WorldEvent::MeasureTick(id),
        );
    }

    /// Immediately plugs `device` into `network`'s grid.
    ///
    /// # Panics
    ///
    /// Panics if the device or the network does not exist.
    pub fn plug_in_now(&mut self, device: DeviceId, network: AggregatorAddr) {
        let now = self.now();
        self.do_plug_in(device, network, now);
    }

    /// Schedules a plug-in at an absolute time.
    pub fn schedule_plug_in(&mut self, at: SimTime, device: DeviceId, network: AggregatorAddr) {
        self.scheduler
            .schedule(at, WorldEvent::PlugIn { device, network });
    }

    /// Schedules an unplug at an absolute time.
    pub fn schedule_unplug(&mut self, at: SimTime, device: DeviceId) {
        self.scheduler.schedule(at, WorldEvent::Unplug(device));
    }

    /// Schedules the home network removing a device (sequence 3 of Fig. 3).
    pub fn schedule_remove_device(&mut self, at: SimTime, device: DeviceId, home: AggregatorAddr) {
        self.scheduler
            .schedule(at, WorldEvent::RemoveDevice { device, home });
    }

    /// Runs the world until `horizon`.
    pub fn run_until(&mut self, horizon: SimTime) {
        // The scheduler needs the world's maps, so the loop lives here rather
        // than in a closure passed to Scheduler::run_until.
        while let Some(next) = self.scheduler.queue_mut().peek_time() {
            if next > horizon {
                break;
            }
            let event = self.scheduler.queue_mut().pop().expect("peeked event");
            self.dispatch(event.payload, event.at);
        }
    }

    fn dispatch(&mut self, event: WorldEvent, now: SimTime) {
        match event {
            WorldEvent::MeasureTick(device_id) => {
                self.handle_measure_tick(device_id, now);
            }
            WorldEvent::UpstreamSample(addr) => {
                self.handle_upstream_sample(addr, now);
            }
            WorldEvent::WindowEnd(addr) => {
                if let Some(site) = self.sites.get_mut(&addr) {
                    let blocks_before = site.aggregator.ledger().chain().len();
                    let entries_before = site.aggregator.ledger().chain().total_records();
                    let verdict = site.aggregator.end_window(now);
                    let chain = site.aggregator.ledger().chain();
                    if chain.len() > blocks_before {
                        self.notifications.push(WorldNotification::BlockSealed {
                            at: now,
                            network: addr,
                            block_index: chain.len() as u64 - 1,
                            entries: chain.total_records() - entries_before,
                        });
                    }
                    if let Some(verdict) = verdict.filter(|v| v.anomalous) {
                        self.notifications.push(WorldNotification::AnomalousWindow {
                            at: now,
                            network: addr,
                            verdict,
                        });
                    }
                }
                self.scheduler.schedule(
                    now + self.config.verification_window,
                    WorldEvent::WindowEnd(addr),
                );
            }
            WorldEvent::BrokerPoll => self.drain_broker(now),
            WorldEvent::BackhaulPoll => self.drain_backhaul(now),
            WorldEvent::PlugIn { device, network } => self.do_plug_in(device, network, now),
            WorldEvent::Unplug(device) => self.do_unplug(device, now),
            WorldEvent::RemoveDevice { device, home } => {
                if let Some(site) = self.sites.get_mut(&home) {
                    let out = site.aggregator.handle_backhaul(
                        home,
                        &Packet::RemoveDevice { device },
                        now,
                    );
                    self.route_aggregator_output(home, out, now);
                }
            }
        }
    }

    /// Emits a [`WorldNotification::HandshakeCompleted`] when the device's
    /// most recent handshake changed across a state transition.
    fn note_handshake(
        &mut self,
        device_id: DeviceId,
        before: Option<HandshakeBreakdown>,
        now: SimTime,
    ) {
        let Some(device) = self.devices.get(&device_id) else {
            return;
        };
        let after = device.last_handshake();
        if after != before {
            if let Some(breakdown) = after {
                let network = device.registration().map(|(addr, _, _)| addr);
                self.notifications
                    .push(WorldNotification::HandshakeCompleted {
                        at: now,
                        device: device_id,
                        network,
                        breakdown,
                    });
            }
        }
    }

    fn handle_measure_tick(&mut self, device_id: DeviceId, now: SimTime) {
        let (outbound, handshake_before) = {
            let Some(device) = self.devices.get_mut(&device_id) else {
                return;
            };
            let before = device.last_handshake();
            (device.on_measure_tick(now, &self.radio), before)
        };
        self.note_handshake(device_id, handshake_before, now);
        for out in outbound {
            self.publish_uplink(device_id, out.to, out.packet, now);
        }
        self.scheduler.schedule(
            now + self.config.t_measure,
            WorldEvent::MeasureTick(device_id),
        );
        self.arm_broker_poll(now);
    }

    fn handle_upstream_sample(&mut self, addr: AggregatorAddr, now: SimTime) {
        // Ground truth: sum the true currents of devices plugged into this
        // network's grid, evaluate the grid (losses) and let the aggregator's
        // own sensor observe the upstream total.
        let mut loads: Vec<(BranchId, rtem_sensors::energy::Milliamps)> = Vec::new();
        for (&device_id, &(site_addr, branch)) in &self.device_sites {
            if site_addr == addr {
                if let Some(device) = self.devices.get_mut(&device_id) {
                    loads.push((branch, device.true_grid_current(now)));
                }
            }
        }
        if let Some(site) = self.sites.get_mut(&addr) {
            let snapshot = site.grid.evaluate(&loads);
            site.aggregator
                .observe_upstream(now, snapshot.upstream_total);
        }
        self.scheduler.schedule(
            now + self.config.upstream_sample_interval,
            WorldEvent::UpstreamSample(addr),
        );
    }

    fn do_plug_in(&mut self, device_id: DeviceId, network: AggregatorAddr, now: SimTime) {
        assert!(self.devices.contains_key(&device_id), "unknown device");
        // Remove from the previous grid, if any.
        if let Some((old_addr, old_branch)) = self.device_sites.remove(&device_id) {
            if let Some(old_site) = self.sites.get_mut(&old_addr) {
                old_site.grid.remove_branch(old_branch);
            }
        }
        let site = self.sites.get_mut(&network).expect("unknown network");
        let branch = site.grid.add_branch(Branch::default());
        let position = Position::new(site.position.x + 2.0, site.position.y + 1.0);
        self.device_sites.insert(device_id, (network, branch));
        let device = self.devices.get_mut(&device_id).expect("device exists");
        device.plug_in(now, branch, position);
        self.notifications.push(WorldNotification::PluggedIn {
            at: now,
            device: device_id,
            network,
        });
    }

    fn do_unplug(&mut self, device_id: DeviceId, now: SimTime) {
        if let Some((addr, branch)) = self.device_sites.remove(&device_id) {
            if let Some(site) = self.sites.get_mut(&addr) {
                site.grid.remove_branch(branch);
            }
        }
        if let Some(device) = self.devices.get_mut(&device_id) {
            device.unplug(now);
            self.notifications.push(WorldNotification::Unplugged {
                at: now,
                device: device_id,
            });
        }
    }

    fn publish_uplink(
        &mut self,
        device_id: DeviceId,
        to: AggregatorAddr,
        packet: Packet,
        now: SimTime,
    ) {
        let client = self.device_clients[&device_id];
        let payload = packet.encode();
        let _ = self
            .broker
            .publish(client, &uplink_topic(to), payload, QoS::AtLeastOnce, now);
        self.arm_broker_poll(now);
    }

    fn publish_downlink(&mut self, from: AggregatorAddr, packet: Packet, now: SimTime) {
        let Some(device) = packet.device() else {
            return;
        };
        let site_client = self.sites[&from].client;
        let payload = packet.encode();
        let _ = self.broker.publish(
            site_client,
            &downlink_topic(device),
            payload,
            QoS::AtLeastOnce,
            now,
        );
        self.arm_broker_poll(now);
    }

    fn arm_broker_poll(&mut self, now: SimTime) {
        if let Some(at) = self.broker.next_delivery_at() {
            let at = if at <= now { now } else { at };
            self.scheduler.schedule(at, WorldEvent::BrokerPoll);
        }
    }

    fn arm_backhaul_poll(&mut self, now: SimTime) {
        if let Some(at) = self.backhaul.next_delivery_at() {
            let at = if at <= now { now } else { at };
            self.scheduler.schedule(at, WorldEvent::BackhaulPoll);
        }
    }

    fn drain_broker(&mut self, now: SimTime) {
        let deliveries = self.broker.drain_due(now);
        for delivery in deliveries {
            let Ok(packet) = Packet::decode(&delivery.payload) else {
                continue;
            };
            // Uplink to an aggregator?
            if let Some((&addr, _)) = self
                .sites
                .iter()
                .find(|(_, site)| site.client == delivery.to)
            {
                let out = {
                    let site = self.sites.get_mut(&addr).expect("site exists");
                    site.aggregator.handle_device_packet(&packet, now)
                };
                self.route_aggregator_output(addr, out, now);
                continue;
            }
            // Downlink to a device?
            if let Some((&device_id, _)) = self
                .device_clients
                .iter()
                .find(|(_, &client)| client == delivery.to)
            {
                let (outbound, handshake_before) = {
                    let device = self.devices.get_mut(&device_id).expect("device exists");
                    let before = device.last_handshake();
                    (device.on_packet(&packet, now), before)
                };
                self.note_handshake(device_id, handshake_before, now);
                for out in outbound {
                    self.publish_uplink(device_id, out.to, out.packet, now);
                }
            }
        }
        self.arm_broker_poll(now);
    }

    fn drain_backhaul(&mut self, now: SimTime) {
        let deliveries = self.backhaul.drain_due(now);
        for delivery in deliveries {
            let out = {
                let Some(site) = self.sites.get_mut(&delivery.to) else {
                    continue;
                };
                site.aggregator
                    .handle_backhaul(delivery.from, &delivery.packet, now)
            };
            self.route_aggregator_output(delivery.to, out, now);
        }
        self.arm_backhaul_poll(now);
    }

    fn route_aggregator_output(
        &mut self,
        from: AggregatorAddr,
        out: rtem_aggregator::aggregator::AggregatorOutput,
        now: SimTime,
    ) {
        for packet in out.to_devices {
            self.publish_downlink(from, packet, now);
        }
        for (to, packet) in out.to_aggregators {
            let _ = self.backhaul.send(from, to, packet, now);
        }
        self.arm_backhaul_poll(now);
        self.arm_broker_poll(now);
    }

    /// Shared access to an aggregator.
    pub fn aggregator(&self, addr: AggregatorAddr) -> Option<&Aggregator> {
        self.sites.get(&addr).map(|s| &s.aggregator)
    }

    /// Mutable access to an aggregator (used by the tamper experiments).
    pub fn aggregator_mut(&mut self, addr: AggregatorAddr) -> Option<&mut Aggregator> {
        self.sites.get_mut(&addr).map(|s| &mut s.aggregator)
    }

    /// Shared access to a device.
    pub fn device(&self, id: DeviceId) -> Option<&MeteringDevice> {
        self.devices.get(&id)
    }

    /// Network a device is currently plugged into, if any.
    pub fn device_network(&self, id: DeviceId) -> Option<AggregatorAddr> {
        self.device_sites.get(&id).map(|(addr, _)| *addr)
    }

    /// All aggregator addresses in the world.
    pub fn network_addresses(&self) -> Vec<AggregatorAddr> {
        self.sites.keys().copied().collect()
    }

    /// All device ids in the world.
    pub fn device_ids(&self) -> Vec<DeviceId> {
        self.devices.keys().copied().collect()
    }

    /// Collects the summary metrics of the run so far.
    pub fn metrics(&self) -> WorldMetrics {
        WorldMetrics::collect(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtem_device::device::MeteringDevice;
    use rtem_sensors::profile::ConstantProfile;

    fn two_network_world() -> World {
        let mut world = World::new(WorldConfig {
            verification_window: SimDuration::from_secs(5),
            ..WorldConfig::default()
        });
        world.add_network(AggregatorAddr(1), Position::new(0.0, 0.0));
        world.add_network(AggregatorAddr(2), Position::new(200.0, 0.0));
        for i in 0..2u64 {
            let device = MeteringDevice::testbed(
                DeviceId(i + 1),
                ConstantProfile::new(150.0),
                SimRng::seed_from_u64(100 + i),
            );
            world.add_device(device);
            world.plug_in_now(DeviceId(i + 1), AggregatorAddr(1));
        }
        world
    }

    #[test]
    fn devices_register_and_report_through_the_broker() {
        let mut world = two_network_world();
        // Handshake (~6 s) plus some reporting time.
        world.run_until(SimTime::from_secs(30));
        let agg = world.aggregator(AggregatorAddr(1)).unwrap();
        assert_eq!(agg.registry().len(), 2, "both devices registered");
        assert!(agg.reports_accepted() > 10, "reports flowed");
        assert!(agg.ledger().chain().len() > 2, "blocks were sealed");
        for id in [1u64, 2] {
            assert!(world.device(DeviceId(id)).unwrap().is_registered());
            assert!(agg.ledger().account(id).unwrap().entries > 0);
        }
    }

    #[test]
    fn aggregator_measurement_exceeds_reported_sum() {
        let mut world = two_network_world();
        world.run_until(SimTime::from_secs(40));
        let agg = world.aggregator(AggregatorAddr(1)).unwrap();
        let measured = agg.network_series().stats().mean;
        // Two devices at 150 mA: upstream must be above 300 mA (losses) but
        // not wildly so.
        assert!(measured > 300.0, "measured mean {measured}");
        assert!(measured < 330.0, "measured mean {measured}");
    }

    #[test]
    fn mobility_nack_then_temporary_membership() {
        let mut world = two_network_world();
        // Let device 1 settle in network 1, then move it to network 2.
        world.schedule_unplug(SimTime::from_secs(30), DeviceId(1));
        world.schedule_plug_in(SimTime::from_secs(50), DeviceId(1), AggregatorAddr(2));
        world.run_until(SimTime::from_secs(90));

        let device = world.device(DeviceId(1)).unwrap();
        assert!(device.is_registered());
        assert_eq!(device.master(), Some(AggregatorAddr(1)));
        assert_eq!(world.device_network(DeviceId(1)), Some(AggregatorAddr(2)));
        // The foreign aggregator holds a temporary membership...
        let foreign = world.aggregator(AggregatorAddr(2)).unwrap();
        assert!(foreign.registry().is_member(DeviceId(1)));
        // ...and the home aggregator received forwarded (roaming) consumption.
        let home = world.aggregator(AggregatorAddr(1)).unwrap();
        let bill = home.billing().bill(DeviceId(1)).unwrap();
        assert!(
            bill.roaming_charge_uas > 0,
            "roaming consumption billed at home"
        );
    }

    #[test]
    fn removed_device_cannot_rejoin() {
        let mut world = two_network_world();
        world.run_until(SimTime::from_secs(20));
        world.schedule_remove_device(SimTime::from_secs(21), DeviceId(2), AggregatorAddr(1));
        world.schedule_unplug(SimTime::from_secs(22), DeviceId(2));
        world.schedule_plug_in(SimTime::from_secs(25), DeviceId(2), AggregatorAddr(1));
        world.run_until(SimTime::from_secs(60));
        let agg = world.aggregator(AggregatorAddr(1)).unwrap();
        assert!(!agg.registry().is_member(DeviceId(2)));
        assert!(!world.device(DeviceId(2)).unwrap().is_registered());
    }

    #[test]
    fn notifications_cover_every_hook_point() {
        let mut world = two_network_world();
        world.schedule_unplug(SimTime::from_secs(30), DeviceId(1));
        world.schedule_plug_in(SimTime::from_secs(50), DeviceId(1), AggregatorAddr(2));
        world.run_until(SimTime::from_secs(90));
        let notifications = world.take_notifications();
        let count =
            |f: fn(&WorldNotification) -> bool| notifications.iter().filter(|n| f(n)).count();
        assert!(
            count(|n| matches!(n, WorldNotification::BlockSealed { .. })) > 2,
            "blocks sealed"
        );
        // Two initial registrations plus the temporary one after the move.
        assert!(
            count(|n| matches!(n, WorldNotification::HandshakeCompleted { .. })) >= 3,
            "handshakes observed"
        );
        assert_eq!(
            count(|n| matches!(n, WorldNotification::PluggedIn { .. })),
            3,
            "two initial plug-ins plus the scripted one"
        );
        assert_eq!(
            count(|n| matches!(n, WorldNotification::Unplugged { .. })),
            1
        );
        // Times are monotone (dispatch order) and the buffer is drained.
        assert!(notifications.windows(2).all(|w| w[0].at() <= w[1].at()));
        assert!(world.take_notifications().is_empty());
    }

    #[test]
    fn sliced_run_until_matches_one_shot() {
        let mut a = two_network_world();
        a.run_until(SimTime::from_secs(40));
        let mut b = two_network_world();
        let mut t = SimTime::ZERO;
        while t < SimTime::from_secs(40) {
            t += SimDuration::from_millis(3_700);
            b.run_until(t.min(SimTime::from_secs(40)));
        }
        assert_eq!(
            a.metrics(),
            b.metrics(),
            "stepping must not perturb the run"
        );
        assert_eq!(a.take_notifications(), b.take_notifications());
    }

    #[test]
    fn world_accessors_are_consistent() {
        let world = two_network_world();
        assert_eq!(world.network_addresses().len(), 2);
        assert_eq!(world.device_ids().len(), 2);
        assert!(world.device(DeviceId(99)).is_none());
        assert!(world.aggregator(AggregatorAddr(9)).is_none());
    }
}
