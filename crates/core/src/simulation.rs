//! The simulated world: devices, aggregators, grids, broker and backhaul
//! wired together and driven by the discrete-event scheduler.
//!
//! This is the substitute for the paper's physical testbed (Fig. 4): where
//! the authors wire ESP32 boards, INA219 sensors and Raspberry Pis together,
//! [`World`] wires [`MeteringDevice`]s, [`Aggregator`]s, a [`GridNetwork`]
//! per WAN, an MQTT broker and the aggregator backhaul, and advances them
//! with simulated time.

use crate::consensus::{QuorumConsensus, RoundOutcome, Vote};
use crate::metrics::WorldMetrics;
use rtem_aggregator::aggregator::{Aggregator, AggregatorConfig, RetentionPolicy};
use rtem_aggregator::billing::Tariff;
use rtem_aggregator::verify::WindowVerdict;
use rtem_chain::ledger::LedgerEntry;
use rtem_codecs::{CodecError, MeterKind, Telegram};
use rtem_control::{
    command_topic, status_topic, CommandAck, CommandFrame, CommandTarget, ControlEvent,
    FleetCommand,
};
use rtem_device::application::Tariff as DeviceTariff;
use rtem_device::device::MeteringDevice;
use rtem_device::network_mgmt::HandshakeBreakdown;
use rtem_faults::event::{
    CorruptionMode, DetectionSignal, FaultEvent, FaultFamily, FaultRecord, LinkTarget,
};
use rtem_net::backhaul::{BackhaulDelivery, BackhaulMesh};
use rtem_net::broker::{ClientId, MqttBroker, QoS};
use rtem_net::link::{LinkConfig, LinkTotals};
use rtem_net::packet::{AggregatorAddr, DeviceId, MeasurementRecord, Packet};
use rtem_net::rssi::{PathLossModel, Position, RadioEnvironment};
use rtem_sensors::fault::SensorFault;
use rtem_sensors::grid::{Branch, BranchId, GridNetwork};
use rtem_sim::prelude::*;
use rtem_telemetry::{
    CodecFailureTable, DispatchProfiler, MetricId, MetricsRegistry, TelemetryConfig,
    TelemetryReport, TraceLog,
};
use std::collections::{BTreeMap, BTreeSet};

/// Events driving the world.
#[derive(Debug, Clone, PartialEq)]
enum WorldEvent {
    /// A device's Tmeasure timer fired.
    MeasureTick(DeviceId),
    /// An aggregator samples its own system-level sensor.
    UpstreamSample(AggregatorAddr),
    /// An aggregator closes its verification window and seals a block.
    WindowEnd(AggregatorAddr),
    /// Drain the MQTT broker.
    BrokerPoll,
    /// Drain the backhaul mesh.
    BackhaulPoll,
    /// Scripted: plug a device into a network.
    PlugIn {
        device: DeviceId,
        network: AggregatorAddr,
    },
    /// Scripted: unplug a device.
    Unplug(DeviceId),
    /// Scripted: the home network removes a device (loss / ownership change).
    RemoveDevice {
        device: DeviceId,
        home: AggregatorAddr,
    },
    /// Scheduled: a fault takes effect (index into the world's fault table).
    FaultStart(usize),
    /// Scheduled: a transient fault clears (index into the fault table).
    FaultEnd(usize),
    /// Scheduled: a fleet command is published (index into the control
    /// table).
    ControlCommand(usize),
}

impl WorldEvent {
    /// Number of event kinds (one slot per variant).
    const KIND_COUNT: usize = 11;

    /// Stable per-kind labels, in [`kind_index`](Self::kind_index) order —
    /// the names the trace spans and the dispatch profiler report under.
    const KIND_LABELS: [&'static str; WorldEvent::KIND_COUNT] = [
        "MeasureTick",
        "UpstreamSample",
        "WindowEnd",
        "BrokerPoll",
        "BackhaulPoll",
        "PlugIn",
        "Unplug",
        "RemoveDevice",
        "FaultStart",
        "FaultEnd",
        "ControlCommand",
    ];

    /// Dense index of this event's kind into [`KIND_LABELS`](Self::KIND_LABELS).
    fn kind_index(&self) -> usize {
        match self {
            WorldEvent::MeasureTick(_) => 0,
            WorldEvent::UpstreamSample(_) => 1,
            WorldEvent::WindowEnd(_) => 2,
            WorldEvent::BrokerPoll => 3,
            WorldEvent::BackhaulPoll => 4,
            WorldEvent::PlugIn { .. } => 5,
            WorldEvent::Unplug(_) => 6,
            WorldEvent::RemoveDevice { .. } => 7,
            WorldEvent::FaultStart(_) => 8,
            WorldEvent::FaultEnd(_) => 9,
            WorldEvent::ControlCommand(_) => 10,
        }
    }
}

/// Observable milestone emitted while the world advances.
///
/// [`World`] buffers one of these at each hook point of the event loop —
/// a sealed verification-window block, an anomalous window verdict, a
/// completed registration handshake, a plug-in or an unplug. Callers that
/// stream a run (the facade's `RunHandle`) drain the buffer between steps
/// with [`World::take_notifications`] and fan the entries out to observers;
/// batch callers can ignore them entirely.
#[derive(Debug, Clone, PartialEq)]
pub enum WorldNotification {
    /// An aggregator closed a verification window and sealed a block.
    BlockSealed {
        /// When the block was sealed.
        at: SimTime,
        /// The network whose ledger grew.
        network: AggregatorAddr,
        /// Index of the sealed block in the chain (genesis is 0).
        block_index: u64,
        /// Number of consumption records committed in the block.
        entries: usize,
    },
    /// A verification window closed with an anomalous verdict: the devices'
    /// reported sum disagreed with the aggregator's own measurement.
    AnomalousWindow {
        /// When the window closed.
        at: SimTime,
        /// The network that flagged the window.
        network: AggregatorAddr,
        /// The full verdict (reported vs measured, residual).
        verdict: WindowVerdict,
    },
    /// A device completed a registration handshake (master or temporary).
    HandshakeCompleted {
        /// When the final acknowledgment arrived.
        at: SimTime,
        /// The device that registered.
        device: DeviceId,
        /// The aggregator now serving the device, if registration settled.
        network: Option<AggregatorAddr>,
        /// Per-phase timing of the handshake (the paper's Thandshake).
        breakdown: HandshakeBreakdown,
    },
    /// A device was plugged into a network's grid.
    PluggedIn {
        /// When the plug-in happened.
        at: SimTime,
        /// The device.
        device: DeviceId,
        /// The network it joined.
        network: AggregatorAddr,
    },
    /// A device was unplugged from its network's grid.
    Unplugged {
        /// When the unplug happened.
        at: SimTime,
        /// The device.
        device: DeviceId,
    },
    /// A scheduled fault took effect (see
    /// [`World::schedule_fault`]).
    FaultInjected {
        /// When the fault took effect.
        at: SimTime,
        /// The id [`World::schedule_fault`] returned for it.
        id: usize,
        /// The fault's family.
        family: FaultFamily,
    },
    /// A transient fault cleared (link burst ended, device rebooted,
    /// aggregator recovered, sensor healed).
    FaultCleared {
        /// When the fault cleared.
        at: SimTime,
        /// The fault's id.
        id: usize,
        /// The fault's family.
        family: FaultFamily,
    },
    /// A fleet command was published on the control plane (see
    /// [`World::schedule_control`]).
    CommandPublished {
        /// When the manager published the command.
        at: SimTime,
        /// The command's sequence number (its index in the control table).
        seq: u32,
        /// Human-readable command family (from `FleetCommand::label`).
        label: &'static str,
        /// Number of devices the command was addressed to.
        targets: usize,
    },
    /// A device received a fleet command and applied (or rejected) it.
    CommandApplied {
        /// When the command frame was delivered and executed.
        at: SimTime,
        /// The command's sequence number.
        seq: u32,
        /// The device that executed it.
        device: DeviceId,
        /// Whether the device's firmware accepted the command.
        applied: bool,
    },
    /// The system recognized an injected fault — an anomalous verification
    /// window, a chain-audit finding, a rejected consensus round or a
    /// backfilled recovery block was attributed to it.
    FaultDetected {
        /// When the fault was recognized.
        at: SimTime,
        /// The fault's id.
        id: usize,
        /// The fault's family.
        family: FaultFamily,
        /// The evidence that triggered detection.
        signal: DetectionSignal,
    },
    /// A periodic telemetry snapshot was stamped on the snapshot grid (see
    /// [`World::enable_telemetry`]). Only emitted while telemetry is
    /// enabled; never part of golden comparisons.
    MetricsSnapshot {
        /// The grid time the snapshot covers (every event dispatched at or
        /// before `at` is reflected).
        at: SimTime,
        /// The snapshot. Shared ([`Arc`](std::sync::Arc)) with the
        /// end-of-run [`TelemetryReport`]: one snapshot is stamped per grid
        /// point, never copied.
        snapshot: std::sync::Arc<rtem_telemetry::MetricsSnapshot>,
    },
}

impl WorldNotification {
    /// The simulated time at which the milestone occurred.
    pub fn at(&self) -> SimTime {
        match *self {
            WorldNotification::BlockSealed { at, .. }
            | WorldNotification::AnomalousWindow { at, .. }
            | WorldNotification::HandshakeCompleted { at, .. }
            | WorldNotification::PluggedIn { at, .. }
            | WorldNotification::Unplugged { at, .. }
            | WorldNotification::FaultInjected { at, .. }
            | WorldNotification::FaultCleared { at, .. }
            | WorldNotification::CommandPublished { at, .. }
            | WorldNotification::CommandApplied { at, .. }
            | WorldNotification::FaultDetected { at, .. }
            | WorldNotification::MetricsSnapshot { at, .. } => at,
        }
    }

    /// A stable, payload-free name for the milestone kind — what the
    /// telemetry trace records each notification instant under.
    pub fn label(&self) -> &'static str {
        match self {
            WorldNotification::BlockSealed { .. } => "BlockSealed",
            WorldNotification::AnomalousWindow { .. } => "AnomalousWindow",
            WorldNotification::HandshakeCompleted { .. } => "HandshakeCompleted",
            WorldNotification::PluggedIn { .. } => "PluggedIn",
            WorldNotification::Unplugged { .. } => "Unplugged",
            WorldNotification::FaultInjected { .. } => "FaultInjected",
            WorldNotification::FaultCleared { .. } => "FaultCleared",
            WorldNotification::CommandPublished { .. } => "CommandPublished",
            WorldNotification::CommandApplied { .. } => "CommandApplied",
            WorldNotification::FaultDetected { .. } => "FaultDetected",
            WorldNotification::MetricsSnapshot { .. } => "MetricsSnapshot",
        }
    }
}

/// Telegram-log tail kept resident under a bounded retention policy. The
/// capture exists for codec-fixture tests and wire debugging, so a bounded
/// run keeps a recent window rather than the whole run's wire traffic.
const TELEGRAM_LOG_BOUNDED_CAP: usize = 4096;

/// Static parameters of the world.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldConfig {
    /// Reporting interval of every device (Tmeasure).
    pub t_measure: SimDuration,
    /// Interval between the aggregator's own upstream samples.
    pub upstream_sample_interval: SimDuration,
    /// Length of one verification window (one sealed block per window).
    pub verification_window: SimDuration,
    /// Access-link quality between devices and their aggregator's broker.
    pub wifi: LinkConfig,
    /// Backhaul link quality between aggregators.
    pub backhaul: LinkConfig,
    /// Tariff every aggregator's billing engine applies.
    pub tariff: Tariff,
    /// Random seed for the whole world.
    pub seed: u64,
    /// How much run history stays resident (see [`RetentionPolicy`]).
    /// Bounded mode seals-and-evicts old ledger windows and prunes the
    /// measurement series at every window end; the run report stays
    /// bit-identical with keep-all.
    pub retention: RetentionPolicy,
    /// Worker lanes for the sharded tick executor (see
    /// [`World::run_until`]). 1 keeps the classic sequential loop; N > 1
    /// partitions each barrier-delimited batch of device ticks across N
    /// scoped threads, with outputs applied in queue order so results are
    /// bit-identical for every shard count.
    pub shards: usize,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            t_measure: SimDuration::from_millis(100),
            upstream_sample_interval: SimDuration::from_millis(100),
            verification_window: SimDuration::from_secs(10),
            wifi: LinkConfig::wifi(),
            backhaul: LinkConfig::backhaul(),
            tariff: Tariff::default(),
            seed: 42,
            retention: RetentionPolicy::KeepAll,
            shards: 1,
        }
    }
}

struct NetworkSite {
    aggregator: Aggregator,
    grid: GridNetwork,
    position: Position,
    client: ClientId,
    /// Devices currently plugged into this network's grid, with the branch
    /// each occupies. Mirrors the global `device_sites` map so per-network
    /// work (upstream sampling, outage failover, consensus validator sets)
    /// touches only the site's own population instead of scanning every
    /// device in the world. Keyed by device id, so iteration order matches
    /// the whole-population scans this index replaced.
    members: BTreeMap<DeviceId, BranchId>,
}

/// What a broker [`ClientId`] resolves to — maintained on device/network
/// creation so per-delivery routing is an index lookup, not a scan over the
/// whole population.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Endpoint {
    Device(DeviceId),
    Site(AggregatorAddr),
}

/// Wire-level accounting for the meter-codec boundary.
///
/// Counters accumulate over the whole run and cover only device → aggregator
/// consumption reports — the traffic the meter protocol actually frames.
/// Reports from `MeterKind::Internal` devices count toward the native
/// columns only; reports from real-protocol devices count toward both, so
/// `telegram_bytes / native_bytes` is the framing overhead of the chosen
/// protocol mix over the simulator's packed binary encoding.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Consumption reports encoded as real-protocol telegrams.
    pub telegrams_sent: u64,
    /// Total telegram payload bytes put on the wire (excludes the
    /// transport envelope).
    pub telegram_bytes: u64,
    /// What the same reports cost in the native packet encoding.
    pub native_bytes: u64,
    /// Measurement records carried by all reports, native or telegram.
    pub records_sent: u64,
    /// Telegrams the receiving aggregator parsed successfully.
    pub telegrams_parsed: u64,
    /// Telegrams the receiving aggregator rejected with a [`CodecError`].
    pub parse_failures: u64,
    /// Reports mutated by an active telegram-corruption fault before
    /// transmission (counted whether or not the receiver noticed).
    pub corrupted_injected: u64,
}

/// One telegram captured by the world's optional wire log (see
/// [`World::enable_telegram_log`]): the bytes a device actually put on the
/// wire, after any fault-injected corruption.
#[derive(Debug, Clone, PartialEq)]
pub struct TelegramLogEntry {
    /// When the device transmitted the telegram.
    pub at: SimTime,
    /// The transmitting device.
    pub device: DeviceId,
    /// The protocol family the device speaks.
    pub kind: MeterKind,
    /// The raw telegram bytes as transmitted. Shares the allocation of the
    /// in-flight [`Packet::Telegram`] payload — logging a telegram costs a
    /// reference-count bump, not a copy.
    pub bytes: bytes::Bytes,
}

/// Traffic baseline of the links a degradation burst touched, captured at
/// injection time so the window-seal monitor can compare in-burst loss
/// against the medium's ambient expectation (see
/// [`World::detect_link_degradation`]).
struct LinkWatch {
    /// Broker clients whose access links the burst degraded. Kept separately
    /// from `saved_wifi` because the saved configs are consumed at clear
    /// time while the watch must stay readable through the post-clear
    /// attribution grace.
    clients: Vec<ClientId>,
    /// Whether the burst degraded the backhaul mesh instead.
    backhaul: bool,
    /// Sum of the watched links' cumulative counters at injection time.
    baseline: LinkTotals,
    /// Highest ambient loss probability among the replaced configurations —
    /// the loss rate the monitor must not alarm on.
    ambient_loss: f64,
}

/// Runtime state of one scheduled fault. The externally visible lifecycle
/// lives in the embedded [`FaultRecord`]; the rest is what the world needs
/// to apply, attribute and undo the fault.
struct FaultRuntime {
    event: FaultEvent,
    record: FaultRecord,
    /// Tamper fault waiting for the first sealed block with records.
    pending_tamper: bool,
    /// Access-link configs saved at burst start, restored at burst end.
    saved_wifi: Vec<(ClientId, LinkConfig)>,
    /// Backhaul-link configs saved at burst start, restored at burst end.
    saved_backhaul: Vec<(AggregatorAddr, AggregatorAddr, LinkConfig)>,
    /// Traffic baseline for link bursts, so window seals can flag abnormal
    /// loss even when QoS retries absorb every drop.
    link_watch: Option<LinkWatch>,
    /// Devices re-plugged into the failover network for an outage.
    failover_moved: Vec<DeviceId>,
    /// Backhaul traffic addressed to the down aggregator, replayed at
    /// recovery (the mesh transport queues, it does not forget).
    queued_backhaul: Vec<(AggregatorAddr, Packet)>,
    /// Shadow consensus group for byzantine faults: the group, its validator
    /// set in id order, and how many of them (from the front) are byzantine.
    consensus: Option<(QuorumConsensus, Vec<DeviceId>, usize)>,
    /// Private stream for telegram-corruption faults, derived at injection
    /// time so corruption draws never perturb the world's main stream.
    corruption_rng: Option<SimRng>,
}

/// Lifecycle accounting for one scheduled fleet command (see
/// [`World::schedule_control`] and [`World::command_records`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommandRecord {
    /// The command's sequence number — its index in the control table and
    /// the `seq` its wire frames carry.
    pub seq: u32,
    /// When the manager published the command (`None` until it fires).
    pub published_at: Option<SimTime>,
    /// Devices the command was addressed to at publish time.
    pub targets: usize,
    /// Command frames delivered to device firmware, duplicates included.
    pub delivered: usize,
    /// Devices that accepted and executed the command.
    pub applied: usize,
    /// Devices whose firmware rejected the command (bad parameter).
    pub rejected: usize,
    /// Acknowledgments delivered back to the manager's status subscription.
    pub acked: usize,
    /// When the first acknowledgment reached the manager.
    pub first_ack_at: Option<SimTime>,
    /// When the last acknowledgment so far reached the manager — with
    /// [`acked`](Self::acked)` == targets` this is the rollout completion
    /// time.
    pub last_ack_at: Option<SimTime>,
    /// Wire bytes of delivered command frames (payload + topic + envelope,
    /// the broker's own size model).
    pub command_bytes: u64,
    /// Wire bytes of delivered acknowledgments.
    pub ack_bytes: u64,
}

/// Runtime state of one scheduled fleet command: the event, its public
/// record, and which devices already executed it (so a retained redelivery
/// or a session-resume replay is idempotent, like MQTT packet-id dedup).
struct ControlRuntime {
    event: ControlEvent,
    record: CommandRecord,
    applied_to: BTreeSet<DeviceId>,
}

impl FaultRuntime {
    fn new(id: usize, event: FaultEvent) -> FaultRuntime {
        FaultRuntime {
            record: FaultRecord::scheduled(id, &event),
            event,
            pending_tamper: false,
            saved_wifi: Vec::new(),
            saved_backhaul: Vec::new(),
            link_watch: None,
            failover_moved: Vec::new(),
            queued_backhaul: Vec::new(),
            consensus: None,
            corruption_rng: None,
        }
    }
}

/// The composed simulation world.
pub struct World {
    config: WorldConfig,
    scheduler: Scheduler<WorldEvent>,
    devices: BTreeMap<DeviceId, MeteringDevice>,
    device_clients: BTreeMap<DeviceId, ClientId>,
    device_sites: BTreeMap<DeviceId, (AggregatorAddr, BranchId)>,
    sites: BTreeMap<AggregatorAddr, NetworkSite>,
    broker: MqttBroker,
    backhaul: BackhaulMesh,
    radio: RadioEnvironment,
    rng: SimRng,
    notifications: Vec<WorldNotification>,
    faults: Vec<FaultRuntime>,
    /// Networks whose aggregator is currently dark, mapped to the fault that
    /// took them down.
    down_sites: BTreeMap<AggregatorAddr, usize>,
    /// Broker-client routing index (see [`Endpoint`]).
    client_endpoints: BTreeMap<ClientId, Endpoint>,
    /// Times with a broker-poll event already scheduled, so a burst of
    /// publishes arms one wakeup per delivery time instead of one per
    /// publish. Dropping only *exact-time* duplicates keeps the event
    /// stream behaviorally identical: a duplicate poll at an already-armed
    /// time always fires after the armed one and drains nothing.
    armed_broker_polls: BTreeSet<SimTime>,
    /// Same as `armed_broker_polls`, for the backhaul mesh.
    armed_backhaul_polls: BTreeSet<SimTime>,
    /// Scratch buffer for device outbound packets, reused across ticks so
    /// the per-device tick path stays allocation-free.
    outbound_scratch: Vec<rtem_device::device::Outbound>,
    /// Scratch buffer for per-branch loads during upstream sampling.
    loads_scratch: Vec<(BranchId, rtem_sensors::energy::Milliamps)>,
    /// Scratch id list of the tick batch being dispatched, in pop order.
    tick_batch_scratch: Vec<DeviceId>,
    /// Scratch set guarding the batch against duplicate device ids (a
    /// device has exactly one pending tick, so this never fires today —
    /// it keeps the batcher safe against future extra schedulings).
    tick_seen_scratch: BTreeSet<DeviceId>,
    /// Scratch per-device outcomes of the batch compute phase, reused so
    /// steady-state batching allocates nothing per batch.
    tick_outcomes_scratch: Vec<TickOutcome>,
    /// Which meter protocol each device speaks. Absent means
    /// [`MeterKind::Internal`] — the native packet encoding, byte-identical
    /// with every earlier revision of the testbed.
    device_meter_kinds: BTreeMap<DeviceId, MeterKind>,
    /// Wire-level accounting at the meter-codec boundary.
    wire: WireStats,
    /// Optional capture of every telegram put on the wire (golden-fixture
    /// tests); `None` keeps the hot path allocation-free.
    telegram_log: Option<Vec<TelegramLogEntry>>,
    /// Scheduled fleet commands (see [`World::schedule_control`]). Empty
    /// unless a control plan was given, in which case the control plane's
    /// broker clients and subscriptions exist at all.
    controls: Vec<ControlRuntime>,
    /// Whether the control plane (manager session, command/status
    /// subscriptions, cohort order) has been set up.
    control_ready: bool,
    /// One seeded shuffle of the fleet, drawn from a derived stream when the
    /// control plane comes up. A `Cohort { percent }` target takes the first
    /// `percent` of this order, so the cohorts of a staged rollout nest.
    cohort_order: Vec<DeviceId>,
    /// Per-device Tmeasure overrides installed by `SetMeasureInterval`
    /// commands. Empty in uncommanded runs, so the measurement cadence is
    /// bit-identical with earlier revisions.
    measure_overrides: BTreeMap<DeviceId, SimDuration>,
    /// Always-on dispatch tally by [`WorldEvent`] kind — two array writes
    /// per event, read back at telemetry snapshot time.
    events_by_kind: [u64; WorldEvent::KIND_COUNT],
    /// High-water mark of the scheduler queue length, sampled at the top of
    /// the event loop.
    queue_high_water: usize,
    /// Always-on telegram parse-failure tally by protocol family × error
    /// kind (two array indexes per failed parse — failures are rare).
    codec_failures: CodecFailureTable,
    /// Optional telemetry collection (see [`World::enable_telemetry`]).
    /// `None` costs nothing beyond the always-on taps above; enabled, it
    /// reads — never writes — deterministic state, so results stay
    /// bit-identical whatever the configuration.
    telemetry: Option<Box<TelemetryRuntime>>,
    /// How many `notifications` entries the telemetry trace has already
    /// recorded — a watermark, so tracing needs no hook at push sites.
    traced_notifications: usize,
}

/// The live telemetry state hanging off a [`World`] when enabled.
struct TelemetryRuntime {
    config: TelemetryConfig,
    /// Next grid time to stamp. The grid is anchored at [`SimTime::ZERO`];
    /// when telemetry is enabled mid-run, points at or before "now" are
    /// skipped without emitting.
    next_snapshot_at: SimTime,
    /// Sequence number of the next snapshot.
    seq: u64,
    /// Reusable pull-model sink, reset and refilled at each grid point.
    registry: MetricsRegistry,
    /// Every snapshot stamped so far, for the end-of-run report.
    snapshots: Vec<std::sync::Arc<rtem_telemetry::MetricsSnapshot>>,
    /// The structured trace, when configured.
    trace: Option<TraceLog>,
    /// The wall-clock dispatch profiler, when configured. Strictly outside
    /// deterministic state: it only ever observes elapsed host time.
    profiler: Option<DispatchProfiler>,
    /// Dispatch ordinal driving the profiler's sampling stride. Advances
    /// deterministically with the event stream, so *which* dispatches get
    /// timed never depends on the clock.
    profile_tick: u64,
}

impl core::fmt::Debug for World {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("World")
            .field("now", &self.now())
            .field("devices", &self.devices.len())
            .field("networks", &self.sites.len())
            .finish()
    }
}

/// Smallest number of devices worth handing to one worker lane. Batches
/// shorter than two chunks run inline on the dispatcher thread — spawning
/// for a handful of ticks costs more than it saves.
const PARALLEL_MIN_CHUNK: usize = 16;

/// Per-device result of the parallel compute phase of one tick batch.
/// Everything a sequential `handle_measure_tick` would have produced before
/// touching shared state, staged so the apply phase can replay it in exact
/// pop order.
#[derive(Default)]
struct TickOutcome {
    /// Whether the device existed when the batch was computed. Absent
    /// devices get the same treatment as the sequential path's early
    /// return: dispatch bookkeeping only, no reschedule.
    present: bool,
    /// The device's last handshake before the tick, for completion
    /// detection in the apply phase.
    handshake_before: Option<HandshakeBreakdown>,
    /// Packets the device wants published, in emission order.
    outbound: Vec<rtem_device::device::Outbound>,
}

/// Collects disjoint mutable borrows of `ids`' devices, in `ids` order.
/// Devices missing from the map (removed mid-run) yield `None`; callers
/// treat those exactly like the sequential path treats an unknown device.
fn device_slots<'a>(
    devices: &'a mut BTreeMap<DeviceId, MeteringDevice>,
    ids: &[DeviceId],
) -> Vec<Option<&'a mut MeteringDevice>> {
    let wanted: BTreeSet<DeviceId> = ids.iter().copied().collect();
    let mut by_id: BTreeMap<DeviceId, &'a mut MeteringDevice> = devices
        .iter_mut()
        .filter(|(id, _)| wanted.contains(id))
        .map(|(&id, device)| (id, device))
        .collect();
    ids.iter().map(|id| by_id.remove(id)).collect()
}

/// Fans `f` over the slot/result pairs on up to `shards` scoped worker
/// lanes, returning `(lane, wall_nanos)` per lane that ran on its own
/// thread (empty when the whole batch ran inline). Each lane owns a
/// contiguous chunk, so results land in their slots no matter how the OS
/// schedules the threads — the caller's apply order alone decides the
/// simulation outcome.
fn fan_out<R, F>(
    slots: &mut [Option<&mut MeteringDevice>],
    results: &mut [R],
    shards: usize,
    f: F,
) -> Vec<(usize, u64)>
where
    R: Send,
    F: Fn(&mut MeteringDevice, &mut R) + Sync,
{
    let total = slots.len();
    let workers = shards.min(total / PARALLEL_MIN_CHUNK).max(1);
    if workers == 1 {
        for (slot, result) in slots.iter_mut().zip(results.iter_mut()) {
            if let Some(device) = slot.as_deref_mut() {
                f(device, result);
            }
        }
        return Vec::new();
    }
    let chunk = total.div_ceil(workers);
    let f = &f;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        let mut slots_rest = slots;
        let mut results_rest = results;
        let mut lane = 1usize;
        while slots_rest.len() > chunk {
            let (slot_chunk, tail) = slots_rest.split_at_mut(chunk);
            slots_rest = tail;
            let (result_chunk, tail) = results_rest.split_at_mut(chunk);
            results_rest = tail;
            let this_lane = lane;
            lane += 1;
            handles.push(scope.spawn(move || {
                let started = std::time::Instant::now();
                for (slot, result) in slot_chunk.iter_mut().zip(result_chunk.iter_mut()) {
                    if let Some(device) = slot.as_deref_mut() {
                        f(device, result);
                    }
                }
                let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                (this_lane, nanos)
            }));
        }
        // Lane 0 is the dispatcher thread itself, working the tail chunk
        // while the spawned lanes run.
        let started = std::time::Instant::now();
        for (slot, result) in slots_rest.iter_mut().zip(results_rest.iter_mut()) {
            if let Some(device) = slot.as_deref_mut() {
                f(device, result);
            }
        }
        let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let mut lanes = vec![(0usize, nanos)];
        for handle in handles {
            lanes.push(handle.join().expect("worker lane panicked"));
        }
        lanes
    })
}

/// Mangles raw telegram bytes per the fault's declared mode. A `None` rng
/// (fault never armed) leaves the bytes untouched.
fn corrupt_bytes(bytes: &mut Vec<u8>, mode: CorruptionMode, rng: Option<&mut SimRng>) {
    let Some(rng) = rng else { return };
    if bytes.is_empty() {
        return;
    }
    match mode {
        CorruptionMode::BitFlip { flips } => {
            for _ in 0..flips.max(1) {
                let bit = rng.next_below(bytes.len() as u64 * 8) as usize;
                bytes[bit / 8] ^= 1 << (bit % 8);
            }
        }
        CorruptionMode::Truncate => {
            let keep = rng.next_below(bytes.len() as u64) as usize;
            bytes.truncate(keep);
        }
        CorruptionMode::MangleField => {
            let start = rng.next_below(bytes.len() as u64) as usize;
            let span = (1 + rng.next_below(8) as usize).min(bytes.len() - start);
            for byte in &mut bytes[start..start + span] {
                *byte = rng.next_u64() as u8;
            }
        }
    }
}

/// The `Internal`-kind analogue of [`corrupt_bytes`]: with no telegram
/// framing to damage, the fault lands directly on the record values — which
/// the packed native encoding then carries without complaint.
fn corrupt_records(
    records: &mut Vec<MeasurementRecord>,
    mode: CorruptionMode,
    rng: Option<&mut SimRng>,
) {
    let Some(rng) = rng else { return };
    if records.is_empty() {
        return;
    }
    // Corrupted values stay within 32 bits: wildly wrong for any plausible
    // interval (reports run in the thousands of µA·s), while keeping the
    // billing accumulators a run sums them into far from u64 overflow.
    match mode {
        CorruptionMode::BitFlip { flips } => {
            for _ in 0..flips.max(1) {
                let idx = rng.next_below(records.len() as u64) as usize;
                let bit = 1u64 << rng.next_below(32);
                if rng.chance(0.5) {
                    records[idx].mean_current_ua ^= bit;
                } else {
                    records[idx].charge_uas ^= bit;
                }
            }
        }
        CorruptionMode::Truncate => {
            let keep = rng.next_below(records.len() as u64) as usize;
            records.truncate(keep);
        }
        CorruptionMode::MangleField => {
            let idx = rng.next_below(records.len() as u64) as usize;
            records[idx].mean_current_ua = rng.next_below(1 << 32);
            records[idx].charge_uas = rng.next_below(1 << 32);
        }
    }
}

fn device_client(device: DeviceId) -> ClientId {
    ClientId(device.0)
}

/// The fleet manager's broker session — the operator-side endpoint of the
/// control plane, connected only when a control plan is scheduled.
fn manager_client() -> ClientId {
    ClientId(2_000_000)
}

/// How many devices a `percent` cohort selects out of `fleet` — rounded up,
/// so a non-empty fleet always yields a non-empty cohort.
fn cohort_size(fleet: usize, percent: u8) -> usize {
    (fleet * usize::from(percent.min(100))).div_ceil(100)
}

fn aggregator_client(addr: AggregatorAddr) -> ClientId {
    ClientId(1_000_000 + u64::from(addr.0))
}

fn uplink_topic(addr: AggregatorAddr) -> String {
    format!("metering/agg-{}/uplink", addr.0)
}

fn downlink_topic(device: DeviceId) -> String {
    format!("metering/dev-{}/downlink", device.0)
}

impl World {
    /// Creates an empty world.
    pub fn new(config: WorldConfig) -> Self {
        let rng = SimRng::seed_from_u64(config.seed);
        World {
            scheduler: Scheduler::new(),
            devices: BTreeMap::new(),
            device_clients: BTreeMap::new(),
            device_sites: BTreeMap::new(),
            sites: BTreeMap::new(),
            broker: MqttBroker::new(rng.derive(1)),
            backhaul: BackhaulMesh::new(rng.derive(2)),
            radio: RadioEnvironment::new(PathLossModel::default()),
            rng,
            config,
            notifications: Vec::new(),
            faults: Vec::new(),
            down_sites: BTreeMap::new(),
            client_endpoints: BTreeMap::new(),
            armed_broker_polls: BTreeSet::new(),
            armed_backhaul_polls: BTreeSet::new(),
            outbound_scratch: Vec::new(),
            loads_scratch: Vec::new(),
            tick_batch_scratch: Vec::new(),
            tick_seen_scratch: BTreeSet::new(),
            tick_outcomes_scratch: Vec::new(),
            device_meter_kinds: BTreeMap::new(),
            wire: WireStats::default(),
            telegram_log: None,
            controls: Vec::new(),
            control_ready: false,
            cohort_order: Vec::new(),
            measure_overrides: BTreeMap::new(),
            events_by_kind: [0; WorldEvent::KIND_COUNT],
            queue_high_water: 0,
            codec_failures: CodecFailureTable::new(),
            telemetry: None,
            traced_notifications: 0,
        }
    }

    /// Drains the milestone notifications buffered since the last call (or
    /// since construction). Entries are in dispatch order, which is
    /// deterministic for a given seed regardless of how `run_until` calls
    /// are sliced.
    pub fn take_notifications(&mut self) -> Vec<WorldNotification> {
        self.trace_new_notifications();
        self.traced_notifications = 0;
        std::mem::take(&mut self.notifications)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.scheduler.now()
    }

    /// The world configuration.
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    /// Adds a network (aggregator + its grid) at `position`.
    pub fn add_network(&mut self, addr: AggregatorAddr, position: Position) {
        let aggregator = Aggregator::new(
            AggregatorConfig {
                tariff: self.config.tariff.clone(),
                ..AggregatorConfig::testbed(addr)
            },
            self.rng.derive(0xA000 + u64::from(addr.0)),
        );
        let client = aggregator_client(addr);
        self.broker.connect(client, LinkConfig::ideal());
        self.broker
            .subscribe(client, &uplink_topic(addr))
            .expect("aggregator subscription");
        self.backhaul.join(addr);
        for &other in self.sites.keys() {
            self.backhaul.connect(addr, other, self.config.backhaul);
        }
        self.radio.place_aggregator(addr, position);
        self.client_endpoints.insert(client, Endpoint::Site(addr));
        self.sites.insert(
            addr,
            NetworkSite {
                aggregator,
                grid: GridNetwork::new(),
                position,
                client,
                members: BTreeMap::new(),
            },
        );
        // Periodic aggregator-side sampling and verification windows.
        self.scheduler.schedule(
            SimTime::ZERO + self.config.upstream_sample_interval,
            WorldEvent::UpstreamSample(addr),
        );
        self.scheduler.schedule(
            SimTime::ZERO + self.config.verification_window,
            WorldEvent::WindowEnd(addr),
        );
    }

    /// Adds a device to the world. The device is initially unplugged; use
    /// [`plug_in_now`](Self::plug_in_now) or [`schedule_plug_in`](Self::schedule_plug_in)
    /// to connect it to a network.
    pub fn add_device(&mut self, mut device: MeteringDevice) {
        let id = device.id();
        device.boot(self.now());
        let client = device_client(id);
        self.broker.connect(client, self.config.wifi);
        self.broker
            .subscribe(client, &downlink_topic(id))
            .expect("device subscription");
        self.device_clients.insert(id, client);
        self.client_endpoints.insert(client, Endpoint::Device(id));
        self.devices.insert(id, device);
        // Start the measurement timer.
        self.scheduler.schedule(
            self.now() + self.config.t_measure,
            WorldEvent::MeasureTick(id),
        );
    }

    /// Immediately plugs `device` into `network`'s grid.
    ///
    /// # Panics
    ///
    /// Panics if the device or the network does not exist.
    pub fn plug_in_now(&mut self, device: DeviceId, network: AggregatorAddr) {
        let now = self.now();
        self.do_plug_in(device, network, now);
    }

    /// Schedules a plug-in at an absolute time.
    pub fn schedule_plug_in(&mut self, at: SimTime, device: DeviceId, network: AggregatorAddr) {
        self.scheduler
            .schedule(at, WorldEvent::PlugIn { device, network });
    }

    /// Schedules an unplug at an absolute time.
    pub fn schedule_unplug(&mut self, at: SimTime, device: DeviceId) {
        self.scheduler.schedule(at, WorldEvent::Unplug(device));
    }

    /// Schedules the home network removing a device (sequence 3 of Fig. 3).
    pub fn schedule_remove_device(&mut self, at: SimTime, device: DeviceId, home: AggregatorAddr) {
        self.scheduler
            .schedule(at, WorldEvent::RemoveDevice { device, home });
    }

    /// Schedules a fault injection. The event takes effect at its own
    /// injection time and — for the transient families — clears at its
    /// declared clear time; the world emits
    /// [`WorldNotification::FaultInjected`] / [`FaultCleared`] /
    /// [`FaultDetected`] at the corresponding hook points and keeps a
    /// [`FaultRecord`] per scheduled fault (see
    /// [`fault_records`](Self::fault_records)).
    ///
    /// Returns the fault's id, which the notifications and records carry.
    /// Faults targeting devices or networks the world does not contain are
    /// recorded but never take effect; validate plans up front through the
    /// facade to catch that early.
    ///
    /// [`FaultCleared`]: WorldNotification::FaultCleared
    /// [`FaultDetected`]: WorldNotification::FaultDetected
    pub fn schedule_fault(&mut self, event: FaultEvent) -> usize {
        let id = self.faults.len();
        self.scheduler
            .schedule(event.at(), WorldEvent::FaultStart(id));
        if let Some(until) = event.clears_at() {
            self.scheduler.schedule(until, WorldEvent::FaultEnd(id));
        }
        self.faults.push(FaultRuntime::new(id, event));
        id
    }

    /// Lifecycle records of every scheduled fault, in scheduling order.
    pub fn fault_records(&self) -> Vec<FaultRecord> {
        self.faults.iter().map(|f| f.record).collect()
    }

    /// Schedules a fleet command. At the event's time the manager session
    /// publishes the command's wire frame on every targeted device's command
    /// topic with the event's QoS and retain flag; each device applies the
    /// command on delivery and acknowledges on its status topic, which the
    /// manager subscribes to. The world emits
    /// [`WorldNotification::CommandPublished`] / [`CommandApplied`] at the
    /// corresponding hook points and keeps a [`CommandRecord`] per command
    /// (see [`command_records`](Self::command_records)).
    ///
    /// The first call brings the control plane up: the manager connects on
    /// an ideal operations link, every device present subscribes to its own
    /// command topic, and the cohort order for staged rollouts is drawn from
    /// a derived stream. Devices added afterwards are outside the control
    /// plane. Uncommanded worlds never pay any of this — the broker's
    /// client and subscription population is bit-identical with earlier
    /// revisions.
    ///
    /// Returns the command's sequence number, which its wire frames,
    /// notifications and record carry.
    ///
    /// [`CommandApplied`]: WorldNotification::CommandApplied
    pub fn schedule_control(&mut self, event: ControlEvent) -> usize {
        self.ensure_control_plane();
        let id = self.controls.len();
        self.scheduler
            .schedule(event.at, WorldEvent::ControlCommand(id));
        self.controls.push(ControlRuntime {
            event,
            record: CommandRecord {
                seq: id as u32,
                ..CommandRecord::default()
            },
            applied_to: BTreeSet::new(),
        });
        id
    }

    /// Lifecycle records of every scheduled fleet command, in scheduling
    /// (= sequence-number) order.
    pub fn command_records(&self) -> Vec<CommandRecord> {
        self.controls.iter().map(|c| c.record).collect()
    }

    /// Devices a `Cohort { percent }` target resolves to right now — the
    /// first `percent` of the seeded fleet shuffle, in id order. Empty until
    /// the control plane is up.
    pub fn cohort(&self, percent: u8) -> Vec<DeviceId> {
        let take = cohort_size(self.cohort_order.len(), percent);
        let mut cohort: Vec<DeviceId> = self.cohort_order[..take].to_vec();
        cohort.sort_unstable();
        cohort
    }

    fn ensure_control_plane(&mut self) {
        if self.control_ready {
            return;
        }
        self.control_ready = true;
        let now = self.now();
        self.broker.connect(manager_client(), LinkConfig::ideal());
        let device_ids: Vec<DeviceId> = self.devices.keys().copied().collect();
        for id in &device_ids {
            let client = self.device_clients[id];
            self.broker
                .subscribe_at(client, &command_topic(*id), now)
                .expect("device command subscription");
            self.broker
                .subscribe_at(manager_client(), &status_topic(*id), now)
                .expect("manager status subscription");
        }
        // One seeded Fisher-Yates shuffle of the fleet, from a derived
        // stream so bringing the control plane up never perturbs the
        // world's main RNG sequence. Every cohort of the run is a prefix of
        // this order, which is what makes staged-rollout cohorts nested.
        let mut order = device_ids;
        let mut rng = self.rng.derive(0xC047_0125);
        for i in (1..order.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            order.swap(i, j);
        }
        self.cohort_order = order;
    }

    /// Declares which meter protocol `device` speaks on its access link.
    ///
    /// Consumption reports from the device are encoded through the matching
    /// `rtem-codecs` encoder before transmission and parsed back on the
    /// aggregator side. Devices never assigned a kind speak
    /// [`MeterKind::Internal`], the native packet encoding.
    pub fn set_meter_kind(&mut self, device: DeviceId, kind: MeterKind) {
        if kind == MeterKind::Internal {
            self.device_meter_kinds.remove(&device);
        } else {
            self.device_meter_kinds.insert(device, kind);
        }
    }

    /// The meter protocol `device` speaks ([`MeterKind::Internal`] unless
    /// assigned otherwise).
    pub fn meter_kind(&self, device: DeviceId) -> MeterKind {
        self.device_meter_kinds
            .get(&device)
            .copied()
            .unwrap_or(MeterKind::Internal)
    }

    /// Wire-level accounting at the meter-codec boundary.
    pub fn wire_stats(&self) -> WireStats {
        self.wire
    }

    /// Starts capturing every telegram put on the wire. Intended for
    /// golden-fixture tests; off by default to keep the hot path
    /// allocation-free.
    pub fn enable_telegram_log(&mut self) {
        self.telegram_log.get_or_insert_with(Vec::new);
    }

    /// Drains the captured telegrams (empty unless
    /// [`enable_telegram_log`](Self::enable_telegram_log) was called).
    pub fn take_telegram_log(&mut self) -> Vec<TelegramLogEntry> {
        self.telegram_log
            .take()
            .map(|log| {
                self.telegram_log = Some(Vec::new());
                log
            })
            .unwrap_or_default()
    }

    /// Turns on telemetry collection: periodic
    /// [`MetricsSnapshot`](rtem_telemetry::MetricsSnapshot)s on a grid
    /// anchored at [`SimTime::ZERO`] (emitted both as
    /// [`WorldNotification::MetricsSnapshot`] and into the end-of-run
    /// [`TelemetryReport`]), plus the optional structured trace and
    /// wall-clock dispatch profiler. Telemetry only *reads* deterministic
    /// state, so simulation results are bit-identical with telemetry on,
    /// off, or at any snapshot interval. When enabled mid-run, grid points
    /// at or before "now" are skipped without emitting.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (zero snapshot interval or
    /// zero profiler sampling stride).
    pub fn enable_telemetry(&mut self, config: TelemetryConfig) {
        assert!(
            config.is_valid(),
            "telemetry snapshot interval and profile sample stride must be non-zero"
        );
        let trace = config
            .trace
            .then(|| TraceLog::with_capacity(config.trace_capacity));
        let profiler = config
            .profile
            .then(|| DispatchProfiler::new(&WorldEvent::KIND_LABELS));
        let mut next_snapshot_at = SimTime::ZERO + config.snapshot_interval;
        while next_snapshot_at <= self.now() {
            next_snapshot_at += config.snapshot_interval;
        }
        // Notifications buffered before enablement predate the trace.
        self.traced_notifications = self.notifications.len();
        self.telemetry = Some(Box::new(TelemetryRuntime {
            config,
            next_snapshot_at,
            seq: 0,
            registry: MetricsRegistry::new(),
            snapshots: Vec::new(),
            trace,
            profiler,
            profile_tick: 0,
        }));
    }

    /// Whether telemetry collection is currently enabled.
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry.is_some()
    }

    /// Tears down telemetry and returns everything it recorded, with one
    /// final snapshot stamped at `at` (normally the run horizon). `None`
    /// when telemetry was never enabled.
    pub fn take_telemetry(&mut self, at: SimTime) -> Option<TelemetryReport> {
        self.trace_new_notifications();
        let mut runtime = self.telemetry.take()?;
        runtime.registry.reset();
        self.fill_registry(&mut runtime.registry);
        let final_snapshot = runtime.registry.snapshot(at, runtime.seq);
        Some(TelemetryReport {
            config: runtime.config,
            snapshots: runtime.snapshots,
            final_snapshot,
            trace: runtime.trace,
            profile: runtime.profiler.map(DispatchProfiler::finish),
        })
    }

    /// Emits every due snapshot with grid time strictly before `before`
    /// (the timestamp of the event about to dispatch).
    fn emit_due_snapshots(&mut self, before: SimTime) {
        while self
            .telemetry
            .as_ref()
            .is_some_and(|runtime| runtime.next_snapshot_at < before)
        {
            let at = self
                .telemetry
                .as_ref()
                .expect("checked above")
                .next_snapshot_at;
            self.emit_snapshot(at);
        }
    }

    /// Emits every remaining snapshot with grid time at or before `horizon`
    /// (all still-queued events are strictly later).
    fn emit_snapshots_through(&mut self, horizon: SimTime) {
        while self
            .telemetry
            .as_ref()
            .is_some_and(|runtime| runtime.next_snapshot_at <= horizon)
        {
            let at = self
                .telemetry
                .as_ref()
                .expect("checked above")
                .next_snapshot_at;
            self.emit_snapshot(at);
        }
    }

    /// Stamps one snapshot at grid time `at`: resets the registry, refills
    /// it from the subsystems' cumulative counters, stores the copy for the
    /// report and publishes it as a notification.
    fn emit_snapshot(&mut self, at: SimTime) {
        // Take the runtime out so the fill can borrow the rest of the world.
        let Some(mut runtime) = self.telemetry.take() else {
            return;
        };
        runtime.registry.reset();
        self.fill_registry(&mut runtime.registry);
        let snapshot = std::sync::Arc::new(runtime.registry.snapshot(at, runtime.seq));
        runtime.seq += 1;
        runtime.next_snapshot_at = at + runtime.config.snapshot_interval;
        runtime.snapshots.push(std::sync::Arc::clone(&snapshot));
        self.telemetry = Some(runtime);
        self.notifications
            .push(WorldNotification::MetricsSnapshot { at, snapshot });
        self.trace_new_notifications();
    }

    /// Copies any still-untraced notifications into the telemetry trace as
    /// instants. Called after each dispatch and whenever the notification
    /// buffer is about to be drained; a watermark (rather than hooks at the
    /// ~10 push sites) keeps the hot paths and borrow structure untouched.
    fn trace_new_notifications(&mut self) {
        let Some(runtime) = self.telemetry.as_mut() else {
            return;
        };
        let Some(trace) = runtime.trace.as_mut() else {
            return;
        };
        for notification in &self.notifications[self.traced_notifications..] {
            trace.push_instant(notification.label(), notification.at().as_micros());
        }
        self.traced_notifications = self.notifications.len();
    }

    /// The pull sync: fills a freshly reset registry from the cumulative
    /// counters every subsystem already maintains. Reads only — this is the
    /// one place telemetry touches the deterministic state.
    fn fill_registry(&self, registry: &mut MetricsRegistry) {
        // Broker, fleet-wide.
        let fleet = registry.fleet_mut();
        fleet.set(MetricId::BrokerPublishes, self.broker.published());
        fleet.set(MetricId::BrokerDelivered, self.broker.delivered());
        fleet.set(MetricId::BrokerDropped, self.broker.dropped());
        fleet.set(
            MetricId::BrokerQueuedForResume,
            self.broker.queued_for_resume(),
        );
        fleet.set(MetricId::BrokerResumed, self.broker.resumed());
        fleet.set(
            MetricId::BrokerRetainedReplays,
            self.broker.retained_delivered(),
        );
        fleet.set(
            MetricId::BrokerQos2HandshakeFrames,
            self.broker.qos2_handshake_frames(),
        );
        fleet.set(
            MetricId::BrokerQos2DupSuppressed,
            self.broker.qos2_dup_suppressed(),
        );
        fleet.set(
            MetricId::BrokerSessionQueueDepth,
            self.broker.session_queue_total() as u64,
        );
        // Links: every broker client link plus the backhaul mesh.
        let mut links = self.broker.link_totals();
        links += self.backhaul.link_totals();
        fleet.set(MetricId::LinkPacketsOffered, links.offered);
        fleet.set(MetricId::LinkPacketsLost, links.lost);
        fleet.set(MetricId::LinkBytesDelivered, links.delivered_bytes());
        fleet.set(MetricId::LinkBytesLost, links.lost_bytes);
        fleet.set(
            MetricId::LinkFaultsActive,
            self.faults
                .iter()
                .filter(|fault| {
                    fault.record.family == FaultFamily::Link
                        && fault.record.injected_at.is_some()
                        && fault.record.cleared_at.is_none()
                })
                .count() as u64,
        );
        // Scheduler.
        fleet.set(
            MetricId::SchedulerEventsDispatched,
            self.events_by_kind.iter().sum(),
        );
        fleet.set(
            MetricId::SchedulerQueueHighWater,
            self.queue_high_water as u64,
        );
        fleet.set(MetricId::DeviceMeasureTicks, self.events_by_kind[0]);
        // Devices, fleet-wide (unplugged devices count here even while they
        // belong to no network).
        let mut buffered = 0u64;
        let mut reboots = 0u64;
        let mut crashed = 0u64;
        let mut lost_to_crashes = 0u64;
        for device in self.devices.values() {
            buffered += device.buffered_records() as u64;
            reboots += u64::from(device.counters().reboots);
            crashed += u64::from(device.is_crashed());
            lost_to_crashes += device.records_lost_to_crashes();
        }
        fleet.set(MetricId::DeviceBufferedRecords, buffered);
        fleet.set(MetricId::DeviceReboots, reboots);
        fleet.set(MetricId::DeviceCrashedNow, crashed);
        fleet.set(MetricId::DeviceRecordsLostToCrashes, lost_to_crashes);
        fleet.set(
            MetricId::NetworkMembers,
            self.sites
                .values()
                .map(|site| site.members.len() as u64)
                .sum(),
        );
        // Aggregators, fleet-wide.
        let mut reports_accepted = 0u64;
        let mut reports_nacked = 0u64;
        let mut records_accepted = 0u64;
        let mut dup_filtered = 0u64;
        let mut verdicts = 0u64;
        let mut anomalous = 0u64;
        for site in self.sites.values() {
            reports_accepted += site.aggregator.reports_accepted();
            reports_nacked += site.aggregator.nacks_sent();
            records_accepted += site.aggregator.records_accepted();
            dup_filtered += site.aggregator.records_duplicate_filtered();
            verdicts += site.aggregator.verdicts().len() as u64;
            anomalous += site
                .aggregator
                .verdicts()
                .iter()
                .filter(|v| v.anomalous)
                .count() as u64;
        }
        fleet.set(MetricId::AggReportsAccepted, reports_accepted);
        fleet.set(MetricId::AggReportsNacked, reports_nacked);
        fleet.set(MetricId::AggRecordsAccepted, records_accepted);
        fleet.set(MetricId::AggRecordsDuplicateFiltered, dup_filtered);
        fleet.set(MetricId::AggVerdicts, verdicts);
        fleet.set(MetricId::AggAnomalousWindows, anomalous);
        // Codecs.
        fleet.set(MetricId::CodecTelegramsSent, self.wire.telegrams_sent);
        fleet.set(MetricId::CodecTelegramsParsed, self.wire.telegrams_parsed);
        fleet.set(MetricId::CodecParseFailures, self.wire.parse_failures);
        fleet.set(
            MetricId::CodecCorruptedInjected,
            self.wire.corrupted_injected,
        );
        // Control plane.
        let mut cmds_published = 0u64;
        let mut cmds_applied = 0u64;
        let mut cmds_rejected = 0u64;
        let mut cmds_acked = 0u64;
        for control in &self.controls {
            cmds_published += u64::from(control.record.published_at.is_some());
            cmds_applied += control.record.applied as u64;
            cmds_rejected += control.record.rejected as u64;
            cmds_acked += control.record.acked as u64;
        }
        fleet.set(MetricId::ControlCommandsPublished, cmds_published);
        fleet.set(MetricId::ControlCommandsApplied, cmds_applied);
        fleet.set(MetricId::ControlCommandsRejected, cmds_rejected);
        fleet.set(MetricId::ControlCommandsAcked, cmds_acked);
        registry.set_codec_failures(self.codec_failures);
        // Per-network scopes.
        for (addr, site) in &self.sites {
            let scope = registry.network_mut(addr.0);
            scope.set(MetricId::NetworkMembers, site.members.len() as u64);
            scope.set(
                MetricId::AggReportsAccepted,
                site.aggregator.reports_accepted(),
            );
            scope.set(MetricId::AggReportsNacked, site.aggregator.nacks_sent());
            scope.set(
                MetricId::AggRecordsAccepted,
                site.aggregator.records_accepted(),
            );
            scope.set(
                MetricId::AggRecordsDuplicateFiltered,
                site.aggregator.records_duplicate_filtered(),
            );
            scope.set(
                MetricId::AggVerdicts,
                site.aggregator.verdicts().len() as u64,
            );
            scope.set(
                MetricId::AggAnomalousWindows,
                site.aggregator
                    .verdicts()
                    .iter()
                    .filter(|v| v.anomalous)
                    .count() as u64,
            );
            let mut queue_depth = 0u64;
            let mut links = rtem_net::link::LinkTotals::default();
            let mut buffered = 0u64;
            let mut reboots = 0u64;
            let mut crashed = 0u64;
            for device_id in site.members.keys() {
                let client = device_client(*device_id);
                queue_depth += self.broker.session_queue_len(client).unwrap_or(0) as u64;
                if let Some(totals) = self.broker.client_link_totals(client) {
                    links += totals;
                }
                if let Some(device) = self.devices.get(device_id) {
                    buffered += device.buffered_records() as u64;
                    reboots += u64::from(device.counters().reboots);
                    crashed += u64::from(device.is_crashed());
                }
            }
            let scope = registry.network_mut(addr.0);
            scope.set(MetricId::BrokerSessionQueueDepth, queue_depth);
            scope.set(MetricId::LinkPacketsOffered, links.offered);
            scope.set(MetricId::LinkPacketsLost, links.lost);
            scope.set(MetricId::LinkBytesDelivered, links.delivered_bytes());
            scope.set(MetricId::LinkBytesLost, links.lost_bytes);
            scope.set(MetricId::DeviceBufferedRecords, buffered);
            scope.set(MetricId::DeviceReboots, reboots);
            scope.set(MetricId::DeviceCrashedNow, crashed);
        }
    }

    /// Runs the world until `horizon`.
    pub fn run_until(&mut self, horizon: SimTime) {
        // The scheduler needs the world's maps, so the loop lives here rather
        // than in a closure passed to Scheduler::run_until.
        while let Some(next) = self.scheduler.queue_mut().peek_time() {
            if next > horizon {
                break;
            }
            // A snapshot at grid time t covers exactly the events with
            // `at <= t`: everything earlier has dispatched, the event about
            // to dispatch is strictly later. Emitting here (instead of via
            // scheduled events) leaves the scheduler untouched, so the
            // simulation is trivially bit-identical with telemetry off.
            self.emit_due_snapshots(next);
            // Sharded runs peel maximal runs of simultaneous device ticks
            // off the queue front and fan their compute across worker
            // lanes; everything else (and every single-shard run) takes
            // the plain sequential path below.
            if self.config.shards > 1 && self.collect_tick_batch(next) {
                self.dispatch_tick_batch(next);
                continue;
            }
            let depth = self.scheduler.queue_mut().len();
            if depth > self.queue_high_water {
                self.queue_high_water = depth;
            }
            let event = self.scheduler.queue_mut().pop().expect("peeked event");
            self.dispatch(event.payload, event.at);
        }
        // Events beyond the horizon are still queued, so every remaining
        // grid point up to the horizon is already fully covered.
        self.emit_snapshots_through(horizon);
    }

    /// Pops the maximal run of simultaneous `MeasureTick` events for
    /// distinct devices at the queue front into `tick_batch_scratch`.
    /// Returns `false` — leaving the queue untouched — when the front event
    /// is anything else.
    ///
    /// Only *equal-time* ticks batch: an event scheduled while the batch
    /// applies (a broker poll armed at `now`, a rescheduled tick) always
    /// carries a higher sequence number than every already-queued tick at
    /// `now`, so it sorts after the whole batch exactly as it would have
    /// sorted after the remaining ticks sequentially. A tick at a *later*
    /// time offers no such guarantee (an apply could schedule ahead of it),
    /// so the batch cuts there.
    fn collect_tick_batch(&mut self, at: SimTime) -> bool {
        let queue = self.scheduler.queue_mut();
        if !matches!(queue.peek(), Some((t, WorldEvent::MeasureTick(_))) if t == at) {
            return false;
        }
        self.tick_batch_scratch.clear();
        self.tick_seen_scratch.clear();
        while let Some((t, &WorldEvent::MeasureTick(device))) = queue.peek() {
            if t != at || !self.tick_seen_scratch.insert(device) {
                break;
            }
            queue.pop();
            self.tick_batch_scratch.push(device);
        }
        true
    }

    /// Dispatches the batch collected by
    /// [`collect_tick_batch`](Self::collect_tick_batch) in two phases:
    /// device-local tick compute fanned across the configured worker
    /// lanes, then a sequential apply replaying every shared-state effect
    /// (handshake notifications, broker publishes, reschedules, telemetry
    /// bookkeeping) in exact pop order. The apply order alone touches
    /// shared state, so any shard count reproduces the sequential run
    /// bit for bit.
    fn dispatch_tick_batch(&mut self, now: SimTime) {
        let batch = std::mem::take(&mut self.tick_batch_scratch);
        let total = batch.len();
        let mut results = std::mem::take(&mut self.tick_outcomes_scratch);
        if results.len() < total {
            results.resize_with(total, TickOutcome::default);
        }
        for outcome in &mut results[..total] {
            outcome.present = false;
            outcome.handshake_before = None;
            outcome.outbound.clear();
        }
        // Compute phase: each lane works its own devices against the
        // shared read-only radio environment.
        let lanes = {
            let mut slots = device_slots(&mut self.devices, &batch);
            let radio = &self.radio;
            fan_out(
                &mut slots,
                &mut results[..total],
                self.config.shards,
                |device, outcome: &mut TickOutcome| {
                    outcome.handshake_before = device.last_handshake();
                    device.on_measure_tick_into(now, radio, &mut outcome.outbound);
                    outcome.present = true;
                },
            )
        };
        if !lanes.is_empty() {
            if let Some(profiler) = self
                .telemetry
                .as_mut()
                .and_then(|runtime| runtime.profiler.as_mut())
            {
                for (lane, nanos) in lanes {
                    profiler.record_lane(lane, nanos);
                }
            }
        }
        // Apply phase, in exact pop order. The queue-depth sample the
        // sequential loop takes before popping tick `i` is reconstructed
        // as the live length plus the batch ticks not yet applied.
        for (i, &device_id) in batch.iter().enumerate() {
            let depth = self.scheduler.queue_mut().len() + (total - i);
            if depth > self.queue_high_water {
                self.queue_high_water = depth;
            }
            let kind = WorldEvent::MeasureTick(device_id).kind_index();
            self.events_by_kind[kind] += 1;
            if let Some(trace) = self
                .telemetry
                .as_mut()
                .and_then(|runtime| runtime.trace.as_mut())
            {
                trace.push_span(WorldEvent::KIND_LABELS[kind], now.as_micros());
            }
            let started = self.telemetry.as_mut().and_then(|runtime| {
                runtime.profiler.as_ref()?;
                let tick = runtime.profile_tick;
                runtime.profile_tick += 1;
                (tick % u64::from(runtime.config.profile_sample_stride.max(1)) == 0)
                    .then(std::time::Instant::now)
            });
            let outcome = &mut results[i];
            if outcome.present {
                self.note_handshake(device_id, outcome.handshake_before, now);
                for out in outcome.outbound.drain(..) {
                    self.publish_uplink(device_id, out.to, out.packet, now);
                }
                let interval = self
                    .measure_overrides
                    .get(&device_id)
                    .copied()
                    .unwrap_or(self.config.t_measure);
                self.scheduler
                    .schedule(now + interval, WorldEvent::MeasureTick(device_id));
                self.arm_broker_poll(now);
            }
            if let Some(started) = started {
                let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                if let Some(profiler) = self
                    .telemetry
                    .as_mut()
                    .and_then(|runtime| runtime.profiler.as_mut())
                {
                    profiler.record(kind, nanos);
                }
            }
            self.trace_new_notifications();
        }
        self.tick_batch_scratch = batch;
        self.tick_outcomes_scratch = results;
    }

    /// Counts, traces and (when configured) wall-clock-profiles one event
    /// dispatch. The profiler reads the host clock strictly *around* the
    /// deterministic dispatch — it never feeds anything back into it.
    fn dispatch(&mut self, event: WorldEvent, now: SimTime) {
        let kind = event.kind_index();
        self.events_by_kind[kind] += 1;
        if let Some(trace) = self
            .telemetry
            .as_mut()
            .and_then(|runtime| runtime.trace.as_mut())
        {
            trace.push_span(WorldEvent::KIND_LABELS[kind], now.as_micros());
        }
        let started = self.telemetry.as_mut().and_then(|runtime| {
            runtime.profiler.as_ref()?;
            // Sample on the configured stride: the decision depends only on
            // the dispatch ordinal, so the sampled subset is deterministic
            // even though the measured wall times are not.
            let tick = runtime.profile_tick;
            runtime.profile_tick += 1;
            (tick % u64::from(runtime.config.profile_sample_stride.max(1)) == 0)
                .then(std::time::Instant::now)
        });
        self.dispatch_inner(event, now);
        if let Some(started) = started {
            let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            if let Some(profiler) = self
                .telemetry
                .as_mut()
                .and_then(|runtime| runtime.profiler.as_mut())
            {
                profiler.record(kind, nanos);
            }
        }
        self.trace_new_notifications();
    }

    fn dispatch_inner(&mut self, event: WorldEvent, now: SimTime) {
        match event {
            WorldEvent::MeasureTick(device_id) => {
                self.handle_measure_tick(device_id, now);
            }
            WorldEvent::UpstreamSample(addr) => {
                self.handle_upstream_sample(addr, now);
            }
            WorldEvent::WindowEnd(addr) => {
                // A dark aggregator seals nothing; the timer stays alive so
                // windows resume at the usual cadence after recovery.
                if !self.down_sites.contains_key(&addr) {
                    let mut anomalous = false;
                    if let Some(site) = self.sites.get_mut(&addr) {
                        let blocks_before = site.aggregator.ledger().chain().len();
                        let entries_before = site.aggregator.ledger().chain().total_records();
                        let verdict = site.aggregator.end_window(now);
                        let chain = site.aggregator.ledger().chain();
                        if chain.len() > blocks_before {
                            self.notifications.push(WorldNotification::BlockSealed {
                                at: now,
                                network: addr,
                                block_index: chain.len() as u64 - 1,
                                entries: chain.total_records() - entries_before,
                            });
                        }
                        if let Some(verdict) = verdict.filter(|v| v.anomalous) {
                            anomalous = true;
                            self.notifications.push(WorldNotification::AnomalousWindow {
                                at: now,
                                network: addr,
                                verdict,
                            });
                        }
                    }
                    // Fault hook points, in order: forgeries that waited for
                    // a sealed block apply first, then the audit looks for
                    // earlier forgeries, then this window's verdict and the
                    // recovery block are attributed, then the shadow
                    // consensus round runs.
                    self.apply_pending_tampers(addr, now);
                    self.audit_tamper_faults(addr, now);
                    if anomalous {
                        self.attribute_anomaly_to_faults(addr, now);
                    }
                    self.detect_link_degradation(addr, now);
                    self.attribute_recovery_backfill(addr, now);
                    self.run_byzantine_rounds(addr, now);
                    // Streaming compaction runs after every hook that reads
                    // the resident window: under a bounded retention policy
                    // the sealed blocks older than the active horizon are
                    // folded into summaries and evicted. Free under the
                    // default keep-all policy.
                    if let Some(site) = self.sites.get_mut(&addr) {
                        site.aggregator.compact(
                            self.config.retention,
                            now,
                            self.config.verification_window,
                        );
                    }
                }
                self.scheduler.schedule(
                    now + self.config.verification_window,
                    WorldEvent::WindowEnd(addr),
                );
            }
            WorldEvent::BrokerPoll => {
                self.armed_broker_polls.remove(&now);
                self.drain_broker(now);
            }
            WorldEvent::BackhaulPoll => {
                self.armed_backhaul_polls.remove(&now);
                self.drain_backhaul(now);
            }
            WorldEvent::PlugIn { device, network } => self.do_plug_in(device, network, now),
            WorldEvent::Unplug(device) => self.do_unplug(device, now),
            WorldEvent::RemoveDevice { device, home } => {
                if let Some(site) = self.sites.get_mut(&home) {
                    let out = site.aggregator.handle_backhaul(
                        home,
                        &Packet::RemoveDevice { device },
                        now,
                    );
                    self.route_aggregator_output(home, out, now);
                }
            }
            WorldEvent::FaultStart(id) => self.fault_start(id, now),
            WorldEvent::FaultEnd(id) => self.fault_end(id, now),
            WorldEvent::ControlCommand(id) => self.control_fire(id, now),
        }
    }

    /// Publishes a scheduled fleet command at its firing time.
    fn control_fire(&mut self, id: usize, now: SimTime) {
        let event = self.controls[id].event;
        let targets: Vec<DeviceId> = match event.target {
            CommandTarget::AllDevices => self.devices.keys().copied().collect(),
            CommandTarget::Device(device) => self
                .devices
                .contains_key(&device)
                .then_some(device)
                .into_iter()
                .collect(),
            CommandTarget::Site(addr) => self
                .sites
                .get(&addr)
                .map(|site| site.members.keys().copied().collect())
                .unwrap_or_default(),
            CommandTarget::Cohort { percent } => self.cohort(percent),
        };
        self.controls[id].record.published_at = Some(now);
        self.controls[id].record.targets = targets.len();
        let frame = CommandFrame {
            seq: id as u32,
            command: event.command,
        };
        let payload = frame.encode();
        for device in &targets {
            let _ = self.broker.publish_with(
                manager_client(),
                &command_topic(*device),
                payload.clone(),
                event.qos,
                event.retain,
                now,
            );
        }
        self.notifications
            .push(WorldNotification::CommandPublished {
                at: now,
                seq: id as u32,
                label: event.command.label(),
                targets: targets.len(),
            });
        self.arm_broker_poll(now);
    }

    /// A command frame reached a device: execute it once (retained
    /// redeliveries and session-resume replays are idempotent) and
    /// acknowledge on the device's status topic.
    fn handle_command_delivery(
        &mut self,
        to: ClientId,
        topic: &str,
        payload: &bytes::Bytes,
        now: SimTime,
    ) {
        let Some(&Endpoint::Device(device_id)) = self.client_endpoints.get(&to) else {
            return;
        };
        let Ok(frame) = CommandFrame::decode(payload) else {
            return;
        };
        let Some(runtime) = self.controls.get_mut(frame.seq as usize) else {
            return;
        };
        runtime.record.delivered += 1;
        runtime.record.command_bytes += (payload.len() + topic.len() + 8) as u64;
        // A crashed firmware is deaf; its broker session is disconnected, so
        // this only guards the crash-at-the-same-instant race. The queued
        // replay (or the retained copy) catches the device after restart.
        if self
            .devices
            .get(&device_id)
            .map_or(true, |d| d.is_crashed())
        {
            return;
        }
        if !runtime.applied_to.insert(device_id) {
            return;
        }
        let applied = self.apply_fleet_command(device_id, frame.command);
        let runtime = &mut self.controls[frame.seq as usize];
        if applied {
            runtime.record.applied += 1;
        } else {
            runtime.record.rejected += 1;
        }
        self.notifications.push(WorldNotification::CommandApplied {
            at: now,
            seq: frame.seq,
            device: device_id,
            applied,
        });
        let ack = CommandAck {
            device: device_id,
            seq: frame.seq,
            applied,
        };
        let client = self.device_clients[&device_id];
        let _ = self.broker.publish(
            client,
            &status_topic(device_id),
            ack.encode(),
            QoS::AtLeastOnce,
            now,
        );
        self.arm_broker_poll(now);
    }

    /// A device's acknowledgment reached the manager's status subscription.
    fn handle_status_delivery(
        &mut self,
        to: ClientId,
        topic: &str,
        payload: &bytes::Bytes,
        now: SimTime,
    ) {
        if to != manager_client() {
            return;
        }
        let Ok(ack) = CommandAck::decode(payload) else {
            return;
        };
        let Some(runtime) = self.controls.get_mut(ack.seq as usize) else {
            return;
        };
        runtime.record.acked += 1;
        runtime.record.ack_bytes += (payload.len() + topic.len() + 8) as u64;
        if runtime.record.first_ack_at.is_none() {
            runtime.record.first_ack_at = Some(now);
        }
        runtime.record.last_ack_at = Some(now);
    }

    /// Executes one fleet command on one device's firmware (or the world
    /// state standing in for it). Returns whether the command was accepted.
    fn apply_fleet_command(&mut self, device_id: DeviceId, command: FleetCommand) -> bool {
        match command {
            FleetCommand::SetMeasureInterval { interval } => {
                let Some(device) = self.devices.get_mut(&device_id) else {
                    return false;
                };
                if !device.set_measure_interval(interval) {
                    return false;
                }
                // The already-armed tick fires at the old cadence once; the
                // reschedule after it picks up the override.
                self.measure_overrides.insert(device_id, interval);
                true
            }
            FleetCommand::SetTariffHint(hint) => {
                if !hint.is_valid() {
                    return false;
                }
                let Some(device) = self.devices.get_mut(&device_id) else {
                    return false;
                };
                device.set_tariff(DeviceTariff {
                    peak_price_per_mwh: hint.peak_price_per_mwh,
                    off_peak_price_per_mwh: hint.off_peak_price_per_mwh,
                    peak_start_s: hint.peak_start_s,
                    peak_end_s: hint.peak_end_s,
                });
                true
            }
            FleetCommand::SetMeterKind { kind } => {
                if !self.devices.contains_key(&device_id) {
                    return false;
                }
                self.set_meter_kind(device_id, kind);
                true
            }
            FleetCommand::StartReporting => {
                let Some(device) = self.devices.get_mut(&device_id) else {
                    return false;
                };
                device.set_reporting(true);
                true
            }
            FleetCommand::StopReporting => {
                let Some(device) = self.devices.get_mut(&device_id) else {
                    return false;
                };
                device.set_reporting(false);
                true
            }
            FleetCommand::CrashRecoveryConfig { persist_store } => {
                let Some(device) = self.devices.get_mut(&device_id) else {
                    return false;
                };
                device.set_persist_store(persist_store);
                true
            }
        }
    }

    /// Emits a [`WorldNotification::HandshakeCompleted`] when the device's
    /// most recent handshake changed across a state transition.
    fn note_handshake(
        &mut self,
        device_id: DeviceId,
        before: Option<HandshakeBreakdown>,
        now: SimTime,
    ) {
        let Some(device) = self.devices.get(&device_id) else {
            return;
        };
        let after = device.last_handshake();
        if after != before {
            if let Some(breakdown) = after {
                let network = device.registration().map(|(addr, _, _)| addr);
                self.notifications
                    .push(WorldNotification::HandshakeCompleted {
                        at: now,
                        device: device_id,
                        network,
                        breakdown,
                    });
            }
        }
    }

    fn handle_measure_tick(&mut self, device_id: DeviceId, now: SimTime) {
        let mut outbound = std::mem::take(&mut self.outbound_scratch);
        outbound.clear();
        let handshake_before = {
            let Some(device) = self.devices.get_mut(&device_id) else {
                self.outbound_scratch = outbound;
                return;
            };
            let before = device.last_handshake();
            device.on_measure_tick_into(now, &self.radio, &mut outbound);
            before
        };
        self.note_handshake(device_id, handshake_before, now);
        for out in outbound.drain(..) {
            self.publish_uplink(device_id, out.to, out.packet, now);
        }
        self.outbound_scratch = outbound;
        // A `SetMeasureInterval` command overrides the world-wide Tmeasure
        // per device; the map is empty in uncommanded runs.
        let interval = self
            .measure_overrides
            .get(&device_id)
            .copied()
            .unwrap_or(self.config.t_measure);
        self.scheduler
            .schedule(now + interval, WorldEvent::MeasureTick(device_id));
        self.arm_broker_poll(now);
    }

    fn handle_upstream_sample(&mut self, addr: AggregatorAddr, now: SimTime) {
        // A dark aggregator's own meter is dark too; keep the timer alive.
        if self.down_sites.contains_key(&addr) {
            self.scheduler.schedule(
                now + self.config.upstream_sample_interval,
                WorldEvent::UpstreamSample(addr),
            );
            return;
        }
        // Ground truth: sum the true currents of devices plugged into this
        // network's grid, evaluate the grid (losses) and let the aggregator's
        // own sensor observe the upstream total. The site's member index
        // makes this one batch over the network's own population; sharded
        // runs fan the per-device draws across worker lanes and splice the
        // results back in member order, so the grid evaluation sees the
        // same load vector either way.
        let mut loads = std::mem::take(&mut self.loads_scratch);
        loads.clear();
        if let Some(site) = self.sites.get(&addr) {
            if self.config.shards > 1 && site.members.len() >= 2 * PARALLEL_MIN_CHUNK {
                let ids: Vec<DeviceId> = site.members.keys().copied().collect();
                let branches: Vec<BranchId> = site.members.values().copied().collect();
                let mut currents: Vec<Option<rtem_sensors::energy::Milliamps>> =
                    vec![None; ids.len()];
                let lanes = {
                    let mut slots = device_slots(&mut self.devices, &ids);
                    fan_out(
                        &mut slots,
                        &mut currents,
                        self.config.shards,
                        |device, current: &mut Option<rtem_sensors::energy::Milliamps>| {
                            *current = Some(device.true_grid_current(now));
                        },
                    )
                };
                if !lanes.is_empty() {
                    if let Some(profiler) = self
                        .telemetry
                        .as_mut()
                        .and_then(|runtime| runtime.profiler.as_mut())
                    {
                        for (lane, nanos) in lanes {
                            profiler.record_lane(lane, nanos);
                        }
                    }
                }
                for (branch, current) in branches.into_iter().zip(currents) {
                    if let Some(current) = current {
                        loads.push((branch, current));
                    }
                }
            } else {
                for (&device_id, &branch) in &site.members {
                    if let Some(device) = self.devices.get_mut(&device_id) {
                        loads.push((branch, device.true_grid_current(now)));
                    }
                }
            }
        }
        if let Some(site) = self.sites.get_mut(&addr) {
            let snapshot = site.grid.evaluate(&loads);
            site.aggregator
                .observe_upstream(now, snapshot.upstream_total);
        }
        self.loads_scratch = loads;
        self.scheduler.schedule(
            now + self.config.upstream_sample_interval,
            WorldEvent::UpstreamSample(addr),
        );
    }

    fn do_plug_in(&mut self, device_id: DeviceId, network: AggregatorAddr, now: SimTime) {
        assert!(self.devices.contains_key(&device_id), "unknown device");
        // Remove from the previous grid, if any.
        if let Some((old_addr, old_branch)) = self.device_sites.remove(&device_id) {
            if let Some(old_site) = self.sites.get_mut(&old_addr) {
                old_site.grid.remove_branch(old_branch);
                old_site.members.remove(&device_id);
            }
        }
        let site = self.sites.get_mut(&network).expect("unknown network");
        let branch = site.grid.add_branch(Branch::default());
        let position = Position::new(site.position.x + 2.0, site.position.y + 1.0);
        site.members.insert(device_id, branch);
        self.device_sites.insert(device_id, (network, branch));
        let device = self.devices.get_mut(&device_id).expect("device exists");
        device.plug_in(now, branch, position);
        self.notifications.push(WorldNotification::PluggedIn {
            at: now,
            device: device_id,
            network,
        });
    }

    fn do_unplug(&mut self, device_id: DeviceId, now: SimTime) {
        if let Some((addr, branch)) = self.device_sites.remove(&device_id) {
            if let Some(site) = self.sites.get_mut(&addr) {
                site.grid.remove_branch(branch);
                site.members.remove(&device_id);
            }
        }
        if let Some(device) = self.devices.get_mut(&device_id) {
            device.unplug(now);
            self.notifications.push(WorldNotification::Unplugged {
                at: now,
                device: device_id,
            });
        }
    }

    fn publish_uplink(
        &mut self,
        device_id: DeviceId,
        to: AggregatorAddr,
        packet: Packet,
        now: SimTime,
    ) {
        let packet = self.lower_to_wire(device_id, packet, now);
        let client = self.device_clients[&device_id];
        let payload = packet.encode();
        let _ = self
            .broker
            .publish(client, &uplink_topic(to), payload, QoS::AtLeastOnce, now);
        self.arm_broker_poll(now);
    }

    /// The meter-codec boundary on the transmit side: consumption reports
    /// from real-protocol devices are re-framed as telegram bytes, and any
    /// active telegram-corruption fault targeting the device mutates the
    /// report here — on the wire for real codecs, in the record values for
    /// `Internal` (whose packed encoding has no checksum to trip, so the
    /// corruption sails through undetected).
    fn lower_to_wire(&mut self, device_id: DeviceId, packet: Packet, _now: SimTime) -> Packet {
        let Packet::ConsumptionReport {
            device,
            master,
            mut records,
        } = packet
        else {
            return packet;
        };
        let kind = self.meter_kind(device_id);
        self.wire.records_sent += records.len() as u64;
        if kind == MeterKind::Internal {
            if let Some((fault, mode)) = self.active_corruption_draw(device_id) {
                corrupt_records(
                    &mut records,
                    mode,
                    self.faults[fault].corruption_rng.as_mut(),
                );
                self.wire.corrupted_injected += 1;
            }
            let packet = Packet::ConsumptionReport {
                device,
                master,
                records,
            };
            self.wire.native_bytes += packet.encoded_len() as u64;
            return packet;
        }
        let telegram = Telegram::new(device, master, records);
        let mut bytes = rtem_codecs::encode(kind, &telegram)
            .expect("every real meter kind encodes every telegram");
        self.wire.native_bytes += Packet::ConsumptionReport {
            device: telegram.device,
            master: telegram.master,
            records: telegram.records,
        }
        .encoded_len() as u64;
        if let Some((fault, mode)) = self.active_corruption_draw(device_id) {
            corrupt_bytes(&mut bytes, mode, self.faults[fault].corruption_rng.as_mut());
            self.wire.corrupted_injected += 1;
        }
        self.wire.telegrams_sent += 1;
        self.wire.telegram_bytes += bytes.len() as u64;
        // Freeze once; the wire log and the packet share the allocation.
        let bytes = bytes::Bytes::from(bytes);
        if let Some(log) = self.telegram_log.as_mut() {
            log.push(TelegramLogEntry {
                at: _now,
                device: device_id,
                kind,
                bytes: bytes.clone(),
            });
            // Under bounded retention the wire log is a tail window too;
            // keep-all (every golden fixture) captures everything.
            if self.config.retention != RetentionPolicy::KeepAll
                && log.len() > TELEGRAM_LOG_BOUNDED_CAP
            {
                log.drain(..log.len() - TELEGRAM_LOG_BOUNDED_CAP);
            }
        }
        Packet::Telegram {
            device: device_id,
            codec: kind.code(),
            payload: bytes,
        }
    }

    /// Rolls the per-telegram corruption dice for every *active* corruption
    /// fault targeting `device`: returns the first fault whose draw comes up
    /// corrupt, together with its mangling mode.
    fn active_corruption_draw(&mut self, device: DeviceId) -> Option<(usize, CorruptionMode)> {
        for (id, fault) in self.faults.iter_mut().enumerate() {
            let FaultEvent::TelegramCorruption {
                device: target,
                mode,
                per_mille,
                ..
            } = fault.event
            else {
                continue;
            };
            if target != device
                || fault.record.injected_at.is_none()
                || fault.record.cleared_at.is_some()
            {
                continue;
            }
            let Some(rng) = fault.corruption_rng.as_mut() else {
                continue;
            };
            if rng.next_below(1000) < u64::from(per_mille) {
                return Some((id, mode));
            }
        }
        None
    }

    /// The meter-codec boundary on the receive side: runs the codec named by
    /// the envelope over the telegram bytes and reconstructs the native
    /// consumption report. Returns `None` when the telegram does not parse —
    /// the rejection is counted, and if an active corruption fault targets
    /// the device the rejection is credited to it as its detection signal.
    fn parse_telegram(
        &mut self,
        device: DeviceId,
        codec: u8,
        payload: &[u8],
        now: SimTime,
    ) -> Option<Packet> {
        let parsed = match MeterKind::from_code(codec).filter(|k| *k != MeterKind::Internal) {
            Some(kind) => rtem_codecs::parse(kind, payload),
            None => Err(CodecError::Semantic("unknown codec discriminant")),
        };
        match parsed {
            Ok(telegram) if telegram.device == device => {
                self.wire.telegrams_parsed += 1;
                Some(Packet::ConsumptionReport {
                    device: telegram.device,
                    master: telegram.master,
                    records: telegram.records,
                })
            }
            Ok(_) => {
                // Parsed clean but for the wrong device: a semantic
                // cross-frame identity failure.
                self.note_parse_failure(device, codec, rtem_codecs::CodecErrorKind::Semantic, now);
                None
            }
            Err(error) => {
                self.note_parse_failure(device, codec, error.kind(), now);
                None
            }
        }
    }

    fn note_parse_failure(
        &mut self,
        device: DeviceId,
        codec: u8,
        kind: rtem_codecs::CodecErrorKind,
        now: SimTime,
    ) {
        self.wire.parse_failures += 1;
        self.codec_failures.record(codec, kind);
        let undetected: Vec<usize> = self
            .faults
            .iter()
            .enumerate()
            .filter(|(_, fault)| {
                matches!(
                    fault.event,
                    FaultEvent::TelegramCorruption { device: target, .. } if target == device
                ) && fault.record.injected_at.is_some()
                    && fault.record.detected_at.is_none()
            })
            .map(|(id, _)| id)
            .collect();
        for id in undetected {
            self.mark_detected(id, now, DetectionSignal::TelegramRejected { codec });
        }
    }

    fn publish_downlink(&mut self, from: AggregatorAddr, packet: Packet, now: SimTime) {
        let Some(device) = packet.device() else {
            return;
        };
        let site_client = self.sites[&from].client;
        let payload = packet.encode();
        let _ = self.broker.publish(
            site_client,
            &downlink_topic(device),
            payload,
            QoS::AtLeastOnce,
            now,
        );
        self.arm_broker_poll(now);
    }

    fn arm_broker_poll(&mut self, now: SimTime) {
        if let Some(at) = self.broker.next_delivery_at() {
            let at = if at <= now { now } else { at };
            if self.armed_broker_polls.insert(at) {
                self.scheduler.schedule(at, WorldEvent::BrokerPoll);
            }
        }
    }

    fn arm_backhaul_poll(&mut self, now: SimTime) {
        if let Some(at) = self.backhaul.next_delivery_at() {
            let at = if at <= now { now } else { at };
            if self.armed_backhaul_polls.insert(at) {
                self.scheduler.schedule(at, WorldEvent::BackhaulPoll);
            }
        }
    }

    fn drain_broker(&mut self, now: SimTime) {
        let deliveries = self.broker.drain_due(now);
        for delivery in deliveries {
            // Control-plane traffic carries its own frames, not `Packet`s;
            // route it by topic before attempting a packet decode. Metering
            // topics end in /uplink or /downlink, so the suffix checks never
            // misroute data-plane traffic (and no such delivery exists at
            // all unless a control plan brought the subscriptions up).
            if delivery.topic.ends_with("/command") {
                self.handle_command_delivery(delivery.to, &delivery.topic, &delivery.payload, now);
                continue;
            }
            if delivery.topic.ends_with("/status") {
                self.handle_status_delivery(delivery.to, &delivery.topic, &delivery.payload, now);
                continue;
            }
            let Ok(packet) = Packet::decode(&delivery.payload) else {
                continue;
            };
            match self.client_endpoints.get(&delivery.to) {
                // Uplink to an aggregator.
                Some(&Endpoint::Site(addr)) => {
                    // The meter-codec boundary on the receive side: telegram
                    // envelopes are parsed back into consumption reports
                    // before the aggregator sees them. A telegram that fails
                    // its codec is dropped here — no acknowledgment goes
                    // back, so the device retries from local storage.
                    let packet = match packet {
                        Packet::Telegram {
                            device,
                            codec,
                            payload,
                        } => {
                            let Some(report) = self.parse_telegram(device, codec, &payload, now)
                            else {
                                continue;
                            };
                            report
                        }
                        other => other,
                    };
                    let out = {
                        let site = self.sites.get_mut(&addr).expect("site exists");
                        site.aggregator.handle_device_packet(&packet, now)
                    };
                    self.route_aggregator_output(addr, out, now);
                }
                // Downlink to a device.
                Some(&Endpoint::Device(device_id)) => {
                    let mut outbound = std::mem::take(&mut self.outbound_scratch);
                    outbound.clear();
                    let handshake_before = {
                        let device = self.devices.get_mut(&device_id).expect("device exists");
                        let before = device.last_handshake();
                        device.on_packet_into(&packet, now, &mut outbound);
                        before
                    };
                    self.note_handshake(device_id, handshake_before, now);
                    for out in outbound.drain(..) {
                        self.publish_uplink(device_id, out.to, out.packet, now);
                    }
                    self.outbound_scratch = outbound;
                }
                None => {}
            }
        }
        self.arm_broker_poll(now);
    }

    fn drain_backhaul(&mut self, now: SimTime) {
        let deliveries = self.backhaul.drain_due(now);
        for delivery in deliveries {
            if let Some(&fault_id) = self.down_sites.get(&delivery.to) {
                self.deliver_to_down_site(fault_id, delivery, now);
                continue;
            }
            let out = {
                let Some(site) = self.sites.get_mut(&delivery.to) else {
                    continue;
                };
                site.aggregator
                    .handle_backhaul(delivery.from, &delivery.packet, now)
            };
            self.route_aggregator_output(delivery.to, out, now);
        }
        self.arm_backhaul_poll(now);
    }

    /// Handles backhaul traffic addressed to a dark aggregator: membership
    /// verification for devices adopted by a failover network is answered by
    /// the backup's membership replica; everything else queues until
    /// recovery (the mesh transport is reliable, the endpoint is not).
    fn deliver_to_down_site(&mut self, fault_id: usize, delivery: BackhaulDelivery, now: SimTime) {
        if let Packet::MembershipVerifyRequest {
            device, requester, ..
        } = delivery.packet
        {
            if self.faults[fault_id].failover_moved.contains(&device) {
                let _ = self.backhaul.send(
                    delivery.to,
                    requester,
                    Packet::MembershipVerifyResponse {
                        device,
                        accepted: true,
                    },
                    now,
                );
                return;
            }
        }
        self.faults[fault_id]
            .queued_backhaul
            .push((delivery.from, delivery.packet));
    }

    fn route_aggregator_output(
        &mut self,
        from: AggregatorAddr,
        out: rtem_aggregator::aggregator::AggregatorOutput,
        now: SimTime,
    ) {
        for packet in out.to_devices {
            self.publish_downlink(from, packet, now);
        }
        for (to, packet) in out.to_aggregators {
            let _ = self.backhaul.send(from, to, packet, now);
        }
        self.arm_backhaul_poll(now);
        self.arm_broker_poll(now);
    }

    fn note_fault_injected(&mut self, id: usize, now: SimTime) {
        self.faults[id].record.injected_at = Some(now);
        self.notifications.push(WorldNotification::FaultInjected {
            at: now,
            id,
            family: self.faults[id].record.family,
        });
    }

    fn mark_detected(&mut self, id: usize, now: SimTime, signal: DetectionSignal) {
        let record = &mut self.faults[id].record;
        record.detected_at = Some(now);
        record.signal = Some(signal);
        self.notifications.push(WorldNotification::FaultDetected {
            at: now,
            id,
            family: record.family,
            signal,
        });
    }

    /// Applies a scheduled fault at its injection time.
    fn fault_start(&mut self, id: usize, now: SimTime) {
        match self.faults[id].event {
            FaultEvent::SensorFault { device, kind, .. } => {
                let Some(d) = self.devices.get_mut(&device) else {
                    return;
                };
                d.inject_sensor_fault(SensorFault::new(kind, now));
                self.note_fault_injected(id, now);
            }
            FaultEvent::MeterTamper { network, .. } => {
                if !self.try_apply_tamper(id, network, now) {
                    // Nothing committed yet: forge the first block that
                    // seals with records (applied at the WindowEnd hook).
                    self.faults[id].pending_tamper = true;
                }
            }
            FaultEvent::LinkDegrade {
                target, degraded, ..
            } => {
                match target {
                    LinkTarget::Wifi { network } => {
                        // Both halves of the access medium degrade: the
                        // device clients (downlink deliveries to devices)
                        // and the aggregator clients (uplink deliveries of
                        // device reports) — the broker charges each
                        // delivery against its recipient's link. A scoped
                        // burst reads the target site's member index; only
                        // a medium-wide burst walks the whole population.
                        let mut clients: Vec<ClientId> = match network {
                            Some(n) => self
                                .sites
                                .get(&n)
                                .into_iter()
                                .flat_map(|site| site.members.keys())
                                .map(|dev| self.device_clients[dev])
                                .collect(),
                            None => self.device_clients.values().copied().collect(),
                        };
                        clients.extend(
                            self.sites
                                .iter()
                                .filter(|(addr, _)| network.map_or(true, |n| **addr == n))
                                .map(|(_, site)| site.client),
                        );
                        let mut watch = LinkWatch {
                            clients: Vec::new(),
                            backhaul: false,
                            baseline: LinkTotals::default(),
                            ambient_loss: 0.0,
                        };
                        for client in clients {
                            if let Some(old) = self.broker.link_config(client) {
                                self.faults[id].saved_wifi.push((client, old));
                                self.broker.reconfigure_link(client, degraded);
                                watch.ambient_loss = watch.ambient_loss.max(old.loss_probability);
                                if let Some(totals) = self.broker.client_link_totals(client) {
                                    watch.baseline += totals;
                                    watch.clients.push(client);
                                }
                            }
                        }
                        self.faults[id].link_watch = Some(watch);
                    }
                    LinkTarget::Backhaul => {
                        let mut ambient_loss: f64 = 0.0;
                        for (a, b) in self.backhaul.link_pairs() {
                            if let Some(old) = self.backhaul.link_config(a, b) {
                                self.faults[id].saved_backhaul.push((a, b, old));
                                self.backhaul.reconfigure(a, b, degraded);
                                ambient_loss = ambient_loss.max(old.loss_probability);
                            }
                        }
                        self.faults[id].link_watch = Some(LinkWatch {
                            clients: Vec::new(),
                            backhaul: true,
                            baseline: self.backhaul.link_totals(),
                            ambient_loss,
                        });
                    }
                }
                self.note_fault_injected(id, now);
            }
            FaultEvent::DeviceCrash { device, .. } => {
                let Some(d) = self.devices.get_mut(&device) else {
                    return;
                };
                d.crash(now);
                if let Some(&client) = self.device_clients.get(&device) {
                    self.broker.disconnect(client);
                }
                self.note_fault_injected(id, now);
            }
            FaultEvent::AggregatorOutage {
                network, failover, ..
            } => {
                let Some(site) = self.sites.get(&network) else {
                    return;
                };
                // The aggregator's MQTT session drops; device publishes find
                // no subscriber and the devices fall back to local storage.
                self.broker.disconnect(site.client);
                self.down_sites.insert(network, id);
                if let Some(backup) = failover {
                    if self.sites.contains_key(&backup) {
                        let moved: Vec<DeviceId> =
                            self.sites[&network].members.keys().copied().collect();
                        for device in &moved {
                            self.do_plug_in(*device, backup, now);
                        }
                        self.faults[id].failover_moved = moved;
                    }
                }
                self.note_fault_injected(id, now);
            }
            FaultEvent::ByzantineVoters {
                network, voters, ..
            } => {
                // The validator set is the network's current population; the
                // first `voters` of it (id order) collude.
                let validators: Vec<DeviceId> = self
                    .sites
                    .get(&network)
                    .map(|site| site.members.keys().copied().collect())
                    .unwrap_or_default();
                if validators.len() >= 2 {
                    let byzantine = (voters as usize).min(validators.len());
                    self.faults[id].consensus = Some((
                        QuorumConsensus::majority(validators.iter().copied()),
                        validators,
                        byzantine,
                    ));
                }
                self.note_fault_injected(id, now);
            }
            FaultEvent::TelegramCorruption { device, .. } => {
                if !self.devices.contains_key(&device) {
                    return;
                }
                // The fault's draws come from a derived stream so arming it
                // never perturbs the world's main sequence.
                self.faults[id].corruption_rng = Some(self.rng.derive(0xC0DE_C000 + id as u64));
                self.note_fault_injected(id, now);
            }
        }
    }

    /// Clears a transient fault at its scheduled clear time.
    fn fault_end(&mut self, id: usize, now: SimTime) {
        if self.faults[id].record.injected_at.is_none() {
            return;
        }
        match self.faults[id].event {
            FaultEvent::SensorFault { device, .. } => {
                if let Some(d) = self.devices.get_mut(&device) {
                    d.clear_sensor_fault();
                }
            }
            FaultEvent::LinkDegrade { .. } => {
                let saved_wifi = std::mem::take(&mut self.faults[id].saved_wifi);
                for (client, config) in saved_wifi {
                    self.broker.reconfigure_link(client, config);
                }
                let saved_backhaul = std::mem::take(&mut self.faults[id].saved_backhaul);
                for (a, b, config) in saved_backhaul {
                    self.backhaul.reconfigure(a, b, config);
                }
            }
            FaultEvent::DeviceCrash { device, .. } => {
                if let Some(d) = self.devices.get_mut(&device) {
                    d.restart(now);
                }
                if let Some(&client) = self.device_clients.get(&device) {
                    // Resume the MQTT session in place: a link burst active
                    // across the reboot keeps degrading this client, and
                    // its offered/lost history survives. The broker replays
                    // QoS >= 1 messages queued during the crash plus any
                    // retained config, so the rebooted device catches up.
                    self.broker.reconnect(client, now);
                    self.arm_broker_poll(now);
                }
            }
            FaultEvent::AggregatorOutage {
                network, failover, ..
            } => {
                self.down_sites.remove(&network);
                if let Some(site) = self.sites.get(&network) {
                    // The MQTT session resumes; the link (and whatever
                    // quality a concurrent burst set on it) is untouched.
                    // Uplinks queued for the dark site's persistent session
                    // replay now instead of being silently lost.
                    self.broker.reconnect(site.client, now);
                    self.arm_broker_poll(now);
                }
                // Replay the backhaul traffic that queued during the outage.
                let queued = std::mem::take(&mut self.faults[id].queued_backhaul);
                for (from, packet) in queued {
                    let out = {
                        let Some(site) = self.sites.get_mut(&network) else {
                            continue;
                        };
                        site.aggregator.handle_backhaul(from, &packet, now)
                    };
                    self.route_aggregator_output(network, out, now);
                }
                // Send the adopted devices home — but only the ones still
                // sitting at the failover network. A device the scenario
                // unplugged or moved elsewhere during the outage keeps the
                // topology the script gave it.
                let moved = std::mem::take(&mut self.faults[id].failover_moved);
                for device in moved {
                    let still_adopted = failover.is_some()
                        && self.device_sites.get(&device).map(|(a, _)| *a) == failover;
                    if still_adopted {
                        self.do_plug_in(device, network, now);
                    }
                }
            }
            FaultEvent::ByzantineVoters { .. } => {
                self.faults[id].consensus = None;
            }
            FaultEvent::MeterTamper { .. } => {}
            FaultEvent::TelegramCorruption { .. } => {
                self.faults[id].corruption_rng = None;
            }
        }
        self.faults[id].record.cleared_at = Some(now);
        self.notifications.push(WorldNotification::FaultCleared {
            at: now,
            id,
            family: self.faults[id].record.family,
        });
    }

    /// Forges a committed record in `network`'s ledger: the latest sealed
    /// block with records gets its first record rewritten to claim half the
    /// consumption. Returns `false` when nothing is committed yet.
    fn try_apply_tamper(&mut self, id: usize, network: AggregatorAddr, now: SimTime) -> bool {
        let Some(site) = self.sites.get_mut(&network) else {
            return false;
        };
        let chain = site.aggregator.ledger().chain();
        let victim = (1..chain.len() as u64)
            .rev()
            .find(|&i| chain.block(i).is_some_and(|b| b.record_count() > 0));
        let Some(victim) = victim else {
            return false;
        };
        let chain = site
            .aggregator
            .ledger_mut_for_experiment()
            .chain_mut_for_experiment();
        let block = chain
            .block_mut_for_experiment(victim)
            .expect("victim exists");
        let forged = match LedgerEntry::from_bytes(&block.records()[0]) {
            Some(mut entry) => {
                entry.charge_uas /= 2;
                entry.to_bytes()
            }
            None => b"forged".to_vec(),
        };
        block.tamper_record_for_experiment(0, forged);
        self.faults[id].record.tampered_block = Some(victim);
        self.faults[id].pending_tamper = false;
        self.note_fault_injected(id, now);
        true
    }

    /// Applies tamper faults that were waiting for a sealed block with
    /// records on `addr`'s chain.
    fn apply_pending_tampers(&mut self, addr: AggregatorAddr, now: SimTime) {
        for id in 0..self.faults.len() {
            let fault = &self.faults[id];
            if !fault.pending_tamper || fault.record.scheduled_at > now {
                continue;
            }
            if fault.event.network() == Some(addr) {
                let _ = self.try_apply_tamper(id, addr, now);
            }
        }
    }

    /// Audits `addr`'s chain for the tamper faults applied before this
    /// window and attributes audit findings to them. The (linear) audit only
    /// runs while an applied-but-undetected tamper fault exists, so
    /// fault-free runs pay nothing.
    fn audit_tamper_faults(&mut self, addr: AggregatorAddr, now: SimTime) {
        let awaiting: Vec<usize> = self
            .faults
            .iter()
            .filter(|f| {
                f.record.family == FaultFamily::Tamper
                    && f.event.network() == Some(addr)
                    && f.record.detected_at.is_none()
                    && f.record.injected_at.is_some_and(|t| t < now)
            })
            .map(|f| f.record.id)
            .collect();
        if awaiting.is_empty() {
            return;
        }
        let Some(site) = self.sites.get(&addr) else {
            return;
        };
        let report = rtem_chain::audit::audit_chain(site.aggregator.ledger().chain(), None);
        for id in awaiting {
            let Some(block) = self.faults[id].record.tampered_block else {
                continue;
            };
            if report.findings.iter().any(|f| f.block_index == block) {
                self.mark_detected(id, now, DetectionSignal::ChainAudit { block_index: block });
            }
        }
    }

    /// Attributes an anomalous verification window on `addr` to the active
    /// (or just-cleared) faults that plausibly caused it: sensor faults and
    /// crashes of devices in the network, link bursts covering it, and the
    /// network's own outage. A cleared fault stays attributable for two
    /// windows so the first post-clear verdict still counts.
    ///
    /// Attribution is specificity-aware: faults scoped to this network or
    /// to one of its devices claim the anomaly first; a medium-wide link
    /// burst (all-Wi-Fi or backhaul) is only credited when no scoped fault
    /// explains the verdict, so an absorbed burst elsewhere in the plan is
    /// not marked "detected" by someone else's anomaly.
    fn attribute_anomaly_to_faults(&mut self, addr: AggregatorAddr, now: SimTime) {
        let grace = self.config.verification_window * 2;
        let mut scoped = Vec::new();
        let mut medium_wide = Vec::new();
        for fault in &self.faults {
            let record = &fault.record;
            if record.detected_at.is_some() || !record.injected_at.is_some_and(|t| t < now) {
                continue;
            }
            if record.cleared_at.is_some_and(|c| now > c + grace) {
                continue;
            }
            match fault.event {
                FaultEvent::SensorFault { device, .. } | FaultEvent::DeviceCrash { device, .. }
                    if self.device_sites.get(&device).map(|(a, _)| *a) == Some(addr) =>
                {
                    scoped.push(record.id);
                }
                FaultEvent::LinkDegrade {
                    target: LinkTarget::Wifi { network: Some(n) },
                    ..
                } if n == addr => scoped.push(record.id),
                FaultEvent::LinkDegrade {
                    target: LinkTarget::Wifi { network: None },
                    ..
                }
                | FaultEvent::LinkDegrade {
                    target: LinkTarget::Backhaul,
                    ..
                } => medium_wide.push(record.id),
                FaultEvent::AggregatorOutage { network, .. } if network == addr => {
                    scoped.push(record.id)
                }
                _ => {}
            }
        }
        let detections = if scoped.is_empty() {
            medium_wide
        } else {
            scoped
        };
        for id in detections {
            self.mark_detected(id, now, DetectionSignal::AnomalousWindow);
        }
    }

    /// Checks the traffic baselines of active (or just-cleared) link bursts
    /// against the watched links' current counters at window seal. A burst
    /// whose cumulative loss since injection significantly exceeds the
    /// medium's ambient expectation is marked detected with
    /// [`DetectionSignal::LinkDegraded`] — this is the per-link
    /// delivery-gap telemetry a real deployment gets from its broker, and it
    /// catches the loss bursts whose drops QoS-1 retries absorb without
    /// ever widening a verification window's residual.
    ///
    /// Scoped Wi-Fi bursts are only checked at the targeted network's own
    /// seal; medium-wide bursts (all-Wi-Fi, backhaul) can be flagged by any
    /// aggregator, since every site sees the shared medium's counters.
    fn detect_link_degradation(&mut self, addr: AggregatorAddr, now: SimTime) {
        let grace = self.config.verification_window * 2;
        let mut detections = Vec::new();
        for fault in &self.faults {
            let FaultEvent::LinkDegrade { target, .. } = fault.event else {
                continue;
            };
            let record = &fault.record;
            if record.detected_at.is_some() || !record.injected_at.is_some_and(|t| t < now) {
                continue;
            }
            if record.cleared_at.is_some_and(|c| now > c + grace) {
                continue;
            }
            if let LinkTarget::Wifi {
                network: Some(n), ..
            } = target
            {
                if n != addr {
                    continue;
                }
            }
            let Some(watch) = fault.link_watch.as_ref() else {
                continue;
            };
            let mut current = LinkTotals::default();
            if watch.backhaul {
                current = self.backhaul.link_totals();
            } else {
                for client in &watch.clients {
                    if let Some(totals) = self.broker.client_link_totals(*client) {
                        current += totals;
                    }
                }
            }
            let offered = current.offered.saturating_sub(watch.baseline.offered);
            let lost = current.lost.saturating_sub(watch.baseline.lost);
            // Alarm only on strong evidence: enough traffic to judge, and a
            // loss count several times the ambient expectation plus a
            // constant floor so quiet links never alarm on a handful of
            // unlucky drops.
            let expected_ambient = watch.ambient_loss * offered as f64;
            if offered >= 20 && lost >= 8 && lost as f64 > expected_ambient * 3.0 + 5.0 {
                detections.push((record.id, lost, offered));
            }
        }
        for (id, lost, offered) in detections {
            self.mark_detected(id, now, DetectionSignal::LinkDegraded { lost, offered });
        }
    }

    /// After an outage recovers, the first block sealed with backfilled
    /// records is the evidence that the data buffered through the outage
    /// survived — attribute it to the outage fault.
    fn attribute_recovery_backfill(&mut self, addr: AggregatorAddr, now: SimTime) {
        let awaiting: Vec<usize> = self
            .faults
            .iter()
            .filter(|f| {
                matches!(f.event, FaultEvent::AggregatorOutage { network, .. } if network == addr)
                    && f.record.detected_at.is_none()
                    && f.record.cleared_at.is_some()
            })
            .map(|f| f.record.id)
            .collect();
        if awaiting.is_empty() {
            return;
        }
        let Some(site) = self.sites.get(&addr) else {
            return;
        };
        let head = site.aggregator.ledger().chain().head();
        let backfilled = head
            .records()
            .iter()
            .filter_map(|r| LedgerEntry::from_bytes(r))
            .filter(|e| e.backfilled)
            .count();
        if backfilled == 0 {
            return;
        }
        for id in awaiting {
            self.mark_detected(
                id,
                now,
                DetectionSignal::RecoveryBackfill {
                    records: backfilled,
                },
            );
        }
    }

    /// Runs one shadow consensus round per active byzantine fault on `addr`:
    /// a byzantine proposer broadcasts a forged block, its co-conspirators
    /// approve through [`QuorumConsensus::vote`] and the honest validators
    /// reject. A rejected round is one detection signal; a *committed*
    /// forgery — the byzantine share reached quorum — is handed to the peer
    /// aggregators for a ledger cross-check at the same window seal, so a
    /// colluding majority no longer goes unnoticed whenever an honest site
    /// exists to disagree (a single-network world has no peer to ask).
    fn run_byzantine_rounds(&mut self, addr: AggregatorAddr, now: SimTime) {
        let mut detections = Vec::new();
        let mut committed_forgeries = Vec::new();
        for (fault_idx, fault) in self.faults.iter_mut().enumerate() {
            let FaultEvent::ByzantineVoters { network, .. } = fault.event else {
                continue;
            };
            if network != addr
                || fault.record.detected_at.is_some()
                || fault.record.cleared_at.is_some()
            {
                continue;
            }
            let Some((consensus, validators, byzantine)) = fault.consensus.as_mut() else {
                continue;
            };
            let records = vec![b"forged-consensus-record".to_vec()];
            if consensus
                .propose(validators[0], now.as_micros(), records)
                .is_err()
            {
                continue;
            }
            let mut outcome = RoundOutcome::Pending;
            for (i, voter) in validators.iter().enumerate().skip(1) {
                let vote = if i < *byzantine {
                    Vote::Approve
                } else {
                    Vote::Reject
                };
                match consensus.vote(*voter, vote) {
                    Ok(o) => {
                        outcome = o;
                        if outcome != RoundOutcome::Pending {
                            break;
                        }
                    }
                    Err(_) => break,
                }
            }
            match outcome {
                RoundOutcome::Rejected { rejections } => {
                    detections.push((
                        fault.record.id,
                        DetectionSignal::ConsensusRejected { rejections },
                    ));
                }
                RoundOutcome::Committed { .. } => {
                    committed_forgeries.push((fault.record.id, fault_idx));
                }
                _ => {}
            }
        }
        // Cross-check committed forgeries against every honest peer's
        // ledger: the quorum controls its own network, but a sealed block
        // whose records no peer can vouch for is flagged from outside. The
        // forged records are read back from the consensus chain head (the
        // block just committed), so the round never copies them.
        for (id, fault_idx) in committed_forgeries {
            let Some((consensus, _, _)) = self.faults[fault_idx].consensus.as_ref() else {
                continue;
            };
            let records = consensus.chain().head().records();
            let peers = self
                .sites
                .iter()
                .filter(|(peer, site)| {
                    **peer != addr
                        && !self.down_sites.contains_key(peer)
                        && site.aggregator.cross_check_records(records) > 0
                })
                .count();
            if peers > 0 {
                detections.push((id, DetectionSignal::LedgerCrossCheck { peers }));
            }
        }
        for (id, signal) in detections {
            self.mark_detected(id, now, signal);
        }
    }

    /// Shared access to an aggregator.
    pub fn aggregator(&self, addr: AggregatorAddr) -> Option<&Aggregator> {
        self.sites.get(&addr).map(|s| &s.aggregator)
    }

    /// Mutable access to an aggregator (used by the tamper experiments).
    pub fn aggregator_mut(&mut self, addr: AggregatorAddr) -> Option<&mut Aggregator> {
        self.sites.get_mut(&addr).map(|s| &mut s.aggregator)
    }

    /// Shared access to a device.
    pub fn device(&self, id: DeviceId) -> Option<&MeteringDevice> {
        self.devices.get(&id)
    }

    /// Network a device is currently plugged into, if any.
    pub fn device_network(&self, id: DeviceId) -> Option<AggregatorAddr> {
        self.device_sites.get(&id).map(|(addr, _)| *addr)
    }

    /// All aggregator addresses in the world.
    ///
    /// Allocates; callers on a per-step path should prefer
    /// [`networks`](Self::networks).
    pub fn network_addresses(&self) -> Vec<AggregatorAddr> {
        self.sites.keys().copied().collect()
    }

    /// All device ids in the world.
    ///
    /// Allocates; callers on a per-step path should prefer
    /// [`devices`](Self::devices).
    pub fn device_ids(&self) -> Vec<DeviceId> {
        self.devices.keys().copied().collect()
    }

    /// Iterates the aggregator addresses in ascending order, without
    /// cloning the index ([`network_addresses`](Self::network_addresses)
    /// does).
    pub fn networks(&self) -> impl Iterator<Item = AggregatorAddr> + '_ {
        self.sites.keys().copied()
    }

    /// Iterates `(id, device)` pairs in ascending id order, without cloning
    /// the index ([`device_ids`](Self::device_ids) does).
    pub fn devices(&self) -> impl Iterator<Item = (DeviceId, &MeteringDevice)> + '_ {
        self.devices.iter().map(|(&id, device)| (id, device))
    }

    /// Number of devices in the world.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Collects the summary metrics of the run so far.
    pub fn metrics(&self) -> WorldMetrics {
        WorldMetrics::collect(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtem_device::device::MeteringDevice;
    use rtem_sensors::profile::ConstantProfile;

    fn two_network_world() -> World {
        let mut world = World::new(WorldConfig {
            verification_window: SimDuration::from_secs(5),
            ..WorldConfig::default()
        });
        world.add_network(AggregatorAddr(1), Position::new(0.0, 0.0));
        world.add_network(AggregatorAddr(2), Position::new(200.0, 0.0));
        for i in 0..2u64 {
            let device = MeteringDevice::testbed(
                DeviceId(i + 1),
                ConstantProfile::new(150.0),
                SimRng::seed_from_u64(100 + i),
            );
            world.add_device(device);
            world.plug_in_now(DeviceId(i + 1), AggregatorAddr(1));
        }
        world
    }

    fn single_network_world(devices: u64) -> World {
        let mut world = World::new(WorldConfig {
            verification_window: SimDuration::from_secs(5),
            ..WorldConfig::default()
        });
        world.add_network(AggregatorAddr(1), Position::new(0.0, 0.0));
        for i in 0..devices {
            let device = MeteringDevice::testbed(
                DeviceId(i + 1),
                ConstantProfile::new(150.0),
                SimRng::seed_from_u64(100 + i),
            );
            world.add_device(device);
            world.plug_in_now(DeviceId(i + 1), AggregatorAddr(1));
        }
        world
    }

    #[test]
    fn devices_register_and_report_through_the_broker() {
        let mut world = two_network_world();
        // Handshake (~6 s) plus some reporting time.
        world.run_until(SimTime::from_secs(30));
        let agg = world.aggregator(AggregatorAddr(1)).unwrap();
        assert_eq!(agg.registry().len(), 2, "both devices registered");
        assert!(agg.reports_accepted() > 10, "reports flowed");
        assert!(agg.ledger().chain().len() > 2, "blocks were sealed");
        for id in [1u64, 2] {
            assert!(world.device(DeviceId(id)).unwrap().is_registered());
            assert!(agg.ledger().account(id).unwrap().entries > 0);
        }
    }

    #[test]
    fn aggregator_measurement_exceeds_reported_sum() {
        let mut world = two_network_world();
        world.run_until(SimTime::from_secs(40));
        let agg = world.aggregator(AggregatorAddr(1)).unwrap();
        let measured = agg.network_series().stats().mean;
        // Two devices at 150 mA: upstream must be above 300 mA (losses) but
        // not wildly so.
        assert!(measured > 300.0, "measured mean {measured}");
        assert!(measured < 330.0, "measured mean {measured}");
    }

    #[test]
    fn mobility_nack_then_temporary_membership() {
        let mut world = two_network_world();
        // Let device 1 settle in network 1, then move it to network 2.
        world.schedule_unplug(SimTime::from_secs(30), DeviceId(1));
        world.schedule_plug_in(SimTime::from_secs(50), DeviceId(1), AggregatorAddr(2));
        world.run_until(SimTime::from_secs(90));

        let device = world.device(DeviceId(1)).unwrap();
        assert!(device.is_registered());
        assert_eq!(device.master(), Some(AggregatorAddr(1)));
        assert_eq!(world.device_network(DeviceId(1)), Some(AggregatorAddr(2)));
        // The foreign aggregator holds a temporary membership...
        let foreign = world.aggregator(AggregatorAddr(2)).unwrap();
        assert!(foreign.registry().is_member(DeviceId(1)));
        // ...and the home aggregator received forwarded (roaming) consumption.
        let home = world.aggregator(AggregatorAddr(1)).unwrap();
        let bill = home.billing().bill(DeviceId(1)).unwrap();
        assert!(
            bill.roaming_charge_uas > 0,
            "roaming consumption billed at home"
        );
    }

    #[test]
    fn removed_device_cannot_rejoin() {
        let mut world = two_network_world();
        world.run_until(SimTime::from_secs(20));
        world.schedule_remove_device(SimTime::from_secs(21), DeviceId(2), AggregatorAddr(1));
        world.schedule_unplug(SimTime::from_secs(22), DeviceId(2));
        world.schedule_plug_in(SimTime::from_secs(25), DeviceId(2), AggregatorAddr(1));
        world.run_until(SimTime::from_secs(60));
        let agg = world.aggregator(AggregatorAddr(1)).unwrap();
        assert!(!agg.registry().is_member(DeviceId(2)));
        assert!(!world.device(DeviceId(2)).unwrap().is_registered());
    }

    #[test]
    fn notifications_cover_every_hook_point() {
        let mut world = two_network_world();
        world.schedule_unplug(SimTime::from_secs(30), DeviceId(1));
        world.schedule_plug_in(SimTime::from_secs(50), DeviceId(1), AggregatorAddr(2));
        world.run_until(SimTime::from_secs(90));
        let notifications = world.take_notifications();
        let count =
            |f: fn(&WorldNotification) -> bool| notifications.iter().filter(|n| f(n)).count();
        assert!(
            count(|n| matches!(n, WorldNotification::BlockSealed { .. })) > 2,
            "blocks sealed"
        );
        // Two initial registrations plus the temporary one after the move.
        assert!(
            count(|n| matches!(n, WorldNotification::HandshakeCompleted { .. })) >= 3,
            "handshakes observed"
        );
        assert_eq!(
            count(|n| matches!(n, WorldNotification::PluggedIn { .. })),
            3,
            "two initial plug-ins plus the scripted one"
        );
        assert_eq!(
            count(|n| matches!(n, WorldNotification::Unplugged { .. })),
            1
        );
        // Times are monotone (dispatch order) and the buffer is drained.
        assert!(notifications.windows(2).all(|w| w[0].at() <= w[1].at()));
        assert!(world.take_notifications().is_empty());
    }

    #[test]
    fn sliced_run_until_matches_one_shot() {
        let mut a = two_network_world();
        a.run_until(SimTime::from_secs(40));
        let mut b = two_network_world();
        let mut t = SimTime::ZERO;
        while t < SimTime::from_secs(40) {
            t += SimDuration::from_millis(3_700);
            b.run_until(t.min(SimTime::from_secs(40)));
        }
        assert_eq!(
            a.metrics(),
            b.metrics(),
            "stepping must not perturb the run"
        );
        assert_eq!(a.take_notifications(), b.take_notifications());
    }

    #[test]
    fn fleet_command_reaches_every_device_and_is_acked() {
        use rtem_sim::time::SimDuration;
        let mut world = two_network_world();
        let seq = world.schedule_control(ControlEvent {
            at: SimTime::from_secs(30),
            target: CommandTarget::AllDevices,
            command: FleetCommand::SetMeasureInterval {
                interval: SimDuration::from_millis(500),
            },
            qos: QoS::AtLeastOnce,
            retain: false,
        });
        world.run_until(SimTime::from_secs(60));
        let record = world.command_records()[seq];
        assert_eq!(record.published_at, Some(SimTime::from_secs(30)));
        assert_eq!(record.targets, 2);
        assert_eq!(record.applied, 2, "record {record:?}");
        assert_eq!(record.rejected, 0);
        assert_eq!(record.acked, 2);
        assert!(record.first_ack_at.unwrap() >= SimTime::from_secs(30));
        assert!(record.last_ack_at.unwrap() >= record.first_ack_at.unwrap());
        assert!(record.command_bytes > 0 && record.ack_bytes > 0);
        for dev in [1u64, 2] {
            assert_eq!(
                world.device(DeviceId(dev)).unwrap().measure_interval(),
                SimDuration::from_millis(500)
            );
        }
        let notifications = world.take_notifications();
        assert!(notifications
            .iter()
            .any(|n| matches!(n, WorldNotification::CommandPublished { targets: 2, .. })));
        assert_eq!(
            notifications
                .iter()
                .filter(|n| matches!(n, WorldNotification::CommandApplied { applied: true, .. }))
                .count(),
            2
        );
        // The slower cadence sticks: ticks after the command are 500 ms
        // apart, so far fewer records accumulate than at 100 ms.
        let before = world.device(DeviceId(1)).unwrap().measured_series().len();
        world.run_until(SimTime::from_secs(70));
        let after = world.device(DeviceId(1)).unwrap().measured_series().len();
        assert!(
            (15..=25).contains(&(after - before)),
            "10 s at 500 ms cadence, got {}",
            after - before
        );
    }

    #[test]
    fn cohorts_nest_and_site_targets_scope() {
        let mut world = two_network_world();
        // Bring the control plane up via a benign command.
        world.schedule_control(ControlEvent {
            at: SimTime::from_secs(20),
            target: CommandTarget::Site(AggregatorAddr(1)),
            command: FleetCommand::StopReporting,
            qos: QoS::AtLeastOnce,
            retain: false,
        });
        let half = world.cohort(50);
        let full = world.cohort(100);
        assert_eq!(half.len(), 1, "50 % of 2 devices");
        assert_eq!(full.len(), 2);
        assert!(half.iter().all(|d| full.contains(d)), "cohorts nest");
        // Both devices sit on network 1, so the site command hits both; a
        // command to network 2 would target nobody.
        world.schedule_control(ControlEvent {
            at: SimTime::from_secs(21),
            target: CommandTarget::Site(AggregatorAddr(2)),
            command: FleetCommand::StartReporting,
            qos: QoS::AtLeastOnce,
            retain: false,
        });
        world.run_until(SimTime::from_secs(40));
        let records = world.command_records();
        assert_eq!(records[0].targets, 2);
        assert_eq!(records[0].applied, 2);
        assert_eq!(records[1].targets, 0);
        // Muted devices buffer but no longer report.
        assert!(!world.device(DeviceId(1)).unwrap().reporting_enabled());
    }

    #[test]
    fn retained_command_catches_a_crashed_device_after_restart() {
        let mut world = two_network_world();
        world.schedule_fault(FaultEvent::DeviceCrash {
            at: SimTime::from_secs(25),
            restart_at: SimTime::from_secs(45),
            device: DeviceId(1),
        });
        // Published mid-crash, retained: device 2 applies promptly, device 1
        // catches up from its resumed session after the reboot.
        let seq = world.schedule_control(ControlEvent {
            at: SimTime::from_secs(30),
            target: CommandTarget::AllDevices,
            command: FleetCommand::CrashRecoveryConfig {
                persist_store: true,
            },
            qos: QoS::AtLeastOnce,
            retain: true,
        });
        world.run_until(SimTime::from_secs(40));
        assert_eq!(world.command_records()[seq].applied, 1, "only device 2");
        world.run_until(SimTime::from_secs(60));
        let record = world.command_records()[seq];
        assert_eq!(record.applied, 2, "replay after restart, record {record:?}");
        assert_eq!(record.acked, 2);
        assert!(world.device(DeviceId(1)).unwrap().persists_store());
    }

    #[test]
    fn stuck_sensor_is_detected_by_the_anomalous_window() {
        use rtem_sensors::fault::SensorFaultKind;
        let mut world = two_network_world();
        let id = world.schedule_fault(FaultEvent::SensorFault {
            at: SimTime::from_secs(20),
            until: None,
            device: DeviceId(1),
            kind: SensorFaultKind::StuckAt { level_ma: 5.0 },
        });
        world.run_until(SimTime::from_secs(60));
        let record = world.fault_records()[id];
        assert_eq!(record.family, FaultFamily::Sensor);
        assert_eq!(record.injected_at, Some(SimTime::from_secs(20)));
        assert_eq!(record.signal, Some(DetectionSignal::AnomalousWindow));
        // Detected at a window boundary after injection.
        let latency = record.detection_latency().unwrap();
        assert!(latency <= SimDuration::from_secs(10), "latency {latency:?}");
        let notifications = world.take_notifications();
        assert!(notifications
            .iter()
            .any(|n| matches!(n, WorldNotification::FaultInjected { .. })));
        assert!(notifications
            .iter()
            .any(|n| matches!(n, WorldNotification::FaultDetected { .. })));
    }

    #[test]
    fn tampered_ledger_is_detected_by_the_audit_with_latency() {
        let mut world = two_network_world();
        let id = world.schedule_fault(FaultEvent::MeterTamper {
            at: SimTime::from_secs(22),
            network: AggregatorAddr(1),
        });
        world.run_until(SimTime::from_secs(45));
        let record = world.fault_records()[id];
        assert_eq!(record.injected_at, Some(SimTime::from_secs(22)));
        let block = record.tampered_block.expect("a block was forged");
        assert_eq!(
            record.signal,
            Some(DetectionSignal::ChainAudit { block_index: block })
        );
        // The audit fires at the next window boundary after the forgery.
        assert_eq!(record.detected_at, Some(SimTime::from_secs(25)));
        // The forgery is real: the chain no longer audits clean.
        let agg = world.aggregator(AggregatorAddr(1)).unwrap();
        let audit = rtem_chain::audit::audit_chain(agg.ledger().chain(), None);
        assert!(!audit.is_clean());
        assert_eq!(audit.first_bad_block(), Some(block));
    }

    #[test]
    fn tamper_before_any_records_waits_for_the_first_sealed_block() {
        let mut world = two_network_world();
        let id = world.schedule_fault(FaultEvent::MeterTamper {
            at: SimTime::from_secs(1),
            network: AggregatorAddr(1),
        });
        world.run_until(SimTime::from_secs(40));
        let record = world.fault_records()[id];
        let injected_at = record.injected_at.expect("applied eventually");
        assert!(
            injected_at > SimTime::from_secs(1),
            "deferred past schedule"
        );
        assert!(record.detected());
    }

    #[test]
    fn crashed_device_loses_state_then_recovers_and_is_detected() {
        let mut world = two_network_world();
        let id = world.schedule_fault(FaultEvent::DeviceCrash {
            at: SimTime::from_secs(30),
            restart_at: SimTime::from_secs(50),
            device: DeviceId(1),
        });
        world.run_until(SimTime::from_secs(40));
        assert!(world.device(DeviceId(1)).unwrap().is_crashed());
        world.run_until(SimTime::from_secs(90));
        let device = world.device(DeviceId(1)).unwrap();
        assert!(!device.is_crashed());
        assert!(device.is_registered(), "re-registered after reboot");
        let record = world.fault_records()[id];
        assert_eq!(record.cleared_at, Some(SimTime::from_secs(50)));
        assert_eq!(record.signal, Some(DetectionSignal::AnomalousWindow));
    }

    #[test]
    fn outage_with_failover_adopts_devices_and_recovers() {
        let mut world = two_network_world();
        let id = world.schedule_fault(FaultEvent::AggregatorOutage {
            at: SimTime::from_secs(30),
            until: SimTime::from_secs(60),
            network: AggregatorAddr(1),
            failover: Some(AggregatorAddr(2)),
        });
        world.run_until(SimTime::from_secs(45));
        // Both devices moved to the backup and registered as temporaries
        // through the membership replica.
        for dev in [1u64, 2] {
            assert_eq!(
                world.device_network(DeviceId(dev)),
                Some(AggregatorAddr(2)),
                "device {dev} adopted by the backup"
            );
        }
        let backup = world.aggregator(AggregatorAddr(2)).unwrap();
        assert!(backup.registry().is_member(DeviceId(1)));
        world.run_until(SimTime::from_secs(100));
        // Recovered: devices are home again and reporting.
        for dev in [1u64, 2] {
            assert_eq!(world.device_network(DeviceId(dev)), Some(AggregatorAddr(1)));
        }
        let record = world.fault_records()[id];
        assert_eq!(record.cleared_at, Some(SimTime::from_secs(60)));
        assert!(record.detected(), "outage left observable evidence");
        // The home ledger kept growing after recovery.
        let home = world.aggregator(AggregatorAddr(1)).unwrap();
        assert!(home.ledger().chain().len() > 3);
    }

    #[test]
    fn recovery_respects_topology_changes_scripted_during_the_outage() {
        let mut world = two_network_world();
        world.schedule_fault(FaultEvent::AggregatorOutage {
            at: SimTime::from_secs(30),
            until: SimTime::from_secs(60),
            network: AggregatorAddr(1),
            failover: Some(AggregatorAddr(2)),
        });
        // Mid-outage the scenario unplugs device 1 for good.
        world.schedule_unplug(SimTime::from_secs(45), DeviceId(1));
        world.run_until(SimTime::from_secs(80));
        // Recovery must not resurrect the unplugged device...
        assert_eq!(world.device_network(DeviceId(1)), None);
        assert!(!world.device(DeviceId(1)).unwrap().is_plugged());
        // ...while the still-adopted device goes home as usual.
        assert_eq!(world.device_network(DeviceId(2)), Some(AggregatorAddr(1)));
    }

    #[test]
    fn byzantine_minority_is_rejected_majority_commits_forgeries() {
        // Minority: 1 byzantine of 2 validators -> quorum 2 unreachable for
        // the forgery, honest rejection detects the collusion.
        let mut world = two_network_world();
        let id = world.schedule_fault(FaultEvent::ByzantineVoters {
            at: SimTime::from_secs(20),
            until: SimTime::from_secs(50),
            network: AggregatorAddr(1),
            voters: 1,
        });
        world.run_until(SimTime::from_secs(60));
        let record = world.fault_records()[id];
        assert!(matches!(
            record.signal,
            Some(DetectionSignal::ConsensusRejected { rejections: 1 })
        ));

        // Majority: both validators collude -> the forgery reaches quorum
        // and commits; nothing inside the network rejects it, but the peer
        // aggregator's ledger cross-check refuses to vouch for the forged
        // records at the same window seal.
        let mut world = two_network_world();
        let id = world.schedule_fault(FaultEvent::ByzantineVoters {
            at: SimTime::from_secs(20),
            until: SimTime::from_secs(50),
            network: AggregatorAddr(1),
            voters: 2,
        });
        world.run_until(SimTime::from_secs(60));
        let record = world.fault_records()[id];
        assert!(record.injected());
        assert!(
            matches!(
                record.signal,
                Some(DetectionSignal::LedgerCrossCheck { peers: 1 })
            ),
            "the honest peer flags the committed forgery: {:?}",
            record.signal
        );
    }

    #[test]
    fn colluding_quorum_goes_unnoticed_without_an_honest_peer() {
        // A single-network world has no peer aggregator to cross-check the
        // committed forgery against — the blind spot is structural, not a
        // detection bug.
        let mut world = single_network_world(3);
        let id = world.schedule_fault(FaultEvent::ByzantineVoters {
            at: SimTime::from_secs(20),
            until: SimTime::from_secs(50),
            network: AggregatorAddr(1),
            voters: 3,
        });
        world.run_until(SimTime::from_secs(60));
        let record = world.fault_records()[id];
        assert!(record.injected());
        assert!(
            !record.detected(),
            "no peer exists, so the quorum's forgery stands"
        );
    }

    #[test]
    fn fault_run_is_deterministic_and_slicing_invariant() {
        use rtem_sensors::fault::SensorFaultKind;
        let plan = |world: &mut World| {
            world.schedule_fault(FaultEvent::SensorFault {
                at: SimTime::from_secs(15),
                until: Some(SimTime::from_secs(35)),
                device: DeviceId(2),
                kind: SensorFaultKind::Drift { rate_ma_per_s: 8.0 },
            });
            world.schedule_fault(FaultEvent::MeterTamper {
                at: SimTime::from_secs(20),
                network: AggregatorAddr(1),
            });
        };
        let mut a = two_network_world();
        plan(&mut a);
        a.run_until(SimTime::from_secs(50));
        let mut b = two_network_world();
        plan(&mut b);
        let mut t = SimTime::ZERO;
        while t < SimTime::from_secs(50) {
            t += SimDuration::from_millis(3_300);
            b.run_until(t.min(SimTime::from_secs(50)));
        }
        assert_eq!(a.fault_records(), b.fault_records());
        assert_eq!(a.take_notifications(), b.take_notifications());
        assert_eq!(a.metrics(), b.metrics());
    }

    #[test]
    fn world_accessors_are_consistent() {
        let world = two_network_world();
        assert_eq!(world.network_addresses().len(), 2);
        assert_eq!(world.device_ids().len(), 2);
        assert!(world.device(DeviceId(99)).is_none());
        assert!(world.aggregator(AggregatorAddr(9)).is_none());
    }

    #[test]
    fn real_codec_fleet_reports_flow_end_to_end() {
        let mut world = two_network_world();
        world.set_meter_kind(DeviceId(1), MeterKind::Sml);
        world.set_meter_kind(DeviceId(2), MeterKind::WirelessMbus);
        world.run_until(SimTime::from_secs(30));
        let agg = world.aggregator(AggregatorAddr(1)).unwrap();
        assert_eq!(agg.registry().len(), 2, "both devices registered");
        assert!(agg.reports_accepted() > 10, "reports flowed over telegrams");
        let wire = world.wire_stats();
        assert!(wire.telegrams_sent > 10);
        assert_eq!(wire.telegrams_parsed, wire.telegrams_sent);
        assert_eq!(wire.parse_failures, 0);
        assert_eq!(wire.corrupted_injected, 0);
        assert!(
            wire.telegram_bytes > wire.native_bytes,
            "real framing costs more than the packed native encoding \
             ({} telegram bytes vs {} native)",
            wire.telegram_bytes,
            wire.native_bytes
        );
    }

    #[test]
    fn internal_fleet_has_untouched_wire_stats_shape() {
        let mut world = two_network_world();
        world.run_until(SimTime::from_secs(20));
        let wire = world.wire_stats();
        assert_eq!(wire.telegrams_sent, 0);
        assert_eq!(wire.telegram_bytes, 0);
        assert!(wire.records_sent > 0, "native reports still accounted");
        assert!(wire.native_bytes > 0);
    }

    #[test]
    fn telegram_corruption_is_detected_on_checksummed_codecs() {
        let mut world = two_network_world();
        world.set_meter_kind(DeviceId(1), MeterKind::Iec62056);
        let id = world.schedule_fault(FaultEvent::TelegramCorruption {
            at: SimTime::from_secs(15),
            until: SimTime::from_secs(25),
            device: DeviceId(1),
            mode: CorruptionMode::BitFlip { flips: 3 },
            per_mille: 1000,
        });
        world.run_until(SimTime::from_secs(40));
        let record = world.fault_records()[id];
        assert!(record.injected());
        assert!(record.detected(), "checksummed codec rejects the frames");
        assert!(matches!(
            record.signal,
            Some(DetectionSignal::TelegramRejected { .. })
        ));
        let wire = world.wire_stats();
        assert!(wire.corrupted_injected > 0);
        assert!(wire.parse_failures > 0);
        // After the burst clears, reports get through again and the device's
        // storage-backed retries recover the dropped window.
        let agg = world.aggregator(AggregatorAddr(1)).unwrap();
        assert!(agg.reports_accepted() > 10, "fleet recovered after burst");
    }

    #[test]
    fn internal_encoding_misses_the_same_corruption() {
        let mut world = two_network_world();
        let id = world.schedule_fault(FaultEvent::TelegramCorruption {
            at: SimTime::from_secs(15),
            until: SimTime::from_secs(25),
            device: DeviceId(1),
            mode: CorruptionMode::BitFlip { flips: 3 },
            per_mille: 1000,
        });
        world.run_until(SimTime::from_secs(40));
        let record = world.fault_records()[id];
        assert!(record.injected());
        assert!(
            !record.detected(),
            "the packed native encoding has no checksum to trip"
        );
        let wire = world.wire_stats();
        assert!(wire.corrupted_injected > 0, "values were mangled");
        assert_eq!(wire.parse_failures, 0, "nothing ever failed to parse");
    }

    #[test]
    fn corruption_fault_run_is_deterministic_and_slicing_invariant() {
        let plan = |world: &mut World| {
            world.set_meter_kind(DeviceId(1), MeterKind::ModbusRtu);
            world.schedule_fault(FaultEvent::TelegramCorruption {
                at: SimTime::from_secs(15),
                until: SimTime::from_secs(35),
                device: DeviceId(1),
                mode: CorruptionMode::MangleField,
                per_mille: 500,
            });
        };
        let mut a = two_network_world();
        plan(&mut a);
        a.run_until(SimTime::from_secs(50));
        let mut b = two_network_world();
        plan(&mut b);
        let mut t = SimTime::ZERO;
        while t < SimTime::from_secs(50) {
            t += SimDuration::from_millis(3_300);
            b.run_until(t.min(SimTime::from_secs(50)));
        }
        assert_eq!(a.fault_records(), b.fault_records());
        assert_eq!(a.take_notifications(), b.take_notifications());
        assert_eq!(a.metrics(), b.metrics());
        assert_eq!(a.wire_stats(), b.wire_stats());
    }

    #[test]
    fn telegram_log_captures_wire_bytes() {
        let mut world = two_network_world();
        world.set_meter_kind(DeviceId(1), MeterKind::Sml);
        world.enable_telegram_log();
        world.run_until(SimTime::from_secs(20));
        let log = world.take_telegram_log();
        assert!(!log.is_empty());
        assert!(log.iter().all(|e| e.device == DeviceId(1)));
        assert!(log.iter().all(|e| e.kind == MeterKind::Sml));
        assert_eq!(
            log.iter().map(|e| e.bytes.len() as u64).sum::<u64>(),
            world.wire_stats().telegram_bytes
        );
        // The log keeps capturing after a drain.
        world.run_until(SimTime::from_secs(25));
        assert!(!world.take_telegram_log().is_empty());
    }
}
