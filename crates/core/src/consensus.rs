//! Device-level consensus extension (the paper's future work, §IV).
//!
//! "In a truly decentralized network, the aggregators' role could be
//! performed by the devices themselves having a consensus among themselves.
//! In that case, the consumption data must be broadcast to the network and a
//! common blockchain is formed once a consensus is achieved among them"
//! (§II-A). This module implements that mode: devices broadcast candidate
//! blocks, every peer validates the block against its own observations, and
//! the block is committed once a quorum of approvals is collected.

use rtem_chain::block::{Block, RecordBytes};
use rtem_chain::chain::HashChain;
use rtem_chain::sha256::Digest;
use rtem_net::packet::DeviceId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

/// A vote on a proposed block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Vote {
    /// The validator accepts the block.
    Approve,
    /// The validator rejects the block.
    Reject,
}

/// Errors returned by the consensus round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConsensusError {
    /// The voter is not part of the validator set.
    UnknownValidator(DeviceId),
    /// The voter already voted in this round.
    DuplicateVote(DeviceId),
    /// No proposal is currently open.
    NoOpenProposal,
    /// A proposal is already open; finish or abort it first.
    ProposalAlreadyOpen,
}

impl fmt::Display for ConsensusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsensusError::UnknownValidator(d) => write!(f, "{d} is not a validator"),
            ConsensusError::DuplicateVote(d) => write!(f, "{d} already voted"),
            ConsensusError::NoOpenProposal => write!(f, "no open proposal"),
            ConsensusError::ProposalAlreadyOpen => write!(f, "a proposal is already open"),
        }
    }
}

impl Error for ConsensusError {}

/// Outcome of a completed round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoundOutcome {
    /// The block reached quorum and was appended to the chain.
    Committed {
        /// Hash of the committed block.
        block_hash: Digest,
        /// Approvals received.
        approvals: usize,
    },
    /// Too many rejections — the block can never reach quorum.
    Rejected {
        /// Rejections received.
        rejections: usize,
    },
    /// Still waiting for more votes.
    Pending,
}

/// A quorum-based block acceptance protocol over a fixed validator set.
///
/// This deliberately stays at the level the paper sketches: a permissioned
/// validator set (the devices of one network), a configurable quorum, and
/// one proposal in flight at a time — enough to quantify the extra latency
/// and message cost of removing the trusted aggregator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuorumConsensus {
    validators: BTreeSet<DeviceId>,
    quorum: usize,
    chain: HashChain,
    proposal: Option<Block>,
    votes: BTreeMap<DeviceId, Vote>,
    rounds_committed: u64,
    rounds_rejected: u64,
}

impl QuorumConsensus {
    /// Creates a consensus group over `validators` requiring `quorum`
    /// approvals per block.
    ///
    /// # Panics
    ///
    /// Panics if the validator set is empty or the quorum is zero or larger
    /// than the validator set.
    pub fn new(validators: impl IntoIterator<Item = DeviceId>, quorum: usize) -> Self {
        let validators: BTreeSet<DeviceId> = validators.into_iter().collect();
        assert!(!validators.is_empty(), "validator set must not be empty");
        assert!(
            quorum > 0 && quorum <= validators.len(),
            "quorum must be within 1..=validator count"
        );
        QuorumConsensus {
            validators,
            quorum,
            chain: HashChain::new(0, 0),
            proposal: None,
            votes: BTreeMap::new(),
            rounds_committed: 0,
            rounds_rejected: 0,
        }
    }

    /// Majority quorum (> half) over the validator set.
    pub fn majority(validators: impl IntoIterator<Item = DeviceId>) -> Self {
        let set: Vec<DeviceId> = validators.into_iter().collect();
        let quorum = set.len() / 2 + 1;
        QuorumConsensus::new(set, quorum)
    }

    /// The required number of approvals.
    pub fn quorum(&self) -> usize {
        self.quorum
    }

    /// The shared chain built so far.
    pub fn chain(&self) -> &HashChain {
        &self.chain
    }

    /// Rounds that reached quorum.
    pub fn rounds_committed(&self) -> u64 {
        self.rounds_committed
    }

    /// Rounds that were rejected.
    pub fn rounds_rejected(&self) -> u64 {
        self.rounds_rejected
    }

    /// Opens a proposal: `proposer` broadcasts the records for the next block.
    ///
    /// The proposer implicitly approves its own block.
    ///
    /// # Errors
    ///
    /// Fails if a proposal is already open or the proposer is unknown.
    pub fn propose(
        &mut self,
        proposer: DeviceId,
        timestamp_us: u64,
        records: Vec<RecordBytes>,
    ) -> Result<(), ConsensusError> {
        if !self.validators.contains(&proposer) {
            return Err(ConsensusError::UnknownValidator(proposer));
        }
        if self.proposal.is_some() {
            return Err(ConsensusError::ProposalAlreadyOpen);
        }
        let head = self.chain.head();
        let block = Block::new(
            head.header().index + 1,
            head.hash(),
            0,
            timestamp_us.max(head.header().timestamp_us),
            records,
        );
        self.proposal = Some(block);
        self.votes.clear();
        self.votes.insert(proposer, Vote::Approve);
        Ok(())
    }

    /// Records a vote and returns the round outcome so far.
    ///
    /// # Errors
    ///
    /// Fails if no proposal is open, the voter is unknown, or it already
    /// voted.
    pub fn vote(&mut self, voter: DeviceId, vote: Vote) -> Result<RoundOutcome, ConsensusError> {
        if self.proposal.is_none() {
            return Err(ConsensusError::NoOpenProposal);
        }
        if !self.validators.contains(&voter) {
            return Err(ConsensusError::UnknownValidator(voter));
        }
        if self.votes.contains_key(&voter) {
            return Err(ConsensusError::DuplicateVote(voter));
        }
        self.votes.insert(voter, vote);
        Ok(self.evaluate())
    }

    fn evaluate(&mut self) -> RoundOutcome {
        let approvals = self.votes.values().filter(|v| **v == Vote::Approve).count();
        let rejections = self.votes.values().filter(|v| **v == Vote::Reject).count();
        if approvals >= self.quorum {
            let block = self.proposal.take().expect("proposal open");
            let hash = self
                .chain
                .append_block(block)
                .expect("internally constructed block must link");
            self.votes.clear();
            self.rounds_committed += 1;
            RoundOutcome::Committed {
                block_hash: hash,
                approvals,
            }
        } else if self.validators.len() - rejections < self.quorum {
            // Even if every remaining validator approved, quorum is
            // unreachable.
            self.proposal = None;
            self.votes.clear();
            self.rounds_rejected += 1;
            RoundOutcome::Rejected { rejections }
        } else {
            RoundOutcome::Pending
        }
    }

    /// Number of messages (broadcast + votes) a committed round costs, used
    /// by the consensus-overhead ablation: one broadcast to `n-1` peers plus
    /// up to `n-1` votes.
    pub fn messages_per_round(&self) -> usize {
        2 * (self.validators.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn validators(n: u64) -> Vec<DeviceId> {
        (1..=n).map(DeviceId).collect()
    }

    #[test]
    fn quorum_commit_appends_block() {
        let mut consensus = QuorumConsensus::majority(validators(4));
        assert_eq!(consensus.quorum(), 3);
        consensus
            .propose(DeviceId(1), 1_000, vec![b"r1".to_vec()])
            .unwrap();
        assert_eq!(
            consensus.vote(DeviceId(2), Vote::Approve).unwrap(),
            RoundOutcome::Pending
        );
        match consensus.vote(DeviceId(3), Vote::Approve).unwrap() {
            RoundOutcome::Committed { approvals, .. } => assert_eq!(approvals, 3),
            other => panic!("expected commit, got {other:?}"),
        }
        assert_eq!(consensus.chain().len(), 2);
        assert_eq!(consensus.rounds_committed(), 1);
        assert!(consensus.chain().verify().is_ok());
    }

    #[test]
    fn rejections_can_kill_a_round() {
        let mut consensus = QuorumConsensus::majority(validators(4));
        consensus.propose(DeviceId(1), 1_000, vec![]).unwrap();
        consensus.vote(DeviceId(2), Vote::Reject).unwrap();
        match consensus.vote(DeviceId(3), Vote::Reject).unwrap() {
            RoundOutcome::Rejected { rejections } => assert_eq!(rejections, 2),
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(consensus.chain().len(), 1, "nothing appended");
        assert_eq!(consensus.rounds_rejected(), 1);
        // A new proposal can be opened afterwards.
        assert!(consensus.propose(DeviceId(2), 2_000, vec![]).is_ok());
    }

    #[test]
    fn duplicate_and_unknown_voters_rejected() {
        // Five validators -> quorum 3, so a second approval does not commit
        // yet and the duplicate is still detected within the open round.
        let mut consensus = QuorumConsensus::majority(validators(5));
        consensus.propose(DeviceId(1), 1, vec![]).unwrap();
        assert_eq!(
            consensus.vote(DeviceId(9), Vote::Approve),
            Err(ConsensusError::UnknownValidator(DeviceId(9)))
        );
        assert_eq!(
            consensus.vote(DeviceId(2), Vote::Approve).unwrap(),
            RoundOutcome::Pending
        );
        assert_eq!(
            consensus.vote(DeviceId(2), Vote::Approve),
            Err(ConsensusError::DuplicateVote(DeviceId(2)))
        );
    }

    #[test]
    fn single_proposal_at_a_time() {
        let mut consensus = QuorumConsensus::majority(validators(3));
        consensus.propose(DeviceId(1), 1, vec![]).unwrap();
        assert_eq!(
            consensus.propose(DeviceId(2), 2, vec![]),
            Err(ConsensusError::ProposalAlreadyOpen)
        );
        assert_eq!(
            consensus.vote(DeviceId(1), Vote::Approve),
            Err(ConsensusError::DuplicateVote(DeviceId(1))),
            "proposer already voted implicitly"
        );
    }

    #[test]
    fn voting_without_proposal_fails() {
        let mut consensus = QuorumConsensus::majority(validators(3));
        assert_eq!(
            consensus.vote(DeviceId(1), Vote::Approve),
            Err(ConsensusError::NoOpenProposal)
        );
    }

    #[test]
    fn sequential_rounds_build_a_valid_chain() {
        let mut consensus = QuorumConsensus::new(validators(3), 2);
        for round in 0..10u64 {
            consensus
                .propose(
                    DeviceId(1),
                    (round + 1) * 1_000,
                    vec![format!("r{round}").into_bytes()],
                )
                .unwrap();
            consensus.vote(DeviceId(2), Vote::Approve).unwrap();
        }
        assert_eq!(consensus.chain().len(), 11);
        assert!(consensus.chain().verify().is_ok());
        assert_eq!(consensus.rounds_committed(), 10);
    }

    #[test]
    fn message_cost_scales_with_validators() {
        assert_eq!(
            QuorumConsensus::majority(validators(4)).messages_per_round(),
            6
        );
        assert_eq!(
            QuorumConsensus::majority(validators(10)).messages_per_round(),
            18
        );
    }

    #[test]
    #[should_panic(expected = "quorum")]
    fn invalid_quorum_rejected() {
        let _ = QuorumConsensus::new(validators(3), 5);
    }
}
