//! Ready-made scenarios mirroring the paper's experimental setup.
//!
//! The testbed of §III-A has two networks, each with two ESP32 devices and
//! one Raspberry Pi aggregator; devices report every 100 ms. The builders in
//! this module construct [`World`]s with that shape (and parameterized
//! variants used by the scalability and ablation experiments).

use crate::simulation::{World, WorldConfig};
use rtem_codecs::MeterKind;
use rtem_device::application::Tariff;
use rtem_device::device::MeteringDevice;
use rtem_device::middleware::DeviceConfig;
use rtem_device::network_mgmt::HandshakeTiming;
use rtem_net::packet::{AggregatorAddr, DeviceId};
use rtem_net::rssi::Position;
use rtem_sensors::ina219::Ina219Config;
use rtem_sensors::profile::{ChargingProfile, CompositeProfile, WifiBurstProfile};
use rtem_sim::prelude::*;
use rtem_workloads::WorkloadModel;

/// Distance between neighbouring networks, in metres.
///
/// Every generated world places the `i`-th network at
/// `(NETWORK_SPACING_M * i, 0)`; the facade appends its initially-empty
/// networks on the same line so scripted mobility crosses identical
/// distances no matter where a network came from.
pub const NETWORK_SPACING_M: f64 = 200.0;

/// Number of device ids reserved per network by
/// [`ScenarioBuilder::device_id`]: the `j`-th device of the `i`-th network
/// gets id `i * DEVICE_ID_BLOCK + j + 1`, so more than `DEVICE_ID_BLOCK`
/// devices in one network would collide with the next network's block.
pub const DEVICE_ID_BLOCK: u32 = 100;

/// Which load is attached to each generated device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceLoad {
    /// An ESP32-class device charging a small battery while reporting.
    EspCharging,
    /// An e-scooter style fast charge.
    EScooter,
    /// Only the reporting firmware (idle device), the lightest load.
    ReportingOnly,
}

/// Builder for testbed-like scenarios.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioBuilder {
    /// Number of networks (aggregators).
    pub networks: u32,
    /// Devices initially plugged into each network.
    pub devices_per_network: u32,
    /// Load profile attached to every device.
    pub load: DeviceLoad,
    /// Diurnal workload model overriding `load` when set: each device draws
    /// its [`WorkloadModel`]-built profile instead of the legacy
    /// [`DeviceLoad`] shape (the reporting-firmware overlay stays either
    /// way).
    pub workload: Option<WorkloadModel>,
    /// Meter protocols assigned to the generated devices, round-robin by
    /// device ordinal (the same ordinal that picks workload variants).
    /// Empty means every device speaks [`MeterKind::Internal`] — the native
    /// packet encoding, byte-identical with earlier testbed revisions.
    pub meter_kinds: Vec<MeterKind>,
    /// World configuration (Tmeasure, link quality, windows, seed).
    pub world: WorldConfig,
    /// Handshake timing used by the devices.
    pub handshake: HandshakeTiming,
    /// Sensor model used by the devices.
    pub sensor: Ina219Config,
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        ScenarioBuilder {
            networks: 2,
            devices_per_network: 2,
            load: DeviceLoad::EspCharging,
            workload: None,
            meter_kinds: Vec::new(),
            world: WorldConfig::default(),
            handshake: HandshakeTiming::testbed(),
            sensor: Ina219Config::testbed(),
        }
    }
}

impl ScenarioBuilder {
    /// The paper's testbed: two networks, two charging devices each.
    pub fn paper_testbed(seed: u64) -> Self {
        ScenarioBuilder {
            world: WorldConfig {
                seed,
                ..WorldConfig::default()
            },
            ..ScenarioBuilder::default()
        }
    }

    /// A single network with `devices` devices (scalability sweeps).
    pub fn single_network(devices: u32, seed: u64) -> Self {
        ScenarioBuilder {
            networks: 1,
            devices_per_network: devices,
            world: WorldConfig {
                seed,
                ..WorldConfig::default()
            },
            ..ScenarioBuilder::default()
        }
    }

    /// Sets the per-device load.
    pub fn with_load(mut self, load: DeviceLoad) -> Self {
        self.load = load;
        self
    }

    /// Sets a diurnal workload model, overriding the legacy load shapes.
    pub fn with_workload(mut self, workload: WorkloadModel) -> Self {
        self.workload = Some(workload);
        self
    }

    /// Sets the meter protocols the fleet speaks, assigned round-robin by
    /// device ordinal. One entry gives a homogeneous fleet; several give a
    /// heterogeneous mix. Empty (the default) keeps the native encoding.
    pub fn with_meter_kinds(mut self, kinds: Vec<MeterKind>) -> Self {
        self.meter_kinds = kinds;
        self
    }

    /// Sets the verification window length.
    pub fn with_verification_window(mut self, window: SimDuration) -> Self {
        self.world.verification_window = window;
        self
    }

    /// Sets the device sensor model (e.g. [`Ina219Config::ideal`] for the
    /// error-decomposition ablation).
    pub fn with_sensor(mut self, sensor: Ina219Config) -> Self {
        self.sensor = sensor;
        self
    }

    /// Address of the `i`-th network (1-based in the paper's figures).
    pub fn network_addr(i: u32) -> AggregatorAddr {
        AggregatorAddr(i + 1)
    }

    /// Id of the `j`-th device of the `i`-th network.
    pub fn device_id(network: u32, j: u32) -> DeviceId {
        DeviceId(u64::from(network) * u64::from(DEVICE_ID_BLOCK) + u64::from(j) + 1)
    }

    fn build_load(&self, rng: &SimRng, stream: u64, ordinal: u64) -> CompositeProfile {
        let composite = CompositeProfile::new();
        if let Some(workload) = &self.workload {
            // The workload replaces the electrical load; the reporting
            // firmware's own draw stays, exactly like the legacy shapes.
            return composite
                .push(workload.build_for_device(ordinal, rng.derive(stream)))
                .push(WifiBurstProfile::esp32_reporting(rng.derive(stream + 1)));
        }
        match self.load {
            DeviceLoad::EspCharging => composite
                .push(ChargingProfile::esp32_testbed(rng.derive(stream)))
                .push(WifiBurstProfile::esp32_reporting(rng.derive(stream + 1))),
            DeviceLoad::EScooter => composite
                .push(ChargingProfile::e_scooter(rng.derive(stream)))
                .push(WifiBurstProfile::esp32_reporting(rng.derive(stream + 1))),
            DeviceLoad::ReportingOnly => {
                composite.push(WifiBurstProfile::esp32_reporting(rng.derive(stream)))
            }
        }
    }

    /// Builds the world: networks placed [`NETWORK_SPACING_M`] apart, every
    /// device plugged into its home network at t = 0.
    pub fn build(&self) -> World {
        let mut world = World::new(self.world.clone());
        let rng = SimRng::seed_from_u64(self.world.seed ^ 0x5CEA_A210);
        for n in 0..self.networks {
            let addr = Self::network_addr(n);
            world.add_network(addr, Position::new(NETWORK_SPACING_M * f64::from(n), 0.0));
        }
        for n in 0..self.networks {
            let addr = Self::network_addr(n);
            for j in 0..self.devices_per_network {
                let id = Self::device_id(n, j);
                let ordinal = u64::from(n) * u64::from(self.devices_per_network) + u64::from(j);
                let load = self.build_load(&rng, u64::from(n) * 1000 + u64::from(j) * 10, ordinal);
                let device = MeteringDevice::new(
                    DeviceConfig::testbed(id),
                    load,
                    self.sensor,
                    self.handshake,
                    Tariff::default(),
                    rng.derive(0xDE71CE + id.0),
                );
                world.add_device(device);
                if !self.meter_kinds.is_empty() {
                    let kind = self.meter_kinds[ordinal as usize % self.meter_kinds.len()];
                    world.set_meter_kind(id, kind);
                }
                world.plug_in_now(id, addr);
            }
        }
        world
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_has_expected_shape() {
        let world = ScenarioBuilder::paper_testbed(7).build();
        assert_eq!(world.network_addresses().len(), 2);
        assert_eq!(world.device_ids().len(), 4);
        for id in world.device_ids() {
            assert!(world.device_network(id).is_some(), "device {id} plugged in");
        }
    }

    #[test]
    fn single_network_scales_device_count() {
        let world = ScenarioBuilder::single_network(6, 1).build();
        assert_eq!(world.network_addresses().len(), 1);
        assert_eq!(world.device_ids().len(), 6);
    }

    #[test]
    fn ids_are_unique_across_networks() {
        let a = ScenarioBuilder::device_id(0, 0);
        let b = ScenarioBuilder::device_id(1, 0);
        let c = ScenarioBuilder::device_id(0, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn builder_customization_applies() {
        let builder = ScenarioBuilder::paper_testbed(1)
            .with_load(DeviceLoad::ReportingOnly)
            .with_verification_window(SimDuration::from_secs(5))
            .with_sensor(Ina219Config::ideal());
        assert_eq!(builder.load, DeviceLoad::ReportingOnly);
        assert_eq!(builder.world.verification_window, SimDuration::from_secs(5));
        assert_eq!(builder.sensor, Ina219Config::ideal());
    }

    #[test]
    fn meter_kinds_assign_round_robin_by_ordinal() {
        let world = ScenarioBuilder::paper_testbed(3)
            .with_meter_kinds(vec![MeterKind::Iec62056, MeterKind::Sml])
            .build();
        // Two networks × two devices = ordinals 0..4 in network-major order.
        assert_eq!(
            world.meter_kind(ScenarioBuilder::device_id(0, 0)),
            MeterKind::Iec62056
        );
        assert_eq!(
            world.meter_kind(ScenarioBuilder::device_id(0, 1)),
            MeterKind::Sml
        );
        assert_eq!(
            world.meter_kind(ScenarioBuilder::device_id(1, 0)),
            MeterKind::Iec62056
        );
        assert_eq!(
            world.meter_kind(ScenarioBuilder::device_id(1, 1)),
            MeterKind::Sml
        );
    }

    #[test]
    fn default_fleet_speaks_internal() {
        let world = ScenarioBuilder::paper_testbed(3).build();
        for id in world.device_ids() {
            assert_eq!(world.meter_kind(id), MeterKind::Internal);
        }
    }

    #[test]
    fn same_seed_builds_identical_initial_conditions() {
        let a = ScenarioBuilder::paper_testbed(5).build();
        let b = ScenarioBuilder::paper_testbed(5).build();
        assert_eq!(a.device_ids(), b.device_ids());
        assert_eq!(a.network_addresses(), b.network_addresses());
    }
}
