//! The device-mobility experiment (Fig. 6 and the Thandshake statistics).
//!
//! A device charges in its home network (Network 1), is unplugged and moved
//! (Idle — no consumption, nothing billed), then plugs into a foreign
//! network (Network 2). There it is Nack'ed / verified / granted a temporary
//! membership (Thandshake), transmits its live and locally stored
//! consumption, and the foreign aggregator forwards everything to the home
//! aggregator for consolidated billing.

use crate::metrics::{device_trace, DeviceTrace, HandshakeStats};
use crate::scenario::ScenarioBuilder;
use rtem_device::network_mgmt::HandshakeBreakdown;
use rtem_net::packet::{AggregatorAddr, DeviceId};
use rtem_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Parameters of one mobility run.
#[derive(Debug, Clone, PartialEq)]
pub struct MobilityConfig {
    /// Scenario to build (normally the paper's two-network testbed).
    pub scenario: ScenarioBuilder,
    /// The device that moves (defaults to device 1 of network 0).
    pub mobile_device: DeviceId,
    /// Home network of the mobile device.
    pub home: AggregatorAddr,
    /// Destination network.
    pub destination: AggregatorAddr,
    /// When the device is unplugged from the home network.
    pub unplug_at: SimTime,
    /// How long the device is in transit (the Idle span in Fig. 6).
    pub transit: SimDuration,
    /// How long to keep simulating after the device re-plugs.
    pub settle: SimDuration,
}

impl MobilityConfig {
    /// The paper's configuration: one hour in the home network (scaled down
    /// to 60 s of simulated charging by default to keep unit tests fast —
    /// the bench harness uses the full hour), ~20 s of transit, then
    /// reporting resumes in Network 2.
    pub fn testbed(seed: u64) -> Self {
        MobilityConfig {
            scenario: ScenarioBuilder::paper_testbed(seed),
            mobile_device: ScenarioBuilder::device_id(0, 0),
            home: ScenarioBuilder::network_addr(0),
            destination: ScenarioBuilder::network_addr(1),
            unplug_at: SimTime::from_secs(60),
            transit: SimDuration::from_secs(20),
            settle: SimDuration::from_secs(60),
        }
    }
}

/// Result of one mobility run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MobilityOutcome {
    /// The moving device.
    pub device: DeviceId,
    /// When the device left the home network.
    pub disconnected_at: SimTime,
    /// When the device plugged into the destination network.
    pub reconnected_at: SimTime,
    /// Thandshake: per-phase breakdown of the temporary registration.
    pub handshake: Option<HandshakeBreakdown>,
    /// The device's consumption trace as seen by the home aggregator
    /// (local reports before the move, forwarded reports after — Fig. 6).
    pub home_view: Option<DeviceTrace>,
    /// The device's consumption trace as seen by the destination aggregator.
    pub destination_view: Option<DeviceTrace>,
    /// Charge billed by the home network for consumption in the foreign
    /// network, in microamp-seconds.
    pub roaming_charge_uas: u64,
    /// Total charge billed by the home network, in microamp-seconds.
    pub total_charge_uas: u64,
    /// Number of records that arrived backfilled (buffered across the gap).
    pub backfilled_records: u64,
}

impl MobilityOutcome {
    /// Thandshake in seconds, if the handshake completed.
    pub fn thandshake_secs(&self) -> Option<f64> {
        self.handshake.map(|h| h.total().as_secs_f64())
    }
}

/// Runs one mobility experiment.
pub fn run_mobility(config: &MobilityConfig) -> MobilityOutcome {
    let mut world = config.scenario.build();
    let device = config.mobile_device;
    let replug_at = config.unplug_at + config.transit;
    let horizon = replug_at + config.settle;

    world.schedule_unplug(config.unplug_at, device);
    world.schedule_plug_in(replug_at, device, config.destination);
    world.run_until(horizon);

    let home_agg = world.aggregator(config.home).expect("home network exists");
    let bill = home_agg.billing().bill(device);
    MobilityOutcome {
        device,
        disconnected_at: config.unplug_at,
        reconnected_at: replug_at,
        handshake: world.device(device).and_then(|d| d.last_handshake()),
        home_view: device_trace(&world, config.home, device),
        destination_view: device_trace(&world, config.destination, device),
        roaming_charge_uas: bill.map(|b| b.roaming_charge_uas).unwrap_or(0),
        total_charge_uas: bill.map(|b| b.charge_uas).unwrap_or(0),
        backfilled_records: bill.map(|b| b.backfilled_records).unwrap_or(0),
    }
}

/// Runs the mobility experiment `runs` times with different seeds and returns
/// the Thandshake statistics (the paper reports 15 runs: mean 6 s, range
/// 5.5–6.5 s).
pub fn thandshake_statistics(
    base_seed: u64,
    runs: usize,
) -> (Vec<MobilityOutcome>, Option<HandshakeStats>) {
    let mut outcomes = Vec::with_capacity(runs);
    for i in 0..runs {
        let config = MobilityConfig::testbed(base_seed + i as u64);
        outcomes.push(run_mobility(&config));
    }
    let breakdowns: Vec<HandshakeBreakdown> = outcomes.iter().filter_map(|o| o.handshake).collect();
    let stats = HandshakeStats::from_breakdowns(&breakdowns);
    (outcomes, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(seed: u64) -> MobilityConfig {
        let mut config = MobilityConfig::testbed(seed);
        // Shorter home phase keeps the unit test fast; behaviour is the same.
        config.unplug_at = SimTime::from_secs(30);
        config.transit = SimDuration::from_secs(10);
        config.settle = SimDuration::from_secs(40);
        config
    }

    #[test]
    fn mobility_produces_temporary_membership_and_roaming_billing() {
        let outcome = run_mobility(&quick_config(11));
        assert!(outcome.handshake.is_some(), "handshake must complete");
        assert!(
            outcome.roaming_charge_uas > 0,
            "home network must bill foreign consumption"
        );
        assert!(outcome.total_charge_uas > outcome.roaming_charge_uas);
        assert!(
            outcome.backfilled_records > 0,
            "buffered records must arrive"
        );
    }

    #[test]
    fn thandshake_is_in_the_papers_band() {
        let outcome = run_mobility(&quick_config(12));
        let t = outcome.thandshake_secs().unwrap();
        assert!((5.0..7.0).contains(&t), "Thandshake {t} s");
    }

    #[test]
    fn home_view_covers_both_phases() {
        let config = quick_config(13);
        let outcome = run_mobility(&config);
        let view = outcome.home_view.expect("home aggregator has the trace");
        let before = view
            .points
            .iter()
            .filter(|(t, _)| *t < config.unplug_at.as_secs_f64())
            .count();
        let after = view
            .points
            .iter()
            .filter(|(t, _)| *t > outcome.reconnected_at.as_secs_f64())
            .count();
        assert!(before > 0, "reports before the move");
        assert!(after > 0, "forwarded reports after the move");
        // Nothing is billed during the transit gap.
        let during = view
            .points
            .iter()
            .filter(|(t, v)| {
                *t > config.unplug_at.as_secs_f64()
                    && *t < outcome.reconnected_at.as_secs_f64()
                    && *v > 0.0
            })
            .count();
        assert_eq!(during, 0, "no consumption reported while in transit");
    }

    #[test]
    fn statistics_over_multiple_runs_match_the_paper() {
        // 5 runs (instead of the paper's 15) keeps the test quick; the bench
        // harness runs the full 15.
        let mut durations = Vec::new();
        for seed in 0..5u64 {
            let outcome = run_mobility(&quick_config(100 + seed));
            durations.push(outcome.thandshake_secs().unwrap());
        }
        let stats = HandshakeStats::from_durations(&durations);
        assert!((5.3..6.7).contains(&stats.mean_s), "mean {}", stats.mean_s);
        assert!(stats.min_s >= 5.0, "min {}", stats.min_s);
        assert!(stats.max_s <= 7.0, "max {}", stats.max_s);
    }
}
