//! # rtem-core — the decentralized real-time energy-metering architecture
//!
//! Primary crate of the `rtem` workspace, a from-scratch reproduction of
//! *Real-Time Energy Monitoring in IoT-enabled Mobile Devices*
//! (Shivaraman et al., DATE 2020, arXiv:2004.14804).
//!
//! The paper proposes an architecture in which IoT-enabled devices meter
//! their own consumption, report it to a trusted per-network aggregator,
//! stay billable to their home network while charging elsewhere (device
//! mobility), and have their data stored in a consensus-free permissioned
//! hash chain. This crate assembles the substrate crates into that
//! architecture and provides the experiment harnesses:
//!
//! * [`simulation`] — the [`World`](simulation::World): devices,
//!   aggregators, grids, MQTT broker and backhaul driven by simulated time
//!   (the replacement for the paper's hardware testbed).
//! * [`scenario`] — builders for the paper's testbed topology and variants.
//! * [`metrics`] — Fig. 5 accuracy windows, Thandshake statistics, run
//!   summaries.
//! * [`mobility`] — the Fig. 6 mobility experiment and the 15-run
//!   Thandshake statistic.
//! * [`centralized`] — the centralized-metering baseline.
//! * [`consensus`] — device-level quorum consensus (future-work extension).
//! * [`loadbalance`] — dynamic load balancing of mobile devices
//!   (future-work extension).
//!
//! # Examples
//!
//! ```no_run
//! use rtem_core::scenario::ScenarioBuilder;
//! use rtem_sim::time::SimTime;
//!
//! // Build the paper's two-network testbed and run it for a minute.
//! let mut world = ScenarioBuilder::paper_testbed(42).build();
//! world.run_until(SimTime::from_secs(60));
//! let metrics = world.metrics();
//! assert_eq!(metrics.networks.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod centralized;
pub mod consensus;
pub mod loadbalance;
pub mod metrics;
pub mod mobility;
pub mod scenario;
pub mod simulation;

// The pre-facade flat re-exports (`rtem_core::ScenarioBuilder`,
// `rtem_core::World`, ...) were `#[doc(hidden)]` compatibility shims for one
// release and have been removed: the supported public surface is the `rtem`
// facade crate, and everything in this crate stays reachable through the
// module paths (`rtem::scenario`, `rtem::simulation`, ...).
