//! Metrics extracted from a simulated run.
//!
//! The evaluation needs three kinds of numbers: the per-window comparison of
//! device-reported consumption against the aggregator's own measurement
//! (Fig. 5), the mobility trace and Thandshake statistics (Fig. 6 and the
//! text of §III-B), and general health counters (blocks sealed, anomalies,
//! Nacks) used by the extended experiments.

use crate::simulation::World;
use rtem_device::network_mgmt::HandshakeBreakdown;
use rtem_net::packet::{AggregatorAddr, DeviceId};
use rtem_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One verification window of the Fig. 5 comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyWindow {
    /// Window index (0-based).
    pub index: usize,
    /// Start of the window.
    pub start: SimTime,
    /// Charge reported by each device in the window, in mA·s.
    pub per_device_mas: BTreeMap<u64, f64>,
    /// Sum of the device-reported charge, in mA·s.
    pub devices_total_mas: f64,
    /// Charge measured by the aggregator's own meter over the window, mA·s.
    pub aggregator_mas: f64,
}

impl AccuracyWindow {
    /// Relative excess of the aggregator measurement over the device sum, in
    /// percent (the paper reports 0.9–8.2 %).
    pub fn overhead_percent(&self) -> f64 {
        if self.devices_total_mas <= f64::EPSILON {
            0.0
        } else {
            (self.aggregator_mas - self.devices_total_mas) / self.devices_total_mas * 100.0
        }
    }
}

/// Computes the Fig. 5 windows for one network: device-reported charge
/// (from the ledger) versus the aggregator's own integrated measurement.
pub fn accuracy_windows(
    world: &World,
    network: AggregatorAddr,
    window: SimDuration,
    horizon: SimTime,
) -> Vec<AccuracyWindow> {
    accuracy_windows_from(world, network, window, 0, horizon)
}

/// Like [`accuracy_windows`], but starting at window index `first_index` —
/// the building block for callers that extend a cached prefix incrementally
/// instead of recomputing the whole history (e.g. live progress snapshots).
pub fn accuracy_windows_from(
    world: &World,
    network: AggregatorAddr,
    window: SimDuration,
    first_index: usize,
    horizon: SimTime,
) -> Vec<AccuracyWindow> {
    let Some(aggregator) = world.aggregator(network) else {
        return Vec::new();
    };
    let entries = aggregator.ledger().all_entries();
    let series = aggregator.network_series();

    // How many whole windows fit between `first_index` and the horizon.
    let first_start = SimTime::ZERO + window * first_index as u64;
    let mut count = 0usize;
    while first_start + window * (count as u64 + 1) <= horizon {
        count += 1;
    }
    if count == 0 {
        return Vec::new();
    }

    // Bucket the ledger entries by window in one pass instead of rescanning
    // the whole ledger once per window (windows and entries both grow with
    // the run, so the rescan was quadratic in the horizon). Entry order —
    // and therefore floating-point accumulation order — per (window,
    // device) bucket is unchanged.
    //
    // Under a bounded retention policy the aggregator evicted old ledger
    // blocks, folding their entries into sealed per-window accumulators in
    // the same commit order a full scan would have used — seed each bucket
    // from those, then fold the resident entries on top. Keep-all runs have
    // no sealed state and start from empty buckets as before.
    let window_us = window.as_micros();
    let mut per_window: Vec<BTreeMap<u64, f64>> = (0..count)
        .map(|bucket| {
            aggregator
                .sealed_accuracy_per_device((first_index + bucket) as u64)
                .cloned()
                .unwrap_or_default()
        })
        .collect();
    for entry in &entries {
        if entry.interval_end_us < first_start.as_micros() {
            continue;
        }
        let bucket = ((entry.interval_end_us - first_start.as_micros()) / window_us) as usize;
        if let Some(per_device) = per_window.get_mut(bucket) {
            *per_device.entry(entry.device_id).or_default() += entry.charge_mas();
        }
    }

    let mut windows = Vec::with_capacity(count);
    let mut start = first_start;
    for (offset, per_device) in per_window.into_iter().enumerate() {
        let end = start + window;
        let devices_total: f64 = per_device.values().sum();
        // Windows whose series samples were pruned carry a pre-integrated
        // charge sealed before the samples were dropped; live windows
        // integrate the resident samples exactly as before.
        let aggregator_mas = aggregator
            .sealed_window_mas((first_index + offset) as u64)
            .unwrap_or_else(|| series.window(start, end).integrate());
        windows.push(AccuracyWindow {
            index: first_index + offset,
            start,
            per_device_mas: per_device,
            devices_total_mas: devices_total,
            aggregator_mas,
        });
        start = end;
    }
    windows
}

/// Summary statistics over a set of handshake durations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HandshakeStats {
    /// Number of handshakes measured.
    pub count: usize,
    /// Mean duration in seconds.
    pub mean_s: f64,
    /// Minimum duration in seconds.
    pub min_s: f64,
    /// Maximum duration in seconds.
    pub max_s: f64,
    /// Population standard deviation in seconds.
    pub std_dev_s: f64,
}

impl HandshakeStats {
    /// Computes statistics from individual handshake breakdowns.
    pub fn from_breakdowns(breakdowns: &[HandshakeBreakdown]) -> Option<HandshakeStats> {
        if breakdowns.is_empty() {
            return None;
        }
        let durations: Vec<f64> = breakdowns.iter().map(|b| b.total().as_secs_f64()).collect();
        Some(HandshakeStats::from_durations(&durations))
    }

    /// Computes statistics from raw durations in seconds.
    pub fn from_durations(durations: &[f64]) -> HandshakeStats {
        let count = durations.len();
        let mean = durations.iter().sum::<f64>() / count as f64;
        let min = durations.iter().copied().fold(f64::INFINITY, f64::min);
        let max = durations.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let var = durations.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / count as f64;
        HandshakeStats {
            count,
            mean_s: mean,
            min_s: min,
            max_s: max,
            std_dev_s: var.sqrt(),
        }
    }
}

/// Per-network summary of a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkSummary {
    /// The network's aggregator.
    pub network: AggregatorAddr,
    /// Devices currently registered (master + temporary).
    pub members: usize,
    /// Reports accepted.
    pub reports_accepted: u64,
    /// Nacks sent to non-members.
    pub nacks_sent: u64,
    /// Blocks sealed in the ledger.
    pub blocks: usize,
    /// Ledger entries committed.
    pub ledger_entries: usize,
    /// Anomalous verification windows.
    pub anomalous_windows: u64,
    /// Mean of the aggregator's own network measurement, mA.
    pub mean_network_current_ma: f64,
}

/// Whole-world summary of a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldMetrics {
    /// Simulated time at collection.
    pub now: SimTime,
    /// Per-network summaries.
    pub networks: Vec<NetworkSummary>,
    /// Handshake timing of every device that completed at least one.
    pub handshakes: BTreeMap<u64, HandshakeBreakdown>,
}

impl WorldMetrics {
    /// Collects the metrics from a world.
    pub fn collect(world: &World) -> WorldMetrics {
        let networks = world
            .networks()
            .filter_map(|addr| {
                let agg = world.aggregator(addr)?;
                Some(NetworkSummary {
                    network: addr,
                    members: agg.registry().len(),
                    reports_accepted: agg.reports_accepted(),
                    nacks_sent: agg.nacks_sent(),
                    blocks: agg.ledger().chain().len(),
                    ledger_entries: agg.ledger().chain().total_records(),
                    anomalous_windows: agg.verdicts().iter().filter(|v| v.anomalous).count() as u64,
                    mean_network_current_ma: agg.network_series().stats().mean,
                })
            })
            .collect();
        let handshakes = world
            .devices()
            .filter_map(|(id, device)| device.last_handshake().map(|h| (id.0, h)))
            .collect();
        WorldMetrics {
            now: world.now(),
            networks,
            handshakes,
        }
    }

    /// Thandshake statistics over every completed handshake in the world.
    pub fn handshake_stats(&self) -> Option<HandshakeStats> {
        let breakdowns: Vec<HandshakeBreakdown> = self.handshakes.values().copied().collect();
        HandshakeStats::from_breakdowns(&breakdowns)
    }

    /// The summary for one network.
    pub fn network(&self, addr: AggregatorAddr) -> Option<&NetworkSummary> {
        self.networks.iter().find(|n| n.network == addr)
    }

    /// Total ledger entries across all networks.
    pub fn total_ledger_entries(&self) -> usize {
        self.networks.iter().map(|n| n.ledger_entries).sum()
    }
}

/// Per-device consumption trace seen by one aggregator, in a plottable form
/// (the data behind Fig. 6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceTrace {
    /// The device.
    pub device: DeviceId,
    /// The aggregator whose view this is.
    pub network: AggregatorAddr,
    /// `(time_s, current_ma)` samples in arrival order.
    pub points: Vec<(f64, f64)>,
}

/// Extracts the consumption trace of `device` as seen by `network`.
pub fn device_trace(
    world: &World,
    network: AggregatorAddr,
    device: DeviceId,
) -> Option<DeviceTrace> {
    let aggregator = world.aggregator(network)?;
    let series = aggregator.device_series(device)?;
    Some(DeviceTrace {
        device,
        network,
        points: series.iter().map(|(t, v)| (t.as_secs_f64(), v)).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtem_sim::time::SimDuration;

    #[test]
    fn handshake_stats_from_durations() {
        let stats = HandshakeStats::from_durations(&[5.5, 6.0, 6.5]);
        assert_eq!(stats.count, 3);
        assert!((stats.mean_s - 6.0).abs() < 1e-9);
        assert_eq!(stats.min_s, 5.5);
        assert_eq!(stats.max_s, 6.5);
        assert!(stats.std_dev_s > 0.0);
    }

    #[test]
    fn handshake_stats_empty_is_none() {
        assert!(HandshakeStats::from_breakdowns(&[]).is_none());
    }

    #[test]
    fn overhead_percent_handles_zero_reported() {
        let w = AccuracyWindow {
            index: 0,
            start: SimTime::ZERO,
            per_device_mas: BTreeMap::new(),
            devices_total_mas: 0.0,
            aggregator_mas: 5.0,
        };
        assert_eq!(w.overhead_percent(), 0.0);
    }

    #[test]
    fn overhead_percent_matches_definition() {
        let w = AccuracyWindow {
            index: 0,
            start: SimTime::ZERO,
            per_device_mas: BTreeMap::from([(1, 100.0), (2, 100.0)]),
            devices_total_mas: 200.0,
            aggregator_mas: 210.0,
        };
        assert!((w.overhead_percent() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn handshake_breakdown_total_is_sum_of_phases() {
        let b = HandshakeBreakdown {
            scan: SimDuration::from_millis(3200),
            association: SimDuration::from_millis(1700),
            broker_connect: SimDuration::from_millis(950),
            registration: SimDuration::from_millis(150),
            membership: rtem_net::packet::MembershipKind::Temporary,
        };
        assert_eq!(b.total(), SimDuration::from_millis(6000));
        let stats = HandshakeStats::from_breakdowns(&[b]).unwrap();
        assert!((stats.mean_s - 6.0).abs() < 1e-9);
    }
}
