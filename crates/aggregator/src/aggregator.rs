//! The aggregator unit.
//!
//! One aggregator per network (WAN in Fig. 1). It registers devices, hands
//! out reporting slots, verifies reports against its own system-level
//! measurement, seals verified records into the permissioned hash chain,
//! liaises with other aggregators for roaming devices (temporary
//! memberships, verification, forwarding) and bills the devices whose master
//! membership it holds.

use crate::billing::{BillingEngine, CollectionOrigin, Tariff};
use crate::membership::{MembershipError, MembershipRegistry};
use crate::verify::{EntropyDetector, VerifierConfig, WindowVerdict, WindowVerifier};
use rtem_chain::ledger::{LedgerEntry, MeteringLedger};
use rtem_chain::sha256::Digest;
use rtem_net::packet::{
    AggregatorAddr, DeviceId, MeasurementRecord, MembershipKind, Packet, RejectReason,
};
use rtem_net::tdma::SlotTable;
use rtem_sensors::energy::{Milliamps, Millivolts};
use rtem_sensors::ina219::{Ina219Config, Ina219Model};
use rtem_sim::rng::SimRng;
use rtem_sim::time::{SimDuration, SimTime};
use rtem_sim::trace::TimeSeries;
use std::collections::BTreeMap;

/// Packets produced while handling an input.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct AggregatorOutput {
    /// Packets to publish to devices in this aggregator's network.
    pub to_devices: Vec<Packet>,
    /// Packets to send to other aggregators over the backhaul.
    pub to_aggregators: Vec<(AggregatorAddr, Packet)>,
}

impl AggregatorOutput {
    fn merge(&mut self, other: AggregatorOutput) {
        self.to_devices.extend(other.to_devices);
        self.to_aggregators.extend(other.to_aggregators);
    }
}

/// How much run history an aggregator keeps resident.
///
/// The default keeps everything, which is what post-hoc analysis at
/// arbitrary granularity needs and what every result before streaming
/// compaction implicitly assumed. Bounded mode caps resident state at the
/// active verification windows: older ledger blocks are sealed behind the
/// chain's [`EvictedPrefix`](rtem_chain::chain::EvictedPrefix) digest and
/// evicted, their accuracy contributions fold into sealed per-window
/// summaries, and the measurement series prune to the same horizon — all in
/// the exact float-accumulation order of a full-history scan, so the run
/// report stays bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RetentionPolicy {
    /// Keep the whole run resident (the default).
    #[default]
    KeepAll,
    /// Keep the last `n` verification windows resident; seal and evict
    /// everything older. `n` is clamped to at least 2 so the previous
    /// window stays available to backfill attribution and cross-checks.
    ActiveWindows(usize),
}

/// Configuration of an aggregator.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregatorConfig {
    /// The aggregator's backhaul address.
    pub address: AggregatorAddr,
    /// Slot table handed out to registering devices.
    pub slots: SlotTable,
    /// Verification tolerances.
    pub verifier: VerifierConfig,
    /// Sensor model for the aggregator's own system-level measurement.
    pub sensor: Ina219Config,
    /// Tariff applied to every billed record.
    pub tariff: Tariff,
}

impl AggregatorConfig {
    /// Configuration matching the paper's testbed Raspberry Pi aggregators.
    pub fn testbed(address: AggregatorAddr) -> Self {
        AggregatorConfig {
            address,
            slots: SlotTable::testbed(),
            verifier: VerifierConfig::default(),
            sensor: Ina219Config::testbed(),
            tariff: Tariff::flat(1.0),
        }
    }
}

/// The aggregator state machine.
pub struct Aggregator {
    address: AggregatorAddr,
    registry: MembershipRegistry,
    ledger: MeteringLedger,
    verifier: WindowVerifier,
    entropy: EntropyDetector,
    billing: BillingEngine,
    sensor: Ina219Model,
    pending_temporary: BTreeMap<DeviceId, AggregatorAddr>,
    /// Highest sequence processed at this aggregator, per device, across
    /// every path that stages or bills a record: direct master reports,
    /// temporary-member (collector) reports, and roaming forwards. Guards
    /// each path against the others and against itself across
    /// re-registrations: a device that missed its last ack retransmits
    /// already-processed records — at a foreign collector (whose forward
    /// would re-bill them at home), back at home (where re-registration
    /// resets `last_acked_sequence`), or at the same collector again
    /// (which would double-stage them and double-count the verification
    /// window). Device sequences are monotone for life (crashes do not
    /// reset them), and a sequence at or below this mark was either
    /// processed or cumulatively acked away, so skipping it is exact.
    processed_through: BTreeMap<DeviceId, u64>,
    // Traces for the evaluation figures.
    network_series: TimeSeries,
    reported_series: TimeSeries,
    device_series: BTreeMap<DeviceId, TimeSeries>,
    // Current verification window accumulators.
    window_reported_sum_mas: f64,
    window_measured: Vec<f64>,
    window_started_at: SimTime,
    verdicts: Vec<WindowVerdict>,
    // Streaming-compaction summaries (empty under RetentionPolicy::KeepAll).
    /// Per accuracy-window, per-device charge folded out of evicted ledger
    /// entries, in commit order — the seed the accuracy computation starts
    /// from so bounded runs reproduce full-history windows bit-exactly.
    sealed_per_device: BTreeMap<u64, BTreeMap<u64, f64>>,
    /// Pre-integrated own-measurement charge (mA·s) of fully-pruned
    /// accuracy windows, computed before the series samples were dropped.
    sealed_window_mas: BTreeMap<u64, f64>,
    /// Accuracy windows whose series samples are already sealed (next
    /// window index to pre-integrate).
    series_sealed_windows: u64,
    nacks_sent: u64,
    reports_accepted: u64,
    records_accepted: u64,
    records_duplicate_filtered: u64,
}

impl core::fmt::Debug for Aggregator {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Aggregator")
            .field("address", &self.address)
            .field("members", &self.registry.len())
            .field("blocks", &self.ledger.chain().len())
            .finish()
    }
}

impl Aggregator {
    /// Creates an aggregator from its configuration.
    pub fn new(config: AggregatorConfig, rng: SimRng) -> Self {
        let mut ledger = MeteringLedger::new(config.address.0, 0);
        ledger.register_writer(config.address.0);
        Aggregator {
            address: config.address,
            registry: MembershipRegistry::new(config.slots),
            ledger,
            verifier: WindowVerifier::new(config.verifier),
            entropy: EntropyDetector::testbed(),
            billing: BillingEngine::new(config.tariff, Millivolts::usb_bus()),
            sensor: Ina219Model::new(config.sensor, rng.derive(0xA66)),
            pending_temporary: BTreeMap::new(),
            processed_through: BTreeMap::new(),
            network_series: TimeSeries::new(format!("{} network current (mA)", config.address)),
            reported_series: TimeSeries::new(format!("{} reported sum (mA)", config.address)),
            device_series: BTreeMap::new(),
            window_reported_sum_mas: 0.0,
            window_measured: Vec::new(),
            window_started_at: SimTime::ZERO,
            verdicts: Vec::new(),
            sealed_per_device: BTreeMap::new(),
            sealed_window_mas: BTreeMap::new(),
            series_sealed_windows: 0,
            nacks_sent: 0,
            reports_accepted: 0,
            records_accepted: 0,
            records_duplicate_filtered: 0,
        }
    }

    /// The aggregator's backhaul address.
    pub fn address(&self) -> AggregatorAddr {
        self.address
    }

    /// The membership registry.
    pub fn registry(&self) -> &MembershipRegistry {
        &self.registry
    }

    /// The tamper-evident ledger.
    pub fn ledger(&self) -> &MeteringLedger {
        &self.ledger
    }

    /// Mutable ledger access for the tamper-injection experiments.
    pub fn ledger_mut_for_experiment(&mut self) -> &mut MeteringLedger {
        &mut self.ledger
    }

    /// The consolidated billing engine (devices whose master membership this
    /// aggregator holds).
    pub fn billing(&self) -> &BillingEngine {
        &self.billing
    }

    /// Per-window verification verdicts so far.
    pub fn verdicts(&self) -> &[WindowVerdict] {
        &self.verdicts
    }

    /// The entropy-based per-device detector.
    pub fn entropy_detector(&self) -> &EntropyDetector {
        &self.entropy
    }

    /// Time series of the aggregator's own network-level measurements.
    pub fn network_series(&self) -> &TimeSeries {
        &self.network_series
    }

    /// Time series of the per-report device sums received.
    pub fn reported_series(&self) -> &TimeSeries {
        &self.reported_series
    }

    /// Per-device consumption series as known to this aggregator (local
    /// reports plus records forwarded from foreign networks) — the data
    /// behind Fig. 6.
    pub fn device_series(&self, device: DeviceId) -> Option<&TimeSeries> {
        self.device_series.get(&device)
    }

    /// Number of Nacks sent (reports from non-members).
    pub fn nacks_sent(&self) -> u64 {
        self.nacks_sent
    }

    /// Number of consumption reports accepted.
    pub fn reports_accepted(&self) -> u64 {
        self.reports_accepted
    }

    /// Number of individual measurement records accepted (staged, billed or
    /// forwarded), after duplicate filtering, including roaming forwards
    /// billed here as the home network.
    pub fn records_accepted(&self) -> u64 {
        self.records_accepted
    }

    /// Number of individual measurement records discarded as duplicates
    /// (retransmissions below the ack watermark or the processed-through
    /// mark, locally or in a roaming forward).
    pub fn records_duplicate_filtered(&self) -> u64 {
        self.records_duplicate_filtered
    }

    /// Registers a device administratively (e.g. pre-provisioned at
    /// manufacturing time). Normal registration goes through
    /// [`handle_device_packet`](Self::handle_device_packet).
    pub fn register_master(
        &mut self,
        device: DeviceId,
        now: SimTime,
    ) -> Result<u16, MembershipError> {
        self.registry
            .register(device, MembershipKind::Master, None, now)
            .map(|m| m.slot)
    }

    /// Handles a packet published by a device in this aggregator's network.
    pub fn handle_device_packet(&mut self, packet: &Packet, now: SimTime) -> AggregatorOutput {
        match packet {
            Packet::RegistrationRequest { device, master } => {
                self.handle_registration(*device, *master, now)
            }
            Packet::ConsumptionReport {
                device,
                master,
                records,
            } => self.handle_report(*device, *master, records, now),
            _ => AggregatorOutput::default(),
        }
    }

    fn handle_registration(
        &mut self,
        device: DeviceId,
        master: Option<AggregatorAddr>,
        now: SimTime,
    ) -> AggregatorOutput {
        let mut out = AggregatorOutput::default();
        if self.registry.is_blocked(device) {
            out.to_devices.push(Packet::RegistrationReject {
                device,
                reason: RejectReason::Blocked,
            });
            return out;
        }
        match master {
            // First registration, or the device's home network is this one.
            None => {
                out.merge(self.complete_registration(device, MembershipKind::Master, None, now));
            }
            Some(home) if home == self.address => {
                out.merge(self.complete_registration(device, MembershipKind::Master, None, now));
            }
            // Roaming device: verify with its home aggregator first.
            Some(home) => {
                self.pending_temporary.insert(device, home);
                out.to_aggregators.push((
                    home,
                    Packet::MembershipVerifyRequest {
                        device,
                        master: home,
                        requester: self.address,
                    },
                ));
            }
        }
        out
    }

    fn complete_registration(
        &mut self,
        device: DeviceId,
        kind: MembershipKind,
        home: Option<AggregatorAddr>,
        now: SimTime,
    ) -> AggregatorOutput {
        let mut out = AggregatorOutput::default();
        match self.registry.register(device, kind, home, now) {
            Ok(membership) => out.to_devices.push(Packet::RegistrationAccept {
                device,
                address: self.address,
                membership: kind,
                slot: membership.slot,
            }),
            Err(MembershipError::NoFreeSlots) => out.to_devices.push(Packet::RegistrationReject {
                device,
                reason: RejectReason::NoFreeSlots,
            }),
            Err(MembershipError::Blocked(_)) => out.to_devices.push(Packet::RegistrationReject {
                device,
                reason: RejectReason::Blocked,
            }),
            Err(MembershipError::NotAMember(_)) => {}
        }
        out
    }

    fn handle_report(
        &mut self,
        device: DeviceId,
        master: Option<AggregatorAddr>,
        records: &[MeasurementRecord],
        now: SimTime,
    ) -> AggregatorOutput {
        let mut out = AggregatorOutput::default();
        let Some(membership) = self.registry.membership(device).copied() else {
            // Not a member: negative acknowledgment (Fig. 3, sequence 2).
            self.nacks_sent += 1;
            out.to_devices.push(Packet::Nack { device });
            return out;
        };
        if records.is_empty() {
            return out;
        }
        self.reports_accepted += 1;
        let billed_by = match membership.kind {
            MembershipKind::Master => self.address,
            MembershipKind::Temporary => membership.home.unwrap_or(self.address),
        };
        let last_sequence = records.iter().map(|r| r.sequence).max().unwrap_or(0);
        let already_acked = membership.last_acked_sequence;

        let mut report_sum_ma = 0.0;
        let mut fresh_for_home: Vec<MeasurementRecord> = Vec::new();
        for record in records {
            // Ignore duplicates the device retransmitted before seeing our ack.
            if already_acked.is_some_and(|acked| record.sequence <= acked) {
                self.records_duplicate_filtered += 1;
                continue;
            }
            // Ignore records this aggregator already processed under an
            // *earlier* membership — re-registration resets the ack filter
            // above, so a device that missed its final ack before
            // unplugging replays already-staged records here.
            if self
                .processed_through
                .get(&device)
                .is_some_and(|&mark| record.sequence <= mark)
            {
                self.records_duplicate_filtered += 1;
                continue;
            }
            if membership.kind == MembershipKind::Temporary {
                fresh_for_home.push(*record);
            }
            self.records_accepted += 1;
            report_sum_ma += record.mean_current_ma();
            self.entropy.observe(device, record.mean_current_ma());
            self.stage_entry(device, billed_by, record);
            let series = self
                .device_series
                .entry(device)
                .or_insert_with(|| TimeSeries::new(format!("{device} @ {}", self.address)));
            series.push(now, record.mean_current_ma());
            match membership.kind {
                MembershipKind::Master => {
                    self.billing.bill_record(
                        device,
                        record.charge_uas,
                        record.interval_start_us,
                        record.interval_end_us,
                        record.backfilled,
                        CollectionOrigin::Home,
                    );
                }
                MembershipKind::Temporary => {
                    // Forward on behalf of the home network (cost centre).
                }
            }
            let mark = self.processed_through.entry(device).or_insert(0);
            *mark = (*mark).max(record.sequence);
            self.window_reported_sum_mas += record.charge_mas();
        }

        // Forward roaming consumption to the home aggregator — only the
        // records that survived duplicate filtering. Forwarding the raw
        // report would re-forward retransmitted records (device missed our
        // ack) and the home network, which bills forwards unconditionally,
        // would double-bill them.
        if membership.kind == MembershipKind::Temporary && !fresh_for_home.is_empty() {
            if let Some(home) = membership.home {
                out.to_aggregators.push((
                    home,
                    Packet::ForwardedConsumption {
                        device,
                        collector: self.address,
                        records: fresh_for_home,
                    },
                ));
            }
        }
        let _ = master;
        if report_sum_ma > 0.0 || !records.is_empty() {
            self.reported_series.push(now, report_sum_ma);
        }
        self.registry.note_ack(device, last_sequence);
        out.to_devices.push(Packet::Ack {
            device,
            through_sequence: last_sequence,
        });
        out
    }

    fn stage_entry(
        &mut self,
        device: DeviceId,
        billed_by: AggregatorAddr,
        record: &MeasurementRecord,
    ) {
        self.ledger.stage(LedgerEntry {
            device_id: device.0,
            collected_by: self.address.0,
            billed_by: billed_by.0,
            sequence: record.sequence,
            interval_start_us: record.interval_start_us,
            interval_end_us: record.interval_end_us,
            charge_uas: record.charge_uas,
            backfilled: record.backfilled,
        });
    }

    /// Handles a packet arriving over the aggregator backhaul.
    pub fn handle_backhaul(
        &mut self,
        from: AggregatorAddr,
        packet: &Packet,
        now: SimTime,
    ) -> AggregatorOutput {
        let mut out = AggregatorOutput::default();
        match packet {
            Packet::MembershipVerifyRequest {
                device, requester, ..
            } => {
                // We are the claimed home network: vouch for the device only
                // if we hold (and have not revoked) its master membership.
                let accepted = self
                    .registry
                    .membership(*device)
                    .is_some_and(|m| m.kind == MembershipKind::Master)
                    && !self.registry.is_blocked(*device);
                out.to_aggregators.push((
                    *requester,
                    Packet::MembershipVerifyResponse {
                        device: *device,
                        accepted,
                    },
                ));
            }
            Packet::MembershipVerifyResponse { device, accepted } => {
                if let Some(home) = self.pending_temporary.remove(device) {
                    if *accepted {
                        out.merge(self.complete_registration(
                            *device,
                            MembershipKind::Temporary,
                            Some(home),
                            now,
                        ));
                    } else {
                        out.to_devices.push(Packet::RegistrationReject {
                            device: *device,
                            reason: RejectReason::MasterVerificationFailed,
                        });
                    }
                }
            }
            Packet::ForwardedConsumption {
                device,
                collector,
                records,
            } => {
                // We are the home network: bill the roaming consumption and
                // commit it to our ledger as well.
                for record in records {
                    // Skip records already processed here (billed directly,
                    // or billed via an earlier forward) — retransmitted
                    // after a lost ack and collected anew by the foreign
                    // network.
                    if self
                        .processed_through
                        .get(device)
                        .is_some_and(|&mark| record.sequence <= mark)
                    {
                        self.records_duplicate_filtered += 1;
                        continue;
                    }
                    self.records_accepted += 1;
                    self.billing.bill_record(
                        *device,
                        record.charge_uas,
                        record.interval_start_us,
                        record.interval_end_us,
                        record.backfilled,
                        CollectionOrigin::Roaming {
                            collector: *collector,
                        },
                    );
                    let mark = self.processed_through.entry(*device).or_insert(0);
                    *mark = (*mark).max(record.sequence);
                    self.stage_entry(*device, self.address, record);
                    let series = self
                        .device_series
                        .entry(*device)
                        .or_insert_with(|| TimeSeries::new(format!("{device} @ {}", self.address)));
                    series.push(now, record.mean_current_ma());
                }
            }
            Packet::TransferMembership { device, new_master }
                // Ownership of the device moved to another network.
                if *new_master != self.address => {
                    let _ = self.registry.remove(*device);
                }
            Packet::RemoveDevice { device } => {
                let _ = self.registry.remove(*device);
                self.registry.block(*device);
            }
            _ => {}
        }
        let _ = from;
        out
    }

    /// Feeds the aggregator's own system-level measurement: `true_total` is
    /// the ground-truth current entering the network (device loads plus
    /// losses), which the aggregator observes through its own INA219.
    pub fn observe_upstream(&mut self, now: SimTime, true_total: Milliamps) -> Milliamps {
        let measured = self.sensor.measure(true_total);
        self.network_series.push(now, measured.value());
        self.window_measured.push(measured.value());
        measured
    }

    /// Ends the current verification window: compares the devices' reported
    /// consumption with the aggregator's own measurement, seals the verified
    /// records into a ledger block and returns the verdict.
    pub fn end_window(&mut self, now: SimTime) -> Option<WindowVerdict> {
        let elapsed_s = now
            .saturating_duration_since(self.window_started_at)
            .as_secs_f64();
        let verdict = if self.window_measured.is_empty() || elapsed_s <= 0.0 {
            None
        } else {
            let measured_mean: f64 =
                self.window_measured.iter().sum::<f64>() / self.window_measured.len() as f64;
            // Mean concurrent current reported by the devices over the
            // window: total reported charge divided by the window length.
            let reported_mean = self.window_reported_sum_mas / elapsed_s;
            let verdict = self.verifier.check(
                Milliamps::new(reported_mean.max(0.0)),
                Milliamps::new(measured_mean.max(0.0)),
            );
            self.verdicts.push(verdict.clone());
            Some(verdict)
        };
        self.window_reported_sum_mas = 0.0;
        self.window_measured.clear();
        self.window_started_at = now;
        // Seal everything verified in this window into the chain.
        let _ = self.ledger.commit_block(self.address.0, now.as_micros());
        verdict
    }

    /// Head digest of the aggregator's ledger (published as the audit anchor).
    pub fn ledger_anchor(&self) -> Digest {
        self.ledger.chain().head_hash()
    }

    /// Applies a [`RetentionPolicy`] after a window seal: evicts ledger
    /// blocks, seals their accuracy contributions and prunes the
    /// measurement series down to the policy's active horizon. `window` is
    /// the verification-window length the run seals on (accuracy windows
    /// share its grid). A [`RetentionPolicy::KeepAll`] call is free.
    ///
    /// Everything folded here happens in the same order a full-history scan
    /// would visit it, so bounded and keep-all runs produce bit-identical
    /// reports (see the sealed-summary fields and
    /// [`TimeSeries::prune_before`]).
    pub fn compact(&mut self, policy: RetentionPolicy, now: SimTime, window: SimDuration) {
        let RetentionPolicy::ActiveWindows(keep) = policy else {
            return;
        };
        let window_us = window.as_micros().max(1);
        let keep_us = window_us.saturating_mul(keep.max(2) as u64);
        let Some(cutoff_us) = now.as_micros().checked_sub(keep_us) else {
            return;
        };
        if cutoff_us == 0 {
            return;
        }
        // Ledger: evict sealed blocks, folding each evicted entry into its
        // accuracy window's sealed per-device accumulator in commit order.
        let sealed = &mut self.sealed_per_device;
        self.ledger.evict_before(cutoff_us, |entry| {
            let bucket = entry.interval_end_us / window_us;
            *sealed
                .entry(bucket)
                .or_default()
                .entry(entry.device_id)
                .or_default() += entry.charge_mas();
        });
        // Series: pre-integrate the accuracy windows that fall entirely
        // below the cutoff, then drop their samples.
        let cutoff = SimTime::from_micros(cutoff_us);
        for w in self.series_sealed_windows..cutoff_us / window_us {
            let start = SimTime::from_micros(w * window_us);
            let end = SimTime::from_micros((w + 1) * window_us);
            let mas = self.network_series.window(start, end).integrate();
            self.sealed_window_mas.insert(w, mas);
        }
        self.series_sealed_windows = cutoff_us / window_us;
        self.network_series.prune_before(cutoff);
        self.reported_series.prune_before(cutoff);
        for series in self.device_series.values_mut() {
            series.prune_before(cutoff);
        }
    }

    /// The sealed per-device accuracy contributions of window `index`
    /// (charge in mA·s), when compaction evicted entries belonging to it.
    pub fn sealed_accuracy_per_device(&self, index: u64) -> Option<&BTreeMap<u64, f64>> {
        self.sealed_per_device.get(&index)
    }

    /// The pre-integrated own-measurement charge (mA·s) of accuracy window
    /// `index`, when compaction pruned its series samples.
    pub fn sealed_window_mas(&self, index: u64) -> Option<f64> {
        self.sealed_window_mas.get(&index).copied()
    }

    /// Resident-state footprint: ledger blocks and series samples still in
    /// memory. The scale bench's bounded-memory cells assert this stays
    /// O(active window) while [`MeteringLedger::chain`]'s `len()` keeps
    /// counting the full history.
    pub fn resident_footprint(&self) -> (usize, usize) {
        let samples = self.network_series.retained_len()
            + self.reported_series.retained_len()
            + self
                .device_series
                .values()
                .map(rtem_sim::trace::TimeSeries::retained_len)
                .sum::<usize>();
        (self.ledger.chain().retained_len(), samples)
    }

    /// Cross-checks a block's record bytes proposed by a *peer* network's
    /// consensus group, returning how many records this aggregator refuses
    /// to vouch for.
    ///
    /// A record is flagged when it is not a well-formed
    /// [`LedgerEntry`] at all, or when it
    /// names this aggregator as collector or billing authority without a
    /// matching committed or staged entry in this aggregator's own ledger —
    /// either way no honest site produced it. A colluding quorum can commit
    /// a forgery inside its own network, but the cross-check at window seal
    /// means the forgery cannot survive contact with any honest peer.
    pub fn cross_check_records(&self, records: &[Vec<u8>]) -> usize {
        records
            .iter()
            .filter(|bytes| match LedgerEntry::from_bytes(bytes) {
                None => true,
                Some(entry) => {
                    let names_us =
                        entry.collected_by == self.address.0 || entry.billed_by == self.address.0;
                    names_us && !self.vouches_for(&entry)
                }
            })
            .count()
    }

    /// `true` when this aggregator's own ledger (committed or staged)
    /// contains an entry matching `(device, sequence, charge)`.
    fn vouches_for(&self, entry: &LedgerEntry) -> bool {
        let matches = |e: &LedgerEntry| {
            e.device_id == entry.device_id
                && e.sequence == entry.sequence
                && e.charge_uas == entry.charge_uas
        };
        self.ledger.staged_entries().iter().any(matches)
            || self.ledger.all_entries().iter().any(matches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtem_sim::time::SimDuration;

    fn aggregator(addr: u32) -> Aggregator {
        Aggregator::new(
            AggregatorConfig::testbed(AggregatorAddr(addr)),
            SimRng::seed_from_u64(addr as u64),
        )
    }

    fn record(device: DeviceId, seq: u64, current_ma: f64) -> MeasurementRecord {
        MeasurementRecord {
            device,
            sequence: seq,
            interval_start_us: seq * 100_000,
            interval_end_us: (seq + 1) * 100_000,
            mean_current_ua: (current_ma * 1000.0) as u64,
            charge_uas: (current_ma * 100.0) as u64, // current * 0.1 s
            backfilled: false,
        }
    }

    #[test]
    fn home_registration_accepts_and_assigns_slot() {
        let mut agg = aggregator(1);
        let out = agg.handle_device_packet(
            &Packet::RegistrationRequest {
                device: DeviceId(1),
                master: None,
            },
            SimTime::ZERO,
        );
        assert_eq!(out.to_devices.len(), 1);
        assert!(matches!(
            out.to_devices[0],
            Packet::RegistrationAccept {
                membership: MembershipKind::Master,
                ..
            }
        ));
        assert!(agg.registry().is_member(DeviceId(1)));
    }

    #[test]
    fn registration_rejected_when_full() {
        let mut agg = Aggregator::new(
            AggregatorConfig {
                slots: SlotTable::new(SimDuration::from_millis(10), 1),
                ..AggregatorConfig::testbed(AggregatorAddr(1))
            },
            SimRng::seed_from_u64(1),
        );
        agg.register_master(DeviceId(1), SimTime::ZERO).unwrap();
        let out = agg.handle_device_packet(
            &Packet::RegistrationRequest {
                device: DeviceId(2),
                master: None,
            },
            SimTime::ZERO,
        );
        assert!(matches!(
            out.to_devices[0],
            Packet::RegistrationReject {
                reason: RejectReason::NoFreeSlots,
                ..
            }
        ));
    }

    #[test]
    fn report_from_member_is_acked_and_committed() {
        let mut agg = aggregator(1);
        agg.register_master(DeviceId(1), SimTime::ZERO).unwrap();
        let out = agg.handle_device_packet(
            &Packet::ConsumptionReport {
                device: DeviceId(1),
                master: Some(AggregatorAddr(1)),
                records: vec![record(DeviceId(1), 0, 150.0), record(DeviceId(1), 1, 149.0)],
            },
            SimTime::from_millis(200),
        );
        assert!(matches!(
            out.to_devices[0],
            Packet::Ack {
                through_sequence: 1,
                ..
            }
        ));
        assert_eq!(agg.reports_accepted(), 1);
        agg.end_window(SimTime::from_secs(1));
        assert_eq!(agg.ledger().account(1).unwrap().entries, 2);
        assert!(agg.billing().bill(DeviceId(1)).is_some());
        assert!(agg.device_series(DeviceId(1)).is_some());
    }

    #[test]
    fn duplicate_records_are_not_double_billed() {
        let mut agg = aggregator(1);
        agg.register_master(DeviceId(1), SimTime::ZERO).unwrap();
        let report = Packet::ConsumptionReport {
            device: DeviceId(1),
            master: Some(AggregatorAddr(1)),
            records: vec![record(DeviceId(1), 0, 100.0)],
        };
        agg.handle_device_packet(&report, SimTime::from_millis(100));
        // The device retransmits the same record (ack lost).
        agg.handle_device_packet(&report, SimTime::from_millis(200));
        agg.end_window(SimTime::from_secs(1));
        assert_eq!(agg.ledger().account(1).unwrap().entries, 1);
        assert_eq!(agg.billing().bill(DeviceId(1)).unwrap().records, 1);
    }

    #[test]
    fn report_from_non_member_gets_nack() {
        let mut agg = aggregator(2);
        let out = agg.handle_device_packet(
            &Packet::ConsumptionReport {
                device: DeviceId(1),
                master: Some(AggregatorAddr(1)),
                records: vec![record(DeviceId(1), 5, 120.0)],
            },
            SimTime::from_secs(10),
        );
        assert_eq!(
            out.to_devices,
            vec![Packet::Nack {
                device: DeviceId(1)
            }]
        );
        assert_eq!(agg.nacks_sent(), 1);
    }

    #[test]
    fn temporary_registration_requires_home_verification() {
        let mut home = aggregator(1);
        let mut foreign = aggregator(2);
        home.register_master(DeviceId(1), SimTime::ZERO).unwrap();

        // Device asks the foreign aggregator for a temporary membership.
        let out = foreign.handle_device_packet(
            &Packet::RegistrationRequest {
                device: DeviceId(1),
                master: Some(AggregatorAddr(1)),
            },
            SimTime::from_secs(10),
        );
        assert!(out.to_devices.is_empty(), "no accept before verification");
        let (to, verify) = &out.to_aggregators[0];
        assert_eq!(*to, AggregatorAddr(1));

        // Home aggregator vouches for the device.
        let home_out = home.handle_backhaul(AggregatorAddr(2), verify, SimTime::from_secs(10));
        let (back_to, response) = &home_out.to_aggregators[0];
        assert_eq!(*back_to, AggregatorAddr(2));
        assert!(matches!(
            response,
            Packet::MembershipVerifyResponse { accepted: true, .. }
        ));

        // Foreign aggregator completes the temporary registration.
        let final_out =
            foreign.handle_backhaul(AggregatorAddr(1), response, SimTime::from_secs(10));
        assert!(matches!(
            final_out.to_devices[0],
            Packet::RegistrationAccept {
                membership: MembershipKind::Temporary,
                ..
            }
        ));
        assert!(foreign.registry().is_member(DeviceId(1)));
    }

    #[test]
    fn unknown_device_fails_home_verification() {
        let mut home = aggregator(1);
        let mut foreign = aggregator(2);
        let out = foreign.handle_device_packet(
            &Packet::RegistrationRequest {
                device: DeviceId(42),
                master: Some(AggregatorAddr(1)),
            },
            SimTime::ZERO,
        );
        let (_, verify) = &out.to_aggregators[0];
        let home_out = home.handle_backhaul(AggregatorAddr(2), verify, SimTime::ZERO);
        let (_, response) = &home_out.to_aggregators[0];
        assert!(matches!(
            response,
            Packet::MembershipVerifyResponse {
                accepted: false,
                ..
            }
        ));
        let final_out = foreign.handle_backhaul(AggregatorAddr(1), response, SimTime::ZERO);
        assert!(matches!(
            final_out.to_devices[0],
            Packet::RegistrationReject {
                reason: RejectReason::MasterVerificationFailed,
                ..
            }
        ));
        assert!(!foreign.registry().is_member(DeviceId(42)));
    }

    #[test]
    fn roaming_consumption_is_forwarded_and_billed_at_home() {
        let mut home = aggregator(1);
        let mut foreign = aggregator(2);
        home.register_master(DeviceId(1), SimTime::ZERO).unwrap();
        // Temporary membership at the foreign aggregator (administratively,
        // skipping the verification round trip already covered above).
        foreign
            .registry
            .register(
                DeviceId(1),
                MembershipKind::Temporary,
                Some(AggregatorAddr(1)),
                SimTime::from_secs(10),
            )
            .unwrap();

        let out = foreign.handle_device_packet(
            &Packet::ConsumptionReport {
                device: DeviceId(1),
                master: Some(AggregatorAddr(1)),
                records: vec![record(DeviceId(1), 0, 200.0)],
            },
            SimTime::from_secs(11),
        );
        // Ack to the device plus a forward to the home aggregator.
        assert!(matches!(out.to_devices[0], Packet::Ack { .. }));
        let (to, forwarded) = &out.to_aggregators[0];
        assert_eq!(*to, AggregatorAddr(1));

        home.handle_backhaul(AggregatorAddr(2), forwarded, SimTime::from_secs(11));
        let bill = home.billing().bill(DeviceId(1)).unwrap();
        assert_eq!(bill.roaming_charge_uas, bill.charge_uas);
        assert!(home.device_series(DeviceId(1)).is_some());
        // The foreign aggregator does not bill the roaming device itself.
        assert!(foreign.billing().bill(DeviceId(1)).is_none());
    }

    #[test]
    fn forwarded_records_already_billed_directly_are_skipped() {
        // The device was home for seqs 0..=1 (billed directly), missed the
        // final ack, unplugged, and retransmitted at a foreign collector,
        // whose forward carries the stale seq 1 plus the fresh seq 2.
        let mut home = aggregator(1);
        home.register_master(DeviceId(1), SimTime::ZERO).unwrap();
        home.handle_device_packet(
            &Packet::ConsumptionReport {
                device: DeviceId(1),
                master: Some(AggregatorAddr(1)),
                records: vec![record(DeviceId(1), 0, 100.0), record(DeviceId(1), 1, 100.0)],
            },
            SimTime::from_secs(1),
        );
        assert_eq!(home.billing().bill(DeviceId(1)).unwrap().records, 2);
        home.handle_backhaul(
            AggregatorAddr(2),
            &Packet::ForwardedConsumption {
                device: DeviceId(1),
                collector: AggregatorAddr(2),
                records: vec![record(DeviceId(1), 1, 100.0), record(DeviceId(1), 2, 100.0)],
            },
            SimTime::from_secs(20),
        );
        let bill = home.billing().bill(DeviceId(1)).unwrap();
        assert_eq!(bill.records, 3, "seq 1 must not be billed twice");
        assert_eq!(bill.charge_uas, 30_000);
        assert_eq!(bill.roaming_charge_uas, 10_000, "only seq 2 roamed");
        // The ledger saw each sequence exactly once too.
        home.end_window(SimTime::from_secs(30));
        assert_eq!(home.ledger().account(1).unwrap().entries, 3);
    }

    #[test]
    fn rebilling_guard_survives_reregistration_in_both_directions() {
        let mut home = aggregator(1);
        home.register_master(DeviceId(1), SimTime::ZERO).unwrap();
        // Direction 1: roaming-billed records replayed directly at home.
        // Seqs 0..=1 arrive as a foreign forward and are billed as roaming.
        home.handle_backhaul(
            AggregatorAddr(2),
            &Packet::ForwardedConsumption {
                device: DeviceId(1),
                collector: AggregatorAddr(2),
                records: vec![record(DeviceId(1), 0, 100.0), record(DeviceId(1), 1, 100.0)],
            },
            SimTime::from_secs(5),
        );
        // The device comes home, re-registers (fresh membership: the ack
        // filter is reset) and retransmits the never-acked seqs 0..=1 plus
        // a fresh seq 2.
        home.registry.remove(DeviceId(1)).unwrap();
        home.register_master(DeviceId(1), SimTime::from_secs(10))
            .unwrap();
        home.handle_device_packet(
            &Packet::ConsumptionReport {
                device: DeviceId(1),
                master: Some(AggregatorAddr(1)),
                records: vec![
                    record(DeviceId(1), 0, 100.0),
                    record(DeviceId(1), 1, 100.0),
                    record(DeviceId(1), 2, 100.0),
                ],
            },
            SimTime::from_secs(11),
        );
        let bill = home.billing().bill(DeviceId(1)).unwrap();
        assert_eq!(bill.records, 3, "roaming-billed seqs re-billed directly");
        assert_eq!(bill.charge_uas, 30_000);

        // Direction 2: home-billed records replayed after an unplug/replug
        // at home (another fresh membership).
        home.registry.remove(DeviceId(1)).unwrap();
        home.register_master(DeviceId(1), SimTime::from_secs(20))
            .unwrap();
        home.handle_device_packet(
            &Packet::ConsumptionReport {
                device: DeviceId(1),
                master: Some(AggregatorAddr(1)),
                records: vec![record(DeviceId(1), 2, 100.0), record(DeviceId(1), 3, 100.0)],
            },
            SimTime::from_secs(21),
        );
        let bill = home.billing().bill(DeviceId(1)).unwrap();
        assert_eq!(bill.records, 4, "home-billed seq 2 re-billed after replug");
        assert_eq!(bill.charge_uas, 40_000);
        // The ledger matches: one entry per sequence.
        home.end_window(SimTime::from_secs(30));
        assert_eq!(home.ledger().account(1).unwrap().entries, 4);
    }

    #[test]
    fn retransmitted_roaming_report_is_not_reforwarded() {
        let mut home = aggregator(1);
        let mut foreign = aggregator(2);
        home.register_master(DeviceId(1), SimTime::ZERO).unwrap();
        foreign
            .registry
            .register(
                DeviceId(1),
                MembershipKind::Temporary,
                Some(AggregatorAddr(1)),
                SimTime::from_secs(10),
            )
            .unwrap();
        let report = Packet::ConsumptionReport {
            device: DeviceId(1),
            master: Some(AggregatorAddr(1)),
            records: vec![record(DeviceId(1), 0, 200.0)],
        };
        // First delivery forwards once; the device misses the ack and
        // retransmits the identical report.
        let first = foreign.handle_device_packet(&report, SimTime::from_secs(11));
        assert_eq!(first.to_aggregators.len(), 1);
        let second = foreign.handle_device_packet(&report, SimTime::from_secs(12));
        assert!(
            second.to_aggregators.is_empty(),
            "retransmitted duplicates must not be re-forwarded (home would double-bill)"
        );
        // Home bills the single forward exactly once.
        let (_, forwarded) = &first.to_aggregators[0];
        home.handle_backhaul(AggregatorAddr(2), forwarded, SimTime::from_secs(11));
        let bill = home.billing().bill(DeviceId(1)).unwrap();
        assert_eq!(bill.records, 1);
        assert_eq!(bill.charge_uas, 20_000);
    }

    #[test]
    fn remove_device_blocks_future_registration() {
        let mut agg = aggregator(1);
        agg.register_master(DeviceId(1), SimTime::ZERO).unwrap();
        agg.handle_backhaul(
            AggregatorAddr(1),
            &Packet::RemoveDevice {
                device: DeviceId(1),
            },
            SimTime::from_secs(1),
        );
        assert!(!agg.registry().is_member(DeviceId(1)));
        let out = agg.handle_device_packet(
            &Packet::RegistrationRequest {
                device: DeviceId(1),
                master: None,
            },
            SimTime::from_secs(2),
        );
        assert!(matches!(
            out.to_devices[0],
            Packet::RegistrationReject {
                reason: RejectReason::Blocked,
                ..
            }
        ));
    }

    #[test]
    fn verification_window_flags_under_reporting() {
        let mut agg = aggregator(1);
        agg.register_master(DeviceId(1), SimTime::ZERO).unwrap();
        // Device reports 100 mA over one second...
        agg.handle_device_packet(
            &Packet::ConsumptionReport {
                device: DeviceId(1),
                master: Some(AggregatorAddr(1)),
                records: (0..10)
                    .map(|i| MeasurementRecord {
                        device: DeviceId(1),
                        sequence: i,
                        interval_start_us: i * 100_000,
                        interval_end_us: (i + 1) * 100_000,
                        mean_current_ua: 100_000,
                        charge_uas: 10_000,
                        backfilled: false,
                    })
                    .collect(),
            },
            SimTime::from_secs(1),
        );
        // ...but the aggregator's meter sees 250 mA flowing.
        for i in 0..10 {
            agg.observe_upstream(SimTime::from_millis(100 * i), Milliamps::new(250.0));
        }
        let verdict = agg.end_window(SimTime::from_secs(1)).unwrap();
        assert!(verdict.anomalous);
        // Honest window afterwards passes.
        agg.handle_device_packet(
            &Packet::ConsumptionReport {
                device: DeviceId(1),
                master: Some(AggregatorAddr(1)),
                records: (10..20)
                    .map(|i| MeasurementRecord {
                        device: DeviceId(1),
                        sequence: i,
                        interval_start_us: i * 100_000,
                        interval_end_us: (i + 1) * 100_000,
                        mean_current_ua: 240_000,
                        charge_uas: 24_000,
                        backfilled: false,
                    })
                    .collect(),
            },
            SimTime::from_secs(2),
        );
        for i in 10..20 {
            agg.observe_upstream(SimTime::from_millis(100 * i), Milliamps::new(250.0));
        }
        let verdict = agg.end_window(SimTime::from_secs(2)).unwrap();
        assert!(!verdict.anomalous, "residual {}", verdict.residual_ma);
    }

    #[test]
    fn ledger_audits_clean_after_operation() {
        let mut agg = aggregator(1);
        agg.register_master(DeviceId(1), SimTime::ZERO).unwrap();
        for w in 0..5u64 {
            agg.handle_device_packet(
                &Packet::ConsumptionReport {
                    device: DeviceId(1),
                    master: Some(AggregatorAddr(1)),
                    records: vec![record(DeviceId(1), w, 100.0)],
                },
                SimTime::from_secs(w + 1),
            );
            agg.observe_upstream(SimTime::from_secs(w + 1), Milliamps::new(105.0));
            agg.end_window(SimTime::from_secs(w + 1));
        }
        let report =
            rtem_chain::audit::audit_chain(agg.ledger().chain(), Some(agg.ledger_anchor()));
        assert!(report.is_clean());
        assert!(agg.ledger().chain().len() >= 6);
    }
}
