//! Consolidated billing at the home aggregator.
//!
//! The home network "can continue billing the device for its consumption in
//! the external network" (§II-C): records collected locally and records
//! forwarded by foreign aggregators are consolidated into one per-device
//! bill. Billing only covers time the device is electrically connected —
//! transit (Idle in Fig. 6) is never billed because no records exist for it.

use rtem_net::packet::{AggregatorAddr, DeviceId};
use rtem_sensors::energy::{MilliampSeconds, Millivolts, MilliwattHours};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Where a billed record was collected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CollectionOrigin {
    /// Collected by the home aggregator itself.
    Home,
    /// Collected by a foreign aggregator and forwarded over the backhaul.
    Roaming {
        /// The foreign aggregator that collected the records.
        collector: AggregatorAddr,
    },
}

/// Per-device billing state.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceBill {
    /// Total charge billed, in microamp-seconds.
    pub charge_uas: u64,
    /// Charge collected while the device roamed in foreign networks.
    pub roaming_charge_uas: u64,
    /// Number of records billed.
    pub records: u64,
    /// Number of records that arrived via backfill (local storage).
    pub backfilled_records: u64,
    /// Accumulated cost in currency units.
    pub cost: f64,
}

impl DeviceBill {
    /// Billed energy at the given supply voltage.
    pub fn energy_at(&self, supply: Millivolts) -> MilliwattHours {
        MilliampSeconds::from_uas(self.charge_uas).energy_at(supply)
    }
}

/// Consolidated billing engine of one home aggregator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BillingEngine {
    price_per_mwh: f64,
    supply: Millivolts,
    bills: BTreeMap<DeviceId, DeviceBill>,
}

impl BillingEngine {
    /// Creates a billing engine with a flat price per mWh.
    pub fn new(price_per_mwh: f64, supply: Millivolts) -> Self {
        BillingEngine {
            price_per_mwh,
            supply,
            bills: BTreeMap::new(),
        }
    }

    /// Bills one verified record for `device`.
    pub fn bill_record(
        &mut self,
        device: DeviceId,
        charge_uas: u64,
        backfilled: bool,
        origin: CollectionOrigin,
    ) {
        let bill = self.bills.entry(device).or_default();
        bill.charge_uas += charge_uas;
        bill.records += 1;
        if backfilled {
            bill.backfilled_records += 1;
        }
        if let CollectionOrigin::Roaming { .. } = origin {
            bill.roaming_charge_uas += charge_uas;
        }
        let energy = MilliampSeconds::from_uas(charge_uas).energy_at(self.supply);
        bill.cost += energy.value() * self.price_per_mwh;
    }

    /// The bill for `device`, if any records were billed.
    pub fn bill(&self, device: DeviceId) -> Option<&DeviceBill> {
        self.bills.get(&device)
    }

    /// Iterates over all bills.
    pub fn iter(&self) -> impl Iterator<Item = (DeviceId, &DeviceBill)> {
        self.bills.iter().map(|(d, b)| (*d, b))
    }

    /// Total billed energy across all devices.
    pub fn total_energy(&self) -> MilliwattHours {
        self.bills.values().map(|b| b.energy_at(self.supply)).sum()
    }

    /// Total billed cost across all devices.
    pub fn total_cost(&self) -> f64 {
        self.bills.values().map(|b| b.cost).sum()
    }

    /// Number of devices with at least one billed record.
    pub fn device_count(&self) -> usize {
        self.bills.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> BillingEngine {
        BillingEngine::new(1.0, Millivolts::usb_bus())
    }

    #[test]
    fn billing_accumulates_per_device() {
        let mut e = engine();
        e.bill_record(DeviceId(1), 10_000, false, CollectionOrigin::Home);
        e.bill_record(DeviceId(1), 20_000, true, CollectionOrigin::Home);
        e.bill_record(DeviceId(2), 5_000, false, CollectionOrigin::Home);
        let b1 = e.bill(DeviceId(1)).unwrap();
        assert_eq!(b1.charge_uas, 30_000);
        assert_eq!(b1.records, 2);
        assert_eq!(b1.backfilled_records, 1);
        assert_eq!(b1.roaming_charge_uas, 0);
        assert_eq!(e.bill(DeviceId(2)).unwrap().charge_uas, 5_000);
        assert!(e.bill(DeviceId(3)).is_none());
        assert_eq!(e.device_count(), 2);
    }

    #[test]
    fn roaming_charge_tracked_separately() {
        let mut e = engine();
        e.bill_record(DeviceId(1), 10_000, false, CollectionOrigin::Home);
        e.bill_record(
            DeviceId(1),
            40_000,
            true,
            CollectionOrigin::Roaming {
                collector: AggregatorAddr(2),
            },
        );
        let b = e.bill(DeviceId(1)).unwrap();
        assert_eq!(b.charge_uas, 50_000);
        assert_eq!(b.roaming_charge_uas, 40_000);
    }

    #[test]
    fn cost_scales_with_energy_and_price() {
        let mut cheap = BillingEngine::new(1.0, Millivolts::usb_bus());
        let mut pricey = BillingEngine::new(3.0, Millivolts::usb_bus());
        // 3.6e9 µA·s = 3600 mA·s = 1 mAh -> 5 mWh at 5 V.
        cheap.bill_record(DeviceId(1), 3_600_000, false, CollectionOrigin::Home);
        pricey.bill_record(DeviceId(1), 3_600_000, false, CollectionOrigin::Home);
        let cheap_cost = cheap.bill(DeviceId(1)).unwrap().cost;
        let pricey_cost = pricey.bill(DeviceId(1)).unwrap().cost;
        assert!((pricey_cost / cheap_cost - 3.0).abs() < 1e-9);
        assert!((cheap.total_energy().value() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn totals_sum_over_devices() {
        let mut e = engine();
        for i in 0..4u64 {
            e.bill_record(DeviceId(i), 1_000, false, CollectionOrigin::Home);
        }
        assert_eq!(e.iter().count(), 4);
        assert!(e.total_cost() > 0.0);
        assert!(e.total_energy().value() > 0.0);
    }
}
