//! Consolidated billing at the home aggregator.
//!
//! The home network "can continue billing the device for its consumption in
//! the external network" (§II-C): records collected locally and records
//! forwarded by foreign aggregators are consolidated into one per-device
//! bill. Billing only covers time the device is electrically connected —
//! transit (Idle in Fig. 6) is never billed because no records exist for it.
//!
//! Pricing goes through a [`Tariff`]: the flat per-mWh rate of the paper's
//! testbed, a time-of-use schedule with validated non-overlapping daily
//! windows, a tier ladder over cumulative energy, or a demand charge on the
//! peak sliding-window draw. Every bill carries a [`CostBreakdown`] so the
//! volumetric, demand and roaming components stay separately auditable.

use core::fmt;
use rtem_net::packet::{AggregatorAddr, DeviceId};
use rtem_sensors::energy::{MilliampSeconds, Millivolts, MilliwattHours};
use rtem_sim::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Seconds in one billing day.
const SECONDS_PER_DAY: u64 = 86_400;

/// One daily time-of-use pricing window: `[start_s, end_s)` seconds from
/// midnight.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TouWindow {
    /// Window start, seconds from midnight (inclusive).
    pub start_s: u64,
    /// Window end, seconds from midnight (exclusive, at most 86 400).
    pub end_s: u64,
    /// Price per mWh inside the window.
    pub price_per_mwh: f64,
}

impl TouWindow {
    /// Creates a window.
    pub fn new(start_s: u64, end_s: u64, price_per_mwh: f64) -> TouWindow {
        TouWindow {
            start_s,
            end_s,
            price_per_mwh,
        }
    }

    fn contains(&self, second_of_day: u64) -> bool {
        self.start_s <= second_of_day && second_of_day < self.end_s
    }

    fn overlaps(&self, other: &TouWindow) -> bool {
        self.start_s < other.end_s && other.start_s < self.end_s
    }
}

/// One rung of a [`Tariff::Tiered`] ladder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierRate {
    /// Cumulative-energy upper bound of the tier in mWh; `None` marks the
    /// final, unbounded tier.
    pub limit_mwh: Option<f64>,
    /// Price per mWh inside the tier.
    pub price_per_mwh: f64,
}

impl TierRate {
    /// A bounded tier: applies up to `limit_mwh` of cumulative energy.
    pub fn upto(limit_mwh: f64, price_per_mwh: f64) -> TierRate {
        TierRate {
            limit_mwh: Some(limit_mwh),
            price_per_mwh,
        }
    }

    /// The final, unbounded tier.
    pub fn beyond(price_per_mwh: f64) -> TierRate {
        TierRate {
            limit_mwh: None,
            price_per_mwh,
        }
    }
}

/// Why a [`Tariff`] failed validation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TariffError {
    /// A rate is negative or not finite.
    NegativeRate {
        /// The offending rate (per mWh, or per mA for demand charges).
        rate: f64,
    },
    /// A time-of-use window starts at or after its end.
    InvertedTouWindow {
        /// Window start, seconds from midnight.
        start_s: u64,
        /// Window end, seconds from midnight.
        end_s: u64,
    },
    /// A time-of-use window extends past 24 h.
    TouWindowPastMidnight {
        /// The offending window end, seconds from midnight.
        end_s: u64,
    },
    /// Two time-of-use windows overlap — the price at an instant inside
    /// both would be ambiguous.
    OverlappingTouWindows {
        /// Index of the first window in declaration order.
        first: usize,
        /// Index of the second (overlapping) window.
        second: usize,
    },
    /// A time-of-use tariff declares no windows at all (use
    /// [`Tariff::Flat`] instead).
    EmptyTimeOfUse,
    /// A tier ladder has no rungs.
    EmptyTierLadder,
    /// A tier's cumulative-energy limit does not strictly increase over the
    /// previous rung.
    NonAscendingTiers {
        /// Index of the offending rung.
        index: usize,
    },
    /// A bounded rung follows the unbounded one (everything after `None`
    /// would be unreachable).
    BoundedTierAfterUnbounded {
        /// Index of the offending rung.
        index: usize,
    },
    /// The ladder never declares an unbounded final rung, leaving energy
    /// beyond the last limit without a declared price.
    NoUnboundedTier,
    /// A tier limit is non-positive or not finite.
    InvalidTierLimit {
        /// The offending limit, mWh.
        limit_mwh: f64,
    },
    /// A demand charge's sliding window is zero — peak demand would be
    /// undefined.
    ZeroDemandWindow,
}

impl fmt::Display for TariffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TariffError::NegativeRate { rate } => {
                write!(f, "tariff rate must be finite and non-negative, got {rate}")
            }
            TariffError::InvertedTouWindow { start_s, end_s } => {
                write!(
                    f,
                    "time-of-use window starts at {start_s} s but ends at {end_s} s"
                )
            }
            TariffError::TouWindowPastMidnight { end_s } => {
                write!(
                    f,
                    "time-of-use window ends at {end_s} s, past 24 h ({SECONDS_PER_DAY} s)"
                )
            }
            TariffError::OverlappingTouWindows { first, second } => {
                write!(f, "time-of-use windows {first} and {second} overlap")
            }
            TariffError::EmptyTimeOfUse => {
                write!(
                    f,
                    "time-of-use tariff declares no windows (use a flat tariff)"
                )
            }
            TariffError::EmptyTierLadder => write!(f, "tier ladder has no rungs"),
            TariffError::NonAscendingTiers { index } => {
                write!(
                    f,
                    "tier {index} does not increase over the previous rung's limit"
                )
            }
            TariffError::BoundedTierAfterUnbounded { index } => {
                write!(
                    f,
                    "tier {index} follows the unbounded rung and is unreachable"
                )
            }
            TariffError::InvalidTierLimit { limit_mwh } => {
                write!(
                    f,
                    "tier limit must be finite and positive, got {limit_mwh} mWh"
                )
            }
            TariffError::NoUnboundedTier => {
                write!(f, "tier ladder never declares an unbounded final rung")
            }
            TariffError::ZeroDemandWindow => write!(f, "demand-charge window is zero"),
        }
    }
}

impl std::error::Error for TariffError {}

/// How billed energy is priced.
///
/// # Examples
///
/// ```
/// use rtem_aggregator::billing::{Tariff, TouWindow};
///
/// let tou = Tariff::TimeOfUse {
///     windows: vec![TouWindow::new(18 * 3600, 22 * 3600, 3.0)],
///     off_window_price_per_mwh: 1.0,
/// };
/// assert!(tou.validate().is_ok());
/// assert_eq!(tou.energy_price_at(19 * 3600), 3.0);
/// assert_eq!(tou.energy_price_at(9 * 3600), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Tariff {
    /// One price at every hour — the paper's testbed billing.
    Flat {
        /// Price per mWh.
        price_per_mwh: f64,
    },
    /// Daily pricing windows (validated non-overlapping); consumption
    /// outside every window is priced at `off_window_price_per_mwh`.
    TimeOfUse {
        /// The declared windows.
        windows: Vec<TouWindow>,
        /// Price per mWh outside every window.
        off_window_price_per_mwh: f64,
    },
    /// A ladder over the device's cumulative billed energy: each rung prices
    /// the slice of energy between the previous limit and its own. A record
    /// spanning a rung boundary is split proportionally.
    Tiered {
        /// The ladder, in ascending-limit order, ending with an unbounded
        /// rung.
        tiers: Vec<TierRate>,
    },
    /// A volumetric price plus a charge on the device's peak mean draw over
    /// any sliding window of the given length.
    DemandCharge {
        /// Volumetric price per mWh.
        price_per_mwh: f64,
        /// Price per mA of peak sliding-window mean draw.
        demand_price_per_ma: f64,
        /// Length of the sliding window.
        window: SimDuration,
    },
}

impl Default for Tariff {
    fn default() -> Self {
        Tariff::flat(1.0)
    }
}

impl Tariff {
    /// A flat tariff.
    pub fn flat(price_per_mwh: f64) -> Tariff {
        Tariff::Flat { price_per_mwh }
    }

    /// A ready-made evening-peak time-of-use tariff: 3x the base price
    /// 18:00–22:00, 0.6x overnight 00:00–06:00, base price otherwise.
    pub fn evening_peak(base_price_per_mwh: f64) -> Tariff {
        Tariff::TimeOfUse {
            windows: vec![
                TouWindow::new(0, 6 * 3600, base_price_per_mwh * 0.6),
                TouWindow::new(18 * 3600, 22 * 3600, base_price_per_mwh * 3.0),
            ],
            off_window_price_per_mwh: base_price_per_mwh,
        }
    }

    /// A ready-made two-rung tier ladder: the first `first_tier_mwh` of
    /// cumulative energy at the base price, everything beyond at 2.5x.
    pub fn two_tier(base_price_per_mwh: f64, first_tier_mwh: f64) -> Tariff {
        Tariff::Tiered {
            tiers: vec![
                TierRate::upto(first_tier_mwh, base_price_per_mwh),
                TierRate::beyond(base_price_per_mwh * 2.5),
            ],
        }
    }

    /// A short human-readable label, used in suite cell keys and bench
    /// snapshots.
    pub fn label(&self) -> String {
        match self {
            Tariff::Flat { .. } => "flat".to_string(),
            Tariff::TimeOfUse { windows, .. } => format!("tou-{}w", windows.len()),
            Tariff::Tiered { tiers } => format!("tiered-{}", tiers.len()),
            Tariff::DemandCharge { .. } => "demand".to_string(),
        }
    }

    /// Checks the tariff for inconsistencies, returning the first found.
    pub fn validate(&self) -> Result<(), TariffError> {
        let check_rate = |rate: f64| {
            if rate.is_finite() && rate >= 0.0 {
                Ok(())
            } else {
                Err(TariffError::NegativeRate { rate })
            }
        };
        match self {
            Tariff::Flat { price_per_mwh } => check_rate(*price_per_mwh),
            Tariff::TimeOfUse {
                windows,
                off_window_price_per_mwh,
            } => {
                check_rate(*off_window_price_per_mwh)?;
                if windows.is_empty() {
                    return Err(TariffError::EmptyTimeOfUse);
                }
                for window in windows {
                    check_rate(window.price_per_mwh)?;
                    if window.start_s >= window.end_s {
                        return Err(TariffError::InvertedTouWindow {
                            start_s: window.start_s,
                            end_s: window.end_s,
                        });
                    }
                    if window.end_s > SECONDS_PER_DAY {
                        return Err(TariffError::TouWindowPastMidnight {
                            end_s: window.end_s,
                        });
                    }
                }
                for (i, a) in windows.iter().enumerate() {
                    for (j, b) in windows.iter().enumerate().skip(i + 1) {
                        if a.overlaps(b) {
                            return Err(TariffError::OverlappingTouWindows {
                                first: i,
                                second: j,
                            });
                        }
                    }
                }
                Ok(())
            }
            Tariff::Tiered { tiers } => {
                if tiers.is_empty() {
                    return Err(TariffError::EmptyTierLadder);
                }
                let mut previous_limit = 0.0;
                let mut unbounded_seen = false;
                for (index, tier) in tiers.iter().enumerate() {
                    check_rate(tier.price_per_mwh)?;
                    if unbounded_seen {
                        return Err(TariffError::BoundedTierAfterUnbounded { index });
                    }
                    match tier.limit_mwh {
                        Some(limit) => {
                            if !limit.is_finite() || limit <= 0.0 {
                                return Err(TariffError::InvalidTierLimit { limit_mwh: limit });
                            }
                            if limit <= previous_limit {
                                return Err(TariffError::NonAscendingTiers { index });
                            }
                            previous_limit = limit;
                        }
                        None => unbounded_seen = true,
                    }
                }
                if !unbounded_seen {
                    return Err(TariffError::NoUnboundedTier);
                }
                Ok(())
            }
            Tariff::DemandCharge {
                price_per_mwh,
                demand_price_per_ma,
                window,
            } => {
                check_rate(*price_per_mwh)?;
                check_rate(*demand_price_per_ma)?;
                if window.is_zero() {
                    return Err(TariffError::ZeroDemandWindow);
                }
                Ok(())
            }
        }
    }

    /// The volumetric price applicable at `second_of_day` (tier ladders
    /// return their first rung's price; demand charges their volumetric
    /// component).
    pub fn energy_price_at(&self, second_of_day: u64) -> f64 {
        match self {
            Tariff::Flat { price_per_mwh } => *price_per_mwh,
            Tariff::TimeOfUse {
                windows,
                off_window_price_per_mwh,
            } => windows
                .iter()
                .find(|w| w.contains(second_of_day % SECONDS_PER_DAY))
                .map(|w| w.price_per_mwh)
                .unwrap_or(*off_window_price_per_mwh),
            Tariff::Tiered { tiers } => tiers.first().map(|t| t.price_per_mwh).unwrap_or(0.0),
            Tariff::DemandCharge { price_per_mwh, .. } => *price_per_mwh,
        }
    }

    /// Cost of `energy_mwh` consumed with `prior_mwh` already on the bill,
    /// integrating across rung boundaries for tier ladders.
    fn tiered_cost(tiers: &[TierRate], prior_mwh: f64, energy_mwh: f64) -> f64 {
        let mut cost = 0.0;
        let mut from = prior_mwh;
        let to = prior_mwh + energy_mwh;
        let mut lower = 0.0;
        for tier in tiers {
            let upper = tier.limit_mwh.unwrap_or(f64::INFINITY);
            if from < upper {
                let slice = (to.min(upper) - from.max(lower)).max(0.0);
                cost += slice * tier.price_per_mwh;
                from += slice;
                if from >= to {
                    break;
                }
            }
            lower = upper;
        }
        // Energy beyond a (mis-declared) fully bounded ladder is priced at
        // the last rung; validation rejects such ladders up front.
        if from < to {
            if let Some(last) = tiers.last() {
                cost += (to - from) * last.price_per_mwh;
            }
        }
        cost
    }
}

/// Where a billed record was collected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CollectionOrigin {
    /// Collected by the home aggregator itself.
    Home,
    /// Collected by a foreign aggregator and forwarded over the backhaul.
    Roaming {
        /// The foreign aggregator that collected the records.
        collector: AggregatorAddr,
    },
}

/// Per-component decomposition of a bill's cost.
///
/// Invariant (tested): `energy + demand` equals the bill's total `cost`;
/// `roaming` is the portion of `energy` collected while the device roamed
/// (a subset, not an addition).
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Volumetric (per-mWh) component.
    pub energy: f64,
    /// Demand-charge component (peak sliding-window draw).
    pub demand: f64,
    /// Portion of `energy` priced on records collected in foreign networks.
    pub roaming: f64,
}

impl CostBreakdown {
    /// `energy + demand` — must equal the bill's `cost`.
    pub fn total(&self) -> f64 {
        self.energy + self.demand
    }
}

/// Per-device billing state.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceBill {
    /// Total charge billed, in microamp-seconds.
    pub charge_uas: u64,
    /// Charge collected while the device roamed in foreign networks.
    pub roaming_charge_uas: u64,
    /// Number of records billed.
    pub records: u64,
    /// Number of records that arrived via backfill (local storage).
    pub backfilled_records: u64,
    /// Accumulated cost in currency units.
    pub cost: f64,
    /// Per-component decomposition of `cost`.
    pub breakdown: CostBreakdown,
    /// Peak sliding-window mean draw seen so far, mA (only maintained under
    /// a demand-charge tariff; zero otherwise).
    pub peak_demand_ma: f64,
}

impl DeviceBill {
    /// Billed energy at the given supply voltage.
    pub fn energy_at(&self, supply: Millivolts) -> MilliwattHours {
        MilliampSeconds::from_uas(self.charge_uas).energy_at(supply)
    }
}

/// One record tracked by a device's sliding demand window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct DemandEntry {
    start_us: u64,
    end_us: u64,
    charge_uas: u64,
}

/// Sliding-window demand state of one device under a demand-charge tariff.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
struct DemandState {
    /// Records overlapping the current window, sorted by interval end.
    entries: Vec<DemandEntry>,
    /// Total charge of the tracked records, µA·s.
    window_charge_uas: u64,
}

/// Consolidated billing engine of one home aggregator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BillingEngine {
    tariff: Tariff,
    supply: Millivolts,
    bills: BTreeMap<DeviceId, DeviceBill>,
    demand: BTreeMap<DeviceId, DemandState>,
}

impl BillingEngine {
    /// Creates a billing engine applying `tariff`.
    pub fn new(tariff: Tariff, supply: Millivolts) -> Self {
        BillingEngine {
            tariff,
            supply,
            bills: BTreeMap::new(),
            demand: BTreeMap::new(),
        }
    }

    /// Creates a billing engine with a flat price per mWh (the paper's
    /// testbed configuration).
    pub fn flat(price_per_mwh: f64, supply: Millivolts) -> Self {
        BillingEngine::new(Tariff::flat(price_per_mwh), supply)
    }

    /// The tariff the engine applies.
    pub fn tariff(&self) -> &Tariff {
        &self.tariff
    }

    /// Bills one verified record for `device`. The record's measurement
    /// interval (`interval_start_us`, `interval_end_us`, device-local
    /// microseconds) anchors time-of-use pricing and the demand-charge
    /// sliding window.
    pub fn bill_record(
        &mut self,
        device: DeviceId,
        charge_uas: u64,
        interval_start_us: u64,
        interval_end_us: u64,
        backfilled: bool,
        origin: CollectionOrigin,
    ) {
        let bill = self.bills.entry(device).or_default();
        let energy = MilliampSeconds::from_uas(charge_uas).energy_at(self.supply);
        let energy_cost = match &self.tariff {
            Tariff::Flat { price_per_mwh } => energy.value() * *price_per_mwh,
            Tariff::TimeOfUse { .. } => {
                let second_of_day = interval_start_us / 1_000_000 % SECONDS_PER_DAY;
                energy.value() * self.tariff.energy_price_at(second_of_day)
            }
            Tariff::Tiered { tiers } => {
                let prior_mwh = MilliampSeconds::from_uas(bill.charge_uas)
                    .energy_at(self.supply)
                    .value();
                Tariff::tiered_cost(tiers, prior_mwh, energy.value())
            }
            Tariff::DemandCharge { price_per_mwh, .. } => energy.value() * *price_per_mwh,
        };

        bill.charge_uas += charge_uas;
        bill.records += 1;
        if backfilled {
            bill.backfilled_records += 1;
        }
        bill.cost += energy_cost;
        bill.breakdown.energy += energy_cost;
        if let CollectionOrigin::Roaming { .. } = origin {
            bill.roaming_charge_uas += charge_uas;
            bill.breakdown.roaming += energy_cost;
        }

        if let Tariff::DemandCharge {
            demand_price_per_ma,
            window,
            ..
        } = &self.tariff
        {
            let window_us = window.as_micros().max(1);
            let state = self.demand.entry(device).or_default();
            // Keep the window sorted by interval end. Records almost always
            // arrive in order (the walk terminates immediately), but
            // backfilled batches re-pushed after a failed transmission and
            // roaming forwards crossing the backhaul can arrive late — an
            // unsorted window would mix charges from disjoint time ranges
            // into one "peak" and overbill demand irrecoverably.
            let mut at = state.entries.len();
            while at > 0 && state.entries[at - 1].end_us > interval_end_us {
                at -= 1;
            }
            state.entries.insert(
                at,
                DemandEntry {
                    start_us: interval_start_us.min(interval_end_us),
                    end_us: interval_end_us,
                    charge_uas,
                },
            );
            state.window_charge_uas += charge_uas;
            // Slide relative to the *newest* interval end seen: drop records
            // that ended at or before the window's trailing edge (a late
            // record older than the whole window is evicted in the same
            // pass and contributes nothing).
            let latest_end_us = state.entries.last().expect("just inserted").end_us;
            let trailing = latest_end_us.saturating_sub(window_us);
            let mut drop = 0;
            for entry in state.entries.iter() {
                if entry.end_us <= trailing {
                    state.window_charge_uas -= entry.charge_uas;
                    drop += 1;
                } else {
                    break;
                }
            }
            state.entries.drain(..drop);
            // A record's charge counts only for the part of its interval
            // inside the window: the oldest surviving entry may straddle
            // the trailing edge (device intervals are sequential, so at
            // most one does), and a single record longer than the whole
            // window must read as its own mean current, not as its total
            // charge compressed into the window.
            let mut effective_uas = state.window_charge_uas as f64;
            if let Some(first) = state.entries.first() {
                if first.start_us < trailing {
                    let len_us = (first.end_us - first.start_us).max(1) as f64;
                    let outside_us = (trailing - first.start_us) as f64;
                    effective_uas -= first.charge_uas as f64 * (outside_us / len_us);
                }
            }
            let window_s = window_us as f64 / 1e6;
            let mean_ma = effective_uas / 1000.0 / window_s;
            if mean_ma > bill.peak_demand_ma {
                let delta = (mean_ma - bill.peak_demand_ma) * *demand_price_per_ma;
                bill.peak_demand_ma = mean_ma;
                bill.cost += delta;
                bill.breakdown.demand += delta;
            }
        }
    }

    /// The bill for `device`, if any records were billed.
    pub fn bill(&self, device: DeviceId) -> Option<&DeviceBill> {
        self.bills.get(&device)
    }

    /// Iterates over all bills.
    pub fn iter(&self) -> impl Iterator<Item = (DeviceId, &DeviceBill)> {
        self.bills.iter().map(|(d, b)| (*d, b))
    }

    /// Total billed energy across all devices.
    pub fn total_energy(&self) -> MilliwattHours {
        self.bills.values().map(|b| b.energy_at(self.supply)).sum()
    }

    /// Total billed cost across all devices.
    pub fn total_cost(&self) -> f64 {
        self.bills.values().map(|b| b.cost).sum()
    }

    /// Number of devices with at least one billed record.
    pub fn device_count(&self) -> usize {
        self.bills.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> BillingEngine {
        BillingEngine::flat(1.0, Millivolts::usb_bus())
    }

    /// Bills `charge_uas` over a 100 ms interval ending at `end_s` seconds.
    fn bill_at(e: &mut BillingEngine, device: DeviceId, charge_uas: u64, end_s: u64) {
        e.bill_record(
            device,
            charge_uas,
            end_s * 1_000_000 - 100_000,
            end_s * 1_000_000,
            false,
            CollectionOrigin::Home,
        );
    }

    #[test]
    fn billing_accumulates_per_device() {
        let mut e = engine();
        bill_at(&mut e, DeviceId(1), 10_000, 1);
        e.bill_record(
            DeviceId(1),
            20_000,
            1_900_000,
            2_000_000,
            true,
            CollectionOrigin::Home,
        );
        bill_at(&mut e, DeviceId(2), 5_000, 1);
        let b1 = e.bill(DeviceId(1)).unwrap();
        assert_eq!(b1.charge_uas, 30_000);
        assert_eq!(b1.records, 2);
        assert_eq!(b1.backfilled_records, 1);
        assert_eq!(b1.roaming_charge_uas, 0);
        assert_eq!(e.bill(DeviceId(2)).unwrap().charge_uas, 5_000);
        assert!(e.bill(DeviceId(3)).is_none());
        assert_eq!(e.device_count(), 2);
    }

    #[test]
    fn roaming_charge_tracked_separately() {
        let mut e = engine();
        bill_at(&mut e, DeviceId(1), 10_000, 1);
        e.bill_record(
            DeviceId(1),
            40_000,
            1_900_000,
            2_000_000,
            true,
            CollectionOrigin::Roaming {
                collector: AggregatorAddr(2),
            },
        );
        let b = e.bill(DeviceId(1)).unwrap();
        assert_eq!(b.charge_uas, 50_000);
        assert_eq!(b.roaming_charge_uas, 40_000);
        // The roaming component is the cost share of the roamed records.
        assert!((b.breakdown.roaming / b.breakdown.energy - 0.8).abs() < 1e-9);
    }

    #[test]
    fn cost_scales_with_energy_and_price() {
        let mut cheap = BillingEngine::flat(1.0, Millivolts::usb_bus());
        let mut pricey = BillingEngine::flat(3.0, Millivolts::usb_bus());
        // 3.6e9 µA·s = 3600 mA·s = 1 mAh -> 5 mWh at 5 V.
        bill_at(&mut cheap, DeviceId(1), 3_600_000, 1);
        bill_at(&mut pricey, DeviceId(1), 3_600_000, 1);
        let cheap_cost = cheap.bill(DeviceId(1)).unwrap().cost;
        let pricey_cost = pricey.bill(DeviceId(1)).unwrap().cost;
        assert!((pricey_cost / cheap_cost - 3.0).abs() < 1e-9);
        assert!((cheap.total_energy().value() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn totals_sum_over_devices() {
        let mut e = engine();
        for i in 0..4u64 {
            bill_at(&mut e, DeviceId(i), 1_000, 1);
        }
        assert_eq!(e.iter().count(), 4);
        assert!(e.total_cost() > 0.0);
        assert!(e.total_energy().value() > 0.0);
    }

    #[test]
    fn time_of_use_prices_by_interval_start() {
        let tou = Tariff::TimeOfUse {
            windows: vec![TouWindow::new(18 * 3600, 22 * 3600, 5.0)],
            off_window_price_per_mwh: 1.0,
        };
        let mut e = BillingEngine::new(tou, Millivolts::usb_bus());
        bill_at(&mut e, DeviceId(1), 3_600_000, 12 * 3600); // off-window noon
        bill_at(&mut e, DeviceId(2), 3_600_000, 19 * 3600); // evening peak
        let off = e.bill(DeviceId(1)).unwrap().cost;
        let peak = e.bill(DeviceId(2)).unwrap().cost;
        assert!((peak / off - 5.0).abs() < 1e-9, "peak {peak} off {off}");
        // Second simulated day wraps onto the same schedule.
        bill_at(&mut e, DeviceId(3), 3_600_000, 86_400 + 19 * 3600);
        assert!((e.bill(DeviceId(3)).unwrap().cost - peak).abs() < 1e-9);
    }

    #[test]
    fn tiered_ladder_splits_records_across_rungs() {
        // 1.0 per mWh up to 5 mWh, 4.0 beyond.
        let tiers = Tariff::Tiered {
            tiers: vec![TierRate::upto(5.0, 1.0), TierRate::beyond(4.0)],
        };
        let mut e = BillingEngine::new(tiers, Millivolts::usb_bus());
        // Two records of 5 mWh each (3.6e6 µA·s = 5 mWh at 5 V): the first
        // fills tier 1 exactly, the second is entirely tier 2.
        bill_at(&mut e, DeviceId(1), 3_600_000, 1);
        assert!((e.bill(DeviceId(1)).unwrap().cost - 5.0).abs() < 1e-9);
        bill_at(&mut e, DeviceId(1), 3_600_000, 2);
        assert!((e.bill(DeviceId(1)).unwrap().cost - 25.0).abs() < 1e-9);
        // A record straddling the boundary splits proportionally.
        let mut e2 = BillingEngine::new(
            Tariff::Tiered {
                tiers: vec![TierRate::upto(5.0, 1.0), TierRate::beyond(4.0)],
            },
            Millivolts::usb_bus(),
        );
        bill_at(&mut e2, DeviceId(1), 7_200_000, 1); // 10 mWh: 5@1.0 + 5@4.0
        assert!((e2.bill(DeviceId(1)).unwrap().cost - 25.0).abs() < 1e-9);
        // Cumulation is per device: a second device starts at the bottom.
        bill_at(&mut e2, DeviceId(2), 3_600_000, 2);
        assert!((e2.bill(DeviceId(2)).unwrap().cost - 5.0).abs() < 1e-9);
    }

    #[test]
    fn demand_charge_prices_peak_window_draw() {
        let tariff = Tariff::DemandCharge {
            price_per_mwh: 1.0,
            demand_price_per_ma: 0.5,
            window: SimDuration::from_secs(1),
        };
        let mut e = BillingEngine::new(tariff, Millivolts::usb_bus());
        // Ten 100 ms records of 10 mA·s each: a sustained 100 mA draw.
        for i in 1..=10u64 {
            e.bill_record(
                DeviceId(1),
                10_000,
                (i - 1) * 100_000,
                i * 100_000,
                false,
                CollectionOrigin::Home,
            );
        }
        let b = e.bill(DeviceId(1)).unwrap();
        assert!(
            (b.peak_demand_ma - 100.0).abs() < 1e-6,
            "peak {}",
            b.peak_demand_ma
        );
        assert!(
            (b.breakdown.demand - 50.0).abs() < 1e-6,
            "demand {}",
            b.breakdown.demand
        );
        // A later idle stretch must not lower the already-billed peak.
        e.bill_record(
            DeviceId(1),
            0,
            10_000_000,
            10_100_000,
            false,
            CollectionOrigin::Home,
        );
        let b = e.bill(DeviceId(1)).unwrap();
        assert!((b.peak_demand_ma - 100.0).abs() < 1e-6);
        assert!((b.cost - b.breakdown.total()).abs() < 1e-9);
    }

    #[test]
    fn demand_window_survives_out_of_order_backfill() {
        // A backfilled record whose interval predates the live window by
        // several window lengths must not be mixed into the current
        // window's mean: charges nine seconds apart are not concurrent
        // demand.
        let tariff = Tariff::DemandCharge {
            price_per_mwh: 0.0,
            demand_price_per_ma: 1.0,
            window: SimDuration::from_secs(1),
        };
        let mut e = BillingEngine::new(tariff, Millivolts::usb_bus());
        // A sustained 100 mA draw through 10.0..11.0 s.
        for i in 0..10u64 {
            e.bill_record(
                DeviceId(1),
                10_000,
                10_000_000 + i * 100_000,
                10_100_000 + i * 100_000,
                false,
                CollectionOrigin::Home,
            );
        }
        assert!((e.bill(DeviceId(1)).unwrap().peak_demand_ma - 100.0).abs() < 1e-6);
        // A delayed backfill from 1.0–2.0 s arrives late: it is older than
        // the whole sliding window, so the peak must not move.
        e.bill_record(
            DeviceId(1),
            200_000,
            1_000_000,
            2_000_000,
            true,
            CollectionOrigin::Home,
        );
        let b = e.bill(DeviceId(1)).unwrap();
        assert!(
            (b.peak_demand_ma - 100.0).abs() < 1e-6,
            "stale backfill inflated the peak to {}",
            b.peak_demand_ma
        );
        // A late record *inside* the live window still counts towards it.
        e.bill_record(
            DeviceId(1),
            10_000,
            10_200_000,
            10_300_000,
            true,
            CollectionOrigin::Home,
        );
        let b = e.bill(DeviceId(1)).unwrap();
        assert!(
            (b.peak_demand_ma - 110.0).abs() < 1e-6,
            "in-window backfill must raise the mean, got {}",
            b.peak_demand_ma
        );
    }

    #[test]
    fn demand_window_prorates_intervals_longer_than_the_window() {
        // A 10 s record at a true 1 mA draw (10,000 µA·s) under a 1 s
        // demand window must read as 1 mA, not as the whole charge
        // compressed into the window (10 mA).
        let tariff = Tariff::DemandCharge {
            price_per_mwh: 0.0,
            demand_price_per_ma: 1.0,
            window: SimDuration::from_secs(1),
        };
        let mut e = BillingEngine::new(tariff, Millivolts::usb_bus());
        e.bill_record(
            DeviceId(1),
            10_000,
            0,
            10_000_000,
            false,
            CollectionOrigin::Home,
        );
        let b = e.bill(DeviceId(1)).unwrap();
        assert!(
            (b.peak_demand_ma - 1.0).abs() < 1e-6,
            "long interval compressed into the window: {} mA",
            b.peak_demand_ma
        );
        // A straddling record prorates: the window [1.5 s, 2.5 s] holds
        // 0.5 s of a 2 s / 2 mA record (1 mA·s) plus a fresh
        // 0.5 s / 4 mA record (2 mA·s) -> 3 mA·s over 1 s.
        let mut e2 = BillingEngine::new(
            Tariff::DemandCharge {
                price_per_mwh: 0.0,
                demand_price_per_ma: 1.0,
                window: SimDuration::from_secs(1),
            },
            Millivolts::usb_bus(),
        );
        e2.bill_record(
            DeviceId(1),
            4_000,
            0,
            2_000_000,
            false,
            CollectionOrigin::Home,
        );
        e2.bill_record(
            DeviceId(1),
            2_000,
            2_000_000,
            2_500_000,
            false,
            CollectionOrigin::Home,
        );
        let b = e2.bill(DeviceId(1)).unwrap();
        assert!(
            (b.peak_demand_ma - 3.0).abs() < 1e-6,
            "straddling record not prorated: {} mA",
            b.peak_demand_ma
        );
    }

    #[test]
    fn breakdown_components_sum_to_cost() {
        for tariff in [
            Tariff::flat(2.0),
            Tariff::evening_peak(1.0),
            Tariff::two_tier(1.0, 0.001),
            Tariff::DemandCharge {
                price_per_mwh: 1.0,
                demand_price_per_ma: 0.1,
                window: SimDuration::from_secs(2),
            },
        ] {
            let mut e = BillingEngine::new(tariff.clone(), Millivolts::usb_bus());
            for i in 1..=20u64 {
                e.bill_record(
                    DeviceId(1),
                    7_500 + i * 13,
                    (i - 1) * 100_000,
                    i * 100_000,
                    i % 3 == 0,
                    if i % 4 == 0 {
                        CollectionOrigin::Roaming {
                            collector: AggregatorAddr(2),
                        }
                    } else {
                        CollectionOrigin::Home
                    },
                );
            }
            let b = e.bill(DeviceId(1)).unwrap();
            assert!(
                (b.cost - b.breakdown.total()).abs() < 1e-9,
                "{}: cost {} != breakdown {}",
                tariff.label(),
                b.cost,
                b.breakdown.total()
            );
            assert!(b.breakdown.roaming <= b.breakdown.energy + 1e-12);
        }
    }

    #[test]
    fn flat_tariff_matches_legacy_pricing_bit_for_bit() {
        // The flat path must reproduce the pre-tariff arithmetic exactly:
        // cost += energy.value() * price.
        let mut e = BillingEngine::flat(1.7, Millivolts::usb_bus());
        let mut expected = 0.0;
        for i in 1..=50u64 {
            let uas = 9_000 + i * 31;
            bill_at(&mut e, DeviceId(1), uas, i);
            expected += MilliampSeconds::from_uas(uas)
                .energy_at(Millivolts::usb_bus())
                .value()
                * 1.7;
        }
        assert_eq!(e.bill(DeviceId(1)).unwrap().cost, expected);
    }

    #[test]
    fn overlapping_tou_windows_rejected() {
        let tariff = Tariff::TimeOfUse {
            windows: vec![
                TouWindow::new(6 * 3600, 12 * 3600, 2.0),
                TouWindow::new(11 * 3600, 14 * 3600, 3.0),
            ],
            off_window_price_per_mwh: 1.0,
        };
        assert_eq!(
            tariff.validate(),
            Err(TariffError::OverlappingTouWindows {
                first: 0,
                second: 1
            })
        );
        // Adjacent windows (end == start) do not overlap.
        let adjacent = Tariff::TimeOfUse {
            windows: vec![
                TouWindow::new(6 * 3600, 12 * 3600, 2.0),
                TouWindow::new(12 * 3600, 14 * 3600, 3.0),
            ],
            off_window_price_per_mwh: 1.0,
        };
        assert_eq!(adjacent.validate(), Ok(()));
    }

    #[test]
    fn degenerate_tariffs_rejected_with_typed_errors() {
        assert_eq!(
            Tariff::flat(-1.0).validate(),
            Err(TariffError::NegativeRate { rate: -1.0 })
        );
        assert_eq!(
            Tariff::Tiered { tiers: Vec::new() }.validate(),
            Err(TariffError::EmptyTierLadder)
        );
        assert_eq!(
            Tariff::TimeOfUse {
                windows: Vec::new(),
                off_window_price_per_mwh: 1.0
            }
            .validate(),
            Err(TariffError::EmptyTimeOfUse)
        );
        assert_eq!(
            Tariff::TimeOfUse {
                windows: vec![TouWindow::new(10, 5, 1.0)],
                off_window_price_per_mwh: 1.0
            }
            .validate(),
            Err(TariffError::InvertedTouWindow {
                start_s: 10,
                end_s: 5
            })
        );
        assert_eq!(
            Tariff::TimeOfUse {
                windows: vec![TouWindow::new(0, 90_000, 1.0)],
                off_window_price_per_mwh: 1.0
            }
            .validate(),
            Err(TariffError::TouWindowPastMidnight { end_s: 90_000 })
        );
        assert_eq!(
            Tariff::Tiered {
                tiers: vec![TierRate::upto(5.0, 1.0), TierRate::upto(5.0, 2.0)]
            }
            .validate(),
            Err(TariffError::NonAscendingTiers { index: 1 })
        );
        assert_eq!(
            Tariff::Tiered {
                tiers: vec![TierRate::beyond(1.0), TierRate::upto(5.0, 2.0)]
            }
            .validate(),
            Err(TariffError::BoundedTierAfterUnbounded { index: 1 })
        );
        assert_eq!(
            Tariff::Tiered {
                tiers: vec![TierRate::upto(-2.0, 1.0)]
            }
            .validate(),
            Err(TariffError::InvalidTierLimit { limit_mwh: -2.0 })
        );
        // A fully bounded ladder leaves energy beyond the last limit
        // without a declared price.
        assert_eq!(
            Tariff::Tiered {
                tiers: vec![TierRate::upto(5.0, 1.0), TierRate::upto(9.0, 2.0)]
            }
            .validate(),
            Err(TariffError::NoUnboundedTier)
        );
        assert_eq!(
            Tariff::DemandCharge {
                price_per_mwh: 1.0,
                demand_price_per_ma: 0.1,
                window: SimDuration::ZERO,
            }
            .validate(),
            Err(TariffError::ZeroDemandWindow)
        );
        // Errors render human-readably.
        assert!(TariffError::EmptyTierLadder.to_string().contains("rungs"));
    }

    #[test]
    fn ready_made_tariffs_validate() {
        for tariff in [
            Tariff::default(),
            Tariff::flat(0.5),
            Tariff::evening_peak(1.0),
            Tariff::two_tier(1.0, 100.0),
        ] {
            assert_eq!(tariff.validate(), Ok(()), "{}", tariff.label());
        }
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(Tariff::flat(1.0).label(), "flat");
        assert_eq!(Tariff::evening_peak(1.0).label(), "tou-2w");
        assert_eq!(Tariff::two_tier(1.0, 5.0).label(), "tiered-2");
    }
}
