//! # rtem-aggregator — the trusted network aggregator
//!
//! Part of the `rtem` workspace reproducing *Real-Time Energy Monitoring in
//! IoT-enabled Mobile Devices* (DATE 2020).
//!
//! Each WAN in the paper's architecture has one trusted aggregator
//! (a Raspberry Pi on the testbed). It registers devices and assigns their
//! reporting slots, verifies their reports against its own system-level
//! measurement, stores verified records in the consensus-free hash chain,
//! liaises with other aggregators for roaming devices, and bills the devices
//! whose master membership it holds.
//!
//! * [`membership`] — master / temporary membership registry + slots.
//! * [`verify`] — window verification against the complementary measurement
//!   and the entropy-based per-device theft detector.
//! * [`billing`] — consolidated per-device billing (home + roaming).
//! * [`aggregator`] — the composed [`Aggregator`].
//!
//! # Examples
//!
//! ```
//! use rtem_aggregator::aggregator::{Aggregator, AggregatorConfig};
//! use rtem_net::packet::{AggregatorAddr, DeviceId, Packet};
//! use rtem_sim::prelude::*;
//!
//! let mut aggregator = Aggregator::new(
//!     AggregatorConfig::testbed(AggregatorAddr(1)),
//!     SimRng::seed_from_u64(1),
//! );
//! let out = aggregator.handle_device_packet(
//!     &Packet::RegistrationRequest { device: DeviceId(1), master: None },
//!     SimTime::ZERO,
//! );
//! assert!(matches!(out.to_devices[0], Packet::RegistrationAccept { .. }));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregator;
pub mod billing;
pub mod membership;
pub mod verify;

pub use aggregator::{Aggregator, AggregatorConfig, AggregatorOutput, RetentionPolicy};
pub use billing::{
    BillingEngine, CollectionOrigin, CostBreakdown, DeviceBill, Tariff, TariffError, TierRate,
    TouWindow,
};
pub use membership::{Membership, MembershipError, MembershipRegistry};
pub use verify::{EntropyDetector, VerifierConfig, WindowVerdict, WindowVerifier};
