//! Report verification / anomaly detection.
//!
//! "The aggregator uses an additional system-level complementary measurement
//! (sum, average, etc.) along with the measurements of all the devices in
//! the network to detect anomalies in the reported value" (§I, §II-A). The
//! aggregator has its own electrical connection and INA219, so per
//! verification window it can compare:
//!
//! * the **sum of device-reported** mean currents, against
//! * its **own upstream measurement** of the whole network.
//!
//! The upstream measurement is expected to exceed the device sum slightly
//! (ohmic losses + sensor offsets, the 0.9–8.2 % of Fig. 5); a device
//! *under-reporting* its consumption widens the gap beyond the tolerance
//! band and raises an anomaly. An entropy-based detector in the style of the
//! paper's reference \[8\] (Singh et al., theft detection in AMI networks) is
//! provided as a second, per-device signal.

use rtem_net::packet::DeviceId;
use rtem_sensors::energy::Milliamps;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Configuration of the window verifier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VerifierConfig {
    /// Expected relative overhead of the upstream measurement over the device
    /// sum due to ohmic losses (fraction, e.g. 0.05 for 5 %).
    pub expected_loss_fraction: f64,
    /// Additional absolute tolerance in mA covering sensor offsets and noise.
    pub absolute_tolerance_ma: f64,
    /// Additional relative tolerance (fraction of the upstream measurement).
    pub relative_tolerance: f64,
}

impl Default for VerifierConfig {
    fn default() -> Self {
        VerifierConfig {
            expected_loss_fraction: 0.045,
            absolute_tolerance_ma: 3.0,
            relative_tolerance: 0.05,
        }
    }
}

/// Verdict for one verification window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowVerdict {
    /// Sum of device-reported mean currents in the window.
    pub reported_sum_ma: f64,
    /// The aggregator's own upstream measurement.
    pub measured_total_ma: f64,
    /// Gap between measurement and the loss-adjusted reported sum, in mA
    /// (positive = devices reported less than expected).
    pub residual_ma: f64,
    /// Whether the residual exceeded the tolerance band.
    pub anomalous: bool,
}

/// Sliding-window verifier comparing reported and measured totals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowVerifier {
    config: VerifierConfig,
    windows_checked: u64,
    anomalies: u64,
}

impl WindowVerifier {
    /// Creates a verifier.
    pub fn new(config: VerifierConfig) -> Self {
        WindowVerifier {
            config,
            windows_checked: 0,
            anomalies: 0,
        }
    }

    /// Checks one window.
    pub fn check(&mut self, reported_sum: Milliamps, measured_total: Milliamps) -> WindowVerdict {
        self.windows_checked += 1;
        let expected_total = reported_sum.value() * (1.0 + self.config.expected_loss_fraction);
        let residual = measured_total.value() - expected_total;
        let tolerance = self.config.absolute_tolerance_ma
            + self.config.relative_tolerance * measured_total.value().abs();
        let anomalous = residual.abs() > tolerance;
        if anomalous {
            self.anomalies += 1;
        }
        WindowVerdict {
            reported_sum_ma: reported_sum.value(),
            measured_total_ma: measured_total.value(),
            residual_ma: residual,
            anomalous,
        }
    }

    /// Number of windows checked so far.
    pub fn windows_checked(&self) -> u64 {
        self.windows_checked
    }

    /// Number of anomalous windows.
    pub fn anomalies(&self) -> u64 {
        self.anomalies
    }
}

impl Default for WindowVerifier {
    fn default() -> Self {
        WindowVerifier::new(VerifierConfig::default())
    }
}

/// Per-device entropy-based theft detector (after the paper's reference \[8\]).
///
/// The detector maintains a histogram of each device's reported mean current
/// and flags devices whose recent reporting distribution collapses (very low
/// entropy at a suspiciously low level) compared with their own history —
/// the signature of a constant, under-reported value replacing real
/// measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EntropyDetector {
    bin_width_ma: f64,
    history_len: usize,
    recent_len: usize,
    histories: BTreeMap<DeviceId, Vec<f64>>,
}

impl EntropyDetector {
    /// Creates a detector with the given histogram bin width and window
    /// lengths.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width_ma` is not positive or the windows are empty.
    pub fn new(bin_width_ma: f64, history_len: usize, recent_len: usize) -> Self {
        assert!(bin_width_ma > 0.0, "bin width must be positive");
        assert!(
            history_len > 0 && recent_len > 0,
            "windows must be non-empty"
        );
        EntropyDetector {
            bin_width_ma,
            history_len,
            recent_len,
            histories: BTreeMap::new(),
        }
    }

    /// A configuration suitable for the testbed's 10 Hz reporting.
    pub fn testbed() -> Self {
        EntropyDetector::new(5.0, 600, 100)
    }

    /// Feeds one reported mean current for `device`.
    pub fn observe(&mut self, device: DeviceId, mean_current_ma: f64) {
        let history = self.histories.entry(device).or_default();
        history.push(mean_current_ma);
        let max_len = self.history_len + self.recent_len;
        if history.len() > max_len {
            let excess = history.len() - max_len;
            history.drain(..excess);
        }
    }

    fn shannon_entropy(&self, values: &[f64]) -> f64 {
        if values.is_empty() {
            return 0.0;
        }
        let mut bins: BTreeMap<i64, usize> = BTreeMap::new();
        for v in values {
            let bin = (v / self.bin_width_ma).floor() as i64;
            *bins.entry(bin).or_default() += 1;
        }
        let n = values.len() as f64;
        bins.values()
            .map(|&count| {
                let p = count as f64 / n;
                -p * p.log2()
            })
            .sum()
    }

    /// Entropy of the device's recent reports, if enough data exists.
    pub fn recent_entropy(&self, device: DeviceId) -> Option<f64> {
        let history = self.histories.get(&device)?;
        if history.len() < self.recent_len {
            return None;
        }
        Some(self.shannon_entropy(&history[history.len() - self.recent_len..]))
    }

    /// Returns `true` when the device's recent reports look suspicious:
    /// their entropy dropped to less than half of the historical entropy
    /// *and* their mean dropped below half of the historical mean.
    pub fn is_suspicious(&self, device: DeviceId) -> bool {
        let Some(history) = self.histories.get(&device) else {
            return false;
        };
        if history.len() < self.recent_len * 2 {
            return false;
        }
        let (old, recent) = history.split_at(history.len() - self.recent_len);
        let old_entropy = self.shannon_entropy(old);
        let recent_entropy = self.shannon_entropy(recent);
        let old_mean: f64 = old.iter().sum::<f64>() / old.len() as f64;
        let recent_mean: f64 = recent.iter().sum::<f64>() / recent.len() as f64;
        recent_entropy < 0.5 * old_entropy && recent_mean < 0.5 * old_mean
    }

    /// Devices currently flagged as suspicious.
    pub fn suspicious_devices(&self) -> Vec<DeviceId> {
        self.histories
            .keys()
            .copied()
            .filter(|&d| self.is_suspicious(d))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtem_sim::rng::SimRng;

    #[test]
    fn honest_reports_within_tolerance_pass() {
        let mut v = WindowVerifier::default();
        // Devices report 300 mA total; upstream sees 4.5 % more.
        let verdict = v.check(Milliamps::new(300.0), Milliamps::new(313.5));
        assert!(!verdict.anomalous, "residual {}", verdict.residual_ma);
        assert_eq!(v.windows_checked(), 1);
        assert_eq!(v.anomalies(), 0);
    }

    #[test]
    fn under_reporting_device_is_detected() {
        let mut v = WindowVerifier::default();
        // The network actually draws 320 mA but devices only admit to 220 mA.
        let verdict = v.check(Milliamps::new(220.0), Milliamps::new(334.0));
        assert!(verdict.anomalous);
        assert!(verdict.residual_ma > 50.0);
        assert_eq!(v.anomalies(), 1);
    }

    #[test]
    fn over_reporting_is_also_anomalous() {
        let mut v = WindowVerifier::default();
        // Devices claim far more than the network actually drew.
        let verdict = v.check(Milliamps::new(400.0), Milliamps::new(300.0));
        assert!(verdict.anomalous);
        assert!(verdict.residual_ma < 0.0);
    }

    #[test]
    fn small_networks_tolerate_sensor_offsets() {
        let mut v = WindowVerifier::default();
        // Two idle devices of ~15 mA each; offsets dominate but stay inside
        // the absolute tolerance.
        let verdict = v.check(Milliamps::new(30.0), Milliamps::new(33.0));
        assert!(!verdict.anomalous);
    }

    #[test]
    fn entropy_detector_flags_constant_under_reporting() {
        let mut det = EntropyDetector::new(5.0, 200, 50);
        let mut rng = SimRng::seed_from_u64(9);
        // Normal operation: varying charge current around 150-250 mA.
        for _ in 0..200 {
            det.observe(DeviceId(1), rng.uniform(150.0, 250.0));
        }
        assert!(!det.is_suspicious(DeviceId(1)));
        // Tampered firmware starts reporting a constant 20 mA.
        for _ in 0..50 {
            det.observe(DeviceId(1), 20.0);
        }
        assert!(det.is_suspicious(DeviceId(1)));
        assert_eq!(det.suspicious_devices(), vec![DeviceId(1)]);
    }

    #[test]
    fn honest_low_power_device_not_flagged() {
        let mut det = EntropyDetector::new(5.0, 200, 50);
        let mut rng = SimRng::seed_from_u64(10);
        // A device that has always idled at ~15 mA: low entropy but no drop
        // relative to its own history.
        for _ in 0..300 {
            det.observe(DeviceId(2), rng.uniform(14.0, 16.0));
        }
        assert!(!det.is_suspicious(DeviceId(2)));
    }

    #[test]
    fn entropy_needs_enough_history() {
        let mut det = EntropyDetector::new(5.0, 100, 50);
        det.observe(DeviceId(3), 100.0);
        assert!(det.recent_entropy(DeviceId(3)).is_none());
        assert!(!det.is_suspicious(DeviceId(3)));
        assert!(det.recent_entropy(DeviceId(99)).is_none());
    }

    #[test]
    fn recent_entropy_higher_for_varied_reports() {
        let mut det = EntropyDetector::new(5.0, 100, 100);
        let mut rng = SimRng::seed_from_u64(11);
        for _ in 0..100 {
            det.observe(DeviceId(1), 100.0);
            det.observe(DeviceId(2), rng.uniform(50.0, 400.0));
        }
        let constant = det.recent_entropy(DeviceId(1)).unwrap();
        let varied = det.recent_entropy(DeviceId(2)).unwrap();
        assert!(varied > constant);
    }
}
