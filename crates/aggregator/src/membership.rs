//! Membership registry of an aggregator.
//!
//! Every device must be registered with an aggregator before its reports are
//! accepted (§II-C). A device's *home* aggregator holds its **master**
//! membership for the device's whole lifetime (unless it is removed because
//! of loss / reset / transfer of ownership); a *foreign* aggregator creates a
//! **temporary** membership after verifying the device with its home network
//! and discards it as soon as the device leaves.

use rtem_net::packet::{AggregatorAddr, DeviceId, MembershipKind};
use rtem_net::tdma::{SlotError, SlotTable};
use rtem_sim::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// One membership entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Membership {
    /// The member device.
    pub device: DeviceId,
    /// Master or temporary.
    pub kind: MembershipKind,
    /// Reporting slot assigned to the device.
    pub slot: u16,
    /// For temporary members: the device's home aggregator (cost centre).
    pub home: Option<AggregatorAddr>,
    /// When the membership was created.
    pub registered_at: SimTime,
    /// Highest sequence number acknowledged so far.
    pub last_acked_sequence: Option<u64>,
}

/// Errors returned by the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembershipError {
    /// The frame has no free reporting slots.
    NoFreeSlots,
    /// The device is blocked (reported lost / ownership withdrawn).
    Blocked(DeviceId),
    /// The device is not a member.
    NotAMember(DeviceId),
}

impl fmt::Display for MembershipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MembershipError::NoFreeSlots => write!(f, "no free reporting slots"),
            MembershipError::Blocked(d) => write!(f, "device {d} is blocked"),
            MembershipError::NotAMember(d) => write!(f, "device {d} is not a member"),
        }
    }
}

impl Error for MembershipError {}

/// The membership registry plus the TDMA slot table backing it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MembershipRegistry {
    members: BTreeMap<DeviceId, Membership>,
    slots: SlotTable,
    blocked: Vec<DeviceId>,
}

impl MembershipRegistry {
    /// Creates a registry backed by the given slot table.
    pub fn new(slots: SlotTable) -> Self {
        MembershipRegistry {
            members: BTreeMap::new(),
            slots,
            blocked: Vec::new(),
        }
    }

    /// Number of current members (master + temporary).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` when no devices are registered.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Remaining capacity (free reporting slots).
    pub fn free_slots(&self) -> u16 {
        self.slots.free_slots()
    }

    /// The membership of `device`, if registered.
    pub fn membership(&self, device: DeviceId) -> Option<&Membership> {
        self.members.get(&device)
    }

    /// Returns `true` if `device` holds any membership.
    pub fn is_member(&self, device: DeviceId) -> bool {
        self.members.contains_key(&device)
    }

    /// Iterates over all memberships.
    pub fn iter(&self) -> impl Iterator<Item = &Membership> {
        self.members.values()
    }

    /// Blocks a device (e.g. reported lost). Any existing membership is
    /// removed immediately.
    pub fn block(&mut self, device: DeviceId) {
        if !self.blocked.contains(&device) {
            self.blocked.push(device);
        }
        let _ = self.remove(device);
    }

    /// Returns `true` if the device is blocked.
    pub fn is_blocked(&self, device: DeviceId) -> bool {
        self.blocked.contains(&device)
    }

    /// Registers `device` with the given membership kind.
    ///
    /// Re-registering an existing member refreshes its entry but keeps the
    /// already-assigned slot (the device may simply have rebooted).
    ///
    /// # Errors
    ///
    /// Fails if the device is blocked or no slot is free.
    pub fn register(
        &mut self,
        device: DeviceId,
        kind: MembershipKind,
        home: Option<AggregatorAddr>,
        now: SimTime,
    ) -> Result<Membership, MembershipError> {
        if self.is_blocked(device) {
            return Err(MembershipError::Blocked(device));
        }
        let slot = match self.members.get(&device) {
            Some(existing) => existing.slot,
            None => self.slots.assign(device).map_err(|e| match e {
                SlotError::NoFreeSlots => MembershipError::NoFreeSlots,
                SlotError::AlreadyAssigned(_) | SlotError::NotAssigned(_) => {
                    MembershipError::NoFreeSlots
                }
            })?,
        };
        let membership = Membership {
            device,
            kind,
            slot,
            home,
            registered_at: now,
            last_acked_sequence: None,
        };
        self.members.insert(device, membership);
        Ok(membership)
    }

    /// Removes a device's membership (temporary member left, or master
    /// membership deleted on transfer of ownership). The slot is released.
    ///
    /// # Errors
    ///
    /// Fails if the device is not a member.
    pub fn remove(&mut self, device: DeviceId) -> Result<Membership, MembershipError> {
        let membership = self
            .members
            .remove(&device)
            .ok_or(MembershipError::NotAMember(device))?;
        let _ = self.slots.release(device);
        Ok(membership)
    }

    /// Records that records up to `sequence` were acknowledged for `device`.
    pub fn note_ack(&mut self, device: DeviceId, sequence: u64) {
        if let Some(m) = self.members.get_mut(&device) {
            m.last_acked_sequence = Some(match m.last_acked_sequence {
                Some(prev) => prev.max(sequence),
                None => sequence,
            });
        }
    }

    /// All temporary members whose home is `home`.
    pub fn temporary_members_of(&self, home: AggregatorAddr) -> Vec<DeviceId> {
        self.members
            .values()
            .filter(|m| m.kind == MembershipKind::Temporary && m.home == Some(home))
            .map(|m| m.device)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtem_sim::time::SimDuration;

    fn registry(capacity: u16) -> MembershipRegistry {
        MembershipRegistry::new(SlotTable::new(SimDuration::from_millis(10), capacity))
    }

    #[test]
    fn register_master_and_query() {
        let mut r = registry(4);
        let m = r
            .register(DeviceId(1), MembershipKind::Master, None, SimTime::ZERO)
            .unwrap();
        assert_eq!(m.kind, MembershipKind::Master);
        assert!(r.is_member(DeviceId(1)));
        assert_eq!(r.len(), 1);
        assert_eq!(r.free_slots(), 3);
        assert_eq!(r.membership(DeviceId(1)).unwrap().slot, m.slot);
    }

    #[test]
    fn reregistration_keeps_slot() {
        let mut r = registry(4);
        let first = r
            .register(DeviceId(1), MembershipKind::Master, None, SimTime::ZERO)
            .unwrap();
        let second = r
            .register(
                DeviceId(1),
                MembershipKind::Master,
                None,
                SimTime::from_secs(5),
            )
            .unwrap();
        assert_eq!(first.slot, second.slot);
        assert_eq!(r.len(), 1);
        assert_eq!(r.free_slots(), 3);
    }

    #[test]
    fn capacity_limit_enforced() {
        let mut r = registry(2);
        r.register(DeviceId(1), MembershipKind::Master, None, SimTime::ZERO)
            .unwrap();
        r.register(DeviceId(2), MembershipKind::Master, None, SimTime::ZERO)
            .unwrap();
        assert_eq!(
            r.register(DeviceId(3), MembershipKind::Master, None, SimTime::ZERO),
            Err(MembershipError::NoFreeSlots)
        );
    }

    #[test]
    fn removal_frees_slot() {
        let mut r = registry(1);
        r.register(DeviceId(1), MembershipKind::Master, None, SimTime::ZERO)
            .unwrap();
        assert!(r.remove(DeviceId(1)).is_ok());
        assert_eq!(
            r.remove(DeviceId(1)),
            Err(MembershipError::NotAMember(DeviceId(1)))
        );
        assert!(r
            .register(DeviceId(2), MembershipKind::Master, None, SimTime::ZERO)
            .is_ok());
    }

    #[test]
    fn blocked_devices_cannot_register() {
        let mut r = registry(4);
        r.register(DeviceId(1), MembershipKind::Master, None, SimTime::ZERO)
            .unwrap();
        r.block(DeviceId(1));
        assert!(!r.is_member(DeviceId(1)), "blocking removes the membership");
        assert_eq!(
            r.register(DeviceId(1), MembershipKind::Master, None, SimTime::ZERO),
            Err(MembershipError::Blocked(DeviceId(1)))
        );
        assert!(r.is_blocked(DeviceId(1)));
    }

    #[test]
    fn temporary_members_grouped_by_home() {
        let mut r = registry(8);
        r.register(
            DeviceId(1),
            MembershipKind::Temporary,
            Some(AggregatorAddr(1)),
            SimTime::ZERO,
        )
        .unwrap();
        r.register(
            DeviceId(2),
            MembershipKind::Temporary,
            Some(AggregatorAddr(2)),
            SimTime::ZERO,
        )
        .unwrap();
        r.register(DeviceId(3), MembershipKind::Master, None, SimTime::ZERO)
            .unwrap();
        assert_eq!(r.temporary_members_of(AggregatorAddr(1)), vec![DeviceId(1)]);
        assert_eq!(r.temporary_members_of(AggregatorAddr(2)), vec![DeviceId(2)]);
        assert!(r.temporary_members_of(AggregatorAddr(3)).is_empty());
    }

    #[test]
    fn ack_tracking_is_monotonic() {
        let mut r = registry(4);
        r.register(DeviceId(1), MembershipKind::Master, None, SimTime::ZERO)
            .unwrap();
        r.note_ack(DeviceId(1), 5);
        r.note_ack(DeviceId(1), 3);
        assert_eq!(
            r.membership(DeviceId(1)).unwrap().last_acked_sequence,
            Some(5)
        );
        // Unknown devices are ignored quietly.
        r.note_ack(DeviceId(9), 1);
    }

    #[test]
    fn iter_lists_all_members() {
        let mut r = registry(4);
        for i in 0..3 {
            r.register(DeviceId(i), MembershipKind::Master, None, SimTime::ZERO)
                .unwrap();
        }
        assert_eq!(r.iter().count(), 3);
        assert!(!r.is_empty());
    }
}
