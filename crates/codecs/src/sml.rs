//! Smart Message Language (SML) binary transport.
//!
//! An SML file opens with the escape sequence `1B 1B 1B 1B 01 01 01 01`,
//! carries TL-field (type/length) encoded data, and closes with
//! `1B 1B 1B 1B 1A <pad> <crc16>` where `<pad>` is the number of fill
//! bytes inserted to round the file to a multiple of four and the CRC-16
//! (X-25 flavor) covers everything from the first escape byte through the
//! pad byte.
//!
//! TL fields follow the SML rules: the high nibble is the type (`0x4`
//! boolean, `0x6` unsigned, `0x7` list), the low nibble the length —
//! including the TL byte itself for primitives, the entry count for
//! lists. Lengths that overflow one nibble chain continuation TL bytes
//! (bit 7 set), four more length bits each. The consumption batch is one
//! outer list `[version, device, master, record-list]`, each record a
//! seven-element list of its fields.

use crate::crc::crc16_x25;
use crate::telegram::{CodecError, Telegram};
use rtem_net::packet::{AggregatorAddr, DeviceId, MeasurementRecord};

const ESCAPE: [u8; 4] = [0x1B; 4];
const BEGIN: [u8; 4] = [0x01; 4];
const END_MARK: u8 = 0x1A;
/// Protocol version element opening the outer list.
const VERSION: u64 = 1;
/// Sentinel for "no master addressed" in the master element.
const NO_MASTER: u64 = u64::MAX;

const TYPE_BOOL: u8 = 0x4;
const TYPE_UNSIGNED: u8 = 0x6;
const TYPE_LIST: u8 = 0x7;

/// Appends a TL field for the given type nibble and length, chaining
/// continuation bytes when the length overflows one nibble.
fn put_tl(out: &mut Vec<u8>, ty: u8, len: usize) {
    let mut nibbles = Vec::new();
    let mut rest = len;
    loop {
        nibbles.push((rest & 0xF) as u8);
        rest >>= 4;
        if rest == 0 {
            break;
        }
    }
    // Most-significant nibble first; every byte but the last sets bit 7.
    for (i, nibble) in nibbles.iter().rev().enumerate() {
        let ty_nibble = if i == 0 { ty << 4 } else { 0 };
        let more = if i + 1 < nibbles.len() { 0x80 } else { 0 };
        out.push(more | ty_nibble & 0x70 | nibble);
    }
}

fn put_u64(out: &mut Vec<u8>, value: u64) {
    // TL (1) + eight big-endian value bytes; length includes the TL byte.
    put_tl(out, TYPE_UNSIGNED, 9);
    out.extend_from_slice(&value.to_be_bytes());
}

fn put_bool(out: &mut Vec<u8>, value: bool) {
    put_tl(out, TYPE_BOOL, 2);
    out.push(u8::from(value));
}

/// Encodes a telegram as an SML file.
pub fn encode(telegram: &Telegram) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + telegram.records.len() * 60);
    out.extend_from_slice(&ESCAPE);
    out.extend_from_slice(&BEGIN);

    put_tl(&mut out, TYPE_LIST, 4);
    put_u64(&mut out, VERSION);
    put_u64(&mut out, telegram.device.0);
    put_u64(&mut out, telegram.master.map_or(NO_MASTER, |a| a.0 as u64));
    put_tl(&mut out, TYPE_LIST, telegram.records.len());
    for r in &telegram.records {
        put_tl(&mut out, TYPE_LIST, 7);
        put_u64(&mut out, r.device.0);
        put_u64(&mut out, r.sequence);
        put_u64(&mut out, r.interval_start_us);
        put_u64(&mut out, r.interval_end_us);
        put_u64(&mut out, r.mean_current_ua);
        put_u64(&mut out, r.charge_uas);
        put_bool(&mut out, r.backfilled);
    }

    // Pad the file to a multiple of four (fill bytes count in the pad
    // byte), then close with the end escape and the CRC.
    let pad = (4 - (out.len() + 8) % 4) % 4;
    out.extend(std::iter::repeat(0x00).take(pad));
    out.extend_from_slice(&ESCAPE);
    out.push(END_MARK);
    out.push(pad as u8);
    let crc = crc16_x25(&out);
    out.extend_from_slice(&crc.to_be_bytes());
    out
}

/// Cursor over the TL-encoded body.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(CodecError::Semantic(what))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one TL field, returning (type nibble, length).
    fn tl(&mut self) -> Result<(u8, usize), CodecError> {
        let first = self.take(1, "body ends inside a TL field")?[0];
        let ty = (first >> 4) & 0x7;
        let mut len = (first & 0xF) as usize;
        let mut more = first & 0x80 != 0;
        let mut chained = 1;
        while more {
            let next = self.take(1, "body ends inside a chained TL field")?[0];
            if next & 0x70 != 0 {
                return Err(CodecError::Semantic(
                    "chained TL byte carries a type nibble",
                ));
            }
            if chained >= 16 {
                return Err(CodecError::Semantic("TL chain longer than 16 bytes"));
            }
            len = (len << 4) | (next & 0xF) as usize;
            more = next & 0x80 != 0;
            chained += 1;
        }
        Ok((ty, len))
    }

    fn expect_list(&mut self, entries: Option<usize>) -> Result<usize, CodecError> {
        let (ty, len) = self.tl()?;
        if ty != TYPE_LIST {
            return Err(CodecError::Semantic("expected a list TL field"));
        }
        if let Some(expected) = entries {
            if len != expected {
                return Err(CodecError::Semantic("list has the wrong entry count"));
            }
        }
        Ok(len)
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        let (ty, len) = self.tl()?;
        if ty != TYPE_UNSIGNED || len != 9 {
            return Err(CodecError::Semantic("expected a 9-byte unsigned TL field"));
        }
        let raw = self.take(8, "unsigned field truncated")?;
        Ok(u64::from_be_bytes(raw.try_into().expect("8-byte slice")))
    }

    fn bool(&mut self) -> Result<bool, CodecError> {
        let (ty, len) = self.tl()?;
        if ty != TYPE_BOOL || len != 2 {
            return Err(CodecError::Semantic("expected a boolean TL field"));
        }
        match self.take(1, "boolean field truncated")?[0] {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Semantic("boolean field is neither 0 nor 1")),
        }
    }
}

/// Parses an SML file back into a telegram.
///
/// # Errors
///
/// Framing errors for missing escape sequences, a bad end marker or an
/// impossible pad; a checksum error when the CRC-16 trailer mismatches;
/// semantic errors for TL-structure violations inside a checksum-valid
/// file.
pub fn parse(bytes: &[u8]) -> Result<Telegram, CodecError> {
    if bytes.len() < 16 {
        return Err(CodecError::Framing("file shorter than the SML envelope"));
    }
    if bytes[..4] != ESCAPE || bytes[4..8] != BEGIN {
        return Err(CodecError::Framing("missing SML start escape"));
    }
    let trailer = &bytes[bytes.len() - 8..];
    if trailer[..4] != ESCAPE || trailer[4] != END_MARK {
        return Err(CodecError::Framing("missing SML end escape"));
    }
    let pad = trailer[5] as usize;
    if pad > 3 || bytes.len() % 4 != 0 {
        return Err(CodecError::Framing("impossible pad length"));
    }
    let crc_found = u16::from_be_bytes([trailer[6], trailer[7]]);
    let computed = crc16_x25(&bytes[..bytes.len() - 2]);
    if computed != crc_found {
        return Err(CodecError::Checksum {
            expected: computed,
            found: crc_found,
        });
    }

    let body_end = bytes.len() - 8 - pad;
    if body_end < 8 || bytes[body_end..bytes.len() - 8].iter().any(|&b| b != 0) {
        return Err(CodecError::Semantic("pad bytes are not zero fill"));
    }
    let mut reader = Reader {
        bytes: &bytes[8..body_end],
        pos: 0,
    };
    reader.expect_list(Some(4))?;
    if reader.u64()? != VERSION {
        return Err(CodecError::Semantic("unsupported SML payload version"));
    }
    let device = DeviceId(reader.u64()?);
    let master = match reader.u64()? {
        NO_MASTER => None,
        raw => Some(AggregatorAddr(u32::try_from(raw).map_err(|_| {
            CodecError::Semantic("master element overflows u32")
        })?)),
    };
    let count = reader.expect_list(None)?;
    let mut records = Vec::new();
    for _ in 0..count {
        reader.expect_list(Some(7))?;
        records.push(MeasurementRecord {
            device: DeviceId(reader.u64()?),
            sequence: reader.u64()?,
            interval_start_us: reader.u64()?,
            interval_end_us: reader.u64()?,
            mean_current_ua: reader.u64()?,
            charge_uas: reader.u64()?,
            backfilled: reader.bool()?,
        });
    }
    if reader.pos != reader.bytes.len() {
        return Err(CodecError::Semantic("trailing bytes after the record list"));
    }
    Ok(Telegram {
        device,
        master,
        records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: u64) -> Telegram {
        let device = DeviceId(205);
        let records = (0..n)
            .map(|seq| MeasurementRecord {
                device,
                sequence: seq,
                interval_start_us: seq,
                interval_end_us: seq + 1,
                mean_current_ua: seq * 3,
                charge_uas: seq * 5,
                backfilled: seq % 2 == 1,
            })
            .collect();
        Telegram::new(device, Some(AggregatorAddr(3)), records)
    }

    #[test]
    fn file_is_escape_delimited_and_four_aligned() {
        let bytes = encode(&sample(2));
        assert_eq!(&bytes[..8], &[0x1B, 0x1B, 0x1B, 0x1B, 1, 1, 1, 1]);
        assert_eq!(bytes.len() % 4, 0);
        assert_eq!(bytes[bytes.len() - 4], END_MARK);
    }

    #[test]
    fn long_record_lists_use_chained_tl_fields() {
        // 23 records overflow the 4-bit list-length nibble; the chained TL
        // encoding must still round-trip exactly.
        let t = sample(23);
        assert_eq!(parse(&encode(&t)).unwrap(), t);
        let t = sample(300);
        assert_eq!(parse(&encode(&t)).unwrap(), t);
    }

    #[test]
    fn crc_flip_is_a_checksum_error() {
        let mut bytes = encode(&sample(1));
        bytes[10] ^= 0x20;
        assert!(matches!(parse(&bytes), Err(CodecError::Checksum { .. })));
    }

    #[test]
    fn truncation_is_a_framing_error() {
        let bytes = encode(&sample(1));
        for cut in [0, 3, 7, bytes.len() - 1] {
            assert!(
                matches!(parse(&bytes[..cut]), Err(CodecError::Framing(_))),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn crc_fixed_type_confusion_is_semantic() {
        // Flip an unsigned TL into a list TL and re-seal the CRC: the
        // structure check must still reject it.
        let mut bytes = encode(&sample(1));
        let pos = bytes.iter().position(|&b| b == 0x69).unwrap();
        bytes[pos] = 0x79;
        let n = bytes.len();
        let crc = crc16_x25(&bytes[..n - 2]);
        bytes[n - 2..].copy_from_slice(&crc.to_be_bytes());
        assert!(matches!(parse(&bytes), Err(CodecError::Semantic(_))));
    }
}
