//! The protocol-neutral telegram model and the typed codec error.

use rtem_net::packet::{AggregatorAddr, DeviceId, MeasurementRecord};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which meter protocol family a device speaks on its access link.
///
/// `Internal` is the simulator's native binary packet format — the default,
/// preserving byte-identical behavior with every earlier revision of the
/// testbed. The other four kinds route consumption reports through the
/// corresponding encoder before transmission and the parser on the
/// aggregator side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MeterKind {
    /// The simulator's native record encoding; no telegram framing.
    Internal,
    /// IEC 62056-21 Mode C/D ASCII telegram with OBIS data lines and BCC.
    Iec62056,
    /// Smart Message Language binary TL-field lists with CRC-16/X-25.
    Sml,
    /// Modbus RTU function-0x03 register frames with CRC-16/MODBUS.
    ModbusRtu,
    /// OMS / wireless M-Bus frame format A with per-block CRC-16/EN-13757.
    WirelessMbus,
}

impl MeterKind {
    /// Every kind, `Internal` first.
    pub const ALL: [MeterKind; 5] = [
        MeterKind::Internal,
        MeterKind::Iec62056,
        MeterKind::Sml,
        MeterKind::ModbusRtu,
        MeterKind::WirelessMbus,
    ];

    /// The four real protocol families (everything but `Internal`).
    pub const REAL: [MeterKind; 4] = [
        MeterKind::Iec62056,
        MeterKind::Sml,
        MeterKind::ModbusRtu,
        MeterKind::WirelessMbus,
    ];

    /// Stable one-byte discriminant used in the transport envelope.
    pub fn code(self) -> u8 {
        match self {
            MeterKind::Internal => 0,
            MeterKind::Iec62056 => 1,
            MeterKind::Sml => 2,
            MeterKind::ModbusRtu => 3,
            MeterKind::WirelessMbus => 4,
        }
    }

    /// Inverse of [`code`](Self::code).
    pub fn from_code(code: u8) -> Option<MeterKind> {
        MeterKind::ALL.into_iter().find(|k| k.code() == code)
    }

    /// Short lowercase label, stable for bench CSV/JSON columns.
    pub fn label(self) -> &'static str {
        match self {
            MeterKind::Internal => "internal",
            MeterKind::Iec62056 => "iec62056",
            MeterKind::Sml => "sml",
            MeterKind::ModbusRtu => "modbus_rtu",
            MeterKind::WirelessMbus => "wmbus",
        }
    }
}

impl fmt::Display for MeterKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One consumption report in protocol-neutral form: the batch of
/// measurement records a device pushes upstream, addressed to its current
/// collector.
#[derive(Debug, Clone, PartialEq)]
pub struct Telegram {
    /// The reporting device.
    pub device: DeviceId,
    /// The collector the report is addressed to, when the device knows it.
    pub master: Option<AggregatorAddr>,
    /// The buffered measurement records, oldest first.
    pub records: Vec<MeasurementRecord>,
}

impl Telegram {
    /// Assembles a telegram.
    pub fn new(
        device: DeviceId,
        master: Option<AggregatorAddr>,
        records: Vec<MeasurementRecord>,
    ) -> Self {
        Telegram {
            device,
            master,
            records,
        }
    }
}

/// Why a telegram failed to parse, by failure layer.
///
/// The three variants are ordered by how much of the frame the parser got
/// through: `Framing` means the structure broke before a checksum could be
/// located, `Checksum` means the frame was structurally whole but its block
/// check failed, and `Semantic` means every checksum passed yet the content
/// is inconsistent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// Frame structure is broken (bad start/stop bytes, truncated frame,
    /// impossible length field); no checksum could be verified.
    Framing(&'static str),
    /// A block check (BCC or CRC-16) did not match the received bytes.
    Checksum {
        /// The checksum recomputed over the received frame.
        expected: u16,
        /// The checksum carried in the frame.
        found: u16,
    },
    /// The frame and its checksums are intact but the decoded content is
    /// inconsistent (field counts, record counts, cross-frame identity).
    Semantic(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Framing(detail) => write!(f, "framing error: {detail}"),
            CodecError::Checksum { expected, found } => write!(
                f,
                "checksum mismatch: computed {expected:#06x}, frame carries {found:#06x}"
            ),
            CodecError::Semantic(detail) => write!(f, "semantic error: {detail}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// The payload-free classification of a [`CodecError`] — what telemetry
/// tables count by, without carrying each error's detail string or checksum
/// pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecErrorKind {
    /// Frame structure broken before any checksum could be verified.
    Framing,
    /// Block check (BCC or CRC-16) mismatch.
    Checksum,
    /// Structurally intact frame with inconsistent content.
    Semantic,
}

impl CodecErrorKind {
    /// Number of kinds.
    pub const COUNT: usize = 3;

    /// Every kind, in [`index`](CodecErrorKind::index) order.
    pub const ALL: [CodecErrorKind; CodecErrorKind::COUNT] = [
        CodecErrorKind::Framing,
        CodecErrorKind::Checksum,
        CodecErrorKind::Semantic,
    ];

    /// Dense index into [`ALL`](CodecErrorKind::ALL), usable as a table
    /// column.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case label.
    pub const fn label(self) -> &'static str {
        match self {
            CodecErrorKind::Framing => "framing",
            CodecErrorKind::Checksum => "checksum",
            CodecErrorKind::Semantic => "semantic",
        }
    }
}

impl fmt::Display for CodecErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl CodecError {
    /// This error's payload-free [`CodecErrorKind`].
    pub const fn kind(&self) -> CodecErrorKind {
        match self {
            CodecError::Framing(_) => CodecErrorKind::Framing,
            CodecError::Checksum { .. } => CodecErrorKind::Checksum,
            CodecError::Semantic(_) => CodecErrorKind::Semantic,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_and_internal_is_zero() {
        assert_eq!(MeterKind::Internal.code(), 0);
        for kind in MeterKind::ALL {
            assert_eq!(MeterKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(MeterKind::from_code(200), None);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::BTreeSet<&str> =
            MeterKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), MeterKind::ALL.len());
    }

    #[test]
    fn errors_render_their_layer() {
        assert!(CodecError::Framing("x").to_string().contains("framing"));
        assert!(CodecError::Checksum {
            expected: 1,
            found: 2
        }
        .to_string()
        .contains("checksum"));
        assert!(CodecError::Semantic("x").to_string().contains("semantic"));
    }
}
