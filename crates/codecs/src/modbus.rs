//! Modbus RTU register-read framing.
//!
//! The batch is carried as a chain of function-0x03 (read holding
//! registers) response ADUs: `[unit, 0x03, byte_count, data…, crc_lo,
//! crc_hi]` with CRC-16/MODBUS over everything before the CRC. A response
//! carries at most 125 registers (250 data bytes), so large reports chain
//! multiple frames: the first frame is the 16-byte register-map header
//! (device id, master, record count), each following frame packs up to
//! five 25-register records. All register data is big-endian, the
//! conventional Modbus byte order.

use crate::crc::crc16_modbus;
use crate::telegram::{CodecError, Telegram};
use rtem_net::packet::{AggregatorAddr, DeviceId, MeasurementRecord};

const FUNCTION_READ_HOLDING: u8 = 0x03;
/// Register-map header: device id (4 registers), master (2), count (2).
const HEADER_BYTES: usize = 16;
/// One record occupies 25 registers: six u64 fields plus a flag register.
const RECORD_BYTES: usize = 50;
/// 125 registers — the Modbus spec's response ceiling — is five records.
const RECORDS_PER_FRAME: usize = 5;
/// Sentinel in the master registers for "no master addressed".
const NO_MASTER: u32 = u32::MAX;

/// Modbus unit ids run 1..=247; the device id is folded into that range
/// (the true 64-bit id rides in the register map).
fn unit_id(device: DeviceId) -> u8 {
    (device.0 % 247) as u8 + 1
}

/// Appends one response ADU around the given register data.
fn put_frame(out: &mut Vec<u8>, unit: u8, data: &[u8]) {
    debug_assert!(data.len() <= 250 && !data.is_empty());
    let start = out.len();
    out.push(unit);
    out.push(FUNCTION_READ_HOLDING);
    out.push(data.len() as u8);
    out.extend_from_slice(data);
    let crc = crc16_modbus(&out[start..]);
    out.extend_from_slice(&crc.to_le_bytes()); // CRC is low-byte-first
}

fn put_record(data: &mut Vec<u8>, r: &MeasurementRecord) {
    data.extend_from_slice(&r.device.0.to_be_bytes());
    data.extend_from_slice(&r.sequence.to_be_bytes());
    data.extend_from_slice(&r.interval_start_us.to_be_bytes());
    data.extend_from_slice(&r.interval_end_us.to_be_bytes());
    data.extend_from_slice(&r.mean_current_ua.to_be_bytes());
    data.extend_from_slice(&r.charge_uas.to_be_bytes());
    // Flag register: backfilled bit in the high byte, zero fill low.
    data.push(u8::from(r.backfilled));
    data.push(0);
}

/// Encodes a telegram as a chain of Modbus RTU response frames.
pub fn encode(telegram: &Telegram) -> Vec<u8> {
    let unit = unit_id(telegram.device);
    let mut out = Vec::with_capacity(32 + telegram.records.len() * 55);

    let mut header = Vec::with_capacity(HEADER_BYTES);
    header.extend_from_slice(&telegram.device.0.to_be_bytes());
    header.extend_from_slice(&telegram.master.map_or(NO_MASTER, |a| a.0).to_be_bytes());
    header.extend_from_slice(&(telegram.records.len() as u32).to_be_bytes());
    put_frame(&mut out, unit, &header);

    for chunk in telegram.records.chunks(RECORDS_PER_FRAME) {
        let mut data = Vec::with_capacity(chunk.len() * RECORD_BYTES);
        for r in chunk {
            put_record(&mut data, r);
        }
        put_frame(&mut out, unit, &data);
    }
    out
}

fn get_u64(data: &[u8], at: usize) -> u64 {
    u64::from_be_bytes(data[at..at + 8].try_into().expect("8-byte slice"))
}

/// Parses a chain of Modbus RTU response frames back into a telegram.
///
/// # Errors
///
/// Framing errors for truncated or impossible frames; a checksum error on
/// any frame whose CRC mismatches; semantic errors for wrong function
/// codes, a unit id drifting between chained frames, or register data
/// that contradicts the header's record count.
pub fn parse(bytes: &[u8]) -> Result<Telegram, CodecError> {
    if bytes.is_empty() {
        return Err(CodecError::Framing("empty frame chain"));
    }
    let mut data = Vec::new();
    let mut unit = None;
    let mut pos = 0;
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        if rest.len() < 5 {
            return Err(CodecError::Framing("frame shorter than the ADU minimum"));
        }
        let byte_count = rest[2] as usize;
        let frame_len = 3 + byte_count + 2;
        if byte_count == 0 || byte_count > 250 {
            return Err(CodecError::Framing("impossible byte count"));
        }
        if rest.len() < frame_len {
            return Err(CodecError::Framing("frame truncated mid-ADU"));
        }
        let frame = &rest[..frame_len];
        let found = u16::from_le_bytes([frame[frame_len - 2], frame[frame_len - 1]]);
        let computed = crc16_modbus(&frame[..frame_len - 2]);
        if computed != found {
            return Err(CodecError::Checksum {
                expected: computed,
                found,
            });
        }
        if frame[1] != FUNCTION_READ_HOLDING {
            return Err(CodecError::Semantic("unexpected Modbus function code"));
        }
        match unit {
            None => unit = Some(frame[0]),
            Some(u) if u == frame[0] => {}
            Some(_) => {
                return Err(CodecError::Semantic(
                    "unit id changes between chained frames",
                ))
            }
        }
        data.extend_from_slice(&frame[3..frame_len - 2]);
        pos += frame_len;
    }

    if data.len() < HEADER_BYTES {
        return Err(CodecError::Semantic("register map lacks the header"));
    }
    let device = DeviceId(get_u64(&data, 0));
    let master_raw = u32::from_be_bytes(data[8..12].try_into().expect("4-byte slice"));
    let master = (master_raw != NO_MASTER).then_some(AggregatorAddr(master_raw));
    let count = u32::from_be_bytes(data[12..16].try_into().expect("4-byte slice")) as usize;
    if data.len() != HEADER_BYTES + count * RECORD_BYTES {
        return Err(CodecError::Semantic(
            "register data does not match the declared record count",
        ));
    }
    if unit != Some(unit_id(device)) {
        return Err(CodecError::Semantic(
            "unit id does not match the device registers",
        ));
    }
    let mut records = Vec::with_capacity(count);
    for i in 0..count {
        let at = HEADER_BYTES + i * RECORD_BYTES;
        let flag = data[at + 48];
        if flag > 1 || data[at + 49] != 0 {
            return Err(CodecError::Semantic("record flag register out of range"));
        }
        records.push(MeasurementRecord {
            device: DeviceId(get_u64(&data, at)),
            sequence: get_u64(&data, at + 8),
            interval_start_us: get_u64(&data, at + 16),
            interval_end_us: get_u64(&data, at + 24),
            mean_current_ua: get_u64(&data, at + 32),
            charge_uas: get_u64(&data, at + 40),
            backfilled: flag == 1,
        });
    }
    Ok(Telegram {
        device,
        master,
        records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: u64) -> Telegram {
        let device = DeviceId(301);
        let records = (0..n)
            .map(|seq| MeasurementRecord {
                device,
                sequence: seq,
                interval_start_us: seq * 7,
                interval_end_us: seq * 7 + 7,
                mean_current_ua: 1000 + seq,
                charge_uas: 2000 + seq,
                backfilled: false,
            })
            .collect();
        Telegram::new(device, None, records)
    }

    #[test]
    fn frames_chain_at_five_records_each() {
        // Header frame (16 data bytes) + three record frames: 5 + 5 + 2.
        let bytes = encode(&sample(12));
        let frame_lens: Vec<usize> = [16, 250, 250, 100].iter().map(|d| 3 + d + 2).collect();
        assert_eq!(bytes.len(), frame_lens.iter().sum::<usize>());
        assert_eq!(bytes[0], unit_id(DeviceId(301)));
        assert_eq!(bytes[1], FUNCTION_READ_HOLDING);
        assert_eq!(bytes[2], 16);
    }

    #[test]
    fn crc_flip_in_any_frame_is_a_checksum_error() {
        let mut bytes = encode(&sample(7));
        bytes[40] ^= 0x80; // inside the second frame's register data
        assert!(matches!(parse(&bytes), Err(CodecError::Checksum { .. })));
    }

    #[test]
    fn truncation_is_a_framing_error() {
        let bytes = encode(&sample(2));
        assert!(matches!(
            parse(&bytes[..bytes.len() - 3]),
            Err(CodecError::Framing(_))
        ));
    }

    #[test]
    fn count_mismatch_with_sealed_crcs_is_semantic() {
        // Drop the last record frame entirely: every remaining frame still
        // has a valid CRC, but the header count no longer matches.
        let bytes = encode(&sample(6)); // header + 5-record + 1-record frames
        let last_frame = 3 + RECORD_BYTES + 2;
        assert!(matches!(
            parse(&bytes[..bytes.len() - last_frame]),
            Err(CodecError::Semantic(_))
        ));
    }

    #[test]
    fn foreign_unit_id_is_semantic() {
        let mut bytes = encode(&sample(0));
        bytes[0] ^= 0x01;
        // Re-seal the single frame's CRC so only the unit check can fire.
        let n = bytes.len();
        let crc = crc16_modbus(&bytes[..n - 2]);
        bytes[n - 2..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(parse(&bytes), Err(CodecError::Semantic(_))));
    }
}
