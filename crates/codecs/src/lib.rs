//! Meter-protocol telegram codecs for the testbed substitution.
//!
//! The paper's deployments mix meter families that speak very different
//! wire formats; this crate gives the simulated devices the same
//! heterogeneity. A device's consumption report is lowered into a
//! [`Telegram`] and encoded to real protocol bytes before it touches the
//! broker, then parsed back on the aggregator side — so payload sizes,
//! airtime and corruption behavior all reflect the genuine framing of the
//! selected [`MeterKind`]:
//!
//! * [`iec62056`] — IEC 62056-21 Mode C/D ASCII telegrams: identification
//!   line, OBIS-coded data lines, `!` terminator and XOR block check (BCC).
//! * [`sml`] — Smart Message Language binary: escape-delimited TL-field
//!   message lists closed by a CRC-16/X-25 trailer.
//! * [`modbus`] — Modbus RTU register reads: function 0x03 responses over a
//!   register map, CRC-16/MODBUS per frame, chained for large reports.
//! * [`wmbus`] — OMS / wireless M-Bus frame format A: length + CI fields,
//!   encoded manufacturer ID, and per-block CRC-16/EN-13757 checksums.
//!
//! Every parser returns a typed [`CodecError`] that distinguishes
//! *framing* damage (structure broken before any checksum could be
//! located), *checksum* mismatches, and *semantic* inconsistencies in an
//! otherwise intact frame. Encode→parse round trips are lossless for the
//! full value ranges the simulation emits (all-`u64` measurement fields).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod crc;
pub mod iec62056;
pub mod modbus;
pub mod sml;
pub mod telegram;
pub mod wmbus;

pub use telegram::{CodecError, CodecErrorKind, MeterKind, Telegram};

/// Encodes a telegram to the wire bytes of the given meter kind.
///
/// # Errors
///
/// [`MeterKind::Internal`] has no telegram representation (it rides the
/// simulator's native packet encoding) and yields a semantic error; the
/// four real protocol families always encode successfully.
///
/// # Examples
///
/// ```
/// use rtem_codecs::{encode, parse, MeterKind, Telegram};
/// use rtem_net::packet::DeviceId;
///
/// let telegram = Telegram::new(DeviceId(7), None, Vec::new());
/// let bytes = encode(MeterKind::Sml, &telegram).unwrap();
/// assert_eq!(parse(MeterKind::Sml, &bytes).unwrap(), telegram);
/// ```
pub fn encode(kind: MeterKind, telegram: &Telegram) -> Result<Vec<u8>, CodecError> {
    match kind {
        MeterKind::Internal => Err(CodecError::Semantic(
            "the internal record format has no telegram encoding",
        )),
        MeterKind::Iec62056 => Ok(iec62056::encode(telegram)),
        MeterKind::Sml => Ok(sml::encode(telegram)),
        MeterKind::ModbusRtu => Ok(modbus::encode(telegram)),
        MeterKind::WirelessMbus => Ok(wmbus::encode(telegram)),
    }
}

/// Parses wire bytes of the given meter kind back into a telegram.
///
/// # Errors
///
/// Returns the codec family's typed [`CodecError`] on any malformed input;
/// parsers never panic, whatever the bytes. [`MeterKind::Internal`] is a
/// semantic error, as for [`encode`].
pub fn parse(kind: MeterKind, bytes: &[u8]) -> Result<Telegram, CodecError> {
    match kind {
        MeterKind::Internal => Err(CodecError::Semantic(
            "the internal record format has no telegram encoding",
        )),
        MeterKind::Iec62056 => iec62056::parse(bytes),
        MeterKind::Sml => sml::parse(bytes),
        MeterKind::ModbusRtu => modbus::parse(bytes),
        MeterKind::WirelessMbus => wmbus::parse(bytes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtem_net::packet::{AggregatorAddr, DeviceId, MeasurementRecord};

    fn sample(records: usize) -> Telegram {
        let device = DeviceId(104);
        let records = (0..records as u64)
            .map(|seq| MeasurementRecord {
                device,
                sequence: seq,
                interval_start_us: seq * 1_000_000,
                interval_end_us: (seq + 1) * 1_000_000,
                mean_current_ua: 5_250_000 + seq,
                charge_uas: 5_250_000 + seq,
                backfilled: seq % 3 == 0,
            })
            .collect();
        Telegram::new(device, Some(AggregatorAddr(2)), records)
    }

    #[test]
    fn every_real_kind_round_trips() {
        for kind in MeterKind::REAL {
            for n in [0usize, 1, 5, 23] {
                let telegram = sample(n);
                let bytes = encode(kind, &telegram).unwrap();
                let back = parse(kind, &bytes).unwrap();
                assert_eq!(back, telegram, "{kind} with {n} records");
            }
        }
    }

    #[test]
    fn extreme_values_round_trip() {
        let device = DeviceId(u64::MAX);
        let record = MeasurementRecord {
            device,
            sequence: u64::MAX,
            interval_start_us: 0,
            interval_end_us: u64::MAX,
            mean_current_ua: u64::MAX - 1,
            charge_uas: u64::MAX,
            backfilled: true,
        };
        let telegram = Telegram::new(device, Some(AggregatorAddr(u32::MAX - 1)), vec![record]);
        for kind in MeterKind::REAL {
            let bytes = encode(kind, &telegram).unwrap();
            assert_eq!(parse(kind, &bytes).unwrap(), telegram, "{kind}");
        }
    }

    #[test]
    fn internal_kind_has_no_telegram_form() {
        let telegram = sample(1);
        assert!(matches!(
            encode(MeterKind::Internal, &telegram),
            Err(CodecError::Semantic(_))
        ));
        assert!(matches!(
            parse(MeterKind::Internal, b"anything"),
            Err(CodecError::Semantic(_))
        ));
    }

    #[test]
    fn empty_input_is_a_framing_error_for_every_real_kind() {
        for kind in MeterKind::REAL {
            assert!(
                matches!(parse(kind, &[]), Err(CodecError::Framing(_))),
                "{kind}"
            );
        }
    }

    #[test]
    fn single_bit_flips_never_round_trip_silently() {
        // Every codec family carries a checksum, so flipping any one bit of
        // a valid telegram must never parse back to the original content.
        let telegram = sample(3);
        for kind in MeterKind::REAL {
            let bytes = encode(kind, &telegram).unwrap();
            for bit in [0usize, 7, 64, 8 * bytes.len() - 1] {
                let mut corrupt = bytes.clone();
                corrupt[bit / 8] ^= 1 << (bit % 8);
                match parse(kind, &corrupt) {
                    Err(_) => {}
                    Ok(back) => assert_ne!(back, telegram, "{kind} bit {bit} undetected"),
                }
            }
        }
    }
}
