//! IEC 62056-21 Mode C/D ASCII telegrams.
//!
//! The classic optical-port / D0 readout format: an identification line
//! (`/` + manufacturer flag + baud identification + meter id), then a data
//! block bracketed by STX … `!` CR LF ETX, closed by a one-byte block
//! check character (BCC) — the XOR of every byte after STX up to and
//! including ETX. Data lines are OBIS-coded `address(value)` pairs; the
//! consumption batch rides one `99.129.0` line per record with
//! semicolon-separated decimal fields, so the encoding is lossless for the
//! simulator's full `u64` ranges.
//!
//! ```text
//! /RTM5\2RTEM104
//! <STX>1-0:0.0.0(104)
//! 1-0:96.1.0(2)
//! 1-0:99.128.0(1)
//! 1-0:99.129.0(104;0;0;1000000;5250000;5250000;L)
//! !
//! <ETX><BCC>
//! ```

use crate::telegram::{CodecError, Telegram};
use rtem_net::packet::{AggregatorAddr, DeviceId, MeasurementRecord};

const STX: u8 = 0x02;
const ETX: u8 = 0x03;
/// Identification-line prefix: manufacturer flag `RTM`, baud id `5`
/// (9600 Bd), `\2` mode C escape, then the meter identification.
const IDENT_PREFIX: &str = "/RTM5\\2RTEM";
/// OBIS address carrying the meter identification.
const OBIS_DEVICE: &str = "1-0:0.0.0";
/// OBIS address carrying the addressed collector (`@` when unknown).
const OBIS_MASTER: &str = "1-0:96.1.0";
/// OBIS address carrying the record count of the batch.
const OBIS_COUNT: &str = "1-0:99.128.0";
/// OBIS address carrying one measurement record per line.
const OBIS_RECORD: &str = "1-0:99.129.0";

/// XOR block check over the bytes after STX through ETX inclusive.
fn bcc(block: &[u8]) -> u8 {
    block.iter().fold(0, |acc, b| acc ^ b)
}

/// Encodes a telegram as an IEC 62056-21 readout.
pub fn encode(telegram: &Telegram) -> Vec<u8> {
    let mut block = String::new();
    block.push_str(&format!("{OBIS_DEVICE}({})\r\n", telegram.device.0));
    match telegram.master {
        Some(addr) => block.push_str(&format!("{OBIS_MASTER}({})\r\n", addr.0)),
        None => block.push_str(&format!("{OBIS_MASTER}(@)\r\n")),
    }
    block.push_str(&format!("{OBIS_COUNT}({})\r\n", telegram.records.len()));
    for r in &telegram.records {
        block.push_str(&format!(
            "{OBIS_RECORD}({};{};{};{};{};{};{})\r\n",
            r.device.0,
            r.sequence,
            r.interval_start_us,
            r.interval_end_us,
            r.mean_current_ua,
            r.charge_uas,
            if r.backfilled { 'B' } else { 'L' },
        ));
    }
    block.push_str("!\r\n");

    let mut out = Vec::with_capacity(block.len() + 32);
    out.extend_from_slice(format!("{IDENT_PREFIX}{}\r\n", telegram.device.0).as_bytes());
    out.push(STX);
    out.extend_from_slice(block.as_bytes());
    out.push(ETX);
    // The BCC covers everything after STX, ETX included.
    let check = bcc(&out[out.len() - block.len() - 1..]);
    out.push(check);
    out
}

fn parse_u64(field: &str, what: &'static str) -> Result<u64, CodecError> {
    if field.is_empty() || !field.bytes().all(|b| b.is_ascii_digit()) {
        return Err(CodecError::Semantic(what));
    }
    field.parse::<u64>().map_err(|_| CodecError::Semantic(what))
}

/// Splits one `address(value)` data line.
fn split_line(line: &str) -> Result<(&str, &str), CodecError> {
    let open = line
        .find('(')
        .ok_or(CodecError::Semantic("data line has no value parenthesis"))?;
    if !line.ends_with(')') {
        return Err(CodecError::Semantic("data line is not ')'-terminated"));
    }
    Ok((&line[..open], &line[open + 1..line.len() - 1]))
}

/// Parses an IEC 62056-21 readout back into a telegram.
///
/// # Errors
///
/// Framing errors for a missing identification line, STX/ETX bracket or
/// BCC byte; a checksum error when the BCC does not match; semantic
/// errors for malformed OBIS lines, field counts, or an identification
/// line that contradicts the data block.
pub fn parse(bytes: &[u8]) -> Result<Telegram, CodecError> {
    if bytes.first() != Some(&b'/') {
        return Err(CodecError::Framing("identification line must start with /"));
    }
    let stx = bytes
        .iter()
        .position(|&b| b == STX)
        .ok_or(CodecError::Framing("no STX after the identification line"))?;
    // The BCC is the final byte; ETX must immediately precede it.
    if bytes.len() < stx + 3 {
        return Err(CodecError::Framing("telegram truncated before ETX"));
    }
    let (check_found, etx) = (bytes[bytes.len() - 1], bytes[bytes.len() - 2]);
    if etx != ETX {
        return Err(CodecError::Framing("ETX missing before the block check"));
    }
    let computed = bcc(&bytes[stx + 1..bytes.len() - 1]);
    if computed != check_found {
        return Err(CodecError::Checksum {
            expected: computed as u16,
            found: check_found as u16,
        });
    }

    let ident = &bytes[..stx];
    let ident = std::str::from_utf8(ident)
        .map_err(|_| CodecError::Semantic("identification line is not ASCII"))?;
    let ident_device = ident
        .strip_prefix(IDENT_PREFIX)
        .and_then(|rest| rest.strip_suffix("\r\n"))
        .ok_or(CodecError::Semantic("unknown identification line"))?;
    let ident_device = parse_u64(ident_device, "identification meter id is not a number")?;

    let block = std::str::from_utf8(&bytes[stx + 1..bytes.len() - 2])
        .map_err(|_| CodecError::Semantic("data block is not ASCII"))?;
    let mut lines = block.split("\r\n");
    let mut device = None;
    let mut master = None;
    let mut declared = None;
    let mut records = Vec::new();
    let mut terminated = false;
    for line in &mut lines {
        if line == "!" {
            terminated = true;
            break;
        }
        let (address, value) = split_line(line)?;
        match address {
            OBIS_DEVICE => {
                device = Some(DeviceId(parse_u64(value, "meter id is not a number")?));
            }
            OBIS_MASTER => {
                if value != "@" {
                    let addr = parse_u64(value, "collector address is not a number")?;
                    let addr = u32::try_from(addr)
                        .map_err(|_| CodecError::Semantic("collector address overflows u32"))?;
                    master = Some(AggregatorAddr(addr));
                }
            }
            OBIS_COUNT => {
                declared = Some(parse_u64(value, "record count is not a number")?);
            }
            OBIS_RECORD => {
                let mut fields = value.split(';');
                let mut next = |what| -> Result<u64, CodecError> {
                    parse_u64(
                        fields
                            .next()
                            .ok_or(CodecError::Semantic("record line has too few fields"))?,
                        what,
                    )
                };
                let record = MeasurementRecord {
                    device: DeviceId(next("record meter id")?),
                    sequence: next("record sequence")?,
                    interval_start_us: next("record interval start")?,
                    interval_end_us: next("record interval end")?,
                    mean_current_ua: next("record mean current")?,
                    charge_uas: next("record charge")?,
                    backfilled: match fields.next() {
                        Some("B") => true,
                        Some("L") => false,
                        _ => return Err(CodecError::Semantic("record flag must be B or L")),
                    },
                };
                if fields.next().is_some() {
                    return Err(CodecError::Semantic("record line has too many fields"));
                }
                records.push(record);
            }
            _ => return Err(CodecError::Semantic("unknown OBIS address")),
        }
    }
    if !terminated {
        return Err(CodecError::Semantic("data block lacks the ! terminator"));
    }
    if lines.next() != Some("") || lines.next().is_some() {
        return Err(CodecError::Semantic("trailing data after the ! terminator"));
    }
    let device = device.ok_or(CodecError::Semantic("no meter-id data line"))?;
    if device.0 != ident_device {
        return Err(CodecError::Semantic(
            "identification line and data block disagree on the meter id",
        ));
    }
    let declared = declared.ok_or(CodecError::Semantic("no record-count data line"))?;
    if declared != records.len() as u64 {
        return Err(CodecError::Semantic(
            "record count does not match the record lines",
        ));
    }
    Ok(Telegram {
        device,
        master,
        records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Telegram {
        let device = DeviceId(104);
        Telegram::new(
            device,
            Some(AggregatorAddr(2)),
            vec![MeasurementRecord {
                device,
                sequence: 9,
                interval_start_us: 9_000_000,
                interval_end_us: 10_000_000,
                mean_current_ua: 5_250_123,
                charge_uas: 5_250_123,
                backfilled: true,
            }],
        )
    }

    #[test]
    fn telegram_is_printable_ascii_with_control_brackets() {
        let bytes = encode(&sample());
        let text = String::from_utf8_lossy(&bytes);
        assert!(text.starts_with("/RTM5\\2RTEM104\r\n"));
        assert!(text.contains("1-0:99.129.0(104;9;9000000;10000000;5250123;5250123;B)"));
        assert!(text.contains("!\r\n"));
    }

    #[test]
    fn bcc_flip_is_a_checksum_error() {
        let mut bytes = encode(&sample());
        let n = bytes.len();
        bytes[n - 10] ^= 0x01; // inside the data block
        assert!(matches!(parse(&bytes), Err(CodecError::Checksum { .. })));
    }

    #[test]
    fn missing_brackets_are_framing_errors() {
        let bytes = encode(&sample());
        assert!(matches!(parse(&bytes[1..]), Err(CodecError::Framing(_))));
        assert!(matches!(
            parse(&bytes[..bytes.len() - 2]),
            Err(CodecError::Framing(_))
        ));
    }

    #[test]
    fn no_master_encodes_as_at_sign() {
        let mut t = sample();
        t.master = None;
        let bytes = encode(&t);
        assert!(String::from_utf8_lossy(&bytes).contains("1-0:96.1.0(@)"));
        assert_eq!(parse(&bytes).unwrap(), t);
    }

    #[test]
    fn mangled_count_with_fixed_bcc_is_semantic() {
        // An attacker (or our fault injector) who fixes up the BCC still
        // trips the record-count cross check.
        let mut t = sample();
        t.records.clear();
        let mut bytes = encode(&t);
        let pos = bytes
            .windows(14)
            .position(|w| w == b"99.128.0(0)\r\n!")
            .unwrap();
        bytes[pos + 9] = b'7';
        let stx = bytes.iter().position(|&b| b == STX).unwrap();
        let n = bytes.len();
        bytes[n - 1] = bcc(&bytes[stx + 1..n - 1]);
        assert!(matches!(parse(&bytes), Err(CodecError::Semantic(_))));
    }
}
