//! OMS / wireless M-Bus frame format A.
//!
//! Each frame opens with block 1 — `L` (length of all frame bytes after
//! `L`, CRCs excluded), the C field (`0x44`, SND-NR), the two-byte
//! encoded manufacturer ID and the six-byte address field (ident,
//! version, device type) — sealed by a CRC-16/EN-13757. Block 2 starts
//! with the CI field (`0xA1`, manufacturer-specific data) followed by up
//! to 15 payload bytes and its own CRC; further blocks carry up to 16
//! payload bytes each, every block CRC-sealed. `L` tops out at 255, so
//! large reports chain multiple frames; the payload stream across the
//! chain is a 16-byte header (device id, master, record count) followed
//! by the fixed-width record images.

use crate::crc::crc16_en13757;
use crate::telegram::{CodecError, Telegram};
use rtem_net::packet::{AggregatorAddr, DeviceId, MeasurementRecord};

/// C field: SND-NR, the unsolicited meter transmission.
const C_SND_NR: u8 = 0x44;
/// CI field: manufacturer-specific data block.
const CI_MANUFACTURER: u8 = 0xA1;
/// Manufacturer "RTM" per EN 62056-21 flag encoding: ((R-64)<<10) |
/// ((T-64)<<5) | (M-64), transmitted little-endian.
const MANUFACTURER: u16 =
    ((b'R' - 64) as u16) << 10 | ((b'T' - 64) as u16) << 5 | (b'M' - 64) as u16;
/// Address-field version byte.
const VERSION: u8 = 0x05;
/// Address-field device type: electricity meter.
const DEVICE_TYPE: u8 = 0x02;
/// Payload-stream header: device id (8), master (4), record count (4).
const HEADER_BYTES: usize = 16;
/// Fixed-width record image in the payload stream.
const RECORD_BYTES: usize = 49;
/// `L` counts C + M + A + CI + payload = 10 + payload, and is a u8.
const MAX_PAYLOAD_PER_FRAME: usize = 255 - 10;
/// Sentinel in the master header field for "no master addressed".
const NO_MASTER: u32 = u32::MAX;

fn put_record(data: &mut Vec<u8>, r: &MeasurementRecord) {
    data.extend_from_slice(&r.device.0.to_le_bytes());
    data.extend_from_slice(&r.sequence.to_le_bytes());
    data.extend_from_slice(&r.interval_start_us.to_le_bytes());
    data.extend_from_slice(&r.interval_end_us.to_le_bytes());
    data.extend_from_slice(&r.mean_current_ua.to_le_bytes());
    data.extend_from_slice(&r.charge_uas.to_le_bytes());
    data.push(u8::from(r.backfilled));
}

/// Appends a block followed by its CRC.
fn put_block(out: &mut Vec<u8>, block: &[u8]) {
    out.extend_from_slice(block);
    out.extend_from_slice(&crc16_en13757(block).to_be_bytes());
}

/// Appends one frame-format-A frame around a payload slice.
fn put_frame(out: &mut Vec<u8>, device: DeviceId, payload: &[u8]) {
    debug_assert!(payload.len() <= MAX_PAYLOAD_PER_FRAME);
    let mut block1 = Vec::with_capacity(10);
    block1.push((10 + payload.len()) as u8); // L
    block1.push(C_SND_NR);
    block1.extend_from_slice(&MANUFACTURER.to_le_bytes());
    block1.extend_from_slice(&(device.0 as u32).to_le_bytes()); // ident
    block1.push(VERSION);
    block1.push(DEVICE_TYPE);
    put_block(out, &block1);

    // Block 2 is CI + the first 15 payload bytes; blocks 3+ take 16 each.
    let split = payload.len().min(15);
    let mut block2 = Vec::with_capacity(16);
    block2.push(CI_MANUFACTURER);
    block2.extend_from_slice(&payload[..split]);
    put_block(out, &block2);
    for chunk in payload[split..].chunks(16) {
        put_block(out, chunk);
    }
}

/// Encodes a telegram as a chain of wireless M-Bus format-A frames.
pub fn encode(telegram: &Telegram) -> Vec<u8> {
    let mut stream = Vec::with_capacity(HEADER_BYTES + telegram.records.len() * RECORD_BYTES);
    stream.extend_from_slice(&telegram.device.0.to_le_bytes());
    stream.extend_from_slice(&telegram.master.map_or(NO_MASTER, |a| a.0).to_le_bytes());
    stream.extend_from_slice(&(telegram.records.len() as u32).to_le_bytes());
    for r in &telegram.records {
        put_record(&mut stream, r);
    }

    let mut out = Vec::with_capacity(stream.len() + stream.len() / 8 + 32);
    for payload in stream.chunks(MAX_PAYLOAD_PER_FRAME) {
        put_frame(&mut out, telegram.device, payload);
    }
    out
}

/// Verifies and strips one CRC-sealed block of `len` content bytes.
fn take_block<'a>(bytes: &mut &'a [u8], len: usize) -> Result<&'a [u8], CodecError> {
    if bytes.len() < len + 2 {
        return Err(CodecError::Framing("frame truncated mid-block"));
    }
    let (block, rest) = bytes.split_at(len);
    let found = u16::from_be_bytes([rest[0], rest[1]]);
    let computed = crc16_en13757(block);
    if computed != found {
        return Err(CodecError::Checksum {
            expected: computed,
            found,
        });
    }
    *bytes = &rest[2..];
    Ok(block)
}

fn get_u64_le(data: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(data[at..at + 8].try_into().expect("8-byte slice"))
}

/// Parses a chain of wireless M-Bus frames back into a telegram.
///
/// # Errors
///
/// Framing errors for truncated frames or an `L` field shorter than the
/// frame header; checksum errors when any block CRC mismatches; semantic
/// errors for wrong C/CI fields, a foreign manufacturer, an address field
/// that contradicts the payload header, or a record-count mismatch.
pub fn parse(mut bytes: &[u8]) -> Result<Telegram, CodecError> {
    if bytes.is_empty() {
        return Err(CodecError::Framing("empty frame chain"));
    }
    let mut stream = Vec::new();
    let mut ident = None;
    while !bytes.is_empty() {
        let length = bytes[0] as usize;
        if length < 10 {
            return Err(CodecError::Framing("L field shorter than the frame header"));
        }
        let block1 = take_block(&mut bytes, 10)?;
        if block1[1] != C_SND_NR {
            return Err(CodecError::Semantic("unexpected C field"));
        }
        if u16::from_le_bytes([block1[2], block1[3]]) != MANUFACTURER {
            return Err(CodecError::Semantic("foreign manufacturer id"));
        }
        if block1[8] != VERSION || block1[9] != DEVICE_TYPE {
            return Err(CodecError::Semantic("unexpected version or device type"));
        }
        let frame_ident = u32::from_le_bytes(block1[4..8].try_into().expect("4-byte slice"));
        match ident {
            None => ident = Some(frame_ident),
            Some(i) if i == frame_ident => {}
            Some(_) => {
                return Err(CodecError::Semantic(
                    "address ident changes between chained frames",
                ))
            }
        }
        let mut payload_left = length - 10;
        let block2 = take_block(&mut bytes, payload_left.min(15) + 1)?;
        if block2[0] != CI_MANUFACTURER {
            return Err(CodecError::Semantic("unexpected CI field"));
        }
        stream.extend_from_slice(&block2[1..]);
        payload_left -= block2.len() - 1;
        while payload_left > 0 {
            let block = take_block(&mut bytes, payload_left.min(16))?;
            stream.extend_from_slice(block);
            payload_left -= block.len();
        }
    }

    if stream.len() < HEADER_BYTES {
        return Err(CodecError::Semantic("payload stream lacks the header"));
    }
    let device = DeviceId(get_u64_le(&stream, 0));
    let master_raw = u32::from_le_bytes(stream[8..12].try_into().expect("4-byte slice"));
    let master = (master_raw != NO_MASTER).then_some(AggregatorAddr(master_raw));
    let count = u32::from_le_bytes(stream[12..16].try_into().expect("4-byte slice")) as usize;
    if stream.len() != HEADER_BYTES + count * RECORD_BYTES {
        return Err(CodecError::Semantic(
            "payload stream does not match the declared record count",
        ));
    }
    if ident != Some(device.0 as u32) {
        return Err(CodecError::Semantic(
            "address ident does not match the payload device id",
        ));
    }
    let mut records = Vec::with_capacity(count);
    for i in 0..count {
        let at = HEADER_BYTES + i * RECORD_BYTES;
        let flag = stream[at + 48];
        if flag > 1 {
            return Err(CodecError::Semantic("record flag byte out of range"));
        }
        records.push(MeasurementRecord {
            device: DeviceId(get_u64_le(&stream, at)),
            sequence: get_u64_le(&stream, at + 8),
            interval_start_us: get_u64_le(&stream, at + 16),
            interval_end_us: get_u64_le(&stream, at + 24),
            mean_current_ua: get_u64_le(&stream, at + 32),
            charge_uas: get_u64_le(&stream, at + 40),
            backfilled: flag == 1,
        });
    }
    Ok(Telegram {
        device,
        master,
        records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: u64) -> Telegram {
        let device = DeviceId(4_000_000_007);
        let records = (0..n)
            .map(|seq| MeasurementRecord {
                device,
                sequence: seq,
                interval_start_us: seq * 11,
                interval_end_us: seq * 11 + 11,
                mean_current_ua: 42 + seq,
                charge_uas: 43 + seq,
                backfilled: seq % 4 == 0,
            })
            .collect();
        Telegram::new(device, Some(AggregatorAddr(1)), records)
    }

    #[test]
    fn manufacturer_id_encodes_rtm() {
        // (18<<10)|(20<<5)|13 = 0x4A8D.
        assert_eq!(MANUFACTURER, 0x4A8D);
        let bytes = encode(&sample(0));
        assert_eq!(&bytes[2..4], &MANUFACTURER.to_le_bytes());
    }

    #[test]
    fn multi_frame_chains_round_trip() {
        // 16 + 20*49 = 996 payload bytes: five frames at L=255 max.
        for n in [4, 20, 61] {
            let t = sample(n);
            assert_eq!(parse(&encode(&t)).unwrap(), t, "{n} records");
        }
    }

    #[test]
    fn block_crc_flip_is_a_checksum_error() {
        let mut bytes = encode(&sample(3));
        let n = bytes.len();
        bytes[n - 5] ^= 0x10; // inside the final data block
        assert!(matches!(parse(&bytes), Err(CodecError::Checksum { .. })));
    }

    #[test]
    fn truncation_is_a_framing_error() {
        let bytes = encode(&sample(3));
        assert!(matches!(
            parse(&bytes[..bytes.len() - 1]),
            Err(CodecError::Framing(_))
        ));
    }

    #[test]
    fn zero_length_field_is_a_framing_error() {
        let mut bytes = encode(&sample(0));
        bytes[0] = 3;
        assert!(matches!(parse(&bytes), Err(CodecError::Framing(_))));
    }

    #[test]
    fn ident_mismatch_with_sealed_crcs_is_semantic() {
        let mut bytes = encode(&sample(0));
        bytes[4] ^= 0xFF; // ident byte in block 1
        let crc = crc16_en13757(&bytes[..10]);
        bytes[10..12].copy_from_slice(&crc.to_be_bytes());
        assert!(matches!(parse(&bytes), Err(CodecError::Semantic(_))));
    }
}
