//! The three CRC-16 flavors the meter protocols use.
//!
//! Implemented bitwise (no tables): telegrams are a few hundred bytes and
//! the simulation encodes at most a few per device per second, so clarity
//! wins over throughput here.

/// CRC-16/X-25 (reflected poly 0x8408, init 0xFFFF, final complement) —
/// the block check closing an SML transport frame.
pub fn crc16_x25(bytes: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &byte in bytes {
        crc ^= byte as u16;
        for _ in 0..8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0x8408
            } else {
                crc >> 1
            };
        }
    }
    !crc
}

/// CRC-16/MODBUS (reflected poly 0xA001, init 0xFFFF) — appended
/// low-byte-first to every Modbus RTU frame.
pub fn crc16_modbus(bytes: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &byte in bytes {
        crc ^= byte as u16;
        for _ in 0..8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xA001
            } else {
                crc >> 1
            };
        }
    }
    crc
}

/// CRC-16/EN-13757 (poly 0x3D65 MSB-first, init 0x0000, final complement)
/// — the per-block check of wireless M-Bus frame format A.
pub fn crc16_en13757(bytes: &[u8]) -> u16 {
    let mut crc: u16 = 0x0000;
    for &byte in bytes {
        crc ^= (byte as u16) << 8;
        for _ in 0..8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ 0x3D65
            } else {
                crc << 1
            };
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    // Check values for the ASCII string "123456789" from the canonical
    // CRC catalogue (reveng): X-25 = 0x906E, MODBUS = 0x4B37,
    // EN-13757 = 0xC2B7.
    const CHECK: &[u8] = b"123456789";

    #[test]
    fn x25_check_value() {
        assert_eq!(crc16_x25(CHECK), 0x906E);
    }

    #[test]
    fn modbus_check_value() {
        assert_eq!(crc16_modbus(CHECK), 0x4B37);
    }

    #[test]
    fn en13757_check_value() {
        assert_eq!(crc16_en13757(CHECK), 0xC2B7);
    }

    #[test]
    fn single_bit_flip_changes_every_crc() {
        let base = b"rtem telegram block".to_vec();
        for flavor in [crc16_x25, crc16_modbus, crc16_en13757] {
            let reference = flavor(&base);
            for bit in 0..base.len() * 8 {
                let mut corrupt = base.clone();
                corrupt[bit / 8] ^= 1 << (bit % 8);
                assert_ne!(flavor(&corrupt), reference, "bit {bit}");
            }
        }
    }
}
