//! Criterion bench for the storage substrate: SHA-256 throughput, block
//! sealing, full-chain verification and the tamper audit — the costs behind
//! the paper's "creating the hash is not an expensive operation" claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rtem_chain::audit::audit_chain;
use rtem_chain::chain::HashChain;
use rtem_chain::ledger::{LedgerEntry, MeteringLedger};
use rtem_chain::sha256::Sha256;
use std::hint::black_box;
use std::time::Duration;

fn entry(device: u64, seq: u64) -> LedgerEntry {
    LedgerEntry {
        device_id: device,
        collected_by: 1,
        billed_by: 1,
        sequence: seq,
        interval_start_us: seq * 100_000,
        interval_end_us: (seq + 1) * 100_000,
        charge_uas: 15_000,
        backfilled: false,
    }
}

fn bench_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain_throughput");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(5));

    let payload = vec![0xABu8; 4096];
    group.throughput(Throughput::Bytes(payload.len() as u64));
    group.bench_function("sha256_4kib", |b| {
        b.iter(|| black_box(Sha256::digest(black_box(&payload))))
    });
    group.throughput(Throughput::Elements(1));

    // Sealing one block with the records of one verification window
    // (4 devices x 100 records, i.e. a 10 s window at Tmeasure = 100 ms).
    group.bench_function("seal_block_400_records", |b| {
        b.iter(|| {
            let mut ledger = MeteringLedger::new(1, 0);
            for device in 1..=4u64 {
                for seq in 0..100 {
                    ledger.stage(entry(device, seq));
                }
            }
            black_box(ledger.commit_block(1, 1_000_000).unwrap())
        })
    });

    for blocks in [100usize, 1000] {
        let mut chain = HashChain::new(1, 0);
        for i in 0..blocks {
            let records = (0..40).map(|r| format!("b{i}r{r}").into_bytes()).collect();
            chain.seal_block(1, (i as u64 + 1) * 1000, records).unwrap();
        }
        group.bench_with_input(
            BenchmarkId::new("verify_chain", blocks),
            &chain,
            |b, chain| b.iter(|| black_box(chain.verify().is_ok())),
        );
        group.bench_with_input(
            BenchmarkId::new("audit_chain", blocks),
            &chain,
            |b, chain| b.iter(|| black_box(audit_chain(chain, Some(chain.head_hash())).is_clean())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_chain);
criterion_main!(benches);
