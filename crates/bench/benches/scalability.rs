//! Criterion bench for the scalability discussion (§II-A): simulation cost
//! of one aggregator network as the device count grows towards (and past)
//! the TDMA slot budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtem_core::scenario::{DeviceLoad, ScenarioBuilder};
use rtem_sim::time::SimTime;
use std::hint::black_box;
use std::time::Duration;

fn bench_scalability(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalability");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));

    for devices in [2u32, 5, 10, 20] {
        group.bench_with_input(
            BenchmarkId::new("single_network_20s", devices),
            &devices,
            |b, &devices| {
                b.iter(|| {
                    let mut world = ScenarioBuilder::single_network(devices, 3)
                        .with_load(DeviceLoad::ReportingOnly)
                        .build();
                    world.run_until(SimTime::from_secs(20));
                    black_box(
                        world
                            .aggregator(ScenarioBuilder::network_addr(0))
                            .unwrap()
                            .reports_accepted(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
