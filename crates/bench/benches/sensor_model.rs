//! Criterion bench for the sensing substrate: the INA219 measurement model,
//! the load profiles and the grid-loss evaluation — the per-sample costs
//! incurred 10 times per second per device in every experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use rtem_sensors::energy::Milliamps;
use rtem_sensors::grid::{Branch, GridNetwork};
use rtem_sensors::ina219::{Ina219Config, Ina219Model};
use rtem_sensors::profile::{ChargingProfile, LoadProfile, WifiBurstProfile};
use rtem_sim::rng::SimRng;
use rtem_sim::time::SimTime;
use std::hint::black_box;
use std::time::Duration;

fn bench_sensor(c: &mut Criterion) {
    let mut group = c.benchmark_group("sensor_model");
    group.sample_size(30);
    group.measurement_time(Duration::from_secs(4));

    let mut sensor = Ina219Model::new(Ina219Config::testbed(), SimRng::seed_from_u64(1));
    group.bench_function("ina219_measure", |b| {
        b.iter(|| black_box(sensor.measure(Milliamps::new(black_box(182.5)))))
    });

    let mut charging = ChargingProfile::esp32_testbed(SimRng::seed_from_u64(2));
    let mut wifi = WifiBurstProfile::esp32_reporting(SimRng::seed_from_u64(3));
    let mut t = 0u64;
    group.bench_function("charging_profile_sample", |b| {
        b.iter(|| {
            t += 100_000;
            black_box(charging.current_at(SimTime::from_micros(t)))
        })
    });
    group.bench_function("wifi_profile_sample", |b| {
        b.iter(|| {
            t += 100_000;
            black_box(wifi.current_at(SimTime::from_micros(t)))
        })
    });

    let mut grid = GridNetwork::new();
    let branches: Vec<_> = (0..10)
        .map(|_| grid.add_branch(Branch::default()))
        .collect();
    let loads: Vec<(_, Milliamps)> = branches
        .iter()
        .map(|&b| (b, Milliamps::new(150.0)))
        .collect();
    group.bench_function("grid_evaluate_10_branches", |b| {
        b.iter(|| black_box(grid.evaluate(black_box(&loads)).upstream_total))
    });
    group.finish();
}

criterion_group!(benches, bench_sensor);
criterion_main!(benches);
