//! Criterion bench behind Fig. 6: cost of one full mobility experiment
//! (home phase, transit, temporary-membership handshake, backfill and
//! forwarding).

use criterion::{criterion_group, criterion_main, Criterion};
use rtem_core::mobility::{run_mobility, MobilityConfig};
use rtem_sim::time::{SimDuration, SimTime};
use std::hint::black_box;
use std::time::Duration;

fn bench_mobility(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_mobility");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(10));

    group.bench_function("mobility_run_short", |b| {
        b.iter(|| {
            let mut config = MobilityConfig::testbed(black_box(5));
            config.unplug_at = SimTime::from_secs(20);
            config.transit = SimDuration::from_secs(10);
            config.settle = SimDuration::from_secs(30);
            let outcome = run_mobility(&config);
            black_box(outcome.thandshake_secs())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_mobility);
criterion_main!(benches);
