//! Criterion bench behind Fig. 5: cost of running the two-network testbed
//! simulation (the decentralized-vs-centralized accuracy experiment) and of
//! extracting the accuracy windows from it.

use criterion::{criterion_group, criterion_main, Criterion};
use rtem_core::metrics::accuracy_windows;
use rtem_core::scenario::ScenarioBuilder;
use rtem_sim::time::{SimDuration, SimTime};
use std::hint::black_box;
use std::time::Duration;

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_accuracy");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));

    group.bench_function("simulate_testbed_30s", |b| {
        b.iter(|| {
            let mut world = ScenarioBuilder::paper_testbed(black_box(1)).build();
            world.run_until(SimTime::from_secs(30));
            black_box(world.metrics().total_ledger_entries())
        })
    });

    let mut world = ScenarioBuilder::paper_testbed(2).build();
    world.run_until(SimTime::from_secs(60));
    group.bench_function("extract_accuracy_windows", |b| {
        b.iter(|| {
            let windows = accuracy_windows(
                black_box(&world),
                ScenarioBuilder::network_addr(0),
                SimDuration::from_secs(10),
                SimTime::from_secs(60),
            );
            black_box(windows.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
