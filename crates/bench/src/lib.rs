//! # rtem-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§III) plus
//! the ablations listed in `DESIGN.md`. Two kinds of targets live here:
//!
//! * **Harness binaries** (`src/bin/*.rs`) print the rows / series the paper
//!   reports: `fig5_decentralized_metering`, `fig6_mobility_trace`,
//!   `thandshake_stats`, `backhaul_delay`, `ablation_error_sources`,
//!   `tamper_audit`, `anomaly_detection`, `scalability_sweep`.
//! * **Criterion benches** (`benches/*.rs`) measure the runtime cost of the
//!   building blocks (simulation throughput, chain sealing, sensor model).
//!
//! This library crate only hosts small shared helpers for those targets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rtem_core::metrics::AccuracyWindow;

/// Formats one Fig. 5 window as a fixed-width table row.
pub fn format_fig5_row(window: &AccuracyWindow) -> String {
    let devices: Vec<String> = window
        .per_device_mas
        .iter()
        .map(|(id, v)| format!("dev-{id}: {v:>9.1}"))
        .collect();
    format!(
        "window {:>2} | {} | devices {:>9.1} mA·s | aggregator {:>9.1} mA·s | gap {:>5.2}%",
        window.index,
        devices.join("  "),
        window.devices_total_mas,
        window.aggregator_mas,
        window.overhead_percent()
    )
}

/// Renders a simple ASCII sparkline for a series of values.
pub fn sparkline(values: &[f64], width: usize) -> String {
    if values.is_empty() || width == 0 {
        return String::new();
    }
    let max = values.iter().copied().fold(f64::MIN, f64::max).max(1e-9);
    let chars = ['.', ':', '-', '=', '+', '*', '#', '@'];
    let step = (values.len() as f64 / width as f64).max(1.0);
    let mut out = String::with_capacity(width);
    let mut i = 0.0;
    while (i as usize) < values.len() && out.len() < width {
        let v = values[i as usize];
        let idx = ((v / max) * (chars.len() - 1) as f64).round() as usize;
        out.push(chars[idx.min(chars.len() - 1)]);
        i += step;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtem_sim::time::SimTime;
    use std::collections::BTreeMap;

    #[test]
    fn fig5_row_contains_the_numbers() {
        let row = format_fig5_row(&AccuracyWindow {
            index: 3,
            start: SimTime::ZERO,
            per_device_mas: BTreeMap::from([(1, 100.0), (2, 200.0)]),
            devices_total_mas: 300.0,
            aggregator_mas: 309.0,
        });
        assert!(row.contains("window  3"));
        assert!(row.contains("3.00%"));
    }

    #[test]
    fn sparkline_scales_to_width() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let line = sparkline(&values, 20);
        assert!(line.len() <= 20);
        assert!(!line.is_empty());
        assert!(sparkline(&[], 10).is_empty());
    }
}
