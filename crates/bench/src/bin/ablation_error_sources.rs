//! Ablation of the **Fig. 5 error decomposition**: the paper attributes the
//! 0.9–8.2 % gap between the aggregator measurement and the device sum to
//! ohmic losses plus the INA219's 0.5 mA offset. This harness sweeps the
//! sensor offset and the branch resistance independently and reports the gap
//! for each combination.
//!
//! ```bash
//! cargo run -p rtem-bench --bin ablation_error_sources
//! ```

use rtem_sensors::energy::Milliamps;
use rtem_sensors::grid::{Branch, GridNetwork};
use rtem_sensors::ina219::{Ina219Config, Ina219Model, ShuntRange};
use rtem_sim::rng::SimRng;

fn main() {
    println!("# Gap between aggregator-side measurement and device-reported sum");
    println!("# 2 devices drawing 180 mA and 160 mA (the testbed's charging currents)");
    println!("offset_ma,branch_resistance_ohm,gap_percent");

    let device_loads = [180.0, 160.0];
    for &offset in &[0.0, 0.25, 0.5, 0.75, 1.0] {
        for &resistance in &[0.0, 0.1, 0.2, 0.35, 0.5, 1.0] {
            let mut grid = GridNetwork::new();
            let branches: Vec<_> = device_loads
                .iter()
                .map(|_| grid.add_branch(Branch::new(resistance, 1.0)))
                .collect();

            let sensor_cfg = Ina219Config {
                offset_error_ma: offset,
                gain_error: 0.002,
                noise_ma: 0.15,
                range: ShuntRange::Pga320mV,
                quantize: true,
            };
            let rng = SimRng::seed_from_u64(7);
            let mut device_sensors: Vec<Ina219Model> = (0..device_loads.len())
                .map(|i| Ina219Model::new(sensor_cfg, rng.derive(i as u64)))
                .collect();
            let mut agg_sensor = Ina219Model::new(sensor_cfg, rng.derive(99));

            let samples = 10_000;
            let mut reported_sum = 0.0;
            let mut measured_sum = 0.0;
            for _ in 0..samples {
                let loads: Vec<(_, Milliamps)> = branches
                    .iter()
                    .zip(device_loads.iter())
                    .map(|(&b, &ma)| (b, Milliamps::new(ma)))
                    .collect();
                let snapshot = grid.evaluate(&loads);
                for (sensor, &(_, load)) in device_sensors.iter_mut().zip(loads.iter()) {
                    reported_sum += sensor.measure(load).value();
                }
                measured_sum += agg_sensor.measure(snapshot.upstream_total).value();
            }
            let gap = (measured_sum - reported_sum) / reported_sum * 100.0;
            println!("{offset:.2},{resistance:.2},{gap:.3}");
        }
    }
    println!("\n# expected: gap grows with both offset (aggregator over-reads by the offset,");
    println!(
        "# the devices' own offsets partially compensate) and branch resistance (I²R losses)."
    );
    println!("# at offset = 0.5 mA and R ≈ 0.35 Ω the gap lands in the paper's 0.9–8.2% band.");
}
