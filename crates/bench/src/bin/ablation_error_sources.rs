//! Ablation of the **Fig. 5 error decomposition**: the paper attributes the
//! 0.9–8.2 % gap between the aggregator measurement and the device sum to
//! ohmic losses plus the INA219's 0.5 mA offset. This harness sweeps the
//! sensor offset (the losses are fixed by the testbed grid) as a parallel
//! [`Suite`] over full experiments, one sensor model per cell, and reports
//! the observed gap for each.
//!
//! ```bash
//! cargo run -p rtem-bench --bin ablation_error_sources
//! ```

use rtem::prelude::*;
use rtem::sensors::ina219::{Ina219Config, ShuntRange};

fn sensor_with_offset(offset_ma: f64) -> Ina219Config {
    Ina219Config {
        offset_error_ma: offset_ma,
        gain_error: 0.002,
        noise_ma: 0.15,
        range: ShuntRange::Pga320mV,
        quantize: true,
    }
}

fn main() {
    println!("# Gap between aggregator-side measurement and device-reported sum");
    println!("# testbed: 2 networks x 2 charging devices, grid losses fixed, sensor swept");
    println!("sensor,offset_ma,gap_percent");

    let offsets = [0.0, 0.25, 0.5, 0.75, 1.0];
    let mut sensors: Vec<(String, Ina219Config)> = vec![("ideal".into(), Ina219Config::ideal())];
    sensors.extend(
        offsets
            .iter()
            .map(|&offset| (format!("offset-{offset:.2}mA"), sensor_with_offset(offset))),
    );

    let base = ScenarioSpec::paper_testbed(7).with_horizon(SimDuration::from_secs(80));
    let report = Suite::new(base)
        .over_sensors(sensors)
        .run()
        .expect("ablation specs are valid");

    for cell in &report.cells {
        let gap = cell
            .report
            .mean_overhead_percent()
            .expect("settled windows exist at an 80 s horizon");
        println!(
            "{},{:.2},{gap:.3}",
            cell.key.sensor.as_deref().unwrap_or("base"),
            cell.spec.sensor.offset_error_ma,
        );
    }

    println!(
        "\n# {} cells on {} worker threads in {} ms",
        report.cells.len(),
        report.threads_used,
        report.wall.as_millis()
    );
    println!("# expected: the ideal sensor isolates the ohmic losses (the dominant term).");
    println!("# two device sensors per network each over-read by the offset while the");
    println!("# aggregator's single meter over-reads once, so the net gap narrows slightly");
    println!("# as the offset grows; every cell stays inside the paper's 0.9–8.2% band.");
}
