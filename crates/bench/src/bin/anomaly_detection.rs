//! Quantifies the **anomaly-detection** mechanism of §II-A (and the ground
//! truth problem named as future work): one device under-reports its
//! consumption by a sweep of fractions; the harness reports how often the
//! aggregator's complementary-measurement check and the entropy detector
//! flag it, and the false-positive rate with honest devices.
//!
//! ```bash
//! cargo run -p rtem-bench --bin anomaly_detection
//! ```

use rtem::aggregator::aggregator::{Aggregator, AggregatorConfig};
use rtem::net::packet::{AggregatorAddr, DeviceId, MeasurementRecord, Packet};
use rtem::sensors::energy::Milliamps;
use rtem::sim::rng::SimRng;
use rtem::sim::time::SimTime;

fn run(under_report_fraction: f64, seed: u64) -> (u64, u64, bool) {
    let mut aggregator = Aggregator::new(
        AggregatorConfig::testbed(AggregatorAddr(1)),
        SimRng::seed_from_u64(seed),
    );
    aggregator
        .register_master(DeviceId(1), SimTime::ZERO)
        .unwrap();
    aggregator
        .register_master(DeviceId(2), SimTime::ZERO)
        .unwrap();
    let mut rng = SimRng::seed_from_u64(seed ^ 0xF00D);

    let windows = 30u64;
    let mut seq = [0u64; 2];
    for window in 0..windows {
        let honest_true = 180.0 + rng.normal(0.0, 2.0);
        let cheater_true = 200.0 + rng.normal(0.0, 2.0);
        let cheater_reported = cheater_true * (1.0 - under_report_fraction);
        for (idx, (device, reported)) in
            [(DeviceId(1), honest_true), (DeviceId(2), cheater_reported)]
                .into_iter()
                .enumerate()
        {
            let records: Vec<MeasurementRecord> = (0..10)
                .map(|_| {
                    let s = seq[idx];
                    seq[idx] += 1;
                    MeasurementRecord {
                        device,
                        sequence: s,
                        interval_start_us: s * 100_000,
                        interval_end_us: (s + 1) * 100_000,
                        mean_current_ua: (reported * 1000.0).max(0.0) as u64,
                        charge_uas: (reported * 100.0).max(0.0) as u64,
                        backfilled: false,
                    }
                })
                .collect();
            aggregator.handle_device_packet(
                &Packet::ConsumptionReport {
                    device,
                    master: Some(AggregatorAddr(1)),
                    records,
                },
                SimTime::from_secs(window + 1),
            );
        }
        for s in 0..10u64 {
            aggregator.observe_upstream(
                SimTime::from_millis(window * 1000 + s * 100),
                Milliamps::new(honest_true + cheater_true + 3.0),
            );
        }
        aggregator.end_window(SimTime::from_secs(window + 1));
    }
    let anomalous = aggregator.verdicts().iter().filter(|v| v.anomalous).count() as u64;
    let entropy_flagged = aggregator
        .entropy_detector()
        .suspicious_devices()
        .contains(&DeviceId(2));
    (anomalous, windows, entropy_flagged)
}

fn main() {
    println!("# One device under-reports its consumption by a given fraction");
    println!("under_report_percent,anomalous_windows,total_windows,window_detection_rate,entropy_detector_flagged");
    for &fraction in &[0.0, 0.05, 0.10, 0.20, 0.30, 0.50, 0.80] {
        let (anomalous, windows, entropy) = run(fraction, 42);
        println!(
            "{:.0},{anomalous},{windows},{:.2},{entropy}",
            fraction * 100.0,
            anomalous as f64 / windows as f64
        );
    }
    println!("\n# 0% under-reporting = honest baseline (false-positive rate of the window check).");
    println!("# detection rate should rise towards 1.0 as the under-reporting fraction grows.");
}
