//! Scalability of one aggregator: the paper notes that "with limited
//! time-slots for communication, the number of devices connected to an
//! aggregator is also limited" (§II-A). This harness sweeps the device count
//! against the TDMA slot budget as a parallel [`Suite`] and reports how many
//! register, how many reports flow, and the wall-clock cost of each cell.
//!
//! ```bash
//! cargo run -p rtem-bench --bin scalability_sweep
//! ```

use rtem::prelude::*;

fn main() {
    let base = ScenarioSpec::single_network(2, 777)
        .with_load(DeviceLoad::ReportingOnly)
        .with_horizon(SimDuration::from_secs(30));
    // One worker on purpose: the wall_ms column measures the serial cost of
    // simulating each network size, which concurrent cells on the same
    // machine would contaminate. The parallel pool is exercised by the
    // other sweep bins and the suite_sweep example.
    let suite = Suite::new(base)
        .over_devices_per_network([2, 4, 8, 10, 12, 16, 32])
        .with_threads(1);

    println!("# Devices contending for one aggregator with 10 reporting slots");
    println!("devices,registered,reports_accepted,ledger_entries,sim_seconds,wall_ms");
    let report = suite.run().expect("sweep specs are valid");
    let addr = ScenarioSpec::network_addr(0);
    for cell in &report.cells {
        let network = cell
            .report
            .metrics
            .network(addr)
            .expect("network simulated");
        println!(
            "{},{},{},{},{},{}",
            cell.key.devices_per_network,
            network.members,
            network.reports_accepted,
            network.ledger_entries,
            cell.spec.horizon.as_secs_f64(),
            cell.wall.as_millis(),
        );
    }
    println!(
        "\n# {} cells on {} worker threads in {} ms total (cell p95 {:.0} ms)",
        report.cells.len(),
        report.threads_used,
        report.wall.as_millis(),
        report.aggregates.cell_runtime_s.p95 * 1000.0,
    );
    println!("# registered saturates at the slot budget (10); excess devices are rejected");
}
