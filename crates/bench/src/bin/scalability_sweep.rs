//! Scalability of one aggregator: the paper notes that "with limited
//! time-slots for communication, the number of devices connected to an
//! aggregator is also limited" (§II-A). This harness sweeps the device count
//! against the TDMA slot budget and reports how many register, how many
//! reports flow, and the wall-clock cost of simulating the network.
//!
//! ```bash
//! cargo run -p rtem-bench --bin scalability_sweep
//! ```

use rtem_core::scenario::{DeviceLoad, ScenarioBuilder};
use rtem_sim::time::SimTime;
use std::time::Instant;

fn main() {
    println!("# Devices contending for one aggregator with 10 reporting slots");
    println!("devices,registered,reports_accepted,ledger_entries,sim_seconds,wall_ms");
    for &devices in &[2u32, 4, 8, 10, 12, 16, 32] {
        let started = Instant::now();
        let mut world = ScenarioBuilder::single_network(devices, 777)
            .with_load(DeviceLoad::ReportingOnly)
            .build();
        let horizon = SimTime::from_secs(30);
        world.run_until(horizon);
        let wall_ms = started.elapsed().as_millis();
        let addr = ScenarioBuilder::network_addr(0);
        let aggregator = world.aggregator(addr).expect("network exists");
        println!(
            "{devices},{},{},{},{},{wall_ms}",
            aggregator.registry().len(),
            aggregator.reports_accepted(),
            aggregator.ledger().chain().total_records(),
            horizon.as_secs_f64(),
        );
    }
    println!("\n# registered saturates at the slot budget (10); excess devices are rejected");
}
