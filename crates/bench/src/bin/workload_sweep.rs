//! Workload × tariff sweep: the scenario-diversity grid. Runs every
//! diurnal workload model against every tariff structure on one shared
//! 24-hour scenario and writes the grid as machine-readable
//! `BENCH_workloads.json` — per-cell metering accuracy, total billed cost
//! with its energy/demand split, and peak network demand.
//!
//! ```bash
//! cargo run --release -p rtem-bench --bin workload_sweep            # full 24 h grid
//! cargo run --release -p rtem-bench --bin workload_sweep -- --smoke # CI smoke (2 h grid)
//! ```
//!
//! `--smoke` shrinks the horizon so CI exercises the full pipeline in
//! seconds; it writes to `BENCH_workloads_smoke.json` so a smoke run can
//! never clobber the committed 24-hour snapshot.
//!
//! Reading the numbers: the flat-tariff column prices every cell's energy
//! identically, so cost differences across that column are purely workload
//! shape; within a row, cost differences are purely tariff structure
//! (time-of-use rewards midday-heavy shapes, tiers punish heavy totals,
//! demand charges punish concentration). `accuracy_mean_overhead_percent`
//! sanity-checks that exotic load shapes stay inside the paper's
//! metering-accuracy band.

use rtem::prelude::*;
use std::time::Instant;

const SEED: u64 = 3107;
/// Four customers, each behind its own meter. The grid sweeps homogeneous
/// populations, and the heaviest shape (an EV site with two 1.2 A chargers)
/// already draws ~2.4 A at peak — stacking several behind one network's
/// system-level INA219 would pin its ±3.2 A range and corrupt the Fig. 5
/// verification column, so the sweep meters one customer per network.
const NETWORKS: u32 = 4;
const DEVICES_PER_NETWORK: u32 = 1;

struct CellResult {
    workload: String,
    tariff: String,
    wall_ms: u128,
    mean_overhead_percent: Option<f64>,
    total_cost: f64,
    energy_cost: f64,
    demand_cost: f64,
    total_energy_mwh: f64,
    peak_network_ma: f64,
    billed_records: u64,
}

fn base_spec(horizon_s: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::paper_testbed(SEED)
        .with_networks(NETWORKS)
        .with_devices_per_network(DEVICES_PER_NETWORK)
        .with_horizon(SimDuration::from_secs(horizon_s));
    // Diurnal structure lives at hour scale: a 1 s reporting interval keeps
    // the grid cheap without blurring any workload feature, and an
    // hour-long verification window matches the tariff windows.
    spec.t_measure = SimDuration::from_secs(1);
    spec.upstream_sample_interval = SimDuration::from_secs(1);
    spec = spec.with_verification_window(SimDuration::from_secs(900));
    spec
}

fn workload_axis() -> Vec<(String, WorkloadModel)> {
    [
        WorkloadModel::residential(),
        WorkloadModel::commercial(),
        WorkloadModel::ev_fleet(),
        WorkloadModel::solar_home(),
    ]
    .into_iter()
    .map(|w| (w.label(), w))
    .collect()
}

fn tariff_axis() -> Vec<(String, Tariff)> {
    let demand = Tariff::DemandCharge {
        price_per_mwh: 1.0,
        demand_price_per_ma: 0.05,
        window: SimDuration::from_secs(900),
    };
    [
        Tariff::flat(1.0),
        Tariff::evening_peak(1.0),
        Tariff::two_tier(1.0, 50.0),
        demand,
    ]
    .into_iter()
    .map(|t| (t.label(), t))
    .collect()
}

fn collect_cell(cell: &SuiteCell) -> CellResult {
    let report = &cell.report;
    let total_energy_mwh: f64 = report
        .bills
        .iter()
        .map(|b| b.energy_at(Millivolts::usb_bus()).value())
        .sum();
    let energy_cost: f64 = report.bills.iter().map(|b| b.breakdown.energy).sum();
    let demand_cost: f64 = report.bills.iter().map(|b| b.breakdown.demand).sum();
    let peak_network_ma = report
        .world()
        .network_addresses()
        .into_iter()
        .filter_map(|addr| report.world().aggregator(addr))
        .map(|agg| agg.network_series().stats().max)
        .fold(0.0, f64::max);
    CellResult {
        workload: cell.key.workload.clone().unwrap_or_default(),
        tariff: cell.key.tariff.clone().unwrap_or_default(),
        wall_ms: cell.wall.as_millis(),
        mean_overhead_percent: report.mean_overhead_percent(),
        total_cost: report.total_billed_cost(),
        energy_cost,
        demand_cost,
        total_energy_mwh,
        peak_network_ma,
        billed_records: report.bills.iter().map(|b| b.records).sum(),
    }
}

fn json_num(value: Option<f64>) -> String {
    match value {
        Some(v) if v.is_finite() => format!("{v:.4}"),
        _ => "null".to_string(),
    }
}

fn cell_json(cell: &CellResult) -> String {
    format!(
        concat!(
            "    {{\"workload\": \"{}\", \"tariff\": \"{}\", ",
            "\"accuracy_mean_overhead_percent\": {}, \"total_cost\": {:.4}, ",
            "\"energy_cost\": {:.4}, \"demand_cost\": {:.4}, ",
            "\"total_energy_mwh\": {:.4}, \"peak_network_ma\": {:.1}, ",
            "\"billed_records\": {}, \"wall_ms\": {}}}"
        ),
        cell.workload,
        cell.tariff,
        json_num(cell.mean_overhead_percent),
        cell.total_cost,
        cell.energy_cost,
        cell.demand_cost,
        cell.total_energy_mwh,
        cell.peak_network_ma,
        cell.billed_records,
        cell.wall_ms,
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (mode, horizon_s, path) = if smoke {
        ("smoke", 2 * 3600, "BENCH_workloads_smoke.json")
    } else {
        ("full", 24 * 3600, "BENCH_workloads.json")
    };

    let workloads = workload_axis();
    let tariffs = tariff_axis();
    println!(
        "# Workload sweep: {} workloads x {} tariffs, {} h horizon, {}x{} devices",
        workloads.len(),
        tariffs.len(),
        horizon_s / 3600,
        NETWORKS,
        DEVICES_PER_NETWORK,
    );

    let started = Instant::now();
    let report = Suite::new(base_spec(horizon_s))
        .over_workloads(workloads)
        .over_tariffs(tariffs)
        .run()
        .expect("sweep cells are valid");

    println!("workload,tariff,overhead_pct,total_cost,energy_cost,demand_cost,energy_mwh,peak_ma");
    let cells: Vec<CellResult> = report.cells.iter().map(collect_cell).collect();
    for cell in &cells {
        println!(
            "{},{},{},{:.3},{:.3},{:.3},{:.3},{:.1}",
            cell.workload,
            cell.tariff,
            json_num(cell.mean_overhead_percent),
            cell.total_cost,
            cell.energy_cost,
            cell.demand_cost,
            cell.total_energy_mwh,
            cell.peak_network_ma,
        );
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"workload_sweep\",\n",
            "  \"mode\": \"{}\",\n",
            "  \"scenario\": {{\"networks\": {}, \"devices_per_network\": {}, \"seed\": {}, ",
            "\"horizon_s\": {}, \"t_measure_s\": 1, \"verification_window_s\": 900}},\n",
            "  \"cells\": [\n{}\n  ]\n",
            "}}\n"
        ),
        mode,
        NETWORKS,
        DEVICES_PER_NETWORK,
        SEED,
        horizon_s,
        cells.iter().map(cell_json).collect::<Vec<_>>().join(",\n"),
    );
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!(
        "# wrote {path} ({} cells, {} threads, {:.1} s)",
        cells.len(),
        report.threads_used,
        started.elapsed().as_secs_f64(),
    );
}
