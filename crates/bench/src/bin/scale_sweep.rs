//! Scale sweep: wall-clock cost of full experiment runs at fleet sizes —
//! the first datapoint of the performance trajectory. Sweeps
//! 10/100/1000/5000 devices on a single network and writes the grid as
//! machine-readable `BENCH_scale.json`.
//!
//! ```bash
//! cargo run --release -p rtem-bench --bin scale_sweep              # full sweep
//! cargo run --release -p rtem-bench --bin scale_sweep -- --smoke   # CI gate
//! cargo run --release -p rtem-bench --bin scale_sweep -- --cell 1000 --horizon 600
//! ```
//!
//! `--smoke` runs a 10-device calibration cell plus the 100-device cell
//! and fails (exit 1) if the 100-device wall time regressed more than 2x
//! over the committed `BENCH_scale.json` snapshot — judged on both the
//! absolute wall time and the 100:10 ratio, so a slower CI runner does
//! not trip the gate but a reintroduced population scan (which inflates
//! the ratio) does. Smoke results go to `BENCH_scale_smoke.json`; the
//! committed snapshot is read-only to the gate. `--cell N` times a
//! single cell and prints it without touching any snapshot (used to
//! measure baselines).
//!
//! Reading the numbers: `sim_x_realtime` is simulated seconds per
//! wall-clock second — the "runs as fast as the hardware allows" gauge.
//! The per-cell `reports_accepted` / `ledger_entries` sanity-check that
//! the sweep exercises the full pipeline (sampling → MQTT → verification
//! window → sealed block), not an idle world.

use rtem::prelude::*;
use std::time::Instant;

const SEED: u64 = 1202;

/// Wall time of the 1000-device / 600 s cell on the pre-index-redesign
/// event loop (commit 61166ac, same machine class as the committed
/// snapshot). Kept so the sweep can report its speedup against the seed
/// loop; refresh it only when re-measuring the old loop deliberately.
const SEED_LOOP_1K_WALL_MS: u64 = 141_069;

struct CellResult {
    devices: u32,
    horizon_s: u64,
    wall_ms: u128,
    sim_x_realtime: f64,
    blocks: usize,
    ledger_entries: usize,
    reports_accepted: u64,
    mean_overhead_percent: Option<f64>,
}

fn run_cell(devices: u32, horizon_s: u64) -> CellResult {
    let spec =
        ScenarioSpec::single_network(devices, SEED).with_horizon(SimDuration::from_secs(horizon_s));
    let start = Instant::now();
    let report = Experiment::new(spec).run().expect("sweep cells are valid");
    let wall = start.elapsed();
    let network = &report.metrics.networks[0];
    CellResult {
        devices,
        horizon_s,
        wall_ms: wall.as_millis(),
        sim_x_realtime: horizon_s as f64 / wall.as_secs_f64(),
        blocks: network.blocks,
        ledger_entries: network.ledger_entries,
        reports_accepted: network.reports_accepted,
        mean_overhead_percent: report.mean_overhead_percent(),
    }
}

fn json_num(value: Option<f64>) -> String {
    match value {
        Some(v) if v.is_finite() => format!("{v:.4}"),
        _ => "null".to_string(),
    }
}

fn cell_json(cell: &CellResult) -> String {
    format!(
        concat!(
            "    {{\"devices\": {}, \"horizon_s\": {}, \"wall_ms\": {}, ",
            "\"sim_x_realtime\": {:.1}, \"blocks\": {}, \"ledger_entries\": {}, ",
            "\"reports_accepted\": {}, \"mean_overhead_percent\": {}}}"
        ),
        cell.devices,
        cell.horizon_s,
        cell.wall_ms,
        cell.sim_x_realtime,
        cell.blocks,
        cell.ledger_entries,
        cell.reports_accepted,
        json_num(cell.mean_overhead_percent),
    )
}

/// The full sweep owns the committed `BENCH_scale.json`; the smoke gate
/// writes next to it so a local `--smoke` run can never clobber the
/// committed perf trajectory it compares against.
fn snapshot_path(mode: &str) -> &'static str {
    if mode == "smoke" {
        "BENCH_scale_smoke.json"
    } else {
        "BENCH_scale.json"
    }
}

fn write_snapshot(cells: &[CellResult], mode: &str) {
    let speedup_1k = cells
        .iter()
        .find(|c| c.devices == 1000 && c.horizon_s == 600)
        .map(|c| SEED_LOOP_1K_WALL_MS as f64 / c.wall_ms as f64);
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"scale_sweep\",\n",
            "  \"mode\": \"{}\",\n",
            "  \"scenario\": {{\"networks\": 1, \"seed\": {}, \"t_measure_ms\": 100, ",
            "\"verification_window_s\": 10}},\n",
            "  \"cells\": [\n{}\n  ],\n",
            "  \"seed_baseline\": {{\"devices\": 1000, \"horizon_s\": 600, ",
            "\"wall_ms\": {}, \"speedup\": {}}}\n",
            "}}\n"
        ),
        mode,
        SEED,
        cells.iter().map(cell_json).collect::<Vec<_>>().join(",\n"),
        SEED_LOOP_1K_WALL_MS,
        json_num(speedup_1k),
    );
    let path = snapshot_path(mode);
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
}

/// Extracts `wall_ms` of the `devices`-device cell from a committed
/// `BENCH_scale.json` (the cells put `devices` first and `wall_ms` third,
/// so a line scan suffices — no JSON parser in the offline vendor set).
fn committed_wall_ms(snapshot: &str, devices: u32) -> Option<u128> {
    let marker = format!("\"devices\": {devices},");
    let line = snapshot.lines().find(|l| l.contains(&marker))?;
    let tail = line.split("\"wall_ms\": ").nth(1)?;
    tail.split(|c: char| !c.is_ascii_digit())
        .next()?
        .parse()
        .ok()
}

fn arg_value(args: &[String], flag: &str) -> Option<u64> {
    let i = args.iter().position(|a| a == flag)?;
    args.get(i + 1)?.parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if let Some(devices) = arg_value(&args, "--cell") {
        let horizon = arg_value(&args, "--horizon").unwrap_or(600);
        let cell = run_cell(devices as u32, horizon);
        println!("{}", cell_json(&cell).trim_start());
        return;
    }

    if args.iter().any(|a| a == "--smoke") {
        const SMOKE_DEVICES: u32 = 100;
        const CALIBRATION_DEVICES: u32 = 10;
        let committed = std::fs::read_to_string("BENCH_scale.json").ok();
        let committed_smoke = committed
            .as_deref()
            .and_then(|s| committed_wall_ms(s, SMOKE_DEVICES));
        let committed_calibration = committed
            .as_deref()
            .and_then(|s| committed_wall_ms(s, CALIBRATION_DEVICES));
        // The calibration cell prices this machine: an absolute wall-ms
        // comparison alone would flag any runner slower than the machine
        // the snapshot was committed from, so a regression must also show
        // up in the 100:10-device *ratio*, where machine speed cancels and
        // a reintroduced population scan cannot hide.
        let calibration = run_cell(CALIBRATION_DEVICES, 600);
        let cell = run_cell(SMOKE_DEVICES, 600);
        println!("{}", cell_json(&calibration).trim_start());
        println!("{}", cell_json(&cell).trim_start());
        let (Some(committed_smoke), Some(committed_calibration)) =
            (committed_smoke, committed_calibration)
        else {
            eprintln!("# no committed BENCH_scale.json cells to compare against");
            write_snapshot(&[calibration, cell], "smoke");
            return;
        };
        let wall_limit = committed_smoke.saturating_mul(2).max(1000);
        let committed_ratio = committed_smoke as f64 / committed_calibration.max(1) as f64;
        let ratio = cell.wall_ms as f64 / calibration.wall_ms.max(1) as f64;
        println!(
            "# {SMOKE_DEVICES}-device cell: {} ms (committed {} ms, limit {} ms); \
             100:10 ratio {:.2} (committed {:.2}, limit {:.2})",
            cell.wall_ms,
            committed_smoke,
            wall_limit,
            ratio,
            committed_ratio,
            committed_ratio * 2.0,
        );
        let regressed = cell.wall_ms > wall_limit && ratio > committed_ratio * 2.0;
        write_snapshot(&[calibration, cell], "smoke");
        if regressed {
            eprintln!("# FAIL: >2x regression over the committed snapshot");
            std::process::exit(1);
        }
        return;
    }

    // Full sweep. The 5000-device cell runs a shorter horizon: it exists to
    // show the slope stays linear in fleet size, and 600 simulated seconds
    // of 5k devices would mostly measure allocator pressure from the ~30M
    // ledger records the run produces.
    let grid: &[(u32, u64)] = &[(10, 600), (100, 600), (1000, 600), (5000, 120)];
    println!("# Scale sweep ({} cells)", grid.len());
    println!("devices,horizon_s,wall_ms,sim_x_realtime,blocks,ledger_entries,reports_accepted");
    let mut cells = Vec::new();
    for &(devices, horizon_s) in grid {
        let cell = run_cell(devices, horizon_s);
        println!(
            "{},{},{},{:.1},{},{},{}",
            cell.devices,
            cell.horizon_s,
            cell.wall_ms,
            cell.sim_x_realtime,
            cell.blocks,
            cell.ledger_entries,
            cell.reports_accepted,
        );
        cells.push(cell);
    }
    write_snapshot(&cells, "full");
    if let Some(cell) = cells.iter().find(|c| c.devices == 1000) {
        println!(
            "# 1k devices x 600 s: {} ms ({:.0}x vs the seed loop's {} ms)",
            cell.wall_ms,
            SEED_LOOP_1K_WALL_MS as f64 / cell.wall_ms as f64,
            SEED_LOOP_1K_WALL_MS,
        );
    }
    println!("# wrote BENCH_scale.json");
}
