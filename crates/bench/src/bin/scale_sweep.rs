//! Scale sweep: wall-clock cost and peak resident memory of full
//! experiment runs across fleet sizes, shard counts and retention
//! policies — the performance trajectory of the testbed. Writes the grid
//! as machine-readable `BENCH_scale.json`.
//!
//! ```bash
//! cargo run --release -p rtem-bench --bin scale_sweep              # full sweep
//! cargo run --release -p rtem-bench --bin scale_sweep -- --smoke   # CI gate
//! cargo run --release -p rtem-bench --bin scale_sweep -- \
//!     --cell 1000 --horizon 600 --shards 4 --bounded 2
//! ```
//!
//! Every cell of the full sweep runs in its *own subprocess* (this binary
//! re-executed in `--cell` mode), so the `peak_rss_mb` column is the
//! kernel's `VmHWM` high-water mark of exactly that cell — not polluted
//! by whichever larger cell ran earlier in the same address space.
//!
//! All keep-all cells share one 600 s horizon so their rows are directly
//! comparable; the 50k- and 100k-device cells run 60 s under the
//! bounded-memory retention policy (two active verification windows
//! resident, sealed summaries for the rest). The horizon-normalized
//! `device_ticks_per_wall_s` column (measure ticks simulated per
//! wall-clock second) is the cross-horizon throughput gauge: it is flat
//! where scaling is linear, regardless of each cell's horizon.
//!
//! `--smoke` runs a 10-device calibration cell plus the 100-device cell
//! and fails (exit 1) if the 100-device wall time regressed more than 2x
//! over the committed `BENCH_scale.json` snapshot — judged on both the
//! absolute wall time and the 100:10 ratio, so a slower CI runner does
//! not trip the gate but a reintroduced population scan (which inflates
//! the ratio) does. It also re-runs the bounded-memory 100-device cell in
//! a subprocess and fails if its peak RSS exceeds 2x the committed value:
//! the memory bound is a correctness claim of the streaming-compaction
//! path, so an unbounded-residency regression trips CI even when wall
//! time looks fine. Smoke results go to `BENCH_scale_smoke.json`; the
//! committed snapshot is read-only to the gate.

use rtem::prelude::*;
use std::time::Instant;

const SEED: u64 = 1202;

/// Default measurement cadence of the swept scenarios, used to convert
/// device-seconds into measure ticks for the throughput column.
const T_MEASURE_MS: f64 = 100.0;

/// Wall time of the 1000-device / 600 s cell on the pre-index-redesign
/// event loop (commit 61166ac, same machine class as the committed
/// snapshot). Kept so the sweep can report its speedup against the seed
/// loop; refresh it only when re-measuring the old loop deliberately.
const SEED_LOOP_1K_WALL_MS: u64 = 141_069;

/// One point of the sweep grid.
#[derive(Clone, Copy)]
struct CellSpec {
    devices: u32,
    horizon_s: u64,
    /// `Some(w)` caps resident aggregator state to `w` active verification
    /// windows (sealed summaries stand in for the evicted rest).
    bounded_windows: Option<u64>,
    shards: u64,
}

impl CellSpec {
    const fn keep_all(devices: u32, horizon_s: u64) -> CellSpec {
        CellSpec {
            devices,
            horizon_s,
            bounded_windows: None,
            shards: 1,
        }
    }

    const fn bounded(devices: u32, horizon_s: u64, windows: u64) -> CellSpec {
        CellSpec {
            devices,
            horizon_s,
            bounded_windows: Some(windows),
            shards: 1,
        }
    }

    const fn sharded(devices: u32, horizon_s: u64, shards: u64) -> CellSpec {
        CellSpec {
            devices,
            horizon_s,
            bounded_windows: None,
            shards,
        }
    }

    fn retention_label(&self) -> String {
        match self.bounded_windows {
            Some(w) => format!("bounded_{w}"),
            None => "keep_all".to_string(),
        }
    }
}

struct CellResult {
    spec: CellSpec,
    wall_ms: u128,
    sim_x_realtime: f64,
    device_ticks_per_wall_s: f64,
    blocks: usize,
    ledger_entries: usize,
    reports_accepted: u64,
    peak_rss_mb: Option<f64>,
    mean_overhead_percent: Option<f64>,
}

/// Peak resident set size of this process so far, from the kernel's
/// `VmHWM` high-water mark. `None` off Linux or if `/proc` is unreadable.
fn peak_rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

fn run_cell(cell: CellSpec) -> CellResult {
    let mut spec = ScenarioSpec::single_network(cell.devices, SEED)
        .with_horizon(SimDuration::from_secs(cell.horizon_s));
    if let Some(windows) = cell.bounded_windows {
        spec = spec.with_bounded_memory(windows as usize);
    }
    if cell.shards > 1 {
        spec = spec.with_shards(cell.shards as usize);
    }
    let start = Instant::now();
    let report = Experiment::new(spec).run().expect("sweep cells are valid");
    let wall = start.elapsed();
    let network = &report.metrics.networks[0];
    let ticks = cell.devices as f64 * cell.horizon_s as f64 * (1000.0 / T_MEASURE_MS);
    CellResult {
        spec: cell,
        wall_ms: wall.as_millis(),
        sim_x_realtime: cell.horizon_s as f64 / wall.as_secs_f64(),
        device_ticks_per_wall_s: ticks / wall.as_secs_f64(),
        blocks: network.blocks,
        ledger_entries: network.ledger_entries,
        reports_accepted: network.reports_accepted,
        peak_rss_mb: peak_rss_mb(),
        mean_overhead_percent: report.mean_overhead_percent(),
    }
}

fn json_num(value: Option<f64>) -> String {
    match value {
        Some(v) if v.is_finite() => format!("{v:.4}"),
        _ => "null".to_string(),
    }
}

fn json_mb(value: Option<f64>) -> String {
    match value {
        Some(v) if v.is_finite() => format!("{v:.1}"),
        _ => "null".to_string(),
    }
}

/// One cell as a single JSON line (no indentation; the snapshot writer
/// indents). Field order keeps `devices` first and distinguishing knobs
/// (`shards`, `retention`) early so committed snapshots stay line-greppable
/// without a JSON parser in the offline vendor set.
fn cell_json(cell: &CellResult) -> String {
    format!(
        concat!(
            "{{\"devices\": {}, \"horizon_s\": {}, \"shards\": {}, \"retention\": \"{}\", ",
            "\"wall_ms\": {}, \"sim_x_realtime\": {:.1}, \"device_ticks_per_wall_s\": {:.0}, ",
            "\"blocks\": {}, \"ledger_entries\": {}, \"reports_accepted\": {}, ",
            "\"peak_rss_mb\": {}, \"mean_overhead_percent\": {}}}"
        ),
        cell.spec.devices,
        cell.spec.horizon_s,
        cell.spec.shards,
        cell.spec.retention_label(),
        cell.wall_ms,
        cell.sim_x_realtime,
        cell.device_ticks_per_wall_s,
        cell.blocks,
        cell.ledger_entries,
        cell.reports_accepted,
        json_mb(cell.peak_rss_mb),
        json_num(cell.mean_overhead_percent),
    )
}

/// Re-executes this binary in `--cell` mode so the child's `VmHWM` is the
/// peak RSS of exactly that cell. Returns the child's JSON line, or `None`
/// if spawning failed (sandboxed runners) — callers fall back in-process.
fn spawn_cell(cell: CellSpec) -> Option<String> {
    let exe = std::env::current_exe().ok()?;
    let mut command = std::process::Command::new(exe);
    command
        .arg("--cell")
        .arg(cell.devices.to_string())
        .arg("--horizon")
        .arg(cell.horizon_s.to_string())
        .arg("--shards")
        .arg(cell.shards.to_string());
    if let Some(windows) = cell.bounded_windows {
        command.arg("--bounded").arg(windows.to_string());
    }
    let output = command.output().ok()?;
    if !output.status.success() {
        return None;
    }
    let stdout = String::from_utf8(output.stdout).ok()?;
    stdout
        .lines()
        .rev()
        .find(|l| l.starts_with('{'))
        .map(str::to_string)
}

/// Runs one grid cell in a subprocess for a clean per-cell RSS reading,
/// falling back to in-process (with `peak_rss_mb` nulled, since `VmHWM`
/// would then carry earlier cells) when spawning is unavailable.
fn sweep_cell(cell: CellSpec) -> String {
    spawn_cell(cell).unwrap_or_else(|| {
        let mut result = run_cell(cell);
        result.peak_rss_mb = None;
        cell_json(&result)
    })
}

/// The full sweep owns the committed `BENCH_scale.json`; the smoke gate
/// writes next to it so a local `--smoke` run can never clobber the
/// committed perf trajectory it compares against.
fn snapshot_path(mode: &str) -> &'static str {
    if mode == "smoke" {
        "BENCH_scale_smoke.json"
    } else {
        "BENCH_scale.json"
    }
}

fn write_snapshot(lines: &[String], mode: &str) {
    let joined = lines.join("\n");
    let speedup_1k = cell_line(
        &joined,
        &["\"devices\": 1000,", "\"shards\": 1,", "keep_all"],
    )
    .and_then(|l| field_u128(l, "wall_ms"))
    .map(|wall| SEED_LOOP_1K_WALL_MS as f64 / wall as f64);
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"scale_sweep\",\n",
            "  \"mode\": \"{}\",\n",
            "  \"scenario\": {{\"networks\": 1, \"seed\": {}, \"t_measure_ms\": 100, ",
            "\"verification_window_s\": 10}},\n",
            "  \"cells\": [\n{}\n  ],\n",
            "  \"seed_baseline\": {{\"devices\": 1000, \"horizon_s\": 600, ",
            "\"wall_ms\": {}, \"speedup\": {}}}\n",
            "}}\n"
        ),
        mode,
        SEED,
        lines
            .iter()
            .map(|l| format!("    {l}"))
            .collect::<Vec<_>>()
            .join(",\n"),
        SEED_LOOP_1K_WALL_MS,
        json_num(speedup_1k),
    );
    let path = snapshot_path(mode);
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
}

/// Finds the first snapshot line containing every marker — enough to pick
/// one cell out of a committed `BENCH_scale.json` without a JSON parser.
fn cell_line<'a>(snapshot: &'a str, markers: &[&str]) -> Option<&'a str> {
    snapshot
        .lines()
        .find(|l| markers.iter().all(|m| l.contains(m)))
}

fn field_u128(line: &str, field: &str) -> Option<u128> {
    let tail = line.split(&format!("\"{field}\": ")).nth(1)?;
    tail.split(|c: char| !c.is_ascii_digit())
        .next()?
        .parse()
        .ok()
}

fn field_f64(line: &str, field: &str) -> Option<f64> {
    let tail = line.split(&format!("\"{field}\": ")).nth(1)?;
    tail.split(|c: char| !c.is_ascii_digit() && c != '.')
        .next()?
        .parse()
        .ok()
}

fn arg_value(args: &[String], flag: &str) -> Option<u64> {
    let i = args.iter().position(|a| a == flag)?;
    args.get(i + 1)?.parse().ok()
}

fn smoke() {
    let calibration_spec = CellSpec::keep_all(10, 600);
    let smoke_spec = CellSpec::keep_all(100, 600);
    let rss_spec = CellSpec::bounded(100, 600, 2);
    let committed = std::fs::read_to_string("BENCH_scale.json").ok();
    let keep_all_line = |devices: u32| {
        cell_line(
            committed.as_deref()?,
            &[
                &format!("\"devices\": {devices},"),
                "\"shards\": 1,",
                "keep_all",
            ],
        )
    };
    let committed_smoke = keep_all_line(smoke_spec.devices).and_then(|l| field_u128(l, "wall_ms"));
    let committed_calibration =
        keep_all_line(calibration_spec.devices).and_then(|l| field_u128(l, "wall_ms"));
    let committed_rss = cell_line(
        committed.as_deref().unwrap_or(""),
        &["\"devices\": 100,", "bounded_2"],
    )
    .and_then(|l| field_f64(l, "peak_rss_mb"));

    // The calibration cell prices this machine: an absolute wall-ms
    // comparison alone would flag any runner slower than the machine
    // the snapshot was committed from, so a regression must also show
    // up in the 100:10-device *ratio*, where machine speed cancels and
    // a reintroduced population scan cannot hide.
    let calibration = run_cell(calibration_spec);
    let cell = run_cell(smoke_spec);
    // The RSS cell runs in a subprocess so its VmHWM is its own, not the
    // high-water mark the keep-all cells above already set.
    let rss_line = sweep_cell(rss_spec);
    let measured_rss = field_f64(&rss_line, "peak_rss_mb");
    let calibration_line = cell_json(&calibration);
    let cell_line_json = cell_json(&cell);
    println!("{calibration_line}");
    println!("{cell_line_json}");
    println!("{rss_line}");
    write_snapshot(&[calibration_line, cell_line_json, rss_line], "smoke");

    let mut failed = false;
    if let (Some(committed_smoke), Some(committed_calibration)) =
        (committed_smoke, committed_calibration)
    {
        let wall_limit = committed_smoke.saturating_mul(2).max(1000);
        let committed_ratio = committed_smoke as f64 / committed_calibration.max(1) as f64;
        let ratio = cell.wall_ms as f64 / calibration.wall_ms.max(1) as f64;
        println!(
            "# 100-device cell: {} ms (committed {} ms, limit {} ms); \
             100:10 ratio {:.2} (committed {:.2}, limit {:.2})",
            cell.wall_ms,
            committed_smoke,
            wall_limit,
            ratio,
            committed_ratio,
            committed_ratio * 2.0,
        );
        if cell.wall_ms > wall_limit && ratio > committed_ratio * 2.0 {
            eprintln!("# FAIL: >2x wall-time regression over the committed snapshot");
            failed = true;
        }
    } else {
        eprintln!("# no committed wall-time cells to compare against");
    }
    match (measured_rss, committed_rss) {
        (Some(measured), Some(committed)) => {
            // Floor the limit well above allocator/loader noise so the gate
            // only fires on genuine unbounded-residency regressions.
            let limit = (committed * 2.0).max(64.0);
            println!(
                "# bounded-memory 100-device cell: {measured:.1} MB peak RSS \
                 (committed {committed:.1} MB, limit {limit:.1} MB)"
            );
            if measured > limit {
                eprintln!("# FAIL: bounded-memory peak RSS exceeded 2x the committed snapshot");
                failed = true;
            }
        }
        (None, _) => eprintln!("# no per-cell RSS reading available; RSS gate skipped"),
        (_, None) => eprintln!("# no committed bounded-memory RSS cell; RSS gate skipped"),
    }
    if failed {
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if let Some(devices) = arg_value(&args, "--cell") {
        let horizon_s = arg_value(&args, "--horizon").unwrap_or(600);
        let cell = CellSpec {
            devices: devices as u32,
            horizon_s,
            bounded_windows: arg_value(&args, "--bounded"),
            shards: arg_value(&args, "--shards").unwrap_or(1),
        };
        println!("{}", cell_json(&run_cell(cell)));
        return;
    }

    if args.iter().any(|a| a == "--smoke") {
        smoke();
        return;
    }

    // Full sweep. Every keep-all cell shares the 600 s horizon so rows are
    // directly comparable; the 1000-device cell repeats at 4 shards
    // (parallel tick compute, bit-identical result) and under bounded
    // retention (same digest, bounded resident state). The 50k and 100k
    // cells run 60 s — at those sizes the horizon-normalized
    // `device_ticks_per_wall_s` column carries the comparison, and
    // keep-all residency would measure the allocator instead of the
    // testbed, so they run bounded (two active windows resident).
    let grid: &[CellSpec] = &[
        CellSpec::keep_all(10, 600),
        CellSpec::keep_all(100, 600),
        CellSpec::bounded(100, 600, 2),
        CellSpec::keep_all(1000, 600),
        CellSpec::sharded(1000, 600, 4),
        CellSpec::bounded(1000, 600, 2),
        CellSpec::bounded(5000, 600, 2),
        CellSpec::bounded(50_000, 60, 2),
        CellSpec::bounded(100_000, 60, 2),
    ];
    println!("# Scale sweep ({} cells, one subprocess each)", grid.len());
    let mut lines = Vec::new();
    for &cell in grid {
        let line = sweep_cell(cell);
        println!("{line}");
        lines.push(line);
    }
    let joined = lines.join("\n");
    if let Some(wall) = cell_line(
        &joined,
        &["\"devices\": 1000,", "\"shards\": 1,", "keep_all"],
    )
    .and_then(|l| field_u128(l, "wall_ms"))
    {
        println!(
            "# 1k devices x 600 s: {} ms ({:.0}x vs the seed loop's {} ms)",
            wall,
            SEED_LOOP_1K_WALL_MS as f64 / wall as f64,
            SEED_LOOP_1K_WALL_MS,
        );
    }
    write_snapshot(&lines, "full");
    println!("# wrote BENCH_scale.json");
}
