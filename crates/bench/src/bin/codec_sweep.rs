//! Meter-protocol × workload sweep: what real telegram framing costs on
//! the wire. Runs every [`MeterKind`] (the compact internal encoding plus
//! the four real protocol families) against every diurnal workload model
//! and writes the grid as machine-readable `BENCH_codecs.json` — per-cell
//! bytes-per-record wire cost, framing overhead relative to the internal
//! encoding, parse accounting, and the metering-accuracy delta against the
//! internal-fleet cell of the same workload.
//!
//! ```bash
//! cargo run --release -p rtem-bench --bin codec_sweep            # full 6 h grid
//! cargo run --release -p rtem-bench --bin codec_sweep -- --smoke # CI smoke (1 h grid)
//! ```
//!
//! `--smoke` shrinks the horizon so CI exercises the full pipeline in
//! seconds; it writes to `BENCH_codecs_smoke.json` so a smoke run can never
//! clobber the committed 6-hour snapshot.
//!
//! Reading the numbers: `wire_bytes_per_record` is what one measurement
//! record costs on the wire under that framing (the internal row is the
//! 49-byte native image plus envelope); `framing_overhead_ratio` is
//! telegram bytes over native bytes for the same records — ASCII OBIS
//! framing (IEC 62056-21) is the most verbose, SML and wireless M-Bus sit
//! in between, Modbus RTU is the leanest real format. On a clean link every
//! telegram parses (`parse_failures` = 0), so `accuracy_delta_percent`
//! stays at zero: real framing costs bytes, not accuracy.

use rtem::prelude::*;
use std::time::Instant;

const SEED: u64 = 6221;
// One customer per network, mirroring workload_sweep: homogeneous
// populations with the heaviest shapes stay inside the system INA219 range.
const NETWORKS: u32 = 4;
const DEVICES_PER_NETWORK: u32 = 1;

struct CellResult {
    meter: String,
    workload: String,
    wall_ms: u128,
    mean_overhead_percent: Option<f64>,
    accuracy_delta_percent: Option<f64>,
    records_sent: u64,
    telegrams_sent: u64,
    telegram_bytes: u64,
    native_bytes: u64,
    parse_failures: u64,
    wire_bytes_per_record: f64,
    framing_overhead_ratio: f64,
}

fn base_spec(horizon_s: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::paper_testbed(SEED)
        .with_networks(NETWORKS)
        .with_devices_per_network(DEVICES_PER_NETWORK)
        .with_horizon(SimDuration::from_secs(horizon_s));
    spec.t_measure = SimDuration::from_secs(1);
    spec.upstream_sample_interval = SimDuration::from_secs(1);
    spec.with_verification_window(SimDuration::from_secs(900))
}

fn meter_axis() -> Vec<(String, Vec<MeterKind>)> {
    let mut axis = vec![("internal".to_string(), Vec::new())];
    for kind in MeterKind::REAL {
        axis.push((kind.label().to_string(), vec![kind]));
    }
    axis
}

fn workload_axis() -> Vec<(String, WorkloadModel)> {
    [
        WorkloadModel::residential(),
        WorkloadModel::commercial(),
        WorkloadModel::ev_fleet(),
        WorkloadModel::solar_home(),
    ]
    .into_iter()
    .map(|w| (w.label(), w))
    .collect()
}

fn collect_cell(cell: &SuiteCell) -> CellResult {
    let report = &cell.report;
    let wire = report.world().wire_stats();
    // The internal kind never frames telegrams; its wire image is the
    // native record encoding, so both ratios fall back to the native bytes.
    let on_wire = if wire.telegrams_sent > 0 {
        wire.telegram_bytes
    } else {
        wire.native_bytes
    };
    CellResult {
        meter: cell.key.meter_kinds.clone().unwrap_or_default(),
        workload: cell.key.workload.clone().unwrap_or_default(),
        wall_ms: cell.wall.as_millis(),
        mean_overhead_percent: report.mean_overhead_percent(),
        accuracy_delta_percent: None, // filled once the internal row exists
        records_sent: wire.records_sent,
        telegrams_sent: wire.telegrams_sent,
        telegram_bytes: wire.telegram_bytes,
        native_bytes: wire.native_bytes,
        parse_failures: wire.parse_failures,
        wire_bytes_per_record: if wire.records_sent > 0 {
            on_wire as f64 / wire.records_sent as f64
        } else {
            0.0
        },
        framing_overhead_ratio: if wire.native_bytes > 0 {
            on_wire as f64 / wire.native_bytes as f64
        } else {
            1.0
        },
    }
}

fn json_num(value: Option<f64>) -> String {
    match value {
        Some(v) if v.is_finite() => format!("{v:.4}"),
        _ => "null".to_string(),
    }
}

fn cell_json(cell: &CellResult) -> String {
    format!(
        concat!(
            "    {{\"meter\": \"{}\", \"workload\": \"{}\", ",
            "\"wire_bytes_per_record\": {:.2}, \"framing_overhead_ratio\": {:.4}, ",
            "\"records_sent\": {}, \"telegrams_sent\": {}, ",
            "\"telegram_bytes\": {}, \"native_bytes\": {}, \"parse_failures\": {}, ",
            "\"accuracy_mean_overhead_percent\": {}, \"accuracy_delta_percent\": {}, ",
            "\"wall_ms\": {}}}"
        ),
        cell.meter,
        cell.workload,
        cell.wire_bytes_per_record,
        cell.framing_overhead_ratio,
        cell.records_sent,
        cell.telegrams_sent,
        cell.telegram_bytes,
        cell.native_bytes,
        cell.parse_failures,
        json_num(cell.mean_overhead_percent),
        json_num(cell.accuracy_delta_percent),
        cell.wall_ms,
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (mode, horizon_s, path) = if smoke {
        ("smoke", 3600, "BENCH_codecs_smoke.json")
    } else {
        ("full", 6 * 3600, "BENCH_codecs.json")
    };

    let meters = meter_axis();
    let workloads = workload_axis();
    println!(
        "# Codec sweep: {} meter kinds x {} workloads, {} h horizon, {}x{} devices",
        meters.len(),
        workloads.len(),
        horizon_s / 3600,
        NETWORKS,
        DEVICES_PER_NETWORK,
    );

    let started = Instant::now();
    let report = Suite::new(base_spec(horizon_s))
        .over_workloads(workloads)
        .over_meter_kinds(meters)
        .run()
        .expect("sweep cells are valid");

    let mut cells: Vec<CellResult> = report.cells.iter().map(collect_cell).collect();
    // Accuracy delta against the internal-fleet cell of the same workload:
    // any nonzero value means the codec path perturbed metering itself.
    let internal: Vec<(String, Option<f64>)> = cells
        .iter()
        .filter(|c| c.meter == "internal")
        .map(|c| (c.workload.clone(), c.mean_overhead_percent))
        .collect();
    for cell in &mut cells {
        let baseline = internal
            .iter()
            .find(|(w, _)| *w == cell.workload)
            .and_then(|(_, v)| *v);
        cell.accuracy_delta_percent = match (cell.mean_overhead_percent, baseline) {
            (Some(a), Some(b)) => Some(a - b),
            _ => None,
        };
    }

    println!("meter,workload,bytes_per_record,overhead_ratio,parse_failures,accuracy_delta_pct");
    for cell in &cells {
        println!(
            "{},{},{:.2},{:.4},{},{}",
            cell.meter,
            cell.workload,
            cell.wire_bytes_per_record,
            cell.framing_overhead_ratio,
            cell.parse_failures,
            json_num(cell.accuracy_delta_percent),
        );
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"codec_sweep\",\n",
            "  \"mode\": \"{}\",\n",
            "  \"scenario\": {{\"networks\": {}, \"devices_per_network\": {}, \"seed\": {}, ",
            "\"horizon_s\": {}, \"t_measure_s\": 1, \"verification_window_s\": 900}},\n",
            "  \"cells\": [\n{}\n  ]\n",
            "}}\n"
        ),
        mode,
        NETWORKS,
        DEVICES_PER_NETWORK,
        SEED,
        horizon_s,
        cells.iter().map(cell_json).collect::<Vec<_>>().join(",\n"),
    );
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!(
        "# wrote {path} ({} cells, {} threads, {:.1} s)",
        cells.len(),
        report.threads_used,
        started.elapsed().as_secs_f64(),
    );
}
