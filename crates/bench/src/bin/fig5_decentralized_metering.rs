//! Regenerates **Figure 5**: comparison of individual device measurements
//! with the network aggregator measurement (decentralized vs centralized
//! metering accuracy). Prints one row per 10 s window for both networks.
//!
//! ```bash
//! cargo run -p rtem-bench --bin fig5_decentralized_metering
//! ```

use rtem::prelude::*;
use rtem_bench::format_fig5_row;

fn main() {
    let spec = ScenarioSpec::paper_testbed(2020).with_horizon(SimDuration::from_secs(120));
    println!("# Figure 5 — decentralized metering vs aggregator measurement");
    println!("# testbed: 2 networks x 2 charging devices, Tmeasure = 100 ms, 10 s windows");
    let report = Experiment::new(spec)
        .run()
        .expect("the testbed spec is valid");

    let mut all_overheads = Vec::new();
    for n in 0..2u32 {
        let addr = ScenarioSpec::network_addr(n);
        println!("\n## network {} ({addr})", n + 1);
        let accuracy = report.network_accuracy(addr).expect("network simulated");
        for w in accuracy.settled_windows() {
            println!("{}", format_fig5_row(w));
            all_overheads.push(w.overhead_percent());
        }
    }

    if !all_overheads.is_empty() {
        let min = all_overheads.iter().copied().fold(f64::INFINITY, f64::min);
        let max = all_overheads
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let mean = all_overheads.iter().sum::<f64>() / all_overheads.len() as f64;
        println!("\n# aggregator reads {min:.2}–{max:.2}% above the device sum (mean {mean:.2}%)");
        println!("# paper reports 0.9–8.2%, attributed to ohmic losses + the 0.5 mA INA219 offset");
    }
}
