//! Observability overhead: wall-clock cost of running with full telemetry
//! (snapshots + trace + profiler) relative to the identical run with
//! telemetry off. Writes the grid as machine-readable `BENCH_obs.json`.
//!
//! ```bash
//! cargo run --release -p rtem-bench --bin obs_overhead              # full sweep
//! cargo run --release -p rtem-bench --bin obs_overhead -- --smoke   # CI gate
//! ```
//!
//! Both runs of a pair share the spec and seed; each side is repeated and
//! the *minimum* wall time kept, so scheduler noise cancels out of the
//! ratio. Both modes gate the 1000-device cell at <5 % overhead —
//! telemetry must stay an observer, not a tax. `--smoke` runs only that
//! gated pair (a ~1 s base makes the ratio stable where the 100-device
//! cell's ~0.1 s base drowns in wall-clock noise) and writes its results
//! to `BENCH_obs_smoke.json` so a CI run can never clobber the committed
//! snapshot. Overhead is a ratio of two runs on the same machine, so the
//! gate is runner-speed independent.
//!
//! The per-cell `snapshots` / `trace_events` / `profiled_dispatches`
//! sanity-check that the telemetry side actually recorded — a 0 % overhead
//! over a disabled recorder would be a hollow win.

use rtem::prelude::*;
use std::time::Instant;

const SEED: u64 = 1202;
const HORIZON_S: u64 = 60;
const GATE_OVERHEAD_PERCENT: f64 = 5.0;

struct CellResult {
    devices: u32,
    repeats: u32,
    base_wall_ms: u128,
    telemetry_wall_ms: u128,
    overhead_percent: f64,
    snapshots: usize,
    trace_events: usize,
    trace_dropped: u64,
    profiled_dispatches: u64,
}

fn spec(devices: u32) -> ScenarioSpec {
    ScenarioSpec::single_network(devices, SEED).with_horizon(SimDuration::from_secs(HORIZON_S))
}

fn timed(spec: ScenarioSpec) -> (u128, Option<TelemetryReport>) {
    let start = Instant::now();
    let report = Experiment::new(spec).run().expect("bench cells are valid");
    (start.elapsed().as_millis(), report.telemetry)
}

fn run_cell(devices: u32, repeats: u32) -> CellResult {
    // Interleave the two sides so slow drift (thermal, cache pressure)
    // hits both equally instead of biasing whichever ran second.
    let mut base_wall_ms = u128::MAX;
    let mut telemetry_wall_ms = u128::MAX;
    let mut telemetry = None;
    for _ in 0..repeats {
        let (base, _) = timed(spec(devices));
        base_wall_ms = base_wall_ms.min(base);
        let (instrumented, report) = timed(spec(devices).with_telemetry(TelemetryConfig::full()));
        telemetry_wall_ms = telemetry_wall_ms.min(instrumented);
        telemetry = report;
    }
    let telemetry = telemetry.expect("telemetry was enabled on the instrumented side");
    let trace = telemetry.trace.as_ref().expect("trace was enabled");
    let profile = telemetry.profile.as_ref().expect("profiler was enabled");
    CellResult {
        devices,
        repeats,
        base_wall_ms,
        telemetry_wall_ms,
        overhead_percent: (telemetry_wall_ms as f64 - base_wall_ms as f64)
            / (base_wall_ms.max(1) as f64)
            * 100.0,
        snapshots: telemetry.snapshots.len(),
        trace_events: trace.len(),
        trace_dropped: trace.dropped(),
        profiled_dispatches: profile.total_count(),
    }
}

fn cell_json(cell: &CellResult) -> String {
    format!(
        concat!(
            "    {{\"devices\": {}, \"horizon_s\": {}, \"repeats\": {}, ",
            "\"base_wall_ms\": {}, \"telemetry_wall_ms\": {}, \"overhead_percent\": {:.2}, ",
            "\"snapshots\": {}, \"trace_events\": {}, \"trace_dropped\": {}, ",
            "\"profiled_dispatches\": {}}}"
        ),
        cell.devices,
        HORIZON_S,
        cell.repeats,
        cell.base_wall_ms,
        cell.telemetry_wall_ms,
        cell.overhead_percent,
        cell.snapshots,
        cell.trace_events,
        cell.trace_dropped,
        cell.profiled_dispatches,
    )
}

/// The full sweep owns the committed `BENCH_obs.json`; `--smoke` writes
/// next to it so a CI run can never clobber the committed snapshot.
fn write_snapshot(cells: &[CellResult], mode: &str) {
    let config = TelemetryConfig::full();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"obs_overhead\",\n",
            "  \"mode\": \"{}\",\n",
            "  \"scenario\": {{\"networks\": 1, \"seed\": {}, \"horizon_s\": {}}},\n",
            "  \"telemetry\": {{\"snapshot_interval_s\": {}, \"trace\": {}, ",
            "\"trace_capacity\": {}, \"profile\": {}}},\n",
            "  \"gate\": {{\"max_overhead_percent\": {:.1}}},\n",
            "  \"cells\": [\n{}\n  ]\n",
            "}}\n"
        ),
        mode,
        SEED,
        HORIZON_S,
        config.snapshot_interval.as_micros() / 1_000_000,
        config.trace,
        config.trace_capacity,
        config.profile,
        GATE_OVERHEAD_PERCENT,
        cells.iter().map(cell_json).collect::<Vec<_>>().join(",\n"),
    );
    let path = if mode == "smoke" {
        "BENCH_obs_smoke.json"
    } else {
        "BENCH_obs.json"
    };
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("# wrote {path}");
}

fn gate(cell: &CellResult) -> bool {
    println!(
        "# {}-device cell: base {} ms, telemetry {} ms, overhead {:.2} % (limit {:.1} %)",
        cell.devices,
        cell.base_wall_ms,
        cell.telemetry_wall_ms,
        cell.overhead_percent,
        GATE_OVERHEAD_PERCENT,
    );
    assert!(cell.snapshots > 0, "telemetry side never snapshotted");
    assert!(cell.trace_events > 0, "telemetry side never traced");
    assert!(
        cell.profiled_dispatches > 0,
        "telemetry side never profiled a dispatch"
    );
    if cell.overhead_percent > GATE_OVERHEAD_PERCENT {
        eprintln!(
            "# FAIL: telemetry overhead {:.2} % exceeds the {:.1} % gate",
            cell.overhead_percent, GATE_OVERHEAD_PERCENT,
        );
        return false;
    }
    true
}

/// Measures the gated 1000-device pair, re-measuring once if the first
/// attempt lands over the limit: overhead is a minimum-to-minimum ratio,
/// and a burst of unrelated machine load during the instrumented runs can
/// fake a regression a clean re-measure immediately disproves. A *real*
/// regression fails both attempts.
fn measure_gated_cell(repeats: u32) -> CellResult {
    let cell = run_cell(1000, repeats);
    if cell.overhead_percent <= GATE_OVERHEAD_PERCENT {
        return cell;
    }
    eprintln!(
        "# first measurement over the gate ({:.2} %); re-measuring once",
        cell.overhead_percent
    );
    let retry = run_cell(1000, repeats);
    if retry.overhead_percent < cell.overhead_percent {
        retry
    } else {
        cell
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.iter().any(|a| a == "--smoke") {
        // The gated pair only. Its ~1 s base makes the min-of-N overhead
        // ratio reproducible where a smaller cell would be noise-bound.
        let cell = measure_gated_cell(7);
        println!("{}", cell_json(&cell).trim_start());
        let pass = gate(&cell);
        write_snapshot(&[cell], "smoke");
        if !pass {
            std::process::exit(1);
        }
        return;
    }

    println!("# Observability overhead sweep");
    println!("devices,repeats,base_wall_ms,telemetry_wall_ms,overhead_percent");
    let mut cells = vec![run_cell(100, 9), measure_gated_cell(7)];
    for cell in &cells {
        println!(
            "{},{},{},{},{:.2}",
            cell.devices,
            cell.repeats,
            cell.base_wall_ms,
            cell.telemetry_wall_ms,
            cell.overhead_percent,
        );
    }
    let pass = gate(
        cells
            .iter()
            .find(|c| c.devices == 1000)
            .expect("1k cell ran"),
    );
    cells.sort_by_key(|c| c.devices);
    write_snapshot(&cells, "full");
    if !pass {
        std::process::exit(1);
    }
}
