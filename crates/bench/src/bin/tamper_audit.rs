//! Validates the **tamper-proof storage** claim of §II-A: every
//! storage-level manipulation of committed consumption data is detected and
//! localized by the hash-chain audit, at any chain length and tamper count.
//!
//! ```bash
//! cargo run -p rtem-bench --bin tamper_audit
//! ```

use rtem::chain::audit::{audit_chain, FindingKind};
use rtem::chain::chain::HashChain;
use rtem::sim::rng::SimRng;

fn build_chain(blocks: usize, records_per_block: usize) -> HashChain {
    let mut chain = HashChain::new(1, 0);
    for b in 0..blocks {
        let records = (0..records_per_block)
            .map(|r| format!("block-{b}-record-{r}").into_bytes())
            .collect();
        chain
            .seal_block(1, (b as u64 + 1) * 1_000_000, records)
            .unwrap();
    }
    chain
}

fn main() {
    println!("# Tamper detection over the consumption hash chain");
    println!("chain_blocks,records_per_block,tampered_records,detected,localized_correctly");
    let mut rng = SimRng::seed_from_u64(99);
    for &blocks in &[10usize, 100, 1000] {
        for &tampered in &[1usize, 5, 20] {
            let records_per_block = 50;
            let mut chain = build_chain(blocks, records_per_block);
            let anchor = chain.head_hash();
            let mut victims = Vec::new();
            for _ in 0..tampered {
                let block = 1 + rng.next_below(blocks as u64);
                let record = rng.next_below(records_per_block as u64) as usize;
                chain
                    .block_mut_for_experiment(block)
                    .unwrap()
                    .tamper_record_for_experiment(record, b"forged".to_vec());
                victims.push(block);
            }
            victims.sort_unstable();
            victims.dedup();
            let report = audit_chain(&chain, Some(anchor));
            let flagged: Vec<u64> = report
                .findings
                .iter()
                .filter(|f| f.kind == FindingKind::RecordMismatch)
                .map(|f| f.block_index)
                .collect();
            let localized = victims.iter().all(|v| flagged.contains(v));
            println!(
                "{blocks},{records_per_block},{tampered},{},{}",
                !report.is_clean(),
                localized
            );
        }
    }
    println!("\n# every manipulated block must be detected AND localized (all rows true,true)");
}
