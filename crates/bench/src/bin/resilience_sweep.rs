//! Resilience under injected faults: sweeps fault intensity x family over
//! the paper's two-network testbed as a parallel [`Suite`], reporting the
//! per-cell detection rate, detection latency, accuracy-under-fault delta
//! vs. a clean twin and audit attribution — then writes the whole grid as
//! machine-readable `BENCH_resilience.json` so the robustness trajectory
//! accumulates run over run.
//!
//! ```bash
//! cargo run -p rtem-bench --bin resilience_sweep
//! ```
//!
//! Reading the numbers: the tamper family must sit at detection rate 1.0 —
//! the hash-chain audit catches every storage forgery. Link bursts are
//! caught by the per-link delivery-gap watch: the aggregator compares
//! offered vs. lost transfers against the ambient loss floor at every
//! verification-window seal, so even a 30 % burst that QoS-1 retries fully
//! absorb (no accuracy dent) still raises `LinkDegraded`. A byzantine
//! quorum committing forgeries is caught at window seal by the peer ledger
//! cross-check (`LedgerCrossCheck`) — the lone remaining blind spot is a
//! colluding quorum on a single-network fleet with no honest peer site.
//!
//! The sweep runs on a *mixed real-codec fleet* (IEC 62056-21, SML, Modbus
//! RTU, wireless M-Bus round-robin), so the corruption family exercises the
//! actual telegram checksums: a mangled frame fails its BCC/CRC at the
//! aggregator, the parse rejection is the detection signal, and QoS-1
//! retries re-deliver the records — corruption at full intensity still
//! converges to detection rate 1.0 with no accuracy dent.
//!
//! One extra cell pairs the fault and control planes: a *misconfig storm*
//! (retained bad Tmeasure blasted fleet-wide mid link-loss-burst, then a
//! retained recovery command) that must end with every command acked —
//! QoS-2 retransmission plus retained last-writer-wins is the recovery
//! mechanism under test; QoS 1's bounded retry budget would abandon a
//! command in the same burst.

use rtem::net::link::LinkConfig;
use rtem::prelude::*;

fn plans() -> Vec<(String, FaultPlan)> {
    let home = ScenarioSpec::network_addr(0);
    let backup = ScenarioSpec::network_addr(1);
    let dev_a = ScenarioSpec::device_id(0, 0);
    let dev_b = ScenarioSpec::device_id(1, 0);
    let t = SimTime::from_secs;
    let lossy = |p: f64| LinkConfig {
        loss_probability: p,
        ..LinkConfig::wifi()
    };
    let wifi_all = LinkTarget::Wifi { network: None };
    vec![
        (
            "sensor/mild".into(),
            FaultPlan::new().sensor_stuck_at(t(20), dev_a, 120.0),
        ),
        (
            "sensor/severe".into(),
            FaultPlan::new().sensor_stuck_at(t(20), dev_a, 30.0),
        ),
        (
            "sensor/dead".into(),
            FaultPlan::new().sensor_stuck_at(t(20), dev_a, 0.0),
        ),
        ("tamper/x1".into(), FaultPlan::new().tamper_at(t(25), home)),
        (
            "tamper/x2".into(),
            FaultPlan::new()
                .tamper_at(t(25), home)
                .tamper_at(t(35), home),
        ),
        (
            "tamper/x3".into(),
            FaultPlan::new()
                .tamper_at(t(25), home)
                .tamper_at(t(35), home)
                .tamper_at(t(45), backup),
        ),
        (
            "link/loss30".into(),
            FaultPlan::new().link_burst(t(20), t(40), wifi_all, lossy(0.3)),
        ),
        (
            "link/loss70".into(),
            FaultPlan::new().link_burst(t(20), t(40), wifi_all, lossy(0.7)),
        ),
        (
            "link/blackout".into(),
            FaultPlan::new().link_burst(t(20), t(40), wifi_all, lossy(1.0)),
        ),
        (
            "crash/short".into(),
            FaultPlan::new().crash_between(t(20), t(30), dev_a),
        ),
        (
            "crash/long".into(),
            FaultPlan::new().crash_between(t(20), t(45), dev_a),
        ),
        (
            "crash/double".into(),
            FaultPlan::new()
                .crash_between(t(20), t(40), dev_a)
                .crash_between(t(22), t(42), dev_b),
        ),
        (
            "outage/blip".into(),
            FaultPlan::new().outage_between(t(20), t(30), home, None),
        ),
        (
            "outage/long".into(),
            FaultPlan::new().outage_between(t(20), t(45), home, None),
        ),
        (
            "outage/failover".into(),
            FaultPlan::new().outage_between(t(20), t(45), home, Some(backup)),
        ),
        (
            "byzantine/minority".into(),
            FaultPlan::new().byzantine_between(t(20), t(50), home, 1),
        ),
        (
            "byzantine/quorum".into(),
            FaultPlan::new().byzantine_between(t(20), t(50), home, 2),
        ),
        (
            "corruption/flip-mild".into(),
            FaultPlan::new().telegram_corruption_between(
                t(20),
                t(40),
                dev_a,
                CorruptionMode::BitFlip { flips: 1 },
                300,
            ),
        ),
        (
            "corruption/flip-storm".into(),
            FaultPlan::new().telegram_corruption_between(
                t(20),
                t(40),
                dev_a,
                CorruptionMode::BitFlip { flips: 3 },
                1000,
            ),
        ),
        (
            "corruption/truncate".into(),
            FaultPlan::new().telegram_corruption_between(
                t(20),
                t(40),
                dev_a,
                CorruptionMode::Truncate,
                500,
            ),
        ),
        (
            "corruption/mangle".into(),
            FaultPlan::new().telegram_corruption_between(
                t(20),
                t(40),
                dev_b,
                CorruptionMode::MangleField,
                500,
            ),
        ),
        (
            "corruption/double".into(),
            FaultPlan::new()
                .telegram_corruption_between(
                    t(20),
                    t(45),
                    dev_a,
                    CorruptionMode::BitFlip { flips: 2 },
                    800,
                )
                .telegram_corruption_between(t(22), t(45), dev_b, CorruptionMode::Truncate, 800),
        ),
    ]
}

/// The misconfig-storm cell: a *retained* bad configuration (a 5 s
/// Tmeasure, fifty times slower than the testbed's 100 ms) blasted to the
/// whole fleet in the middle of a 70 % wifi loss burst, followed by a
/// retained recovery command while the burst is still on. QoS-2
/// retransmission must push both commands through the loss, retained
/// delivery must catch any device that (re)connects late, and the recovery
/// command must win last-writer-wins — the fleet ends the run back on the
/// testbed interval with every command acked.
fn misconfig_storm() -> ScenarioSpec {
    let t = SimTime::from_secs;
    let lossy = LinkConfig {
        loss_probability: 0.7,
        ..LinkConfig::wifi()
    };
    let faults =
        FaultPlan::new().link_burst(t(20), t(40), LinkTarget::Wifi { network: None }, lossy);
    // QoS 2, deliberately: QoS 1's bounded retry budget can abandon a
    // command outright in a 70 % burst (a real finding of this grid), while
    // the QoS 2 PUBLISH leg retransmits until the link carries it.
    let storm = ControlPlan::new()
        .command_with(
            t(22),
            CommandTarget::AllDevices,
            FleetCommand::SetMeasureInterval {
                interval: SimDuration::from_secs(5),
            },
            QoS::ExactlyOnce,
            true,
        )
        .command_with(
            t(35),
            CommandTarget::AllDevices,
            FleetCommand::SetMeasureInterval {
                interval: SimDuration::from_millis(100),
            },
            QoS::ExactlyOnce,
            true,
        );
    ScenarioSpec::paper_testbed(909)
        .with_horizon(SimDuration::from_secs(60))
        .with_meter_kinds(MeterKind::REAL.to_vec())
        .with_fault_plan(faults)
        .with_control_plan(storm)
}

fn json_num(value: Option<f64>) -> String {
    match value {
        Some(v) if v.is_finite() => format!("{v:.4}"),
        _ => "null".to_string(),
    }
}

fn main() {
    const SEED: u64 = 909;
    const HORIZON_S: u64 = 60;
    let base = ScenarioSpec::paper_testbed(SEED)
        .with_horizon(SimDuration::from_secs(HORIZON_S))
        .with_meter_kinds(MeterKind::REAL.to_vec());
    let suite = Suite::new(base).over_fault_plans(plans());

    println!(
        "# Resilience under injected faults ({} cells, 60 s each + clean twins)",
        suite.len()
    );
    println!("family,intensity,injected,detected,undetected,detection_rate,mean_latency_s,accuracy_delta_pts,audit_attributed,wall_ms");
    let report = suite.run().expect("sweep plans are valid");

    let mut cells_json = Vec::new();
    let mut tamper_injected = 0usize;
    let mut tamper_detected = 0usize;
    let mut corruption_injected = 0usize;
    let mut corruption_detected = 0usize;
    let mut link_injected = 0usize;
    let mut link_detected = 0usize;
    let mut byzantine_injected = 0usize;
    let mut byzantine_detected = 0usize;
    let mut loss_burst_missed = Vec::new();
    let mut injected_total = 0usize;
    let mut detected_total = 0usize;
    let mut undetected_total = 0usize;
    for cell in &report.cells {
        let label = cell.key.fault_plan.as_deref().unwrap_or("?");
        let (family, intensity) = label.split_once('/').unwrap_or((label, "-"));
        let resilience = cell
            .report
            .resilience
            .as_ref()
            .expect("every cell carries a plan");
        let injected = resilience.injected();
        let detected = resilience.detected();
        let undetected = resilience.undetected();
        injected_total += injected;
        detected_total += detected;
        undetected_total += undetected;
        if family == "tamper" {
            tamper_injected += injected;
            tamper_detected += detected;
        }
        if family == "corruption" {
            corruption_injected += injected;
            corruption_detected += detected;
        }
        if family == "link" {
            link_injected += injected;
            link_detected += detected;
            // Every lossy burst in this grid must raise the delivery-gap
            // alarm; a blackout on top of it loses the records outright.
            if detected == 0 {
                loss_burst_missed.push(label.to_string());
            }
        }
        if family == "byzantine" {
            byzantine_injected += injected;
            byzantine_detected += detected;
        }
        let latency = resilience
            .families
            .first()
            .and_then(|f| f.mean_detection_latency_s);
        let delta = resilience.accuracy_delta_percent();
        println!(
            "{family},{intensity},{injected},{detected},{undetected},{},{},{},{},{}",
            json_num(resilience.detection_rate()),
            json_num(latency),
            json_num(delta),
            resilience.audit_findings_attributed,
            cell.wall.as_millis(),
        );
        cells_json.push(format!(
            concat!(
                "    {{\"family\": \"{}\", \"intensity\": \"{}\", \"injected\": {}, ",
                "\"detected\": {}, \"undetected\": {}, \"detection_rate\": {}, ",
                "\"mean_detection_latency_s\": {}, ",
                "\"accuracy_delta_pts\": {}, \"audit_findings\": {}, ",
                "\"audit_findings_attributed\": {}, \"wall_ms\": {}}}"
            ),
            family,
            intensity,
            injected,
            detected,
            undetected,
            json_num(resilience.detection_rate()),
            json_num(latency),
            json_num(delta),
            resilience.audit_findings,
            resilience.audit_findings_attributed,
            cell.wall.as_millis(),
        ));
    }

    // The misconfig-storm cell pairs a fault plan with a control plan, which
    // the cartesian axes cannot express for a single cell — run it on its
    // own and report it as a dedicated section.
    let storm_started = std::time::Instant::now();
    let storm = Experiment::new(misconfig_storm())
        .run()
        .expect("misconfig-storm spec is valid");
    let storm_wall = storm_started.elapsed();
    let storm_control = storm.control.as_ref().expect("storm carries a plan");
    let storm_resilience = storm.resilience.as_ref().expect("storm carries faults");
    let storm_completion = storm_control.completion_rate();
    println!(
        "misconfig,storm,{},{},{},{},{},{},{}",
        storm_control.targets(),
        storm_control.acked(),
        json_num(storm_completion),
        json_num(storm_control.rollout_latency().map(|d| d.as_secs_f64())),
        json_num(storm_resilience.accuracy_delta_percent()),
        storm_resilience.audit_findings_attributed,
        storm_wall.as_millis(),
    );

    let tamper_rate = if tamper_injected > 0 {
        tamper_detected as f64 / tamper_injected as f64
    } else {
        0.0
    };
    let corruption_rate = if corruption_injected > 0 {
        corruption_detected as f64 / corruption_injected as f64
    } else {
        0.0
    };
    let link_rate = if link_injected > 0 {
        link_detected as f64 / link_injected as f64
    } else {
        0.0
    };
    let byzantine_rate = if byzantine_injected > 0 {
        byzantine_detected as f64 / byzantine_injected as f64
    } else {
        0.0
    };
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"resilience_sweep\",\n",
            "  \"scenario\": {{\"networks\": 2, \"devices_per_network\": 2, ",
            "\"horizon_s\": {}, \"seed\": {}, \"meter_kinds\": \"mixed-real\"}},\n",
            "  \"cells\": [\n{}\n  ],\n",
            "  \"misconfig_storm\": {{\"commands\": {}, \"targets\": {}, \"applied\": {}, ",
            "\"acked\": {}, \"completion_rate\": {}, \"rollout_latency_s\": {}, ",
            "\"accuracy_delta_pts\": {}, \"wall_ms\": {}}},\n",
            "  \"summary\": {{\"cells\": {}, \"injected\": {}, \"detected\": {}, ",
            "\"undetected\": {}, ",
            "\"tamper_detection_rate\": {}, \"corruption_detection_rate\": {}, ",
            "\"link_detection_rate\": {}, \"byzantine_detection_rate\": {}, ",
            "\"threads\": {}, \"total_wall_ms\": {}}}\n",
            "}}\n"
        ),
        HORIZON_S,
        SEED,
        cells_json.join(",\n"),
        storm_control.commands(),
        storm_control.targets(),
        storm_control.applied(),
        storm_control.acked(),
        json_num(storm_completion),
        json_num(storm_control.rollout_latency().map(|d| d.as_secs_f64())),
        json_num(storm_resilience.accuracy_delta_percent()),
        storm_wall.as_millis(),
        report.cells.len(),
        injected_total,
        detected_total,
        undetected_total,
        json_num(Some(tamper_rate)),
        json_num(Some(corruption_rate)),
        json_num(Some(link_rate)),
        json_num(Some(byzantine_rate)),
        report.threads_used,
        report.wall.as_millis(),
    );
    std::fs::write("BENCH_resilience.json", &json).expect("write BENCH_resilience.json");

    println!(
        "\n# {} cells on {} threads in {} ms; {}/{} faults detected overall",
        report.cells.len(),
        report.threads_used,
        report.wall.as_millis(),
        detected_total,
        injected_total,
    );
    println!("# tamper detection rate {tamper_rate:.2} (must be >= 0.99: the audit catches every forgery)");
    println!("# corruption detection rate {corruption_rate:.2} (telegram checksums reject mangled frames)");
    println!("# link detection rate {link_rate:.2} (the delivery-gap watch flags every burst in this grid)");
    println!("# byzantine detection rate {byzantine_rate:.2} (minority rejected at consensus, quorum caught by peer cross-check)");
    println!("# wrote BENCH_resilience.json");
    assert!(
        tamper_rate >= 0.99,
        "tamper detection regressed: {tamper_rate}"
    );
    assert!(
        corruption_rate > 0.5,
        "telegram-corruption detection regressed: {corruption_rate}"
    );
    assert!(
        loss_burst_missed.is_empty(),
        "link bursts regressed to undetected: {loss_burst_missed:?}"
    );
    assert!(
        byzantine_rate >= 0.99,
        "byzantine detection regressed: {byzantine_rate} — the quorum cell \
         must be caught by the peer ledger cross-check"
    );
    assert_eq!(
        storm_completion,
        Some(1.0),
        "misconfig storm must recover: QoS-2 retransmission + retained \
         delivery push both commands through the loss burst"
    );
}
