//! Regenerates **Figure 6**: current consumption reported at Aggregator 1
//! for a mobile device transiting from Network 1 to Network 2 — the local
//! reporting phase, the idle transit gap, the Thandshake window with local
//! buffering, and the backfilled data forwarded from Aggregator 2. The
//! scenario is one scripted `ScenarioSpec`; the annotations come from a
//! [`Probe`] attached to the streaming run.
//!
//! ```bash
//! cargo run -p rtem-bench --bin fig6_mobility_trace
//! ```

use rtem::metrics::device_trace;
use rtem::prelude::*;
use rtem_bench::sparkline;

fn main() {
    let mobile = ScenarioSpec::device_id(0, 0);
    let home = ScenarioSpec::network_addr(0);
    let destination = ScenarioSpec::network_addr(1);
    // The paper charges for an hour before the move; 90 s captures the same
    // shape while keeping the harness quick. Adjust freely.
    let unplug_at = SimTime::from_secs(90);
    let replug_at = SimTime::from_secs(115); // 25 s transit
    let spec = ScenarioSpec::paper_testbed(2020)
        .with_horizon(SimDuration::from_secs(205)) // 90 s settle after re-plug
        .unplug_at(unplug_at, mobile)
        .plug_in_at(replug_at, mobile, destination);

    println!("# Figure 6 — mobile device transiting from Network 1 to Network 2");
    println!(
        "# device {} unplugs at t = {:.0} s, transit (idle) {:.0} s, Tmeasure = 100 ms",
        mobile,
        unplug_at.as_secs_f64(),
        replug_at.as_secs_f64() - unplug_at.as_secs_f64(),
    );
    let handle = Experiment::new(spec)
        .start_probed(RecordingProbe::default())
        .expect("the mobility spec is valid");
    let (report, probe) = handle.finish_probed();

    // The mobile device's temporary registration in the foreign network is
    // its last completed handshake after the scripted re-plug.
    let temporary_handshake = probe.events().iter().rev().find_map(|event| match event {
        RunEvent::HandshakeCompleted {
            at,
            device,
            breakdown,
            ..
        } if *device == mobile && *at > replug_at => Some((*at, *breakdown)),
        _ => None,
    });
    let handshake_end = temporary_handshake
        .map(|(at, _)| at.as_secs_f64())
        .unwrap_or_else(|| replug_at.as_secs_f64());

    println!("\n## consumption of the device as seen by Aggregator 1 (home)");
    println!("time_s,current_ma,phase");
    let view = device_trace(report.world(), home, mobile).expect("home trace exists");
    let mut series = Vec::new();
    for &(t, v) in &view.points {
        let phase = if t < unplug_at.as_secs_f64() {
            "home-network"
        } else if t < handshake_end {
            "idle/handshake"
        } else {
            "forwarded-from-network-2"
        };
        println!("{t:.1},{v:.1},{phase}");
        series.push(v);
    }
    println!("\n# sparkline: {}", sparkline(&series, 80));

    println!("\n## annotations (paper's callouts, from the probe's event stream)");
    if let Some(at) = probe.events().iter().find_map(|e| match e {
        RunEvent::Unplugged { at, device } if *device == mobile => Some(*at),
        _ => None,
    }) {
        println!(
            "device disconnected from Network 1 : t = {:.1} s",
            at.as_secs_f64()
        );
    }
    if let Some(at) = probe.events().iter().find_map(|e| match e {
        RunEvent::PluggedIn { at, device, .. } if *device == mobile && *at >= replug_at => {
            Some(*at)
        }
        _ => None,
    }) {
        println!(
            "device connected to Network 2      : t = {:.1} s",
            at.as_secs_f64()
        );
    }
    if let Some((_, handshake)) = temporary_handshake {
        println!(
            "Thandshake (temporary membership)  : {:.2} s  (scan {:.2} + assoc {:.2} + mqtt {:.2} + registration {:.2})",
            handshake.total().as_secs_f64(),
            handshake.scan.as_secs_f64(),
            handshake.association.as_secs_f64(),
            handshake.broker_connect.as_secs_f64(),
            handshake.registration.as_secs_f64(),
        );
    }
    let bill = report.bill(mobile).expect("the device was billed at home");
    println!(
        "device data received from Network 2: {} backfilled records, {:.1} mA·s roamed charge",
        bill.backfilled_records,
        bill.roaming_charge_uas as f64 / 1000.0
    );
    println!(
        "# paper: Thandshake ≈ 6 s average (5.5–6.5 s over 15 runs); idle span is never billed"
    );
}
