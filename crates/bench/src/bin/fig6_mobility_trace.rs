//! Regenerates **Figure 6**: current consumption reported at Aggregator 1
//! for a mobile device transiting from Network 1 to Network 2 — the local
//! reporting phase, the idle transit gap, the Thandshake window with local
//! buffering, and the backfilled data forwarded from Aggregator 2.
//!
//! ```bash
//! cargo run -p rtem-bench --bin fig6_mobility_trace
//! ```

use rtem_bench::sparkline;
use rtem_core::mobility::{run_mobility, MobilityConfig};
use rtem_sim::time::{SimDuration, SimTime};

fn main() {
    let mut config = MobilityConfig::testbed(2020);
    // The paper charges for an hour before the move; 90 s captures the same
    // shape while keeping the harness quick. Adjust freely.
    config.unplug_at = SimTime::from_secs(90);
    config.transit = SimDuration::from_secs(25);
    config.settle = SimDuration::from_secs(90);

    println!("# Figure 6 — mobile device transiting from Network 1 to Network 2");
    println!(
        "# device {} unplugs at t = {:.0} s, transit (idle) {:.0} s, Tmeasure = 100 ms",
        config.mobile_device,
        config.unplug_at.as_secs_f64(),
        config.transit.as_secs_f64()
    );
    let outcome = run_mobility(&config);

    println!("\n## consumption of the device as seen by Aggregator 1 (home)");
    println!("time_s,current_ma,phase");
    let view = outcome.home_view.as_ref().expect("home trace exists");
    let reconnect = outcome.reconnected_at.as_secs_f64();
    let handshake_end = reconnect + outcome.thandshake_secs().unwrap_or(0.0);
    let mut series = Vec::new();
    for &(t, v) in &view.points {
        let phase = if t < config.unplug_at.as_secs_f64() {
            "home-network"
        } else if t < handshake_end {
            "idle/handshake"
        } else {
            "forwarded-from-network-2"
        };
        println!("{t:.1},{v:.1},{phase}");
        series.push(v);
    }
    println!("\n# sparkline: {}", sparkline(&series, 80));

    println!("\n## annotations (paper's callouts)");
    println!(
        "device disconnected from Network 1 : t = {:.1} s",
        outcome.disconnected_at.as_secs_f64()
    );
    println!(
        "device connected to Network 2      : t = {:.1} s",
        outcome.reconnected_at.as_secs_f64()
    );
    if let Some(handshake) = outcome.handshake {
        println!(
            "Thandshake (temporary membership)  : {:.2} s  (scan {:.2} + assoc {:.2} + mqtt {:.2} + registration {:.2})",
            handshake.total().as_secs_f64(),
            handshake.scan.as_secs_f64(),
            handshake.association.as_secs_f64(),
            handshake.broker_connect.as_secs_f64(),
            handshake.registration.as_secs_f64(),
        );
    }
    println!(
        "device data received from Network 2: {} backfilled records, {:.1} mA·s roamed charge",
        outcome.backfilled_records,
        outcome.roaming_charge_uas as f64 / 1000.0
    );
    println!(
        "# paper: Thandshake ≈ 6 s average (5.5–6.5 s over 15 runs); idle span is never billed"
    );
}
