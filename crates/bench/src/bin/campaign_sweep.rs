//! Randomized campaign grid: one generator stream per seed, every sampled
//! campaign run with its auto clean twin and scored into a
//! [`rtem_campaign::CampaignVerdict`], the whole grid written as machine-readable
//! `BENCH_campaigns.json` — the detection-frontier snapshot that
//! accumulates run over run.
//!
//! ```bash
//! cargo run --release -p rtem-bench --bin campaign_sweep            # full grid
//! cargo run --release -p rtem-bench --bin campaign_sweep -- --smoke # CI smoke
//! ```
//!
//! Three hard gates, asserted after the grid:
//!
//! 1. every *expected-detectable* fault of every campaign lands detected
//!    (the conservative predicate of `rtem_campaign::expected_detected`),
//! 2. every bill of every campaign reconciles and every audit finding is
//!    attributed — no campaign fails for any reason,
//! 3. every committed reproducer in `tests/fixtures/campaigns/` replays
//!    green — a fixture regressing to undetected fails the bench, and CI
//!    with it, before anything else does.
//!
//! The seed-0 campaign additionally re-runs to pin digest determinism.

use std::collections::BTreeMap;
use std::path::Path;

use rtem_campaign::{run_campaign, CampaignGenerator, CampaignSpec};

fn json_num(value: Option<f64>) -> String {
    match value {
        Some(v) if v.is_finite() => format!("{v:.4}"),
        _ => "null".to_string(),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (seeds, out_path) = if smoke {
        (5u64, "BENCH_campaigns_smoke.json")
    } else {
        (18u64, "BENCH_campaigns.json")
    };

    println!("# Randomized campaign grid ({seeds} seeds, clean twins included)");
    println!("seed,label,faults,expected,missed,billing_ok,passed,accuracy_delta_pts,wall_ms");

    let started = std::time::Instant::now();
    let mut cells_json = Vec::new();
    let mut family_totals: BTreeMap<String, (usize, usize, usize)> = BTreeMap::new();
    let mut expected_total = 0usize;
    let mut missed_total = 0usize;
    let mut failed = 0usize;
    let mut first_digest = String::new();

    for seed in 0..seeds {
        let campaign = CampaignGenerator::new(seed).next_campaign();
        let cell_started = std::time::Instant::now();
        let verdict = run_campaign(&campaign).expect("generated campaigns are valid");
        let wall_ms = cell_started.elapsed().as_millis();
        if seed == 0 {
            first_digest = verdict.digest.clone();
        }
        expected_total += verdict.expected.len();
        missed_total += verdict.missed.len();
        if !verdict.passed() {
            failed += 1;
            for failure in &verdict.failures {
                println!("# FAIL seed {seed}: {failure}");
            }
        }
        let mut families_json = Vec::new();
        for family in &verdict.families {
            let entry = family_totals.entry(family.family.clone()).or_default();
            entry.0 += family.injected;
            entry.1 += family.detected;
            entry.2 += family.undetected;
            families_json.push(format!(
                concat!(
                    "{{\"family\": \"{}\", \"injected\": {}, \"detected\": {}, ",
                    "\"undetected\": {}, \"mean_detection_latency_s\": {}}}"
                ),
                family.family,
                family.injected,
                family.detected,
                family.undetected,
                json_num(family.mean_detection_latency_s),
            ));
        }
        println!(
            "{seed},{},{},{},{},{},{},{},{wall_ms}",
            verdict.label,
            campaign.faults.len(),
            verdict.expected.len(),
            verdict.missed.len(),
            verdict.billing_ok,
            verdict.passed(),
            json_num(verdict.accuracy_delta_percent),
        );
        cells_json.push(format!(
            concat!(
                "    {{\"seed\": {}, \"label\": \"{}\", \"networks\": {}, \"devices\": {}, ",
                "\"horizon_s\": {}, \"workload\": \"{}\", \"meters\": \"{}\", \"tariff\": \"{}\", ",
                "\"faults\": {}, \"controls\": {}, \"hops\": {}, \"expected\": {}, \"missed\": {}, ",
                "\"billing_ok\": {}, \"passed\": {}, \"accuracy_delta_pts\": {}, ",
                "\"digest\": \"{}\", \"families\": [{}], \"wall_ms\": {}}}"
            ),
            seed,
            verdict.label,
            campaign.networks,
            campaign.devices_per_network,
            campaign.horizon_s,
            campaign.workload.name(),
            campaign.meters.name(),
            campaign.tariff.name(),
            campaign.faults.len(),
            campaign.controls.len(),
            campaign.mobility.len(),
            verdict.expected.len(),
            verdict.missed.len(),
            verdict.billing_ok,
            verdict.passed(),
            json_num(verdict.accuracy_delta_percent),
            verdict.digest,
            families_json.join(", "),
            wall_ms,
        ));
    }

    // Determinism pin: the seed-0 campaign re-run must reproduce its digest.
    let rerun = run_campaign(&CampaignGenerator::new(0).next_campaign()).unwrap();
    let deterministic = rerun.digest == first_digest;

    // Regression gate: every committed shrunk reproducer must replay green.
    let fixtures_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/campaigns");
    let mut reproducers_json = Vec::new();
    let mut reproducers_green = true;
    let mut fixture_paths: Vec<_> = std::fs::read_dir(&fixtures_dir)
        .expect("campaign fixture corpus exists")
        .map(|entry| entry.unwrap().path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "txt"))
        .collect();
    fixture_paths.sort();
    for path in fixture_paths {
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).unwrap();
        let spec = CampaignSpec::parse(&text).expect("committed fixtures parse");
        let verdict = run_campaign(&spec).expect("committed fixtures run");
        if !verdict.passed() {
            reproducers_green = false;
            println!("# REGRESSED reproducer {name}: {:?}", verdict.failures);
        }
        println!(
            "reproducer,{name},{},{},{},{},{},{},-",
            spec.faults.len(),
            verdict.expected.len(),
            verdict.missed.len(),
            verdict.billing_ok,
            verdict.passed(),
            json_num(verdict.accuracy_delta_percent),
        );
        reproducers_json.push(format!(
            "    {{\"name\": \"{}\", \"passed\": {}, \"expected\": {}, \"missed\": {}}}",
            name,
            verdict.passed(),
            verdict.expected.len(),
            verdict.missed.len(),
        ));
    }

    let families_json: Vec<String> = family_totals
        .iter()
        .map(|(family, (injected, detected, undetected))| {
            format!(
                concat!(
                    "    {{\"family\": \"{}\", \"injected\": {}, \"detected\": {}, ",
                    "\"undetected\": {}, \"detection_rate\": {}}}"
                ),
                family,
                injected,
                detected,
                undetected,
                json_num((*injected > 0).then(|| *detected as f64 / *injected as f64)),
            )
        })
        .collect();

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"campaign_sweep\",\n",
            "  \"mode\": \"{}\",\n",
            "  \"seeds\": {},\n",
            "  \"campaigns\": [\n{}\n  ],\n",
            "  \"family_totals\": [\n{}\n  ],\n",
            "  \"reproducers\": [\n{}\n  ],\n",
            "  \"summary\": {{\"campaigns\": {}, \"failed\": {}, \"expected_detections\": {}, ",
            "\"missed_detections\": {}, \"deterministic\": {}, \"reproducers_green\": {}, ",
            "\"total_wall_ms\": {}}}\n",
            "}}\n"
        ),
        if smoke { "smoke" } else { "full" },
        seeds,
        cells_json.join(",\n"),
        families_json.join(",\n"),
        reproducers_json.join(",\n"),
        seeds,
        failed,
        expected_total,
        missed_total,
        deterministic,
        reproducers_green,
        started.elapsed().as_millis(),
    );
    std::fs::write(out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));

    println!(
        "\n# {seeds} campaigns in {} ms; {expected_total} expected detections, {missed_total} missed, {failed} failed",
        started.elapsed().as_millis(),
    );
    println!("# wrote {out_path}");
    assert!(deterministic, "seed-0 campaign digest must be reproducible");
    assert_eq!(
        missed_total, 0,
        "every expected-detectable fault must land detected"
    );
    assert_eq!(failed, 0, "no campaign may fail its verdict");
    assert!(
        reproducers_green,
        "a committed reproducer regressed to undetected"
    );
}
