//! Regenerates the **backhaul delay** claim of §III-B.b: "the data
//! communication between aggregators does not incur much delay
//! (1 millisecond) as the backhaul network is assumed to have high
//! bandwidth." Measures the simulated one-way forwarding delay over many
//! messages and mesh sizes.
//!
//! ```bash
//! cargo run -p rtem-bench --bin backhaul_delay
//! ```

use rtem::net::backhaul::BackhaulMesh;
use rtem::net::link::LinkConfig;
use rtem::net::packet::{AggregatorAddr, DeviceId, MeasurementRecord, Packet};
use rtem::sim::rng::SimRng;
use rtem::sim::time::SimTime;

fn forwarded_packet() -> Packet {
    Packet::ForwardedConsumption {
        device: DeviceId(1),
        collector: AggregatorAddr(2),
        records: vec![MeasurementRecord {
            device: DeviceId(1),
            sequence: 0,
            interval_start_us: 0,
            interval_end_us: 100_000,
            mean_current_ua: 150_000,
            charge_uas: 15_000,
            backfilled: false,
        }],
    }
}

fn main() {
    println!("# Aggregator-to-aggregator forwarding delay over the backhaul mesh");
    println!("mesh_size,messages,mean_delay_ms,p99_delay_ms,max_delay_ms,mean_hops");
    for mesh_size in [2u32, 4, 8, 16] {
        let addrs: Vec<AggregatorAddr> = (1..=mesh_size).map(AggregatorAddr).collect();
        let mut mesh = BackhaulMesh::full_mesh(
            &addrs,
            LinkConfig::backhaul(),
            SimRng::seed_from_u64(u64::from(mesh_size)),
        );
        let messages = 1000;
        let mut delays_ms = Vec::with_capacity(messages);
        let mut hops_total = 0u64;
        for i in 0..messages {
            let from = addrs[i % addrs.len()];
            let to = addrs[(i + 1) % addrs.len()];
            let sent_at = SimTime::from_millis(i as u64 * 10);
            mesh.send(from, to, forwarded_packet(), sent_at).unwrap();
            for delivery in mesh.drain_due(SimTime::from_secs(1_000_000)) {
                let delay = delivery.at.duration_since(sent_at);
                delays_ms.push(delay.as_secs_f64() * 1000.0);
                hops_total += u64::from(delivery.hops);
            }
        }
        delays_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = delays_ms.iter().sum::<f64>() / delays_ms.len() as f64;
        let p99 = delays_ms[(delays_ms.len() as f64 * 0.99) as usize - 1];
        let max = *delays_ms.last().unwrap();
        println!(
            "{mesh_size},{},{mean:.3},{p99:.3},{max:.3},{:.2}",
            delays_ms.len(),
            hops_total as f64 / delays_ms.len() as f64
        );
    }
    println!("\n# paper: ~1 ms forwarding delay assumed for the high-bandwidth backhaul");
}
