//! Fleet-command rollouts over the MQTT control plane: sweeps rollout
//! shape x QoS x link quality over a 100-device single-network fleet as a
//! parallel [`Suite`], reporting per-cell delivery/application/ack counts,
//! rollout completion rate and end-to-end rollout latency — then writes the
//! whole grid as machine-readable `BENCH_control.json` so the control-plane
//! trajectory accumulates run over run.
//!
//! ```bash
//! cargo run --release -p rtem-bench --bin control_sweep             # full grid
//! cargo run --release -p rtem-bench --bin control_sweep -- --smoke  # CI smoke
//! ```
//!
//! Reading the numbers: on the ideal link every rollout must complete —
//! completion rate 1.0, every addressed device applies the command and the
//! acknowledgment round-trip closes. That is the gate this binary asserts.
//! On lossy links QoS-1/2 retransmission converges to the same completion,
//! just later (visible in the rollout latency column); the staged rollout's
//! latency is dominated by its stagger, which is the point of staging —
//! blast radius control, not speed.
//!
//! `--smoke` shrinks the fleet and horizon so CI exercises the full
//! pipeline in seconds; it writes to `BENCH_control_smoke.json` so a smoke
//! run can never clobber the committed full-grid snapshot.

use rtem::net::link::LinkConfig;
use rtem::prelude::*;

/// The swept rollout shapes: the same Tmeasure slowdown pushed through
/// increasingly careful transports, plus a mute/resume round-trip.
fn plans(at_s: u64, stagger_s: u64) -> Vec<(String, ControlPlan)> {
    let t = SimTime::from_secs;
    let stagger = SimDuration::from_secs(stagger_s);
    let slowdown = FleetCommand::SetMeasureInterval {
        interval: SimDuration::from_millis(500),
    };
    vec![
        (
            "staged/qos1".into(),
            ControlPlan::new().staged_rollout(
                t(at_s),
                stagger,
                &[10, 50, 100],
                slowdown,
                QoS::AtLeastOnce,
                false,
            ),
        ),
        (
            "staged/qos2".into(),
            ControlPlan::new().staged_rollout(
                t(at_s),
                stagger,
                &[10, 50, 100],
                slowdown,
                QoS::ExactlyOnce,
                false,
            ),
        ),
        (
            "staged/qos1-retained".into(),
            ControlPlan::new().staged_rollout(
                t(at_s),
                stagger,
                &[10, 50, 100],
                slowdown,
                QoS::AtLeastOnce,
                true,
            ),
        ),
        (
            "blast/qos2-all".into(),
            ControlPlan::new().command_with(
                t(at_s),
                CommandTarget::AllDevices,
                slowdown,
                QoS::ExactlyOnce,
                false,
            ),
        ),
        (
            "mute-resume/qos1".into(),
            ControlPlan::new()
                .stop_reporting(t(at_s), CommandTarget::AllDevices)
                .start_reporting(t(at_s + stagger_s), CommandTarget::AllDevices),
        ),
    ]
}

fn links(smoke: bool) -> Vec<(String, LinkConfig, LinkConfig)> {
    let lossy = LinkConfig {
        loss_probability: 0.3,
        ..LinkConfig::wifi()
    };
    let mut links = vec![
        (
            "ideal".to_string(),
            LinkConfig::ideal(),
            LinkConfig::ideal(),
        ),
        (
            "wifi".to_string(),
            LinkConfig::wifi(),
            LinkConfig::backhaul(),
        ),
    ];
    if !smoke {
        links.push(("lossy30".to_string(), lossy, LinkConfig::backhaul()));
    }
    links
}

fn json_num(value: Option<f64>) -> String {
    match value {
        Some(v) if v.is_finite() => format!("{v:.4}"),
        _ => "null".to_string(),
    }
}

fn main() {
    const SEED: u64 = 1101;
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (mode, devices, horizon_s, at_s, stagger_s, path) = if smoke {
        (
            "smoke",
            20u32,
            45u64,
            20u64,
            5u64,
            "BENCH_control_smoke.json",
        )
    } else {
        ("full", 100u32, 80u64, 30u64, 10u64, "BENCH_control.json")
    };

    let base =
        ScenarioSpec::single_network(devices, SEED).with_horizon(SimDuration::from_secs(horizon_s));
    let suite = Suite::new(base)
        .over_links(links(smoke))
        .over_control_plans(plans(at_s, stagger_s));

    println!(
        "# Fleet-command rollouts over the control plane \
         ({} cells, {devices} devices, {horizon_s} s each, {mode})",
        suite.len()
    );
    println!("link,plan,commands,targets,applied,acked,completion_rate,rollout_latency_s,wire_bytes,wall_ms");
    let report = suite.run().expect("sweep plans are valid");

    let mut cells_json = Vec::new();
    let mut clean_cells = 0usize;
    let mut clean_complete = 0usize;
    for cell in &report.cells {
        let link = cell.key.link.as_deref().unwrap_or("?");
        let plan = cell.key.control_plan.as_deref().unwrap_or("?");
        let control = cell
            .report
            .control
            .as_ref()
            .expect("every cell carries a plan");
        let completion = control.completion_rate();
        let latency_s = control.rollout_latency().map(|d| d.as_secs_f64());
        if link == "ideal" {
            clean_cells += 1;
            if completion == Some(1.0) {
                clean_complete += 1;
            }
        }
        println!(
            "{link},{plan},{},{},{},{},{},{},{},{}",
            control.commands(),
            control.targets(),
            control.applied(),
            control.acked(),
            json_num(completion),
            json_num(latency_s),
            control.wire_bytes(),
            cell.wall.as_millis(),
        );
        cells_json.push(format!(
            concat!(
                "    {{\"link\": \"{}\", \"plan\": \"{}\", \"commands\": {}, ",
                "\"targets\": {}, \"applied\": {}, \"rejected\": {}, \"acked\": {}, ",
                "\"completion_rate\": {}, \"rollout_latency_s\": {}, ",
                "\"wire_bytes\": {}, \"wall_ms\": {}}}"
            ),
            link,
            plan,
            control.commands(),
            control.targets(),
            control.applied(),
            control.rejected(),
            control.acked(),
            json_num(completion),
            json_num(latency_s),
            control.wire_bytes(),
            cell.wall.as_millis(),
        ));
    }

    let clean_rate = if clean_cells > 0 {
        clean_complete as f64 / clean_cells as f64
    } else {
        0.0
    };
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"control_sweep\",\n",
            "  \"mode\": \"{}\",\n",
            "  \"scenario\": {{\"networks\": 1, \"devices_per_network\": {}, ",
            "\"horizon_s\": {}, \"rollout_at_s\": {}, \"stagger_s\": {}, \"seed\": {}}},\n",
            "  \"cells\": [\n{}\n  ],\n",
            "  \"summary\": {{\"cells\": {}, \"ideal_link_cells\": {}, ",
            "\"ideal_link_complete\": {}, \"threads\": {}, \"total_wall_ms\": {}}}\n",
            "}}\n"
        ),
        mode,
        devices,
        horizon_s,
        at_s,
        stagger_s,
        SEED,
        cells_json.join(",\n"),
        report.cells.len(),
        clean_cells,
        clean_complete,
        report.threads_used,
        report.wall.as_millis(),
    );
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));

    println!(
        "\n# {} cells on {} threads in {} ms; {}/{} ideal-link rollouts complete",
        report.cells.len(),
        report.threads_used,
        report.wall.as_millis(),
        clean_complete,
        clean_cells,
    );
    println!("# wrote {path}");
    assert!(
        (clean_rate - 1.0).abs() < f64::EPSILON,
        "ideal-link rollouts must complete: {clean_complete}/{clean_cells}"
    );
}
