//! Regenerates the **Thandshake statistic** of §III-B.b: the time to
//! register a temporary membership in the foreign network, over 15 runs
//! (paper: mean ≈ 6 s, range 5.5–6.5 s).
//!
//! ```bash
//! cargo run -p rtem-bench --bin thandshake_stats
//! ```

use rtem_core::mobility::thandshake_statistics;

fn main() {
    let runs = 15;
    println!("# Thandshake over {runs} mobility runs (different seeds)");
    let (outcomes, stats) = thandshake_statistics(3000, runs);
    println!("run,thandshake_s,scan_s,association_s,mqtt_connect_s,registration_s");
    for (i, outcome) in outcomes.iter().enumerate() {
        if let Some(h) = outcome.handshake {
            println!(
                "{run},{total:.3},{scan:.3},{assoc:.3},{mqtt:.3},{reg:.3}",
                run = i + 1,
                total = h.total().as_secs_f64(),
                scan = h.scan.as_secs_f64(),
                assoc = h.association.as_secs_f64(),
                mqtt = h.broker_connect.as_secs_f64(),
                reg = h.registration.as_secs_f64()
            );
        }
    }
    if let Some(stats) = stats {
        println!(
            "\n# mean {:.2} s, min {:.2} s, max {:.2} s, std dev {:.2} s over {} runs",
            stats.mean_s, stats.min_s, stats.max_s, stats.std_dev_s, stats.count
        );
        println!("# paper: 6 s average, 5.5–6.5 s variation over 15 runs");
    }
}
