//! Regenerates the **Thandshake statistic** of §III-B.b: the time to
//! register a temporary membership in the foreign network, over 15 runs
//! (paper: mean ≈ 6 s, range 5.5–6.5 s). The 15 seeds run as one parallel
//! [`Suite`], one mobility scenario per cell.
//!
//! ```bash
//! cargo run -p rtem-bench --bin thandshake_stats
//! ```

use rtem::prelude::*;

fn main() {
    let runs = 15u64;
    let mobile = ScenarioSpec::device_id(0, 0);
    let destination = ScenarioSpec::network_addr(1);
    // The paper's mobility shape: charge at home, unplug, ~20 s transit,
    // re-plug in the foreign network, settle.
    let base = ScenarioSpec::paper_testbed(0)
        .with_horizon(SimDuration::from_secs(140))
        .unplug_at(SimTime::from_secs(60), mobile)
        .plug_in_at(SimTime::from_secs(80), mobile, destination);
    let suite = Suite::new(base).over_seeds(3000..3000 + runs);

    println!("# Thandshake over {runs} mobility runs (different seeds)");
    let report = suite.run().expect("mobility specs are valid");
    println!("run,thandshake_s,scan_s,association_s,mqtt_connect_s,registration_s");
    let mut durations = Vec::new();
    for (i, cell) in report.cells.iter().enumerate() {
        // Only the temporary (foreign-network) registration counts as a
        // Thandshake sample; a run where it never completed would otherwise
        // silently contribute the device's initial master handshake.
        if let Some(h) = cell
            .report
            .metrics
            .handshakes
            .get(&mobile.0)
            .filter(|h| h.membership == MembershipKind::Temporary)
        {
            durations.push(h.total().as_secs_f64());
            println!(
                "{run},{total:.3},{scan:.3},{assoc:.3},{mqtt:.3},{reg:.3}",
                run = i + 1,
                total = h.total().as_secs_f64(),
                scan = h.scan.as_secs_f64(),
                assoc = h.association.as_secs_f64(),
                mqtt = h.broker_connect.as_secs_f64(),
                reg = h.registration.as_secs_f64()
            );
        }
    }
    if !durations.is_empty() {
        let stats = HandshakeStats::from_durations(&durations);
        println!(
            "\n# mean {:.2} s, min {:.2} s, max {:.2} s, std dev {:.2} s over {} runs ({} threads, {} ms)",
            stats.mean_s,
            stats.min_s,
            stats.max_s,
            stats.std_dev_s,
            stats.count,
            report.threads_used,
            report.wall.as_millis(),
        );
        println!("# paper: 6 s average, 5.5–6.5 s variation over 15 runs");
    }
}
