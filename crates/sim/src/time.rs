//! Simulated time primitives.
//!
//! The whole testbed substitution rests on a deterministic notion of time:
//! every component (sensor sampling, MQTT publishes, TDMA slots, handshake
//! phases) is driven by the same monotonically increasing [`SimTime`].
//!
//! Time is stored with microsecond resolution in a `u64`, which covers more
//! than 500 000 years of simulation — far beyond any scenario in the paper
//! (the longest experiment is about one hour of charging).

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// Number of microseconds per second.
pub const MICROS_PER_SEC: u64 = 1_000_000;
/// Number of microseconds per millisecond.
pub const MICROS_PER_MILLI: u64 = 1_000;

/// A span of simulated time with microsecond resolution.
///
/// # Examples
///
/// ```
/// use rtem_sim::time::SimDuration;
///
/// let t_measure = SimDuration::from_millis(100);
/// assert_eq!(t_measure.as_micros(), 100_000);
/// assert_eq!(t_measure * 10, SimDuration::from_secs(1));
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimDuration {
    micros: u64,
}

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration { micros: 0 };

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration { micros }
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration {
            micros: millis * MICROS_PER_MILLI,
        }
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration {
            micros: secs * MICROS_PER_SEC,
        }
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        SimDuration {
            micros: (secs * MICROS_PER_SEC as f64).round() as u64,
        }
    }

    /// Total number of microseconds.
    pub const fn as_micros(self) -> u64 {
        self.micros
    }

    /// Total number of whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.micros / MICROS_PER_MILLI
    }

    /// Total number of whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.micros / MICROS_PER_SEC
    }

    /// Duration expressed as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.micros as f64 / MICROS_PER_SEC as f64
    }

    /// Returns `true` if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.micros == 0
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration {
            micros: self.micros.saturating_sub(other.micros),
        }
    }

    /// Checked addition, `None` on overflow.
    pub const fn checked_add(self, other: SimDuration) -> Option<SimDuration> {
        match self.micros.checked_add(other.micros) {
            Some(m) => Some(SimDuration { micros: m }),
            None => None,
        }
    }

    /// Scales the duration by a floating point factor (rounded to microseconds).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative, got {factor}"
        );
        SimDuration {
            micros: (self.micros as f64 * factor).round() as u64,
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.micros % MICROS_PER_SEC == 0 {
            write!(f, "{}s", self.micros / MICROS_PER_SEC)
        } else if self.micros % MICROS_PER_MILLI == 0 {
            write!(f, "{}ms", self.micros / MICROS_PER_MILLI)
        } else {
            write!(f, "{}us", self.micros)
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration {
            micros: self.micros + rhs.micros,
        }
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.micros += rhs.micros;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration {
            micros: self.micros - rhs.micros,
        }
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.micros -= rhs.micros;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration {
            micros: self.micros * rhs,
        }
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration {
            micros: self.micros / rhs,
        }
    }
}

/// An absolute instant on the simulated timeline.
///
/// `SimTime` is an offset from the simulation epoch (t = 0, when the
/// [`Scheduler`](crate::scheduler::Scheduler) is created).
///
/// # Examples
///
/// ```
/// use rtem_sim::time::{SimDuration, SimTime};
///
/// let start = SimTime::ZERO;
/// let later = start + SimDuration::from_secs(5);
/// assert_eq!(later.duration_since(start), SimDuration::from_secs(5));
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime {
    micros_since_epoch: u64,
}

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime {
        micros_since_epoch: 0,
    };

    /// Creates an instant at `micros` microseconds since the epoch.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime {
            micros_since_epoch: micros,
        }
    }

    /// Creates an instant at `millis` milliseconds since the epoch.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime {
            micros_since_epoch: millis * MICROS_PER_MILLI,
        }
    }

    /// Creates an instant at `secs` seconds since the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime {
            micros_since_epoch: secs * MICROS_PER_SEC,
        }
    }

    /// Microseconds elapsed since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.micros_since_epoch
    }

    /// Seconds elapsed since the epoch, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.micros_since_epoch as f64 / MICROS_PER_SEC as f64
    }

    /// Elapsed time since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.micros_since_epoch <= self.micros_since_epoch,
            "duration_since called with a later instant"
        );
        SimDuration {
            micros: self.micros_since_epoch - earlier.micros_since_epoch,
        }
    }

    /// Elapsed time since `earlier`, or zero if `earlier` is in the future.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration {
            micros: self
                .micros_since_epoch
                .saturating_sub(earlier.micros_since_epoch),
        }
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime {
            micros_since_epoch: self.micros_since_epoch + rhs.micros,
        }
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.micros_since_epoch += rhs.micros;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime {
            micros_since_epoch: self.micros_since_epoch - rhs.micros,
        }
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(
            SimDuration::from_secs_f64(0.1),
            SimDuration::from_millis(100)
        );
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(150);
        let b = SimDuration::from_millis(50);
        assert_eq!(a + b, SimDuration::from_millis(200));
        assert_eq!(a - b, SimDuration::from_millis(100));
        assert_eq!(b * 3, a);
        assert_eq!(a / 3, SimDuration::from_millis(50));
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
    }

    #[test]
    fn duration_float_round_trip() {
        let d = SimDuration::from_secs_f64(6.25);
        assert!((d.as_secs_f64() - 6.25).abs() < 1e-9);
    }

    #[test]
    fn duration_display() {
        assert_eq!(SimDuration::from_secs(6).to_string(), "6s");
        assert_eq!(SimDuration::from_millis(100).to_string(), "100ms");
        assert_eq!(SimDuration::from_micros(42).to_string(), "42us");
    }

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::from_secs(10);
        let t1 = t0 + SimDuration::from_millis(500);
        assert_eq!(t1.as_micros(), 10_500_000);
        assert_eq!(t1 - t0, SimDuration::from_millis(500));
        assert_eq!(t0.saturating_duration_since(t1), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "later instant")]
    fn duration_since_panics_on_reversed_order() {
        let t0 = SimTime::from_secs(1);
        let t1 = SimTime::from_secs(2);
        let _ = t0.duration_since(t1);
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_secs(2);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(1));
        assert_eq!(d.mul_f64(1.25), SimDuration::from_millis(2500));
    }

    #[test]
    fn checked_add_detects_overflow() {
        let d = SimDuration::from_micros(u64::MAX);
        assert!(d.checked_add(SimDuration::from_micros(1)).is_none());
        assert!(d.checked_add(SimDuration::ZERO).is_some());
    }
}
