//! Discrete-event queue.
//!
//! The simulation is event-driven: every component schedules future work
//! (sensor samples, MQTT publishes, TDMA slot openings, handshake phase
//! completions) as events in a single [`EventQueue`]. The queue is a priority
//! queue ordered by event time with a monotonically increasing sequence
//! number as a tie-breaker, so simultaneous events are delivered in the exact
//! order they were scheduled — a requirement for reproducible runs.

use crate::time::{SimDuration, SimTime};
use core::cmp::Ordering;
use std::collections::BinaryHeap;

/// Opaque identifier of a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

impl EventId {
    /// Raw sequence number backing this id.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// An event popped from the queue: when it fires and its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// Simulated time at which the event fires.
    pub at: SimTime,
    /// Identifier assigned when the event was scheduled.
    pub id: EventId,
    /// User payload.
    pub payload: E,
}

#[derive(Debug)]
struct HeapEntry<E> {
    at: SimTime,
    seq: u64,
    cancelled: bool,
    payload: Option<E>,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Priority queue of timestamped events driving the simulation.
///
/// # Examples
///
/// ```
/// use rtem_sim::event::EventQueue;
/// use rtem_sim::time::{SimDuration, SimTime};
///
/// let mut queue = EventQueue::new();
/// queue.schedule(SimTime::from_secs(2), "later");
/// queue.schedule(SimTime::from_secs(1), "sooner");
///
/// let first = queue.pop().unwrap();
/// assert_eq!(first.payload, "sooner");
/// assert_eq!(queue.now(), SimTime::from_secs(1));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    now: SimTime,
    next_seq: u64,
    cancelled: std::collections::HashSet<u64>,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at the simulation epoch.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            cancelled: std::collections::HashSet::new(),
            popped: 0,
        }
    }

    /// Current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events scheduled and not yet delivered or cancelled.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// Returns `true` if no events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.popped
    }

    /// Schedules `payload` to fire at the absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current simulation time, which
    /// would make the event unreachable and almost always indicates a logic
    /// error in the caller.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule an event in the past (now {}, requested {})",
            self.now,
            at
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry {
            at,
            seq,
            cancelled: false,
            payload: Some(payload),
        });
        EventId(seq)
    }

    /// Schedules `payload` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, payload: E) -> EventId {
        let at = self.now + delay;
        self.schedule(at, payload)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        self.cancelled.insert(id.0)
    }

    /// Time of the next pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.drop_cancelled_head();
        self.heap.peek().map(|e| e.at)
    }

    /// Time and payload of the next pending event without popping it —
    /// the look-ahead batching dispatchers use to recognize runs of
    /// homogeneous simultaneous events.
    pub fn peek(&mut self) -> Option<(SimTime, &E)> {
        self.drop_cancelled_head();
        self.heap
            .peek()
            .map(|e| (e.at, e.payload.as_ref().expect("pending payload")))
    }

    /// Pops the next event and advances the simulation clock to it.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.drop_cancelled_head();
        let mut entry = self.heap.pop()?;
        debug_assert!(!entry.cancelled);
        self.now = entry.at;
        self.popped += 1;
        Some(ScheduledEvent {
            at: entry.at,
            id: EventId(entry.seq),
            payload: entry.payload.take().expect("payload present"),
        })
    }

    /// Pops the next event only if it fires at or before `deadline`.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<ScheduledEvent<E>> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => None,
        }
    }

    fn drop_cancelled_head(&mut self) {
        while let Some(head) = self.heap.peek() {
            if self.cancelled.remove(&head.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 3);
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(2), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_keep_schedule_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(100);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_to_popped_event() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(250), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(250));
    }

    #[test]
    fn schedule_after_uses_current_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), "first");
        q.pop();
        q.schedule_after(SimDuration::from_secs(2), "second");
        let e = q.pop().unwrap();
        assert_eq!(e.at, SimTime::from_secs(3));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        q.pop();
        q.schedule(SimTime::from_secs(1), ());
    }

    #[test]
    fn cancellation_removes_event() {
        let mut q = EventQueue::new();
        let keep = q.schedule(SimTime::from_secs(1), "keep");
        let drop_id = q.schedule(SimTime::from_secs(2), "drop");
        assert!(q.cancel(drop_id));
        assert!(!q.cancel(drop_id), "double cancel reports false");
        assert_eq!(q.len(), 1);
        let delivered: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(delivered, vec!["keep"]);
        let _ = keep;
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(123)));
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(10), 2);
        assert_eq!(q.pop_until(SimTime::from_secs(5)).unwrap().payload, 1);
        assert!(q.pop_until(SimTime::from_secs(5)).is_none());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn len_and_delivered_track_activity() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        q.schedule(SimTime::from_secs(2), ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.delivered(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let first = q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(2), 2);
        q.cancel(first);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
    }
}
