//! Time-series recording.
//!
//! The experiments in the paper are reported as time series (Fig. 6) and
//! per-window aggregates (Fig. 5). [`TimeSeries`] is the common recording
//! structure used by devices, aggregators and the benchmark harness; it keeps
//! `(SimTime, f64)` samples in insertion order and offers the aggregation
//! helpers the figures need (windowed sums, means, min/max, resampling and
//! CSV export).

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One recorded sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// When the sample was taken.
    pub at: SimTime,
    /// Sample value (unit is defined by the producer, e.g. mA or mWh).
    pub value: f64,
}

/// Summary statistics over a set of samples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesStats {
    /// Number of samples.
    pub count: usize,
    /// Minimum value (0 for an empty series).
    pub min: f64,
    /// Maximum value (0 for an empty series).
    pub max: f64,
    /// Arithmetic mean (0 for an empty series).
    pub mean: f64,
    /// Population standard deviation (0 for an empty series).
    pub std_dev: f64,
    /// Sum of all values.
    pub sum: f64,
}

/// Accumulators over a pruned sample prefix. The folds happen in sample
/// order, so [`TimeSeries::sum`] and [`TimeSeries::stats`] on a pruned
/// series reproduce the unpruned results bit-for-bit (same float operations
/// in the same order) for `count`, `sum`, `mean`, `min` and `max`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct PrunedPrefix {
    count: usize,
    sum: f64,
    min: f64,
    max: f64,
}

/// An append-only named time series, optionally pruned to a bounded
/// resident window via [`prune_before`](TimeSeries::prune_before).
///
/// # Examples
///
/// ```
/// use rtem_sim::time::SimTime;
/// use rtem_sim::trace::TimeSeries;
///
/// let mut series = TimeSeries::new("device-1 current (mA)");
/// series.push(SimTime::from_millis(100), 120.5);
/// series.push(SimTime::from_millis(200), 118.0);
/// assert_eq!(series.len(), 2);
/// assert!((series.stats().mean - 119.25).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    name: String,
    samples: Vec<Sample>,
    /// Sealed summary of pruned samples; `None` until the first prune, so
    /// an unpruned series is unchanged.
    pruned: Option<PrunedPrefix>,
}

impl TimeSeries {
    /// Creates an empty series with a human-readable name.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            samples: Vec::new(),
            pruned: None,
        }
    }

    /// Name given at construction.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of samples ever recorded, including pruned ones — pruning
    /// never changes this count.
    pub fn len(&self) -> usize {
        self.pruned.map_or(0, |p| p.count) + self.samples.len()
    }

    /// Number of samples still resident in memory.
    pub fn retained_len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if the series never recorded a sample.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite — NaN propagating into the figures is
    /// always a bug in the producing model.
    pub fn push(&mut self, at: SimTime, value: f64) {
        assert!(value.is_finite(), "time-series value must be finite");
        self.samples.push(Sample { at, value });
    }

    /// The resident samples in insertion order (all samples unless the
    /// series was pruned).
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Drops resident samples with `at < cutoff`, folding them into sealed
    /// accumulators so [`len`](Self::len), [`sum`](Self::sum) and the
    /// `count`/`sum`/`mean`/`min`/`max` of [`stats`](Self::stats) keep
    /// their full-history values bit-exactly. Windowed helpers and
    /// [`integrate`](Self::integrate) see only the retained suffix
    /// afterwards. Samples are time-ordered in every producer, so this
    /// prunes a prefix.
    pub fn prune_before(&mut self, cutoff: SimTime) {
        let cut = self.samples.iter().take_while(|s| s.at < cutoff).count();
        if cut == 0 {
            return;
        }
        let pruned = self.pruned.get_or_insert(PrunedPrefix {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        });
        for s in self.samples.drain(..cut) {
            pruned.count += 1;
            pruned.sum += s.value;
            pruned.min = pruned.min.min(s.value);
            pruned.max = pruned.max.max(s.value);
        }
    }

    /// Iterates over `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.samples.iter().map(|s| (s.at, s.value))
    }

    /// Time of the first sample.
    pub fn start(&self) -> Option<SimTime> {
        self.samples.first().map(|s| s.at)
    }

    /// Time of the last sample.
    pub fn end(&self) -> Option<SimTime> {
        self.samples.last().map(|s| s.at)
    }

    /// Sum of every sample value ever recorded. The fold continues from the
    /// sealed pruned-prefix sum, so the result is bit-identical with the
    /// unpruned series.
    pub fn sum(&self) -> f64 {
        self.samples
            .iter()
            .fold(self.pruned.map_or(0.0, |p| p.sum), |acc, s| acc + s.value)
    }

    /// Summary statistics over every sample ever recorded. On a pruned
    /// series, `count`, `sum`, `mean`, `min` and `max` keep their exact
    /// full-history values; `std_dev` is computed over the retained
    /// suffix only (the two-pass deviation fold needs the samples).
    pub fn stats(&self) -> SeriesStats {
        let count = self.len();
        if count == 0 {
            return SeriesStats {
                count: 0,
                min: 0.0,
                max: 0.0,
                mean: 0.0,
                std_dev: 0.0,
                sum: 0.0,
            };
        }
        let sum = self.sum();
        let mean = sum / count as f64;
        let mut min = self.pruned.map_or(f64::INFINITY, |p| p.min);
        let mut max = self.pruned.map_or(f64::NEG_INFINITY, |p| p.max);
        let mut var_acc = 0.0;
        for s in &self.samples {
            min = min.min(s.value);
            max = max.max(s.value);
            let d = s.value - mean;
            var_acc += d * d;
        }
        let var_count = if self.samples.is_empty() {
            count
        } else {
            self.samples.len()
        };
        SeriesStats {
            count,
            min,
            max,
            mean,
            std_dev: (var_acc / var_count as f64).sqrt(),
            sum,
        }
    }

    /// Resident samples whose timestamp falls in `[from, to)`.
    pub fn window(&self, from: SimTime, to: SimTime) -> TimeSeries {
        TimeSeries {
            name: self.name.clone(),
            samples: self
                .samples
                .iter()
                .filter(|s| s.at >= from && s.at < to)
                .copied()
                .collect(),
            pruned: None,
        }
    }

    /// Splits the series into fixed-width windows starting at `origin` and
    /// returns the sum of each window. Used for the stacked bars of Fig. 5.
    pub fn windowed_sums(&self, origin: SimTime, width: SimDuration) -> Vec<f64> {
        assert!(!width.is_zero(), "window width must be non-zero");
        let Some(end) = self.end() else {
            return Vec::new();
        };
        let mut sums = Vec::new();
        let mut window_start = origin;
        while window_start <= end {
            let window_end = window_start + width;
            let sum = self
                .samples
                .iter()
                .filter(|s| s.at >= window_start && s.at < window_end)
                .map(|s| s.value)
                .sum();
            sums.push(sum);
            window_start = window_end;
        }
        sums
    }

    /// Splits the series into fixed-width windows and returns each window's mean
    /// (empty windows yield 0).
    pub fn windowed_means(&self, origin: SimTime, width: SimDuration) -> Vec<f64> {
        assert!(!width.is_zero(), "window width must be non-zero");
        let Some(end) = self.end() else {
            return Vec::new();
        };
        let mut means = Vec::new();
        let mut window_start = origin;
        while window_start <= end {
            let window_end = window_start + width;
            let mut count = 0usize;
            let mut sum = 0.0;
            for s in self
                .samples
                .iter()
                .filter(|s| s.at >= window_start && s.at < window_end)
            {
                count += 1;
                sum += s.value;
            }
            means.push(if count == 0 { 0.0 } else { sum / count as f64 });
            window_start = window_end;
        }
        means
    }

    /// Integrates the series with the trapezoidal rule, interpreting values as
    /// a rate (e.g. mA) and returning rate × seconds (e.g. mA·s).
    pub fn integrate(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        self.samples
            .windows(2)
            .map(|w| {
                let dt = w[1].at.duration_since(w[0].at).as_secs_f64();
                0.5 * (w[0].value + w[1].value) * dt
            })
            .sum()
    }

    /// Renders the series as a two-column CSV (`time_s,value`).
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.samples.len() * 16 + 32);
        out.push_str("time_s,value\n");
        for s in &self.samples {
            let _ = writeln!(out, "{:.6},{:.6}", s.at.as_secs_f64(), s.value);
        }
        out
    }

    /// Merges another series into this one, keeping global time order.
    pub fn merge(&mut self, other: &TimeSeries) {
        self.samples.extend_from_slice(&other.samples);
        self.samples.sort_by_key(|s| s.at);
    }
}

impl Extend<(SimTime, f64)> for TimeSeries {
    fn extend<T: IntoIterator<Item = (SimTime, f64)>>(&mut self, iter: T) {
        for (at, value) in iter {
            self.push(at, value);
        }
    }
}

impl FromIterator<(SimTime, f64)> for TimeSeries {
    fn from_iter<T: IntoIterator<Item = (SimTime, f64)>>(iter: T) -> Self {
        let mut series = TimeSeries::new("unnamed");
        series.extend(iter);
        series
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(values: &[(u64, f64)]) -> TimeSeries {
        values
            .iter()
            .map(|&(ms, v)| (SimTime::from_millis(ms), v))
            .collect()
    }

    #[test]
    fn stats_on_empty_series_are_zero() {
        let s = TimeSeries::new("empty");
        let st = s.stats();
        assert_eq!(st.count, 0);
        assert_eq!(st.sum, 0.0);
        assert_eq!(st.mean, 0.0);
        assert!(s.is_empty());
        assert_eq!(s.start(), None);
        assert_eq!(s.end(), None);
    }

    #[test]
    fn stats_basic() {
        let s = series(&[(0, 1.0), (100, 2.0), (200, 3.0), (300, 4.0)]);
        let st = s.stats();
        assert_eq!(st.count, 4);
        assert_eq!(st.min, 1.0);
        assert_eq!(st.max, 4.0);
        assert!((st.mean - 2.5).abs() < 1e-12);
        assert!((st.sum - 10.0).abs() < 1e-12);
        assert!((st.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_values_rejected() {
        let mut s = TimeSeries::new("bad");
        s.push(SimTime::ZERO, f64::NAN);
    }

    #[test]
    fn window_filters_half_open_interval() {
        let s = series(&[(0, 1.0), (100, 2.0), (200, 3.0), (300, 4.0)]);
        let w = s.window(SimTime::from_millis(100), SimTime::from_millis(300));
        assert_eq!(w.len(), 2);
        assert_eq!(w.samples()[0].value, 2.0);
        assert_eq!(w.samples()[1].value, 3.0);
    }

    #[test]
    fn windowed_sums_cover_all_samples() {
        let s = series(&[(0, 1.0), (100, 1.0), (1000, 2.0), (1500, 2.0), (2100, 5.0)]);
        let sums = s.windowed_sums(SimTime::ZERO, SimDuration::from_secs(1));
        assert_eq!(sums, vec![2.0, 4.0, 5.0]);
        assert!((sums.iter().sum::<f64>() - s.sum()).abs() < 1e-12);
    }

    #[test]
    fn windowed_means_handle_empty_windows() {
        let s = series(&[(0, 2.0), (2100, 4.0)]);
        let means = s.windowed_means(SimTime::ZERO, SimDuration::from_secs(1));
        assert_eq!(means, vec![2.0, 0.0, 4.0]);
    }

    #[test]
    fn integrate_constant_rate() {
        // 100 mA held for 10 s sampled every second -> 1000 mA·s.
        let s: TimeSeries = (0..=10).map(|i| (SimTime::from_secs(i), 100.0)).collect();
        assert!((s.integrate() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn integrate_needs_two_samples() {
        let s = series(&[(0, 100.0)]);
        assert_eq!(s.integrate(), 0.0);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let s = series(&[(0, 1.0), (500, 2.5)]);
        let csv = s.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_s,value");
        assert_eq!(lines.len(), 3);
        assert!(lines[2].starts_with("0.5"));
    }

    #[test]
    fn pruning_preserves_exact_count_sum_mean_min_max() {
        let mut full = series(&[(0, 1.5), (100, 2.25), (200, 0.5), (300, 4.0), (400, 3.125)]);
        let mut pruned = full.clone();
        pruned.prune_before(SimTime::from_millis(150));
        pruned.prune_before(SimTime::from_millis(350)); // incremental prune folds on
        assert_eq!(pruned.retained_len(), 1);
        assert_eq!(pruned.len(), full.len());
        let (a, b) = (full.stats(), pruned.stats());
        assert_eq!(a.count, b.count);
        assert_eq!(a.sum.to_bits(), b.sum.to_bits(), "sum is bit-exact");
        assert_eq!(a.mean.to_bits(), b.mean.to_bits(), "mean is bit-exact");
        assert_eq!(a.min, b.min);
        assert_eq!(a.max, b.max);
        // Growth after pruning keeps folding in recording order.
        full.push(SimTime::from_millis(500), 7.75);
        pruned.push(SimTime::from_millis(500), 7.75);
        assert_eq!(full.sum().to_bits(), pruned.sum().to_bits());
        assert!(!pruned.is_empty());
    }

    #[test]
    fn pruning_everything_keeps_totals() {
        let mut s = series(&[(0, 2.0), (100, 4.0)]);
        s.prune_before(SimTime::from_secs(10));
        assert_eq!(s.retained_len(), 0);
        assert_eq!(s.len(), 2);
        let st = s.stats();
        assert_eq!(st.count, 2);
        assert_eq!(st.mean, 3.0);
        assert_eq!(st.min, 2.0);
        assert_eq!(st.max, 4.0);
    }

    #[test]
    fn merge_keeps_time_order() {
        let mut a = series(&[(0, 1.0), (200, 3.0)]);
        let b = series(&[(100, 2.0)]);
        a.merge(&b);
        let times: Vec<u64> = a.iter().map(|(t, _)| t.as_micros()).collect();
        assert_eq!(times, vec![0, 100_000, 200_000]);
    }
}
