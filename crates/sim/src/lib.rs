//! # rtem-sim — deterministic discrete-event simulation kernel
//!
//! Foundation crate of the `rtem` workspace, the reproduction of
//! *Real-Time Energy Monitoring in IoT-enabled Mobile Devices* (DATE 2020).
//!
//! The paper evaluates its decentralized metering architecture on a hardware
//! testbed (ESP32 devices, INA219 sensors, Raspberry Pi aggregators). This
//! workspace replaces the testbed with a deterministic simulation; this crate
//! provides the shared building blocks:
//!
//! * [`time`] — microsecond-resolution [`SimTime`](time::SimTime) /
//!   [`SimDuration`](time::SimDuration).
//! * [`event`] — the discrete-event queue with stable ordering.
//! * [`scheduler`] — a run loop with horizon / budget stop conditions.
//! * [`rng`] — seeded, reproducible random number generation.
//! * [`rtc`] — DS3231-style real-time clock models (drift, offset, sync).
//! * [`trace`] — time-series recording and aggregation used by the figures.
//!
//! # Examples
//!
//! ```
//! use rtem_sim::prelude::*;
//!
//! let mut scheduler = Scheduler::new();
//! scheduler.schedule(SimTime::from_millis(100), "sample");
//! let reason = scheduler.run_until(SimTime::from_secs(1), |queue, event| {
//!     // A device would take a measurement here and re-arm its timer.
//!     if queue.now() < SimTime::from_millis(900) {
//!         queue.schedule_after(SimDuration::from_millis(100), event.payload);
//!     }
//!     Flow::Continue
//! });
//! assert_eq!(reason, StopReason::QueueEmpty);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod rng;
pub mod rtc;
pub mod scheduler;
pub mod time;
pub mod trace;

/// Convenient glob-import of the types almost every simulation needs.
pub mod prelude {
    pub use crate::event::{EventId, EventQueue, ScheduledEvent};
    pub use crate::rng::SimRng;
    pub use crate::rtc::{RtcConfig, RtcModel};
    pub use crate::scheduler::{Flow, Scheduler, StopReason};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::trace::{Sample, SeriesStats, TimeSeries};
}
