//! A thin run-loop on top of [`EventQueue`].
//!
//! Most simulations in this repository follow the same pattern: pop the next
//! event, hand it to a dispatcher, let the dispatcher schedule follow-up
//! events, repeat until a stop condition. [`Scheduler`] packages that loop,
//! the stop conditions (time horizon and event budget) and progress counters.

use crate::event::{EventId, EventQueue, ScheduledEvent};
use crate::time::{SimDuration, SimTime};

/// Why a [`Scheduler::run_until`] call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The event queue drained completely.
    QueueEmpty,
    /// The configured time horizon was reached.
    HorizonReached,
    /// The configured maximum number of events was delivered.
    EventBudgetExhausted,
    /// The dispatcher asked to stop.
    RequestedByHandler,
}

/// Control value a dispatcher returns after handling an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Flow {
    /// Keep running.
    #[default]
    Continue,
    /// Stop the run loop after this event.
    Stop,
}

/// Event-driven run loop with a time horizon and an event budget.
///
/// # Examples
///
/// ```
/// use rtem_sim::scheduler::{Flow, Scheduler};
/// use rtem_sim::time::{SimDuration, SimTime};
///
/// let mut scheduler = Scheduler::new();
/// scheduler.queue_mut().schedule(SimTime::from_secs(1), "tick");
/// let reason = scheduler.run_until(SimTime::from_secs(10), |_queue, event| {
///     assert_eq!(event.payload, "tick");
///     Flow::Continue
/// });
/// assert_eq!(reason, rtem_sim::scheduler::StopReason::QueueEmpty);
/// ```
#[derive(Debug)]
pub struct Scheduler<E> {
    queue: EventQueue<E>,
    max_events: Option<u64>,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Creates a scheduler with an empty queue and no event budget.
    pub fn new() -> Self {
        Scheduler {
            queue: EventQueue::new(),
            max_events: None,
        }
    }

    /// Limits the total number of events a subsequent run may deliver.
    /// Mainly a safety net against accidental infinite self-rescheduling.
    pub fn with_event_budget(mut self, max_events: u64) -> Self {
        self.max_events = Some(max_events);
        self
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Shared access to the underlying queue.
    pub fn queue(&self) -> &EventQueue<E> {
        &self.queue
    }

    /// Mutable access to the underlying queue (for initial event seeding).
    pub fn queue_mut(&mut self) -> &mut EventQueue<E> {
        &mut self.queue
    }

    /// Schedules an event at an absolute time.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        self.queue.schedule(at, payload)
    }

    /// Schedules an event after a delay from the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, payload: E) -> EventId {
        self.queue.schedule_after(delay, payload)
    }

    /// Runs until the queue drains, the horizon passes, the event budget is
    /// exhausted, or the handler requests a stop.
    ///
    /// The handler receives the queue (to schedule follow-up events) and the
    /// event being delivered.
    pub fn run_until<F>(&mut self, horizon: SimTime, mut handler: F) -> StopReason
    where
        F: FnMut(&mut EventQueue<E>, ScheduledEvent<E>) -> Flow,
    {
        let start_delivered = self.queue.delivered();
        loop {
            if let Some(budget) = self.max_events {
                if self.queue.delivered() - start_delivered >= budget {
                    return StopReason::EventBudgetExhausted;
                }
            }
            match self.queue.peek_time() {
                None => return StopReason::QueueEmpty,
                Some(t) if t > horizon => return StopReason::HorizonReached,
                Some(_) => {}
            }
            let event = self.queue.pop().expect("peeked event must pop");
            if handler(&mut self.queue, event) == Flow::Stop {
                return StopReason::RequestedByHandler;
            }
        }
    }

    /// Runs until the queue is empty (or budget exhausted / stop requested).
    pub fn run_to_completion<F>(&mut self, handler: F) -> StopReason
    where
        F: FnMut(&mut EventQueue<E>, ScheduledEvent<E>) -> Flow,
    {
        self.run_until(SimTime::from_micros(u64::MAX), handler)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Tick(u32),
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut s = Scheduler::new();
        for i in 0..10 {
            s.schedule(SimTime::from_secs(i), Ev::Tick(i as u32));
        }
        let mut seen = 0;
        let reason = s.run_until(SimTime::from_secs(4), |_, _| {
            seen += 1;
            Flow::Continue
        });
        assert_eq!(reason, StopReason::HorizonReached);
        assert_eq!(seen, 5); // t = 0..=4
        assert_eq!(s.now(), SimTime::from_secs(4));
    }

    #[test]
    fn run_to_completion_drains_queue() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_secs(1), Ev::Tick(1));
        let reason = s.run_to_completion(|queue, ev| {
            let Ev::Tick(n) = ev.payload;
            if n < 5 {
                queue.schedule_after(SimDuration::from_secs(1), Ev::Tick(n + 1));
            }
            Flow::Continue
        });
        assert_eq!(reason, StopReason::QueueEmpty);
        assert_eq!(s.now(), SimTime::from_secs(5));
        assert_eq!(s.queue().delivered(), 5);
    }

    #[test]
    fn event_budget_limits_self_rescheduling() {
        let mut s = Scheduler::new().with_event_budget(100);
        s.schedule(SimTime::ZERO, Ev::Tick(0));
        let reason = s.run_to_completion(|queue, _| {
            queue.schedule_after(SimDuration::from_millis(1), Ev::Tick(0));
            Flow::Continue
        });
        assert_eq!(reason, StopReason::EventBudgetExhausted);
        assert_eq!(s.queue().delivered(), 100);
    }

    #[test]
    fn handler_can_stop_the_loop() {
        let mut s = Scheduler::new();
        for i in 0..10 {
            s.schedule(SimTime::from_secs(i), Ev::Tick(i as u32));
        }
        let reason = s.run_to_completion(|_, ev| match ev.payload {
            Ev::Tick(3) => Flow::Stop,
            _ => Flow::Continue,
        });
        assert_eq!(reason, StopReason::RequestedByHandler);
        assert_eq!(s.now(), SimTime::from_secs(3));
    }

    #[test]
    fn empty_scheduler_reports_queue_empty() {
        let mut s: Scheduler<Ev> = Scheduler::new();
        assert_eq!(
            s.run_until(SimTime::from_secs(1), |_, _| Flow::Continue),
            StopReason::QueueEmpty
        );
    }
}
