//! Deterministic pseudo-random number generation for the simulation.
//!
//! All stochastic effects in the testbed substitution (sensor noise, Wi-Fi
//! scan jitter, packet loss, load variability) draw from a [`SimRng`] seeded
//! from the scenario configuration, so every experiment is exactly
//! reproducible run-to-run. The generator is a `SplitMix64`-seeded
//! `xoshiro256**`, implemented locally so that the statistical stream does not
//! change when the `rand` crate is upgraded; the `rand` traits are still
//! implemented so the generator composes with `rand::distributions`.

use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Deterministic simulation random number generator (xoshiro256**).
///
/// # Examples
///
/// ```
/// use rtem_sim::rng::SimRng;
///
/// let mut a = SimRng::seed_from_u64(42);
/// let mut b = SimRng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimRng {
    state: [u64; 4],
}

fn splitmix64(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut s = seed;
        let state = [
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
        ];
        SimRng { state }
    }

    /// Derives an independent child stream, e.g. one per device.
    ///
    /// Children with different `stream` values produce statistically
    /// independent sequences while remaining a pure function of the parent
    /// seed, which keeps multi-entity scenarios reproducible regardless of
    /// the order entities are created in.
    pub fn derive(&self, stream: u64) -> SimRng {
        let mut s = self.state[0] ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        let state = [
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
        ];
        SimRng { state }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits of uniformity.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low > high` or either bound is not finite.
    pub fn uniform(&mut self, low: f64, high: f64) -> f64 {
        assert!(low.is_finite() && high.is_finite(), "bounds must be finite");
        assert!(low <= high, "uniform requires low <= high");
        low + (high - low) * self.next_f64()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below requires n > 0");
        // Multiply-shift rejection-free mapping is fine for simulation use.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Standard normal variate (Box–Muller).
    pub fn standard_normal(&mut self) -> f64 {
        // Avoid ln(0).
        let u1 = (self.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
    }

    /// Normal variate with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        mean + std_dev * self.standard_normal()
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Exponential variate with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        -mean * (1.0 - self.next_f64()).ln()
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        SimRng::next_u64(self)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&SimRng::next_u64(self).to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = SimRng::next_u64(self).to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be effectively independent");
    }

    #[test]
    fn derived_streams_are_deterministic_and_distinct() {
        let root = SimRng::seed_from_u64(99);
        let mut c1 = root.derive(1);
        let mut c1_again = root.derive(1);
        let mut c2 = root.derive(2);
        assert_eq!(c1.next_u64(), c1_again.next_u64());
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SimRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = rng.uniform(5.5, 6.5);
            assert!((5.5..6.5).contains(&x));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SimRng::seed_from_u64(5);
        for _ in 0..10_000 {
            assert!(rng.next_below(7) < 7);
        }
    }

    #[test]
    fn normal_sample_mean_is_close() {
        let mut rng = SimRng::seed_from_u64(6);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.normal(6.0, 0.25)).sum::<f64>() / n as f64;
        assert!((mean - 6.0).abs() < 0.01, "sample mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(8);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn exponential_is_positive_with_expected_mean() {
        let mut rng = SimRng::seed_from_u64(9);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.exponential(2.0);
            assert!(x >= 0.0);
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "sample mean {mean}");
    }

    #[test]
    fn fill_bytes_fills_every_byte() {
        let mut rng = SimRng::seed_from_u64(10);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        // Extremely unlikely that more than half the bytes stay zero.
        assert!(buf.iter().filter(|&&b| b != 0).count() > 18);
    }
}
