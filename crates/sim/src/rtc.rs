//! Real-time clock models.
//!
//! The paper's testbed time-stamps every measurement with a DS3231
//! temperature-compensated RTC and assumes devices and aggregators are
//! time-synchronized. [`RtcModel`] reproduces the relevant behaviour: a
//! configurable frequency error (ppm), aging drift, and an initial phase
//! offset, so synchronization error can be injected and its effect on the
//! metering pipeline studied.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Configuration of a real-time clock's error terms.
///
/// The defaults model a DS3231: ±2 ppm frequency error over the commercial
/// temperature range and a small aging term.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RtcConfig {
    /// Constant frequency error in parts-per-million. Positive runs fast.
    pub frequency_error_ppm: f64,
    /// Additional drift accumulated per simulated day, in ppm/day.
    pub aging_ppm_per_day: f64,
    /// Fixed offset of the local clock at the simulation epoch.
    pub initial_offset: SimDuration,
    /// Sign of the initial offset (`true` = local clock ahead of sim time).
    pub initial_offset_ahead: bool,
}

impl Default for RtcConfig {
    fn default() -> Self {
        // DS3231 datasheet: ±2 ppm from 0°C to +40°C, aging < 1 ppm/year.
        RtcConfig {
            frequency_error_ppm: 2.0,
            aging_ppm_per_day: 1.0 / 365.0,
            initial_offset: SimDuration::ZERO,
            initial_offset_ahead: true,
        }
    }
}

impl RtcConfig {
    /// An ideal clock with no error terms, useful for unit tests.
    pub fn ideal() -> Self {
        RtcConfig {
            frequency_error_ppm: 0.0,
            aging_ppm_per_day: 0.0,
            initial_offset: SimDuration::ZERO,
            initial_offset_ahead: true,
        }
    }
}

/// A device-local real-time clock derived from the global simulation time.
///
/// # Examples
///
/// ```
/// use rtem_sim::rtc::{RtcConfig, RtcModel};
/// use rtem_sim::time::SimTime;
///
/// let rtc = RtcModel::new(RtcConfig::ideal());
/// let now = SimTime::from_secs(60);
/// assert_eq!(rtc.local_time(now), now);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RtcModel {
    config: RtcConfig,
    /// Correction applied by the last synchronization, in microseconds
    /// (positive = local clock reads ahead and must be pulled back).
    sync_correction_us: f64,
    last_sync: SimTime,
}

impl RtcModel {
    /// Creates a clock with the given error configuration.
    pub fn new(config: RtcConfig) -> Self {
        RtcModel {
            config,
            sync_correction_us: 0.0,
            last_sync: SimTime::ZERO,
        }
    }

    /// The configuration this clock was built with.
    pub fn config(&self) -> &RtcConfig {
        &self.config
    }

    /// Raw clock error (local minus true) in microseconds at `now`,
    /// before any synchronization correction.
    fn raw_error_us(&self, now: SimTime) -> f64 {
        let elapsed_s = now.as_secs_f64();
        let elapsed_days = elapsed_s / 86_400.0;
        // Aging accumulates linearly, so the induced phase error is the
        // integral of a linearly growing frequency error: 0.5 * a * t^2.
        let freq_ppm =
            self.config.frequency_error_ppm + 0.5 * self.config.aging_ppm_per_day * elapsed_days;
        let drift_us = freq_ppm * elapsed_s; // ppm * seconds == microseconds
        let offset_us = self.config.initial_offset.as_micros() as f64
            * if self.config.initial_offset_ahead {
                1.0
            } else {
                -1.0
            };
        offset_us + drift_us
    }

    /// Error of the local clock relative to true simulation time, in
    /// microseconds (positive = local clock ahead), after corrections.
    pub fn error_us(&self, now: SimTime) -> f64 {
        self.raw_error_us(now) - self.sync_correction_us
    }

    /// The device-local reading of the clock at true time `now`.
    pub fn local_time(&self, now: SimTime) -> SimTime {
        let err = self.error_us(now);
        let local = now.as_micros() as f64 + err;
        SimTime::from_micros(local.max(0.0).round() as u64)
    }

    /// Synchronizes the local clock to true time (e.g. when the aggregator
    /// distributes its time base during registration). After this call the
    /// instantaneous error at `now` is zero; drift resumes afterwards.
    pub fn synchronize(&mut self, now: SimTime) {
        self.sync_correction_us = self.raw_error_us(now);
        self.last_sync = now;
    }

    /// Time of the last synchronization.
    pub fn last_sync(&self) -> SimTime {
        self.last_sync
    }
}

impl Default for RtcModel {
    fn default() -> Self {
        RtcModel::new(RtcConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_clock_tracks_sim_time() {
        let rtc = RtcModel::new(RtcConfig::ideal());
        for secs in [0u64, 1, 60, 3600, 86_400] {
            let t = SimTime::from_secs(secs);
            assert_eq!(rtc.local_time(t), t);
        }
    }

    #[test]
    fn positive_ppm_runs_fast() {
        let rtc = RtcModel::new(RtcConfig {
            frequency_error_ppm: 2.0,
            aging_ppm_per_day: 0.0,
            initial_offset: SimDuration::ZERO,
            initial_offset_ahead: true,
        });
        let one_hour = SimTime::from_secs(3600);
        // 2 ppm over an hour is 7.2 ms.
        let err = rtc.error_us(one_hour);
        assert!((err - 7200.0).abs() < 1.0, "error {err} us");
        assert!(rtc.local_time(one_hour) > one_hour);
    }

    #[test]
    fn initial_offset_behind_reads_early() {
        let rtc = RtcModel::new(RtcConfig {
            frequency_error_ppm: 0.0,
            aging_ppm_per_day: 0.0,
            initial_offset: SimDuration::from_millis(5),
            initial_offset_ahead: false,
        });
        let t = SimTime::from_secs(10);
        assert_eq!(
            t.duration_since(rtc.local_time(t)),
            SimDuration::from_millis(5)
        );
    }

    #[test]
    fn synchronize_zeroes_instantaneous_error() {
        let mut rtc = RtcModel::new(RtcConfig {
            frequency_error_ppm: 20.0,
            aging_ppm_per_day: 0.0,
            initial_offset: SimDuration::from_millis(3),
            initial_offset_ahead: true,
        });
        let t = SimTime::from_secs(1000);
        assert!(rtc.error_us(t).abs() > 1000.0);
        rtc.synchronize(t);
        assert!(rtc.error_us(t).abs() < 1e-6);
        assert_eq!(rtc.last_sync(), t);
        // Drift resumes after synchronization.
        let later = SimTime::from_secs(2000);
        assert!(rtc.error_us(later) > 1000.0);
    }

    #[test]
    fn aging_accumulates_quadratically() {
        let rtc = RtcModel::new(RtcConfig {
            frequency_error_ppm: 0.0,
            aging_ppm_per_day: 1.0,
            initial_offset: SimDuration::ZERO,
            initial_offset_ahead: true,
        });
        let e1 = rtc.error_us(SimTime::from_secs(86_400));
        let e2 = rtc.error_us(SimTime::from_secs(2 * 86_400));
        assert!(e2 > 3.5 * e1, "aging error should grow super-linearly");
    }

    #[test]
    fn local_time_never_negative() {
        let rtc = RtcModel::new(RtcConfig {
            frequency_error_ppm: 0.0,
            aging_ppm_per_day: 0.0,
            initial_offset: SimDuration::from_secs(10),
            initial_offset_ahead: false,
        });
        // True time earlier than the offset: clamped to zero instead of
        // underflowing.
        assert_eq!(rtc.local_time(SimTime::from_secs(1)), SimTime::ZERO);
    }
}
