//! Seeded random campaign generation — valid by construction.
//!
//! [`CampaignGenerator`] samples every scenario axis (topology, workload,
//! meter mix, tariff, all seven fault families, fleet commands, mobility
//! hops) from a [`SimRng`] stream, while honouring every `ScenarioSpec`,
//! `FaultPlan` and `ControlPlan` validation rule *structurally*: event times
//! stay inside the horizon, clears stay strictly after injections, link
//! bursts and outages are laid out on a shared disruption lane so no two
//! same-medium bursts ever overlap, byzantine voter counts are never zero,
//! corruption intensities are never ineffective, failover targets never
//! equal the dark network, and device/network references always exist. The
//! property suite proves the claim over hundreds of seeds.

use rtem::prelude::*;

use crate::spec::{
    CampaignControl, CampaignFault, CampaignHop, CampaignSpec, CommandTargetSpec,
    CorruptionModeSpec, MeterMix, TariffPreset, WorkloadPreset,
};

/// The earliest fault injection time, seconds — after the fleet has settled
/// its first verification windows.
const FAULT_EARLIEST_S: u64 = 12;

/// Deterministic campaign sampler; equal seeds yield byte-identical streams.
#[derive(Debug, Clone)]
pub struct CampaignGenerator {
    rng: SimRng,
    horizon_min_s: u64,
    horizon_max_s: u64,
}

impl CampaignGenerator {
    /// Creates a generator with the default 50–110 s horizon range.
    pub fn new(seed: u64) -> CampaignGenerator {
        CampaignGenerator {
            rng: SimRng::seed_from_u64(seed),
            horizon_min_s: 50,
            horizon_max_s: 110,
        }
    }

    /// Restricts sampled horizons to `min_s..=max_s` (both at least 45 s so
    /// every event window still fits).
    pub fn with_horizon_range(mut self, min_s: u64, max_s: u64) -> CampaignGenerator {
        assert!(min_s >= 45, "horizons below 45 s cannot fit fault windows");
        assert!(max_s >= min_s, "empty horizon range");
        self.horizon_min_s = min_s;
        self.horizon_max_s = max_s;
        self
    }

    /// Samples the next campaign of the stream.
    pub fn next_campaign(&mut self) -> CampaignSpec {
        let networks = 1 + self.rng.next_below(3) as u32;
        let devices = 1 + self.rng.next_below(5) as u32;
        let horizon = self.horizon_min_s
            + self
                .rng
                .next_below(self.horizon_max_s - self.horizon_min_s + 1);
        let workload = WorkloadPreset::ALL[self.rng.next_below(6) as usize];
        let meters = MeterMix::ALL[self.rng.next_below(3) as usize];
        let tariff = TariffPreset::ALL[self.rng.next_below(3) as usize];
        let seed = self.rng.next_below(1_000_000);

        let mut spec = CampaignSpec {
            seed,
            networks,
            devices_per_network: devices,
            horizon_s: horizon,
            workload,
            meters,
            tariff,
            faults: Vec::new(),
            controls: Vec::new(),
            mobility: Vec::new(),
        };

        // Faults. Outage draws go first so every later scoped fault can
        // avoid networks that will go dark ("dark" nets); a shared lane
        // cursor sequences all disruptions (link bursts, outages) so no two
        // bursts of one medium — and no burst and outage — ever overlap.
        let fault_count = self.rng.next_below(6) as usize;
        let mut codes: Vec<u64> = (0..fault_count).map(|_| self.rng.next_below(9)).collect();
        codes.sort_by_key(|code| u64::from(*code != 6));
        let mut lane_cursor = FAULT_EARLIEST_S;
        let mut dark: Vec<u32> = Vec::new();
        for code in codes {
            if let Some(fault) = self.draw_fault(
                code,
                networks,
                devices,
                horizon,
                &mut lane_cursor,
                &mut dark,
            ) {
                spec.faults.push(fault);
            }
        }

        // Fleet commands.
        let control_count = self.rng.next_below(4) as usize;
        for _ in 0..control_count {
            self.draw_control(networks, devices, horizon, &mut spec.controls);
        }

        // Mobility hops, only with somewhere to hop to; never the same
        // device twice (a second unplug of an unplugged device is invalid
        // at runtime), never into a network that goes dark.
        if networks >= 2 {
            let hop_count = self.rng.next_below(3) as usize;
            for _ in 0..hop_count {
                let unplug = 10 + self.rng.next_below(horizon - 35);
                let replug = unplug + 5 + self.rng.next_below(10);
                let net = self.rng.next_below(networks as u64) as u32;
                let ord = self.rng.next_below(devices as u64) as u32;
                let dest = Self::other_net(&mut self.rng, networks, net);
                let duplicate = spec
                    .mobility
                    .iter()
                    .any(|hop| hop.net == net && hop.ord == ord);
                if duplicate || dark.contains(&dest) {
                    continue;
                }
                spec.mobility.push(CampaignHop {
                    unplug_s: unplug,
                    replug_s: replug,
                    net,
                    ord,
                    dest,
                });
            }
        }

        spec
    }

    /// A network index different from `not` (requires `networks >= 2`).
    fn other_net(rng: &mut SimRng, networks: u32, not: u32) -> u32 {
        (not + 1 + rng.next_below(networks as u64 - 1) as u32) % networks
    }

    /// A network avoiding the dark list, `None` when every net goes dark.
    fn lit_net(rng: &mut SimRng, networks: u32, dark: &[u32]) -> Option<u32> {
        let lit: Vec<u32> = (0..networks).filter(|n| !dark.contains(n)).collect();
        if lit.is_empty() {
            None
        } else {
            Some(lit[rng.next_below(lit.len() as u64) as usize])
        }
    }

    /// An injection time leaving at least 31 s of horizon after it.
    fn event_at(rng: &mut SimRng, horizon: u64) -> u64 {
        FAULT_EARLIEST_S + rng.next_below(horizon - 42)
    }

    /// The next disjoint slot on the shared disruption lane, `None` when the
    /// lane is exhausted for this horizon.
    fn lane_slot(rng: &mut SimRng, horizon: u64, cursor: &mut u64) -> Option<(u64, u64)> {
        let duration = 20 + rng.next_below(11);
        let at = *cursor + 2;
        let until = at + duration;
        if until > horizon.saturating_sub(12) {
            return None;
        }
        *cursor = until;
        Some((at, until))
    }

    fn draw_fault(
        &mut self,
        code: u64,
        networks: u32,
        devices: u32,
        horizon: u64,
        lane_cursor: &mut u64,
        dark: &mut Vec<u32>,
    ) -> Option<CampaignFault> {
        let rng = &mut self.rng;
        match code {
            0 => Some(CampaignFault::SensorStuck {
                at_s: Self::event_at(rng, horizon),
                net: rng.next_below(networks as u64) as u32,
                ord: rng.next_below(devices as u64) as u32,
                level_ma: rng.next_below(200) as u32,
            }),
            1 => {
                let at = Self::event_at(rng, horizon);
                Some(CampaignFault::SensorDrift {
                    at_s: at,
                    until_s: at + 10 + rng.next_below(16),
                    net: rng.next_below(networks as u64) as u32,
                    ord: rng.next_below(devices as u64) as u32,
                    rate_ma_per_s: rng.next_below(41) as i32 - 20,
                })
            }
            2 => Some(CampaignFault::Tamper {
                at_s: Self::event_at(rng, horizon),
                net: Self::lit_net(rng, networks, dark)?,
            }),
            3 => {
                let (at, until) = Self::lane_slot(rng, horizon, lane_cursor)?;
                let scoped = rng.chance(0.7);
                let net = if scoped {
                    Self::lit_net(rng, networks, dark)
                } else {
                    None
                };
                Some(CampaignFault::WifiBurst {
                    at_s: at,
                    until_s: until,
                    net,
                    loss_permille: [100, 300, 500, 700][rng.next_below(4) as usize],
                })
            }
            4 => {
                let (at, until) = Self::lane_slot(rng, horizon, lane_cursor)?;
                Some(CampaignFault::BackhaulBurst {
                    at_s: at,
                    until_s: until,
                    loss_permille: [100, 300, 500, 700][rng.next_below(4) as usize],
                })
            }
            5 => {
                let at = Self::event_at(rng, horizon);
                Some(CampaignFault::Crash {
                    at_s: at,
                    restart_s: at + 5 + rng.next_below(16),
                    net: rng.next_below(networks as u64) as u32,
                    ord: rng.next_below(devices as u64) as u32,
                })
            }
            6 => {
                let (at, until) = Self::lane_slot(rng, horizon, lane_cursor)?;
                let net = rng.next_below(networks as u64) as u32;
                let failover =
                    (networks >= 2 && rng.chance(0.5)).then(|| Self::other_net(rng, networks, net));
                if !dark.contains(&net) {
                    dark.push(net);
                }
                Some(CampaignFault::Outage {
                    at_s: at,
                    until_s: until,
                    net,
                    failover,
                })
            }
            7 => {
                let at = Self::event_at(rng, horizon);
                Some(CampaignFault::Byzantine {
                    at_s: at,
                    until_s: at + 15 + rng.next_below(16),
                    net: Self::lit_net(rng, networks, dark)?,
                    voters: 1 + rng.next_below(devices as u64) as u32,
                })
            }
            8 => {
                let at = Self::event_at(rng, horizon);
                Some(CampaignFault::Corruption {
                    at_s: at,
                    until_s: at + 15 + rng.next_below(16),
                    net: rng.next_below(networks as u64) as u32,
                    ord: rng.next_below(devices as u64) as u32,
                    mode: match rng.next_below(3) {
                        0 => CorruptionModeSpec::BitFlip(1 + rng.next_below(4) as u8),
                        1 => CorruptionModeSpec::Truncate,
                        _ => CorruptionModeSpec::MangleField,
                    },
                    per_mille: [200, 500, 800][rng.next_below(3) as usize],
                })
            }
            _ => unreachable!("fault code range is 0..9"),
        }
    }

    fn draw_control(
        &mut self,
        networks: u32,
        devices: u32,
        horizon: u64,
        controls: &mut Vec<CampaignControl>,
    ) {
        let rng = &mut self.rng;
        let at = 10 + rng.next_below(horizon - 20);
        let target = match rng.next_below(4) {
            0 => CommandTargetSpec::All,
            1 => CommandTargetSpec::Site {
                net: rng.next_below(networks as u64) as u32,
            },
            2 => CommandTargetSpec::Device {
                net: rng.next_below(networks as u64) as u32,
                ord: rng.next_below(devices as u64) as u32,
            },
            _ => CommandTargetSpec::Cohort {
                percent: 1 + rng.next_below(100) as u8,
            },
        };
        match rng.next_below(3) {
            0 => controls.push(CampaignControl::MeasureInterval {
                at_s: at,
                target,
                interval_ms: [100, 200, 250, 500, 1000][rng.next_below(5) as usize],
            }),
            1 => {
                // Stop/start always travel as a pair so reporting pauses
                // stay bounded and the accuracy windows settle again.
                let resume = (at + 5 + rng.next_below(10)).min(horizon.saturating_sub(5));
                if resume > at {
                    controls.push(CampaignControl::StopReporting { at_s: at, target });
                    controls.push(CampaignControl::StartReporting {
                        at_s: resume,
                        target,
                    });
                }
            }
            _ => controls.push(CampaignControl::MeasureInterval {
                at_s: at,
                target: CommandTargetSpec::Cohort {
                    percent: 1 + rng.next_below(100) as u8,
                },
                interval_ms: [100, 200, 250, 500, 1000][rng.next_below(5) as usize],
            }),
        }
    }
}

impl Iterator for CampaignGenerator {
    type Item = CampaignSpec;

    fn next(&mut self) -> Option<CampaignSpec> {
        Some(self.next_campaign())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_sample_identical_campaigns() {
        let a: Vec<CampaignSpec> = CampaignGenerator::new(9).take(24).collect();
        let b: Vec<CampaignSpec> = CampaignGenerator::new(9).take(24).collect();
        assert_eq!(a, b);
        let c: Vec<CampaignSpec> = CampaignGenerator::new(10).take(24).collect();
        assert_ne!(a, c, "different seeds must diverge");
    }

    #[test]
    fn sampled_campaigns_validate_by_construction() {
        let mut generator = CampaignGenerator::new(1);
        for _ in 0..64 {
            let campaign = generator.next_campaign();
            assert_eq!(campaign.validate(), Ok(()), "campaign {}", campaign.label());
        }
    }

    #[test]
    fn horizon_range_is_honoured() {
        let mut generator = CampaignGenerator::new(3).with_horizon_range(45, 60);
        for _ in 0..32 {
            let campaign = generator.next_campaign();
            assert!((45..=60).contains(&campaign.horizon_s));
        }
    }
}
