//! Running and scoring a campaign into a [`CampaignVerdict`].
//!
//! [`run_campaign`] lowers the campaign, runs it through the facade
//! [`Experiment`] (which already runs the auto clean twin for the accuracy
//! delta), and scores the report: per-family detection counts, detection of
//! every *expected-detectable* fault, billing-reconciliation invariants,
//! audit-finding attribution, and a SHA-256 determinism digest over the
//! canonical report render.
//!
//! Expected detectability is computed conservatively by
//! [`expected_detected`]: a fault index lands on the list only when the
//! detection machinery provably has the evidence — e.g. a tamper with
//! enough seals left before the horizon, a strong long Wi-Fi loss burst
//! with at least two reporting devices and no interfering outage, or a
//! byzantine quorum with an honest peer network to cross-check the forged
//! records. A campaign whose expected faults all land detected, whose bills
//! reconcile and whose audit findings are all attributed **passes**;
//! anything else fails with a reason list, which is exactly what the
//! shrinker minimizes.

use rtem::chain::sha256::Sha256;
use rtem::prelude::*;

use crate::spec::{CampaignControl, CampaignFault, CampaignSpec, MeterMix};

/// Per-family detection score of one campaign run.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyScore {
    /// Fault family label (`Debug` name of [`FaultFamily`]).
    pub family: String,
    /// Faults of the family that took effect.
    pub injected: usize,
    /// Of those, how many were recognized.
    pub detected: usize,
    /// Of those, how many were missed.
    pub undetected: usize,
    /// Mean injection-to-detection latency over the detected ones, seconds.
    pub mean_detection_latency_s: Option<f64>,
}

/// The scored outcome of one campaign run.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignVerdict {
    /// The campaign's compact label.
    pub label: String,
    /// SHA-256 over the canonical report render — equal seeds and specs
    /// must reproduce it byte-identically.
    pub digest: String,
    /// Per-family detection scores (empty for fault-free campaigns).
    pub families: Vec<FamilyScore>,
    /// Fault indices that were expected detectable.
    pub expected: Vec<usize>,
    /// Of those, the indices that went undetected.
    pub missed: Vec<usize>,
    /// Accuracy-under-fault delta vs. the clean twin, percentage points.
    pub accuracy_delta_percent: Option<f64>,
    /// Whether every bill's cost decomposition reconciled.
    pub billing_ok: bool,
    /// Chain-audit findings not explained by a scheduled tamper.
    pub unattributed_findings: usize,
    /// Human-readable failure reasons; empty means the campaign passed.
    pub failures: Vec<String>,
}

impl CampaignVerdict {
    /// Whether the campaign met every expectation.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// The score of one family, if the campaign injected it.
    pub fn family(&self, family: FaultFamily) -> Option<&FamilyScore> {
        let name = format!("{family:?}");
        self.families.iter().find(|f| f.family == name)
    }
}

/// Whether any outage overlaps `[from_s, to_s]`; `net: None` matches
/// outages on every network.
fn outage_overlaps(spec: &CampaignSpec, net: Option<u32>, from_s: u64, to_s: u64) -> bool {
    spec.faults.iter().any(|fault| match *fault {
        CampaignFault::Outage {
            at_s,
            until_s,
            net: outage_net,
            ..
        } => net.map_or(true, |n| n == outage_net) && at_s <= to_s && until_s >= from_s,
        _ => false,
    })
}

/// Whether any crash overlaps `[from_s, to_s]`; optionally filtered to one
/// device.
fn crash_overlaps(spec: &CampaignSpec, device: Option<(u32, u32)>, from_s: u64, to_s: u64) -> bool {
    spec.faults.iter().any(|fault| match *fault {
        CampaignFault::Crash {
            at_s,
            restart_s,
            net,
            ord,
        } => device.map_or(true, |d| d == (net, ord)) && at_s <= to_s && restart_s >= from_s,
        _ => false,
    })
}

/// Whether any stop-reporting command fires at or before `before_s`.
fn reporting_stops_before(spec: &CampaignSpec, before_s: u64) -> bool {
    spec.controls
        .iter()
        .any(|c| matches!(c, CampaignControl::StopReporting { .. }) && c.at_s() <= before_s)
}

/// Whether any mobility hop overlaps `[from_s, to_s]`.
fn hops_overlap(spec: &CampaignSpec, from_s: u64, to_s: u64) -> bool {
    spec.mobility
        .iter()
        .any(|hop| hop.unplug_s <= to_s && hop.replug_s >= from_s)
}

/// The quorum size of a `validators`-strong consensus round.
fn quorum(validators: u32) -> u32 {
    validators / 2 + 1
}

/// Fault indices the campaign is *expected* to detect — the conservative
/// structural predicate behind the pass/fail verdict (see module docs).
pub fn expected_detected(spec: &CampaignSpec) -> Vec<usize> {
    let horizon = spec.horizon_s;
    let devices = spec.devices_per_network;
    spec.faults
        .iter()
        .enumerate()
        .filter(|(_, fault)| match **fault {
            // A tamper needs two more seals (apply + audit) before the
            // horizon, and its site must stay up through both.
            CampaignFault::Tamper { at_s, net } => {
                at_s + 25 <= horizon && !outage_overlaps(spec, Some(net), at_s, at_s + 25)
            }
            // A Wi-Fi loss burst is only *expected* caught when it is
            // strong and long, at least two devices feed the watched
            // links, and nothing else (outage, crash, reporting pause,
            // mobility) starves the delivery accounting.
            CampaignFault::WifiBurst {
                at_s,
                until_s,
                net,
                loss_permille,
            } => {
                let covered = match net {
                    Some(_) => devices,
                    None => spec.networks * devices,
                };
                loss_permille >= 400
                    && until_s - at_s >= 20
                    && covered >= 2
                    && !outage_overlaps(spec, None, at_s, until_s + 20)
                    && !crash_overlaps(spec, None, at_s, until_s)
                    && !reporting_stops_before(spec, until_s)
                    && !hops_overlap(spec, at_s.saturating_sub(10), until_s)
            }
            // Backhaul bursts carry far sparser traffic; detection there
            // is a bonus, never an expectation.
            CampaignFault::BackhaulBurst { .. } => false,
            // A byzantine window is expected detected when rounds actually
            // run (>= 2 validators, a seal inside the window, no outage or
            // crash interference, no validator hopping away) and either a
            // minority gets rejected by the honest majority or a colluding
            // quorum gets cross-checked by an honest peer network.
            CampaignFault::Byzantine {
                at_s,
                until_s,
                net,
                voters,
            } => {
                devices >= 2
                    && until_s - at_s >= 10
                    && (spec.networks >= 2 || voters < quorum(devices))
                    && !outage_overlaps(spec, None, at_s, until_s)
                    && !crash_overlaps(spec, None, at_s, until_s)
                    && !spec
                        .mobility
                        .iter()
                        .any(|hop| hop.net == net && hop.unplug_s < until_s)
            }
            // Telegram corruption is expected caught when the whole fleet
            // speaks checksummed protocols, the intensity and window leave
            // no room for luck, and the victim keeps transmitting.
            CampaignFault::Corruption {
                at_s,
                until_s,
                net,
                ord,
                per_mille,
                ..
            } => {
                spec.meters == MeterMix::Real
                    && per_mille >= 500
                    && until_s - at_s >= 20
                    && !outage_overlaps(spec, Some(net), at_s, until_s)
                    && !crash_overlaps(spec, Some((net, ord)), at_s, until_s)
                    && !reporting_stops_before(spec, until_s)
                    && !spec
                        .mobility
                        .iter()
                        .any(|hop| (hop.net, hop.ord) == (net, ord) && hop.unplug_s < until_s)
            }
            // Sensor faults, crashes and outages may legitimately be
            // absorbed (tolerances, retries, failover) — scored, never
            // gated.
            CampaignFault::SensorStuck { .. }
            | CampaignFault::SensorDrift { .. }
            | CampaignFault::Crash { .. }
            | CampaignFault::Outage { .. } => false,
        })
        .map(|(index, _)| index)
        .collect()
}

/// The canonical report render the determinism digest hashes.
fn render(report: &RunReport) -> String {
    format!(
        "accuracy {:#?}\nhandshakes {:#?}\nledgers {:#?}\nbills {:#?}\nresilience {:#?}\n",
        report.accuracy, report.handshakes, report.ledgers, report.bills, report.resilience,
    )
}

/// Scores an already-run report against its campaign.
pub fn score(spec: &CampaignSpec, report: &RunReport) -> CampaignVerdict {
    let mut failures = Vec::new();

    // Billing reconciliation: the cost decomposition must partition the
    // bill, and roaming can never exceed its envelope.
    let mut billing_ok = true;
    for bill in &report.bills {
        let breakdown_gap = (bill.cost - bill.breakdown.total()).abs();
        if breakdown_gap > 1e-6 * bill.cost.abs().max(1.0) {
            billing_ok = false;
            failures.push(format!(
                "bill for {:?} does not reconcile: cost {} vs breakdown {}",
                bill.device,
                bill.cost,
                bill.breakdown.total()
            ));
        }
        if bill.breakdown.roaming > bill.breakdown.energy + 1e-9
            || bill.roaming_charge_uas > bill.charge_uas
        {
            billing_ok = false;
            failures.push(format!(
                "bill for {:?} books more roaming than total consumption",
                bill.device
            ));
        }
    }

    let resilience = report.resilience.as_ref();
    let families: Vec<FamilyScore> = resilience
        .map(|r| {
            r.families
                .iter()
                .map(|f| FamilyScore {
                    family: format!("{:?}", f.family),
                    injected: f.injected,
                    detected: f.detected,
                    undetected: f.undetected,
                    mean_detection_latency_s: f.mean_detection_latency_s,
                })
                .collect()
        })
        .unwrap_or_default();

    let expected = expected_detected(spec);
    let mut missed = Vec::new();
    match resilience {
        Some(r) => {
            for &index in &expected {
                let detected = r.faults.get(index).is_some_and(|record| record.detected());
                if !detected {
                    missed.push(index);
                    failures.push(format!(
                        "fault #{index} ({:?}) was expected detected but was missed",
                        spec.faults[index].family()
                    ));
                }
            }
        }
        None => {
            if !expected.is_empty() {
                failures.push("faulted campaign produced no resilience report".into());
            }
        }
    }

    let unattributed = resilience.map_or(0, |r| r.audit_findings_unattributed());
    if unattributed > 0 {
        failures.push(format!(
            "{unattributed} chain-audit findings are not explained by any injected tamper"
        ));
    }
    if resilience.is_none() && !report.all_ledgers_clean() {
        failures.push("clean campaign corrupted a ledger".into());
    }

    CampaignVerdict {
        label: spec.label(),
        digest: Sha256::digest(render(report).as_bytes()).to_hex(),
        families,
        expected,
        missed,
        accuracy_delta_percent: resilience.and_then(|r| r.accuracy_delta_percent()),
        billing_ok,
        unattributed_findings: unattributed,
        failures,
    }
}

/// Lowers, validates, runs (with its auto clean twin) and scores a campaign.
pub fn run_campaign(spec: &CampaignSpec) -> Result<CampaignVerdict, String> {
    let scenario = spec.to_scenario();
    scenario
        .validate()
        .map_err(|e| format!("invalid campaign {}: {e}", spec.label()))?;
    let report = Experiment::new(scenario)
        .run()
        .map_err(|e| format!("campaign {} failed to run: {e}", spec.label()))?;
    Ok(score(spec, &report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{TariffPreset, WorkloadPreset};

    fn base(networks: u32, devices: u32) -> CampaignSpec {
        CampaignSpec {
            seed: 5,
            networks,
            devices_per_network: devices,
            horizon_s: 60,
            workload: WorkloadPreset::Default,
            meters: MeterMix::Internal,
            tariff: TariffPreset::Default,
            faults: Vec::new(),
            controls: Vec::new(),
            mobility: Vec::new(),
        }
    }

    #[test]
    fn tamper_and_quorum_are_expected_only_with_the_evidence() {
        let mut spec = base(2, 2);
        spec.faults.push(CampaignFault::Tamper { at_s: 20, net: 0 });
        spec.faults.push(CampaignFault::Byzantine {
            at_s: 20,
            until_s: 45,
            net: 0,
            voters: 2,
        });
        assert_eq!(expected_detected(&spec), vec![0, 1]);
        // A single-network world cannot cross-check a colluding quorum.
        let mut lone = base(1, 2);
        lone.faults.push(CampaignFault::Byzantine {
            at_s: 20,
            until_s: 45,
            net: 0,
            voters: 2,
        });
        assert_eq!(expected_detected(&lone), Vec::<usize>::new());
        // ... but an honest majority still rejects a minority.
        let mut minority = base(1, 3);
        minority.faults.push(CampaignFault::Byzantine {
            at_s: 20,
            until_s: 45,
            net: 0,
            voters: 1,
        });
        assert_eq!(expected_detected(&minority), vec![0]);
    }

    #[test]
    fn interference_cancels_link_expectations() {
        let mut spec = base(2, 2);
        spec.faults.push(CampaignFault::WifiBurst {
            at_s: 14,
            until_s: 36,
            net: Some(0),
            loss_permille: 700,
        });
        assert_eq!(expected_detected(&spec), vec![0]);
        spec.faults.push(CampaignFault::Outage {
            at_s: 38,
            until_s: 48,
            net: 1,
            failover: None,
        });
        assert_eq!(
            expected_detected(&spec),
            Vec::<usize>::new(),
            "an outage inside the grace window voids the expectation"
        );
    }

    #[test]
    fn running_a_clean_campaign_passes_and_is_deterministic() {
        let spec = base(2, 2);
        let a = run_campaign(&spec).unwrap();
        let b = run_campaign(&spec).unwrap();
        assert!(a.passed(), "failures: {:?}", a.failures);
        assert_eq!(a.digest, b.digest);
        assert!(a.families.is_empty());
    }
}
