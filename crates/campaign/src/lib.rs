//! Randomized scenario campaigns for the rtem testbed: generate, run,
//! score, shrink.
//!
//! The resilience suite and benches pin *hand-picked* fault scenarios; this
//! crate closes the gap between those and the space of scenarios the
//! simulator actually accepts. A [`CampaignGenerator`] samples random but
//! valid-by-construction campaigns across every axis — topology, workload,
//! meter-protocol mix, tariff, all seven fault families (overlapping where
//! validation allows), fleet commands and mobility hops. Each campaign runs
//! with its auto clean twin and is scored into a [`CampaignVerdict`]:
//! per-family detection counts and latencies, the accuracy delta,
//! billing-reconciliation invariants, audit-finding attribution and a
//! SHA-256 determinism digest. A failing campaign is handed to [`shrink()`],
//! which delta-debugs it down to a minimal still-failing reproducer whose
//! exact text serialization ([`CampaignSpec::serialize`]) is committed as a
//! replayable regression fixture.
//!
//! ```
//! use rtem_campaign::{CampaignGenerator, CampaignSpec};
//!
//! let mut generator = CampaignGenerator::new(7);
//! let campaign = generator.next_campaign();
//! // Valid by construction, and the fixture format round-trips exactly.
//! assert!(campaign.to_scenario().validate().is_ok());
//! let replayed = CampaignSpec::parse(&campaign.serialize()).unwrap();
//! assert_eq!(campaign, replayed);
//! ```

#![deny(missing_docs)]

pub mod generator;
pub mod shrink;
pub mod spec;
pub mod verdict;

pub use generator::CampaignGenerator;
pub use shrink::shrink;
pub use spec::{
    CampaignControl, CampaignFault, CampaignHop, CampaignParseError, CampaignSpec,
    CommandTargetSpec, CorruptionModeSpec, MeterMix, TariffPreset, WorkloadPreset,
};
pub use verdict::{expected_detected, run_campaign, score, CampaignVerdict, FamilyScore};
