//! Delta-debugging shrinker for failing campaigns.
//!
//! Given a campaign and a failure predicate, [`shrink`] greedily applies
//! single cuts — drop one fault / control / hop, halve the fleet, halve the
//! network count, shorten the horizon — keeping a cut only when the cut
//! campaign still validates *and* still fails. Every accepted cut strictly
//! decreases [`CampaignSpec::size`], so the loop terminates at a local
//! minimum: a reproducer where no single further cut preserves the failure.
//! Serialized with [`CampaignSpec::serialize`], that minimum is exactly
//! what lands in `tests/fixtures/campaigns/` as a regression fixture.

use crate::spec::CampaignSpec;

/// The shortest horizon the shrinker will try, seconds — long enough for
/// any fault window the generator emits.
const MIN_HORIZON_S: u64 = 45;

/// Single-cut candidates of `spec`, in preference order (structural cuts
/// first). Every candidate has a strictly smaller [`CampaignSpec::size`].
fn candidates(spec: &CampaignSpec) -> Vec<CampaignSpec> {
    let mut out = Vec::new();
    for index in 0..spec.faults.len() {
        let mut cut = spec.clone();
        cut.faults.remove(index);
        out.push(cut);
    }
    for index in 0..spec.controls.len() {
        let mut cut = spec.clone();
        cut.controls.remove(index);
        out.push(cut);
    }
    for index in 0..spec.mobility.len() {
        let mut cut = spec.clone();
        cut.mobility.remove(index);
        out.push(cut);
    }
    if spec.devices_per_network > 1 {
        let mut cut = spec.clone();
        cut.devices_per_network = spec.devices_per_network / 2;
        out.push(cut);
    }
    if spec.networks > 1 {
        let mut cut = spec.clone();
        cut.networks = spec.networks / 2;
        out.push(cut);
    }
    let shorter = (spec.horizon_s * 2 / 3).max(MIN_HORIZON_S);
    if shorter < spec.horizon_s {
        let mut cut = spec.clone();
        cut.horizon_s = shorter;
        out.push(cut);
    }
    out
}

/// Shrinks a failing campaign to a minimal still-failing reproducer.
///
/// `fails` must return `true` for `spec` itself (asserted); the result is
/// the smallest campaign reachable by single cuts for which it still does.
/// Candidates that no longer pass validation (a cut fleet dropping a
/// referenced device, a shortened horizon orphaning an event) are skipped,
/// so the result always validates.
pub fn shrink<F>(spec: &CampaignSpec, fails: &mut F) -> CampaignSpec
where
    F: FnMut(&CampaignSpec) -> bool,
{
    assert!(
        fails(spec),
        "shrink needs a failing campaign to start from: {}",
        spec.label()
    );
    let mut current = spec.clone();
    'outer: loop {
        for candidate in candidates(&current) {
            debug_assert!(candidate.size() < current.size());
            if candidate.validate().is_ok() && fails(&candidate) {
                current = candidate;
                continue 'outer;
            }
        }
        return current;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{
        CampaignControl, CampaignFault, CampaignHop, CommandTargetSpec, MeterMix, TariffPreset,
        WorkloadPreset,
    };

    fn padded() -> CampaignSpec {
        CampaignSpec {
            seed: 3,
            networks: 2,
            devices_per_network: 4,
            horizon_s: 90,
            workload: WorkloadPreset::Residential,
            meters: MeterMix::Internal,
            tariff: TariffPreset::Flat,
            faults: vec![
                CampaignFault::Tamper { at_s: 20, net: 0 },
                CampaignFault::SensorStuck {
                    at_s: 25,
                    net: 1,
                    ord: 3,
                    level_ma: 5,
                },
                CampaignFault::Crash {
                    at_s: 30,
                    restart_s: 40,
                    net: 0,
                    ord: 1,
                },
            ],
            controls: vec![CampaignControl::MeasureInterval {
                at_s: 15,
                target: CommandTargetSpec::All,
                interval_ms: 200,
            }],
            mobility: vec![CampaignHop {
                unplug_s: 30,
                replug_s: 40,
                net: 0,
                ord: 2,
                dest: 1,
            }],
        }
    }

    #[test]
    fn shrink_keeps_only_what_the_predicate_needs() {
        // "Fails" whenever a tamper is present — the shrinker must strip
        // everything else and shrink the fleet and horizon to the floor.
        let spec = padded();
        let mut fails = |candidate: &CampaignSpec| {
            candidate
                .faults
                .iter()
                .any(|f| matches!(f, CampaignFault::Tamper { .. }))
        };
        let shrunk = shrink(&spec, &mut fails);
        assert!(fails(&shrunk), "still failing");
        assert!(shrunk.size() < spec.size(), "strictly smaller");
        assert_eq!(
            shrunk.faults,
            vec![CampaignFault::Tamper { at_s: 20, net: 0 }]
        );
        assert!(shrunk.controls.is_empty());
        assert!(shrunk.mobility.is_empty());
        assert_eq!(shrunk.networks, 1);
        assert_eq!(shrunk.devices_per_network, 1);
        assert_eq!(shrunk.horizon_s, MIN_HORIZON_S);
        assert_eq!(shrunk.validate(), Ok(()));
    }

    #[test]
    fn shrink_skips_cuts_that_invalidate_references() {
        // The predicate pins the sensor fault on device (1, 3): halving the
        // fleet or dropping network 1 would orphan the reference, so both
        // cuts must be skipped and the coordinates survive.
        let spec = padded();
        let mut fails = |candidate: &CampaignSpec| {
            candidate
                .faults
                .iter()
                .any(|f| matches!(f, CampaignFault::SensorStuck { net: 1, ord: 3, .. }))
        };
        let shrunk = shrink(&spec, &mut fails);
        assert_eq!(shrunk.networks, 2);
        assert_eq!(shrunk.devices_per_network, 4);
        assert_eq!(shrunk.faults.len(), 1);
        assert_eq!(shrunk.validate(), Ok(()));
    }

    #[test]
    #[should_panic(expected = "shrink needs a failing campaign")]
    fn shrink_rejects_a_passing_campaign() {
        let spec = padded();
        shrink(&spec, &mut |_| false);
    }
}
