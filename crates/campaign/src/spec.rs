//! The campaign IR: a compact scenario description that serializes exactly.
//!
//! A [`CampaignSpec`] is the generator's unit of work — topology, horizon,
//! workload/meter/tariff presets, a fault list spanning every family, fleet
//! commands and scripted mobility hops — deliberately restricted to integer
//! parameters so that [`CampaignSpec::serialize`] and [`CampaignSpec::parse`]
//! round-trip byte-identically and shrunk reproducers can be committed as
//! plain-text fixtures. [`CampaignSpec::to_scenario`] lowers the IR onto the
//! facade's [`ScenarioSpec`] builders; a generated campaign passes
//! [`ScenarioSpec::validate`] by construction (see
//! [`CampaignGenerator`](crate::CampaignGenerator)).

use std::fmt;

use rtem::net::link::LinkConfig;
use rtem::prelude::*;

/// Workload preset a campaign samples from — names, not parameters, so the
/// IR stays exactly serializable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadPreset {
    /// The spec's default constant load (no `with_workload` call).
    Default,
    /// [`WorkloadModel::residential`].
    Residential,
    /// [`WorkloadModel::commercial`].
    Commercial,
    /// [`WorkloadModel::ev_fleet`].
    EvFleet,
    /// [`WorkloadModel::solar_home`].
    SolarHome,
    /// [`WorkloadModel::neighborhood`].
    Neighborhood,
}

impl WorkloadPreset {
    /// Every preset, in sampling order.
    pub const ALL: [WorkloadPreset; 6] = [
        WorkloadPreset::Default,
        WorkloadPreset::Residential,
        WorkloadPreset::Commercial,
        WorkloadPreset::EvFleet,
        WorkloadPreset::SolarHome,
        WorkloadPreset::Neighborhood,
    ];

    /// The fixture-file token.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadPreset::Default => "default",
            WorkloadPreset::Residential => "residential",
            WorkloadPreset::Commercial => "commercial",
            WorkloadPreset::EvFleet => "ev_fleet",
            WorkloadPreset::SolarHome => "solar_home",
            WorkloadPreset::Neighborhood => "neighborhood",
        }
    }

    /// Parses a fixture-file token.
    pub fn from_name(name: &str) -> Option<WorkloadPreset> {
        WorkloadPreset::ALL.into_iter().find(|p| p.name() == name)
    }

    /// The concrete model, `None` for the spec default.
    pub fn model(self) -> Option<WorkloadModel> {
        match self {
            WorkloadPreset::Default => None,
            WorkloadPreset::Residential => Some(WorkloadModel::residential()),
            WorkloadPreset::Commercial => Some(WorkloadModel::commercial()),
            WorkloadPreset::EvFleet => Some(WorkloadModel::ev_fleet()),
            WorkloadPreset::SolarHome => Some(WorkloadModel::solar_home()),
            WorkloadPreset::Neighborhood => Some(WorkloadModel::neighborhood()),
        }
    }
}

/// How meter protocols are assigned across the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeterMix {
    /// Every device speaks the native internal encoding (spec default).
    Internal,
    /// Round-robin over the four real protocols ([`MeterKind::REAL`]).
    Real,
    /// Round-robin over all five kinds ([`MeterKind::ALL`]), internal included.
    All,
}

impl MeterMix {
    /// Every mix, in sampling order.
    pub const ALL: [MeterMix; 3] = [MeterMix::Internal, MeterMix::Real, MeterMix::All];

    /// The fixture-file token.
    pub fn name(self) -> &'static str {
        match self {
            MeterMix::Internal => "internal",
            MeterMix::Real => "real",
            MeterMix::All => "all",
        }
    }

    /// Parses a fixture-file token.
    pub fn from_name(name: &str) -> Option<MeterMix> {
        MeterMix::ALL.into_iter().find(|m| m.name() == name)
    }

    /// The kind list handed to `with_meter_kinds`, `None` for the default.
    pub fn kinds(self) -> Option<Vec<MeterKind>> {
        match self {
            MeterMix::Internal => None,
            MeterMix::Real => Some(MeterKind::REAL.to_vec()),
            MeterMix::All => Some(MeterKind::ALL.to_vec()),
        }
    }
}

/// Tariff preset a campaign samples from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TariffPreset {
    /// The spec's default tariff.
    Default,
    /// A flat volumetric price.
    Flat,
    /// The ready-made evening-peak time-of-use tariff.
    EveningPeak,
}

impl TariffPreset {
    /// Every preset, in sampling order.
    pub const ALL: [TariffPreset; 3] = [
        TariffPreset::Default,
        TariffPreset::Flat,
        TariffPreset::EveningPeak,
    ];

    /// The fixture-file token.
    pub fn name(self) -> &'static str {
        match self {
            TariffPreset::Default => "default",
            TariffPreset::Flat => "flat",
            TariffPreset::EveningPeak => "evening_peak",
        }
    }

    /// Parses a fixture-file token.
    pub fn from_name(name: &str) -> Option<TariffPreset> {
        TariffPreset::ALL.into_iter().find(|t| t.name() == name)
    }

    /// The concrete tariff, `None` for the spec default.
    pub fn tariff(self) -> Option<Tariff> {
        match self {
            TariffPreset::Default => None,
            TariffPreset::Flat => Some(Tariff::flat(120.0)),
            TariffPreset::EveningPeak => Some(Tariff::evening_peak(140.0)),
        }
    }
}

/// Telegram-corruption mode, restricted to integer parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionModeSpec {
    /// Flip `flips` random payload bits per telegram (`flips >= 1`).
    BitFlip(u8),
    /// Cut the telegram off at a random point.
    Truncate,
    /// Overwrite a random span with random bytes.
    MangleField,
}

impl CorruptionModeSpec {
    fn token(self) -> String {
        match self {
            CorruptionModeSpec::BitFlip(flips) => format!("bitflip:{flips}"),
            CorruptionModeSpec::Truncate => "truncate".into(),
            CorruptionModeSpec::MangleField => "mangle".into(),
        }
    }

    fn from_token(token: &str) -> Option<CorruptionModeSpec> {
        if let Some(flips) = token.strip_prefix("bitflip:") {
            return flips.parse().ok().map(CorruptionModeSpec::BitFlip);
        }
        match token {
            "truncate" => Some(CorruptionModeSpec::Truncate),
            "mangle" => Some(CorruptionModeSpec::MangleField),
            _ => None,
        }
    }

    fn mode(self) -> CorruptionMode {
        match self {
            CorruptionModeSpec::BitFlip(flips) => CorruptionMode::BitFlip { flips },
            CorruptionModeSpec::Truncate => CorruptionMode::Truncate,
            CorruptionModeSpec::MangleField => CorruptionMode::MangleField,
        }
    }
}

/// One campaign fault, spanning the seven fault families.
///
/// Devices are addressed as `(net, ord)` — network index and per-network
/// device ordinal, exactly the [`ScenarioSpec::device_id`] coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignFault {
    /// A permanently stuck sensor reading.
    SensorStuck {
        /// Injection time, seconds.
        at_s: u64,
        /// Network index of the victim device.
        net: u32,
        /// Per-network device ordinal.
        ord: u32,
        /// The stuck reading in mA.
        level_ma: u32,
    },
    /// A transient linear sensor drift.
    SensorDrift {
        /// Injection time, seconds.
        at_s: u64,
        /// Clear time, seconds (`> at_s`).
        until_s: u64,
        /// Network index of the victim device.
        net: u32,
        /// Per-network device ordinal.
        ord: u32,
        /// Drift rate in mA per second (may be negative).
        rate_ma_per_s: i32,
    },
    /// A storage forgery on one network's ledger.
    Tamper {
        /// Injection time, seconds.
        at_s: u64,
        /// Target network index.
        net: u32,
    },
    /// A Wi-Fi loss burst, scoped to one network or medium-wide.
    WifiBurst {
        /// Burst start, seconds.
        at_s: u64,
        /// Burst end, seconds (`> at_s`).
        until_s: u64,
        /// Targeted network, `None` for every access network.
        net: Option<u32>,
        /// Loss probability in permille (`1..=1000`).
        loss_permille: u16,
    },
    /// A loss burst on the shared backhaul.
    BackhaulBurst {
        /// Burst start, seconds.
        at_s: u64,
        /// Burst end, seconds (`> at_s`).
        until_s: u64,
        /// Loss probability in permille (`1..=1000`).
        loss_permille: u16,
    },
    /// A device crash with scheduled restart.
    Crash {
        /// Crash time, seconds.
        at_s: u64,
        /// Restart time, seconds (`> at_s`).
        restart_s: u64,
        /// Network index of the victim device.
        net: u32,
        /// Per-network device ordinal.
        ord: u32,
    },
    /// An aggregator outage, optionally with failover.
    Outage {
        /// Outage start, seconds.
        at_s: u64,
        /// Recovery time, seconds (`> at_s`).
        until_s: u64,
        /// Dark network index.
        net: u32,
        /// Failover network index, if any (`!= net`).
        failover: Option<u32>,
    },
    /// Byzantine consensus voters inside one network.
    Byzantine {
        /// Start of the byzantine window, seconds.
        at_s: u64,
        /// End of the byzantine window, seconds (`> at_s`).
        until_s: u64,
        /// Compromised network index.
        net: u32,
        /// Number of colluding voters (`>= 1`).
        voters: u32,
    },
    /// Telegram corruption at the meter-codec boundary.
    Corruption {
        /// Start of the corruption window, seconds.
        at_s: u64,
        /// End of the corruption window, seconds (`> at_s`).
        until_s: u64,
        /// Network index of the victim device.
        net: u32,
        /// Per-network device ordinal.
        ord: u32,
        /// Corruption mode.
        mode: CorruptionModeSpec,
        /// Corruption probability per telegram, permille (`1..=1000`).
        per_mille: u16,
    },
}

impl CampaignFault {
    /// The fault family this campaign fault lowers to.
    pub fn family(&self) -> FaultFamily {
        match self {
            CampaignFault::SensorStuck { .. } | CampaignFault::SensorDrift { .. } => {
                FaultFamily::Sensor
            }
            CampaignFault::Tamper { .. } => FaultFamily::Tamper,
            CampaignFault::WifiBurst { .. } | CampaignFault::BackhaulBurst { .. } => {
                FaultFamily::Link
            }
            CampaignFault::Crash { .. } => FaultFamily::Crash,
            CampaignFault::Outage { .. } => FaultFamily::Outage,
            CampaignFault::Byzantine { .. } => FaultFamily::Byzantine,
            CampaignFault::Corruption { .. } => FaultFamily::Corruption,
        }
    }

    /// Injection time in seconds.
    pub fn at_s(&self) -> u64 {
        match *self {
            CampaignFault::SensorStuck { at_s, .. }
            | CampaignFault::SensorDrift { at_s, .. }
            | CampaignFault::Tamper { at_s, .. }
            | CampaignFault::WifiBurst { at_s, .. }
            | CampaignFault::BackhaulBurst { at_s, .. }
            | CampaignFault::Crash { at_s, .. }
            | CampaignFault::Outage { at_s, .. }
            | CampaignFault::Byzantine { at_s, .. }
            | CampaignFault::Corruption { at_s, .. } => at_s,
        }
    }

    /// Clear time in seconds, `None` for permanent faults.
    pub fn until_s(&self) -> Option<u64> {
        match *self {
            CampaignFault::SensorStuck { .. } | CampaignFault::Tamper { .. } => None,
            CampaignFault::SensorDrift { until_s, .. }
            | CampaignFault::WifiBurst { until_s, .. }
            | CampaignFault::BackhaulBurst { until_s, .. }
            | CampaignFault::Outage { until_s, .. }
            | CampaignFault::Byzantine { until_s, .. }
            | CampaignFault::Corruption { until_s, .. } => Some(until_s),
            CampaignFault::Crash { restart_s, .. } => Some(restart_s),
        }
    }

    fn apply(&self, plan: FaultPlan) -> FaultPlan {
        let t = SimTime::from_secs;
        match *self {
            CampaignFault::SensorStuck {
                at_s,
                net,
                ord,
                level_ma,
            } => plan.sensor_stuck_at(t(at_s), ScenarioSpec::device_id(net, ord), level_ma as f64),
            CampaignFault::SensorDrift {
                at_s,
                until_s,
                net,
                ord,
                rate_ma_per_s,
            } => plan.sensor_fault_between(
                t(at_s),
                t(until_s),
                ScenarioSpec::device_id(net, ord),
                SensorFaultKind::Drift {
                    rate_ma_per_s: rate_ma_per_s as f64,
                },
            ),
            CampaignFault::Tamper { at_s, net } => {
                plan.tamper_at(t(at_s), ScenarioSpec::network_addr(net))
            }
            CampaignFault::WifiBurst {
                at_s,
                until_s,
                net,
                loss_permille,
            } => plan.link_burst(
                t(at_s),
                t(until_s),
                LinkTarget::Wifi {
                    network: net.map(ScenarioSpec::network_addr),
                },
                LinkConfig {
                    loss_probability: loss_permille as f64 / 1000.0,
                    ..LinkConfig::wifi()
                },
            ),
            CampaignFault::BackhaulBurst {
                at_s,
                until_s,
                loss_permille,
            } => plan.link_burst(
                t(at_s),
                t(until_s),
                LinkTarget::Backhaul,
                LinkConfig {
                    loss_probability: loss_permille as f64 / 1000.0,
                    ..LinkConfig::backhaul()
                },
            ),
            CampaignFault::Crash {
                at_s,
                restart_s,
                net,
                ord,
            } => plan.crash_between(t(at_s), t(restart_s), ScenarioSpec::device_id(net, ord)),
            CampaignFault::Outage {
                at_s,
                until_s,
                net,
                failover,
            } => plan.outage_between(
                t(at_s),
                t(until_s),
                ScenarioSpec::network_addr(net),
                failover.map(ScenarioSpec::network_addr),
            ),
            CampaignFault::Byzantine {
                at_s,
                until_s,
                net,
                voters,
            } => {
                plan.byzantine_between(t(at_s), t(until_s), ScenarioSpec::network_addr(net), voters)
            }
            CampaignFault::Corruption {
                at_s,
                until_s,
                net,
                ord,
                mode,
                per_mille,
            } => plan.telegram_corruption_between(
                t(at_s),
                t(until_s),
                ScenarioSpec::device_id(net, ord),
                mode.mode(),
                per_mille,
            ),
        }
    }

    fn line(&self) -> String {
        fn opt_net(net: Option<u32>) -> String {
            net.map_or_else(|| "all".into(), |n| n.to_string())
        }
        match *self {
            CampaignFault::SensorStuck {
                at_s,
                net,
                ord,
                level_ma,
            } => format!("fault sensor_stuck {at_s} {net} {ord} {level_ma}"),
            CampaignFault::SensorDrift {
                at_s,
                until_s,
                net,
                ord,
                rate_ma_per_s,
            } => format!("fault sensor_drift {at_s} {until_s} {net} {ord} {rate_ma_per_s}"),
            CampaignFault::Tamper { at_s, net } => format!("fault tamper {at_s} {net}"),
            CampaignFault::WifiBurst {
                at_s,
                until_s,
                net,
                loss_permille,
            } => format!(
                "fault wifi_burst {at_s} {until_s} {} {loss_permille}",
                opt_net(net)
            ),
            CampaignFault::BackhaulBurst {
                at_s,
                until_s,
                loss_permille,
            } => format!("fault backhaul_burst {at_s} {until_s} {loss_permille}"),
            CampaignFault::Crash {
                at_s,
                restart_s,
                net,
                ord,
            } => format!("fault crash {at_s} {restart_s} {net} {ord}"),
            CampaignFault::Outage {
                at_s,
                until_s,
                net,
                failover,
            } => format!(
                "fault outage {at_s} {until_s} {net} {}",
                failover.map_or_else(|| "none".into(), |n| n.to_string())
            ),
            CampaignFault::Byzantine {
                at_s,
                until_s,
                net,
                voters,
            } => format!("fault byzantine {at_s} {until_s} {net} {voters}"),
            CampaignFault::Corruption {
                at_s,
                until_s,
                net,
                ord,
                mode,
                per_mille,
            } => format!(
                "fault corruption {at_s} {until_s} {net} {ord} {} {per_mille}",
                mode.token()
            ),
        }
    }
}

/// A fleet-command target in campaign coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandTargetSpec {
    /// Every device.
    All,
    /// One device, by `(net, ord)`.
    Device {
        /// Network index.
        net: u32,
        /// Per-network device ordinal.
        ord: u32,
    },
    /// Every device homed on one network.
    Site {
        /// Network index.
        net: u32,
    },
    /// A seeded fleet percentage.
    Cohort {
        /// Fleet percentage in `1..=100`.
        percent: u8,
    },
}

impl CommandTargetSpec {
    fn target(self) -> CommandTarget {
        match self {
            CommandTargetSpec::All => CommandTarget::AllDevices,
            CommandTargetSpec::Device { net, ord } => {
                CommandTarget::Device(ScenarioSpec::device_id(net, ord))
            }
            CommandTargetSpec::Site { net } => CommandTarget::Site(ScenarioSpec::network_addr(net)),
            CommandTargetSpec::Cohort { percent } => CommandTarget::Cohort { percent },
        }
    }

    fn token(self) -> String {
        match self {
            CommandTargetSpec::All => "all".into(),
            CommandTargetSpec::Device { net, ord } => format!("dev:{net}:{ord}"),
            CommandTargetSpec::Site { net } => format!("site:{net}"),
            CommandTargetSpec::Cohort { percent } => format!("cohort:{percent}"),
        }
    }

    fn from_token(token: &str) -> Option<CommandTargetSpec> {
        if token == "all" {
            return Some(CommandTargetSpec::All);
        }
        if let Some(rest) = token.strip_prefix("dev:") {
            let (net, ord) = rest.split_once(':')?;
            return Some(CommandTargetSpec::Device {
                net: net.parse().ok()?,
                ord: ord.parse().ok()?,
            });
        }
        if let Some(net) = token.strip_prefix("site:") {
            return Some(CommandTargetSpec::Site {
                net: net.parse().ok()?,
            });
        }
        if let Some(percent) = token.strip_prefix("cohort:") {
            return Some(CommandTargetSpec::Cohort {
                percent: percent.parse().ok()?,
            });
        }
        None
    }
}

/// One scheduled fleet command of a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignControl {
    /// Change the measurement interval.
    MeasureInterval {
        /// Command time, seconds.
        at_s: u64,
        /// Target.
        target: CommandTargetSpec,
        /// New interval in milliseconds (`>= 1`).
        interval_ms: u64,
    },
    /// Pause consumption reporting (records keep accumulating locally).
    StopReporting {
        /// Command time, seconds.
        at_s: u64,
        /// Target.
        target: CommandTargetSpec,
    },
    /// Resume consumption reporting (buffered records backfill).
    StartReporting {
        /// Command time, seconds.
        at_s: u64,
        /// Target.
        target: CommandTargetSpec,
    },
}

impl CampaignControl {
    /// Command time in seconds.
    pub fn at_s(&self) -> u64 {
        match *self {
            CampaignControl::MeasureInterval { at_s, .. }
            | CampaignControl::StopReporting { at_s, .. }
            | CampaignControl::StartReporting { at_s, .. } => at_s,
        }
    }

    fn apply(&self, plan: ControlPlan) -> ControlPlan {
        let t = SimTime::from_secs;
        match *self {
            CampaignControl::MeasureInterval {
                at_s,
                target,
                interval_ms,
            } => plan.set_measure_interval(
                t(at_s),
                target.target(),
                SimDuration::from_millis(interval_ms),
            ),
            CampaignControl::StopReporting { at_s, target } => {
                plan.stop_reporting(t(at_s), target.target())
            }
            CampaignControl::StartReporting { at_s, target } => {
                plan.start_reporting(t(at_s), target.target())
            }
        }
    }

    fn line(&self) -> String {
        match *self {
            CampaignControl::MeasureInterval {
                at_s,
                target,
                interval_ms,
            } => format!(
                "control measure_interval {at_s} {} {interval_ms}",
                target.token()
            ),
            CampaignControl::StopReporting { at_s, target } => {
                format!("control stop_reporting {at_s} {}", target.token())
            }
            CampaignControl::StartReporting { at_s, target } => {
                format!("control start_reporting {at_s} {}", target.token())
            }
        }
    }
}

/// One scripted mobility hop: unplug a device from its home network, replug
/// it into another.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignHop {
    /// Unplug time, seconds.
    pub unplug_s: u64,
    /// Replug time, seconds (`> unplug_s`).
    pub replug_s: u64,
    /// Home network index of the hopping device.
    pub net: u32,
    /// Per-network device ordinal.
    pub ord: u32,
    /// Destination network index.
    pub dest: u32,
}

/// A randomly sampled scenario campaign — see the [module docs](self).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSpec {
    /// World seed of the lowered scenario.
    pub seed: u64,
    /// Number of networks (`>= 1`).
    pub networks: u32,
    /// Devices per network (`>= 1`).
    pub devices_per_network: u32,
    /// Simulation horizon in seconds.
    pub horizon_s: u64,
    /// Workload preset.
    pub workload: WorkloadPreset,
    /// Meter-protocol mix.
    pub meters: MeterMix,
    /// Tariff preset.
    pub tariff: TariffPreset,
    /// Fault events, in plan order.
    pub faults: Vec<CampaignFault>,
    /// Fleet commands, in plan order.
    pub controls: Vec<CampaignControl>,
    /// Scripted mobility hops.
    pub mobility: Vec<CampaignHop>,
}

impl CampaignSpec {
    /// Lowers the campaign onto the facade's scenario builders.
    pub fn to_scenario(&self) -> ScenarioSpec {
        let mut spec = ScenarioSpec::paper_testbed(self.seed)
            .with_networks(self.networks)
            .with_devices_per_network(self.devices_per_network)
            .with_horizon(SimDuration::from_secs(self.horizon_s));
        if let Some(model) = self.workload.model() {
            spec = spec.with_workload(model);
        }
        if let Some(kinds) = self.meters.kinds() {
            spec = spec.with_meter_kinds(kinds);
        }
        if let Some(tariff) = self.tariff.tariff() {
            spec = spec.with_tariff(tariff);
        }
        let mut faults = FaultPlan::new();
        for fault in &self.faults {
            faults = fault.apply(faults);
        }
        spec = spec.with_fault_plan(faults);
        let mut controls = ControlPlan::new();
        for control in &self.controls {
            controls = control.apply(controls);
        }
        spec = spec.with_control_plan(controls);
        for hop in &self.mobility {
            let device = ScenarioSpec::device_id(hop.net, hop.ord);
            spec = spec
                .unplug_at(SimTime::from_secs(hop.unplug_s), device)
                .plug_in_at(
                    SimTime::from_secs(hop.replug_s),
                    device,
                    ScenarioSpec::network_addr(hop.dest),
                );
        }
        spec
    }

    /// Validates the lowered scenario, mapping the spec error to text.
    pub fn validate(&self) -> Result<(), String> {
        self.to_scenario().validate().map_err(|e| e.to_string())
    }

    /// A compact human label, e.g. `n2xd3 h60s residential real flat f3c1m1`.
    pub fn label(&self) -> String {
        format!(
            "n{}xd{} h{}s {} {} {} f{}c{}m{}",
            self.networks,
            self.devices_per_network,
            self.horizon_s,
            self.workload.name(),
            self.meters.name(),
            self.tariff.name(),
            self.faults.len(),
            self.controls.len(),
            self.mobility.len(),
        )
    }

    /// A scalar size used by the shrinker: event count dominates, then fleet
    /// size, then horizon — every shrink step strictly decreases it.
    pub fn size(&self) -> u64 {
        let events = (self.faults.len() + self.controls.len() + self.mobility.len()) as u64;
        events * 1_000_000_000
            + (self.networks as u64 * self.devices_per_network as u64) * 10_000
            + self.horizon_s
    }

    /// Serializes to the line-based fixture format. Exact: integer fields
    /// only, so `parse(serialize(spec)) == spec` byte-for-byte.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        out.push_str("campaign v1\n");
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!("networks {}\n", self.networks));
        out.push_str(&format!("devices {}\n", self.devices_per_network));
        out.push_str(&format!("horizon {}\n", self.horizon_s));
        out.push_str(&format!("workload {}\n", self.workload.name()));
        out.push_str(&format!("meters {}\n", self.meters.name()));
        out.push_str(&format!("tariff {}\n", self.tariff.name()));
        for fault in &self.faults {
            out.push_str(&fault.line());
            out.push('\n');
        }
        for control in &self.controls {
            out.push_str(&control.line());
            out.push('\n');
        }
        for hop in &self.mobility {
            out.push_str(&format!(
                "hop {} {} {} {} {}\n",
                hop.unplug_s, hop.replug_s, hop.net, hop.ord, hop.dest
            ));
        }
        out.push_str("end\n");
        out
    }

    /// Parses the fixture format written by [`CampaignSpec::serialize`].
    pub fn parse(text: &str) -> Result<CampaignSpec, CampaignParseError> {
        let fail = |line: usize, message: &str| CampaignParseError {
            line,
            message: message.to_string(),
        };
        let mut lines = text.lines().enumerate();
        let (_, header) = lines
            .next()
            .ok_or_else(|| fail(1, "empty campaign fixture"))?;
        if header.trim() != "campaign v1" {
            return Err(fail(1, "expected `campaign v1` header"));
        }
        let mut spec = CampaignSpec {
            seed: 0,
            networks: 0,
            devices_per_network: 0,
            horizon_s: 0,
            workload: WorkloadPreset::Default,
            meters: MeterMix::Internal,
            tariff: TariffPreset::Default,
            faults: Vec::new(),
            controls: Vec::new(),
            mobility: Vec::new(),
        };
        let mut ended = false;
        for (index, raw) in lines {
            let line_no = index + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if ended {
                return Err(fail(line_no, "content after `end`"));
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            let parse_u64 = |s: &str| -> Result<u64, CampaignParseError> {
                s.parse().map_err(|_| fail(line_no, "expected an integer"))
            };
            let parse_u32 = |s: &str| -> Result<u32, CampaignParseError> {
                s.parse().map_err(|_| fail(line_no, "expected an integer"))
            };
            match (fields[0], fields.len()) {
                ("end", 1) => ended = true,
                ("seed", 2) => spec.seed = parse_u64(fields[1])?,
                ("networks", 2) => spec.networks = parse_u32(fields[1])?,
                ("devices", 2) => spec.devices_per_network = parse_u32(fields[1])?,
                ("horizon", 2) => spec.horizon_s = parse_u64(fields[1])?,
                ("workload", 2) => {
                    spec.workload = WorkloadPreset::from_name(fields[1])
                        .ok_or_else(|| fail(line_no, "unknown workload preset"))?
                }
                ("meters", 2) => {
                    spec.meters = MeterMix::from_name(fields[1])
                        .ok_or_else(|| fail(line_no, "unknown meter mix"))?
                }
                ("tariff", 2) => {
                    spec.tariff = TariffPreset::from_name(fields[1])
                        .ok_or_else(|| fail(line_no, "unknown tariff preset"))?
                }
                ("fault", n) if n >= 2 => {
                    let fault = match (fields[1], n) {
                        ("sensor_stuck", 6) => CampaignFault::SensorStuck {
                            at_s: parse_u64(fields[2])?,
                            net: parse_u32(fields[3])?,
                            ord: parse_u32(fields[4])?,
                            level_ma: parse_u32(fields[5])?,
                        },
                        ("sensor_drift", 7) => CampaignFault::SensorDrift {
                            at_s: parse_u64(fields[2])?,
                            until_s: parse_u64(fields[3])?,
                            net: parse_u32(fields[4])?,
                            ord: parse_u32(fields[5])?,
                            rate_ma_per_s: fields[6]
                                .parse()
                                .map_err(|_| fail(line_no, "expected an integer"))?,
                        },
                        ("tamper", 4) => CampaignFault::Tamper {
                            at_s: parse_u64(fields[2])?,
                            net: parse_u32(fields[3])?,
                        },
                        ("wifi_burst", 6) => CampaignFault::WifiBurst {
                            at_s: parse_u64(fields[2])?,
                            until_s: parse_u64(fields[3])?,
                            net: if fields[4] == "all" {
                                None
                            } else {
                                Some(parse_u32(fields[4])?)
                            },
                            loss_permille: fields[5]
                                .parse()
                                .map_err(|_| fail(line_no, "expected an integer"))?,
                        },
                        ("backhaul_burst", 5) => CampaignFault::BackhaulBurst {
                            at_s: parse_u64(fields[2])?,
                            until_s: parse_u64(fields[3])?,
                            loss_permille: fields[4]
                                .parse()
                                .map_err(|_| fail(line_no, "expected an integer"))?,
                        },
                        ("crash", 6) => CampaignFault::Crash {
                            at_s: parse_u64(fields[2])?,
                            restart_s: parse_u64(fields[3])?,
                            net: parse_u32(fields[4])?,
                            ord: parse_u32(fields[5])?,
                        },
                        ("outage", 6) => CampaignFault::Outage {
                            at_s: parse_u64(fields[2])?,
                            until_s: parse_u64(fields[3])?,
                            net: parse_u32(fields[4])?,
                            failover: if fields[5] == "none" {
                                None
                            } else {
                                Some(parse_u32(fields[5])?)
                            },
                        },
                        ("byzantine", 6) => CampaignFault::Byzantine {
                            at_s: parse_u64(fields[2])?,
                            until_s: parse_u64(fields[3])?,
                            net: parse_u32(fields[4])?,
                            voters: parse_u32(fields[5])?,
                        },
                        ("corruption", 8) => CampaignFault::Corruption {
                            at_s: parse_u64(fields[2])?,
                            until_s: parse_u64(fields[3])?,
                            net: parse_u32(fields[4])?,
                            ord: parse_u32(fields[5])?,
                            mode: CorruptionModeSpec::from_token(fields[6])
                                .ok_or_else(|| fail(line_no, "unknown corruption mode"))?,
                            per_mille: fields[7]
                                .parse()
                                .map_err(|_| fail(line_no, "expected an integer"))?,
                        },
                        _ => return Err(fail(line_no, "unknown fault line")),
                    };
                    spec.faults.push(fault);
                }
                ("control", n) if n >= 2 => {
                    let target = |s: &str| {
                        CommandTargetSpec::from_token(s)
                            .ok_or_else(|| fail(line_no, "unknown command target"))
                    };
                    let control = match (fields[1], n) {
                        ("measure_interval", 5) => CampaignControl::MeasureInterval {
                            at_s: parse_u64(fields[2])?,
                            target: target(fields[3])?,
                            interval_ms: parse_u64(fields[4])?,
                        },
                        ("stop_reporting", 4) => CampaignControl::StopReporting {
                            at_s: parse_u64(fields[2])?,
                            target: target(fields[3])?,
                        },
                        ("start_reporting", 4) => CampaignControl::StartReporting {
                            at_s: parse_u64(fields[2])?,
                            target: target(fields[3])?,
                        },
                        _ => return Err(fail(line_no, "unknown control line")),
                    };
                    spec.controls.push(control);
                }
                ("hop", 6) => spec.mobility.push(CampaignHop {
                    unplug_s: parse_u64(fields[1])?,
                    replug_s: parse_u64(fields[2])?,
                    net: parse_u32(fields[3])?,
                    ord: parse_u32(fields[4])?,
                    dest: parse_u32(fields[5])?,
                }),
                _ => return Err(fail(line_no, "unknown line")),
            }
        }
        if !ended {
            return Err(fail(text.lines().count(), "missing `end` terminator"));
        }
        if spec.networks == 0 || spec.devices_per_network == 0 || spec.horizon_s == 0 {
            return Err(fail(1, "campaign misses topology or horizon"));
        }
        Ok(spec)
    }
}

/// A parse failure of the campaign fixture format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignParseError {
    /// 1-indexed fixture line of the failure.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for CampaignParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "campaign fixture line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CampaignParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CampaignSpec {
        CampaignSpec {
            seed: 77,
            networks: 2,
            devices_per_network: 3,
            horizon_s: 60,
            workload: WorkloadPreset::Residential,
            meters: MeterMix::Real,
            tariff: TariffPreset::Flat,
            faults: vec![
                CampaignFault::Tamper { at_s: 20, net: 0 },
                CampaignFault::WifiBurst {
                    at_s: 22,
                    until_s: 45,
                    net: Some(1),
                    loss_permille: 700,
                },
                CampaignFault::Corruption {
                    at_s: 18,
                    until_s: 40,
                    net: 0,
                    ord: 2,
                    mode: CorruptionModeSpec::BitFlip(3),
                    per_mille: 500,
                },
            ],
            controls: vec![CampaignControl::MeasureInterval {
                at_s: 30,
                target: CommandTargetSpec::Cohort { percent: 40 },
                interval_ms: 250,
            }],
            mobility: vec![CampaignHop {
                unplug_s: 25,
                replug_s: 35,
                net: 0,
                ord: 1,
                dest: 1,
            }],
        }
    }

    #[test]
    fn serialize_parse_round_trips_exactly() {
        let spec = sample();
        let text = spec.serialize();
        let parsed = CampaignSpec::parse(&text).unwrap();
        assert_eq!(spec, parsed);
        assert_eq!(text, parsed.serialize(), "byte-identical round trip");
    }

    #[test]
    fn sample_lowering_validates() {
        assert_eq!(sample().validate(), Ok(()));
        let scenario = sample().to_scenario();
        assert_eq!(scenario.device_ids().len(), 6);
    }

    #[test]
    fn parse_rejects_malformed_fixtures() {
        assert!(CampaignSpec::parse("").is_err());
        assert!(CampaignSpec::parse("campaign v2\nend\n").is_err());
        assert!(
            CampaignSpec::parse("campaign v1\nseed 1\n").is_err(),
            "no end"
        );
        let no_topology = "campaign v1\nseed 1\nend\n";
        assert!(CampaignSpec::parse(no_topology).is_err());
        let bad_fault = "campaign v1\nseed 1\nnetworks 1\ndevices 1\nhorizon 50\n\
                         workload default\nmeters internal\ntariff default\n\
                         fault warp 3\nend\n";
        let err = CampaignSpec::parse(bad_fault).unwrap_err();
        assert_eq!(err.line, 9);
    }
}
